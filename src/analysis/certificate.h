#ifndef SOFTDB_ANALYSIS_CERTIFICATE_H_
#define SOFTDB_ANALYSIS_CERTIFICATE_H_

#include <cstdint>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "analysis/implication.h"
#include "plan/expr.h"
#include "storage/schema.h"

namespace softdb {

class Catalog;
class IcRegistry;
class ScRegistry;

/// Translation validation for SC-driven plan transformations (DESIGN.md
/// §13). Every semantics-affecting rewrite the optimizer performs on the
/// strength of a soft constraint emits a `RewriteCertificate`: the premise
/// facts it consumed (SC name + epoch + the exact interval / diff-bound /
/// ε-band), the surviving predicate context, and the conclusion (predicate
/// removed, scan folded, join eliminated, twin attached, blocks skipped).
///
/// An independent `CertificateChecker` re-validates each certificate
/// against a FRESH fact base using only interval arithmetic. The checker
/// deliberately does not call the rewriter's closure
/// (ImplicationEngine::MakeEnv / EnvEntails): it re-implements a small
/// entailment core of its own, so a bug in the shared closure cannot
/// certify its own wrong conclusion. Shared with the rewriter are only the
/// *extraction* layers — Interval arithmetic, IntervalForComparison,
/// BuildImplicationFacts, and the predicate matchers — whose outputs the
/// checker cross-validates against the live constraint registries anyway.

/// Which transformation a certificate justifies.
enum class CertificateKind : std::uint8_t {
  /// A real conjunct was erased because premises + facts entail it.
  /// Also covers domain-drop (DomainSc tautology on a non-nullable column).
  kImplicationPrune,
  /// The scan was folded to FALSE: facts + conjuncts admit no row.
  /// Also covers domain-contradiction.
  kImplicationContradiction,
  /// An unfiltered unique-parent join was removed (FK / inclusion SC).
  kJoinElimination,
  /// An estimation-only twin predicate was attached (SSC, §5.1). Never
  /// filters rows; certified so the costing premise is still auditable.
  kTwinSubstitution,
  /// A non-estimation predicate was introduced from an absolute offset /
  /// linear SC (E1). Strengthens the scan, so entailment must hold.
  kPredicateIntroduction,
  /// A sequential scan got a per-block skip set from a zone-map SC.
  kZoneMapSkip,
};

const char* CertificateKindName(CertificateKind kind);

/// One premise the derivation consumed. Exactly one payload section is
/// meaningful, selected by `kind`.
struct CertificatePremise {
  enum class Kind : std::uint8_t {
    kIntervalFact,  // col ∈ interval when non-NULL.
    kDiffFact,      // (y - x) ∈ interval when both non-NULL.
    kBandFact,      // |x - (k·y + c)| ≤ eps when both non-NULL.
    kInclusion,     // child(columns) ⊆ parent(parent_columns).
    kUniqueKey,     // parent_columns unique over child_table (parent).
    kZoneBlock,     // One block's min/max/null-count envelope.
  };

  Kind kind = Kind::kIntervalFact;
  /// Provenance exactly as the fact base records it: "sc:<name>",
  /// "check:<name>", "fk:<name>", or an inclusion-import composite like
  /// "sc:<inc><-check:<name>".
  std::string source;
  /// Every SC the premise rests on, with its plan-time epoch (all "sc:"
  /// segments of `source`). Empty for pure-IC premises.
  std::vector<std::pair<std::string, std::uint64_t>> sc_epochs;

  // kIntervalFact / kDiffFact / kBandFact payload.
  ColumnIdx column = 0;  // Interval fact; also band column a.
  ColumnIdx x = 0;       // Diff fact x; band column b.
  ColumnIdx y = 0;       // Diff fact y.
  Interval interval;     // Interval fact value / diff range.
  double k = 0.0;
  double c = 0.0;
  double eps = 0.0;

  // kInclusion / kUniqueKey payload.
  std::string child_table;
  std::vector<ColumnIdx> columns;         // Child-side key columns.
  std::vector<ColumnIdx> parent_columns;  // Parent-side key columns.

  // kZoneBlock payload (plan-time envelope of one skipped block).
  std::uint64_t block_index = 0;
  double block_min = 0.0;
  double block_max = 0.0;
  bool block_has_value = false;
  std::uint64_t block_null_count = 0;
};

/// The full proof obligation for one transformation.
struct RewriteCertificate {
  CertificateKind kind = CertificateKind::kImplicationPrune;
  /// The applied-rule string as recorded in OptimizerContext (audit key).
  std::string rule;
  /// Base table the derivation reasons over (scan table; child table for
  /// join elimination).
  std::string table;

  /// Fact premises consumed from the SC/IC layer.
  std::vector<CertificatePremise> premises;
  /// Predicate premises: the surviving real conjuncts the entailment may
  /// additionally assume (cloned at emission time).
  std::vector<ExprPtr> premise_exprs;

  /// The concluded predicate: the erased conjunct (prune), the introduced
  /// predicate (introduction), or the twin (twin substitution). Null for
  /// contradiction / join-elimination / zone-map certificates.
  ExprPtr conclusion_expr;
  /// Twin certificates assert estimation-only conclusions; the checker
  /// rejects a twin certificate whose flag was dropped (it would then be
  /// an unproven *filtering* predicate).
  bool estimation_only = false;

  // Join elimination payload.
  std::string parent_table;
  std::string inclusion_source;  // "fk:<name>" or "sc:<name>".

  // Zone-map payload.
  ColumnIdx zm_column = 0;
  std::vector<std::uint64_t> skipped_blocks;

  RewriteCertificate Clone() const;

  /// Deduplicated "<name>@<epoch>" strings over all premises (audit
  /// rendering + epoch-dependency reporting).
  std::vector<std::string> ScEpochStrings() const;
};

/// Checker verdicts. `kStale` means a premise SC moved (epoch bump,
/// deactivation, demotion from absolute) since planning — the plan must be
/// re-derived, but the *derivation* was honest; the epoch-guarded degraded
/// retry handles it. `kInvalid` means the certificate does not prove its
/// conclusion even against the facts it claims: a rewriter bug (or a
/// forged certificate), and a hard error in debug builds.
enum class CertificateVerdict : std::uint8_t { kOk, kStale, kInvalid };

const char* CertificateVerdictName(CertificateVerdict v);

struct CertificateCheckResult {
  CertificateVerdict verdict = CertificateVerdict::kOk;
  std::string message;  // Empty on kOk.

  bool ok() const { return verdict == CertificateVerdict::kOk; }
};

/// The trusted core. Stateless; every Check builds a fresh fact base from
/// the live registries and re-derives the entailment with its own bounded
/// interval closure.
class CertificateChecker {
 public:
  CertificateChecker(const Catalog* catalog, const IcRegistry* ics,
                     const ScRegistry* scs)
      : catalog_(catalog), ics_(ics), scs_(scs) {}

  CertificateCheckResult Check(const RewriteCertificate& cert) const;

  /// Incremental re-validation for cached plans: a certificate that fully
  /// validated when its plan was built remains valid while every SC epoch
  /// it rests on is unchanged — premises depend only on epoch-guarded SC
  /// state (every SC mutation bumps the epoch) and on integrity
  /// constraints, whose DDL invalidates the plan cache outright. Returns
  /// true when all recorded epochs are current; callers fall back to the
  /// full Check() on drift.
  bool EpochsCurrent(const RewriteCertificate& cert) const;

 private:
  CertificateCheckResult CheckEntailment(const RewriteCertificate& cert)
      const;
  CertificateCheckResult CheckJoinElimination(const RewriteCertificate& cert)
      const;
  CertificateCheckResult CheckZoneMapSkip(const RewriteCertificate& cert)
      const;
  /// Validates fact premises against the live registries: epochs match,
  /// SCs still active (and absolute where semantics require it), and each
  /// recorded fact is no stronger than what its source provides today.
  CertificateCheckResult ValidateFactPremises(const RewriteCertificate& cert)
      const;

  const Catalog* catalog_;
  const IcRegistry* ics_;
  const ScRegistry* scs_;
};

/// Emission helper: copies every fact of `facts` whose source is in
/// `used_sources` into `out` as a premise, annotating each with the current
/// epochs of all SCs named in the source string.
void AppendFactPremises(const ImplicationFacts& facts,
                        const std::set<std::string>& used_sources,
                        const ScRegistry* scs,
                        std::vector<CertificatePremise>* out);

/// Epoch-annotation helper shared by the direct (non-closure) emission
/// sites: parses every "sc:<name>" segment out of `source` and records the
/// SC's current epoch.
void AppendScEpochs(const std::string& source, const ScRegistry* scs,
                    std::vector<std::pair<std::string, std::uint64_t>>* out);

/// Mirrors ShouldVerifyPlans: debug builds certify unconditionally, release
/// builds honor EngineOptions::certify_plans (default on).
inline bool ShouldCertifyPlans(bool option_enabled) {
#ifndef NDEBUG
  (void)option_enabled;
  return true;
#else
  return option_enabled;
#endif
}

}  // namespace softdb

#endif  // SOFTDB_ANALYSIS_CERTIFICATE_H_
