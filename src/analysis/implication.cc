#include "analysis/implication.h"

#include <algorithm>
#include <cmath>

#include "common/str_util.h"
#include "constraints/column_offset_sc.h"
#include "constraints/domain_sc.h"
#include "constraints/ic_registry.h"
#include "constraints/inclusion_sc.h"
#include "constraints/linear_correlation_sc.h"
#include "constraints/predicate_sc.h"
#include "constraints/sc_registry.h"
#include "stats/analyzer.h"
#include "storage/catalog.h"

namespace softdb {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

// Maximum diff/band propagation passes. Capping only costs precision
// (verdicts degrade toward kUnknown), never soundness.
constexpr int kMaxClosurePasses = 6;

// Infinity-absorbing bound addition; `sign` picks which infinity wins a
// (+inf) + (-inf) clash so the result stays conservative for its side.
double AddBound(double a, double b, double sign) {
  if (std::isinf(a) && std::isinf(b) && a != b) return sign * kInf;
  if (std::isinf(a)) return a;
  if (std::isinf(b)) return b;
  return a + b;
}

bool NumericNonNull(const Value& v) {
  return !v.is_null() && IsNumericType(v.type());
}

bool StringNonNull(const Value& v) {
  return !v.is_null() && v.type() == TypeId::kString;
}

}  // namespace

const char* ImplicationVerdictName(ImplicationVerdict v) {
  switch (v) {
    case ImplicationVerdict::kImplies:
      return "implies";
    case ImplicationVerdict::kContradicts:
      return "contradicts";
    case ImplicationVerdict::kUnknown:
      return "unknown";
  }
  return "unknown";
}

// ---------------------------------------------------------------------------
// Interval.
// ---------------------------------------------------------------------------

bool Interval::IsTop() const {
  return !empty && !str_equal.has_value() && lo == -kInf && hi == kInf;
}

bool Interval::IsPoint(double* v) const {
  if (empty || str_equal.has_value()) return false;
  if (lo == hi && !lo_strict && !hi_strict && std::isfinite(lo)) {
    if (v != nullptr) *v = lo;
    return true;
  }
  return false;
}

bool Interval::ContainsPoint(double v) const {
  if (empty || str_equal.has_value()) return false;
  if (v < lo || (v == lo && lo_strict)) return false;
  if (v > hi || (v == hi && hi_strict)) return false;
  return true;
}

bool Interval::Contains(const Interval& inner) const {
  if (inner.empty) return true;
  if (empty) return false;
  if (str_equal.has_value()) {
    // Only an identical string pin fits inside a string pin.
    return inner.str_equal.has_value() &&
           inner.str_equal->GroupEquals(*str_equal);
  }
  if (inner.str_equal.has_value()) {
    // A string pin fits inside a numeric interval only when that interval
    // poses no numeric restriction at all.
    return IsTop();
  }
  // Lower side: this.lo must admit everything from inner.lo down.
  const bool lo_ok =
      lo < inner.lo || (lo == inner.lo && (!lo_strict || inner.lo_strict));
  const bool hi_ok =
      hi > inner.hi || (hi == inner.hi && (!hi_strict || inner.hi_strict));
  return lo_ok && hi_ok;
}

void Interval::Intersect(const Interval& other) {
  if (empty) return;
  if (other.empty) {
    empty = true;
    return;
  }
  if (str_equal.has_value() || other.str_equal.has_value()) {
    if (str_equal.has_value() && other.str_equal.has_value()) {
      if (!str_equal->GroupEquals(*other.str_equal)) empty = true;
      return;
    }
    // Mixing a string pin with a real numeric restriction is vacuous only
    // when the numeric side is Top; otherwise the types are incompatible
    // and no value satisfies both.
    const Interval& numeric = str_equal.has_value() ? other : *this;
    if (!numeric.IsTop()) {
      empty = true;
      return;
    }
    if (!str_equal.has_value()) str_equal = other.str_equal;
    return;
  }
  if (other.lo > lo || (other.lo == lo && other.lo_strict)) {
    lo = other.lo;
    lo_strict = other.lo_strict;
  }
  if (other.hi < hi || (other.hi == hi && other.hi_strict)) {
    hi = other.hi;
    hi_strict = other.hi_strict;
  }
  if (lo > hi || (lo == hi && (lo_strict || hi_strict))) empty = true;
}

Interval Interval::Plus(const Interval& other) const {
  if (empty || other.empty) return Empty();
  if (str_equal.has_value() || other.str_equal.has_value()) return Top();
  Interval out;
  out.lo = AddBound(lo, other.lo, -1.0);
  out.hi = AddBound(hi, other.hi, +1.0);
  out.lo_strict = std::isfinite(out.lo) && (lo_strict || other.lo_strict);
  out.hi_strict = std::isfinite(out.hi) && (hi_strict || other.hi_strict);
  return out;
}

Interval Interval::Negated() const {
  if (empty) return Empty();
  if (str_equal.has_value()) return Top();
  Interval out;
  out.lo = -hi;
  out.hi = -lo;
  out.lo_strict = hi_strict;
  out.hi_strict = lo_strict;
  return out;
}

Interval Interval::Minus(const Interval& other) const {
  return Plus(other.Negated());
}

Interval Interval::ScaledBy(double k, double c) const {
  if (empty) return Empty();
  if (str_equal.has_value()) return Top();
  if (k == 0.0) return Point(c);
  Interval out;
  if (k > 0.0) {
    out.lo = std::isinf(lo) ? lo : lo * k;
    out.hi = std::isinf(hi) ? hi : hi * k;
    out.lo_strict = lo_strict;
    out.hi_strict = hi_strict;
  } else {
    out.lo = std::isinf(hi) ? -hi : hi * k;
    out.hi = std::isinf(lo) ? -lo : lo * k;
    out.lo_strict = hi_strict;
    out.hi_strict = lo_strict;
  }
  out.lo = AddBound(out.lo, c, -1.0);
  out.hi = AddBound(out.hi, c, +1.0);
  return out;
}

bool Interval::SameAs(const Interval& other) const {
  if (empty != other.empty) return false;
  if (empty) return true;
  if (str_equal.has_value() != other.str_equal.has_value()) return false;
  if (str_equal.has_value())
    return str_equal->GroupEquals(*other.str_equal);
  return lo == other.lo && hi == other.hi && lo_strict == other.lo_strict &&
         hi_strict == other.hi_strict;
}

std::string Interval::ToString() const {
  if (empty) return "{}";
  if (str_equal.has_value()) return "{'" + str_equal->ToString() + "'}";
  std::string out = lo_strict ? "(" : "[";
  out += std::isinf(lo) ? "-inf" : StrFormat("%g", lo);
  out += ", ";
  out += std::isinf(hi) ? "+inf" : StrFormat("%g", hi);
  out += hi_strict ? ")" : "]";
  return out;
}

std::optional<Interval> IntervalForComparison(CompareOp op, const Value& v) {
  if (!NumericNonNull(v)) return std::nullopt;
  const double c = v.NumericValue();
  switch (op) {
    case CompareOp::kEq:
      return Interval::Point(c);
    case CompareOp::kLt:
      return Interval::AtMost(c, /*strict=*/true);
    case CompareOp::kLe:
      return Interval::AtMost(c, /*strict=*/false);
    case CompareOp::kGt:
      return Interval::AtLeast(c, /*strict=*/true);
    case CompareOp::kGe:
      return Interval::AtLeast(c, /*strict=*/false);
    case CompareOp::kNe:
      return std::nullopt;  // Not interval-representable.
  }
  return std::nullopt;
}

// ---------------------------------------------------------------------------
// Fact extraction.
// ---------------------------------------------------------------------------

std::optional<ImplicationFacts::IntervalFact> DomainIntervalFact(
    const DomainSc& sc) {
  ImplicationFacts::IntervalFact fact;
  fact.column = sc.column();
  fact.source = "sc:" + sc.name();
  const Value& lo = sc.min_value();
  const Value& hi = sc.max_value();
  if (NumericNonNull(lo) || NumericNonNull(hi)) {
    // Either bound may be non-numeric (a half-open declaration); the
    // numeric side still constrains.
    if (NumericNonNull(lo)) {
      fact.interval.lo = lo.NumericValue();
    }
    if (NumericNonNull(hi)) {
      fact.interval.hi = hi.NumericValue();
    }
    if (fact.interval.lo > fact.interval.hi) fact.interval.empty = true;
    return fact;
  }
  if (StringNonNull(lo) && StringNonNull(hi) && lo.GroupEquals(hi)) {
    // Degenerate string domain: an equality pin.
    fact.interval = Interval::StringPin(lo);
    return fact;
  }
  return std::nullopt;
}

ImplicationFacts::DiffFact OffsetDiffFact(const ColumnOffsetSc& sc) {
  ImplicationFacts::DiffFact fact;
  fact.x = sc.col_x();
  fact.y = sc.col_y();
  const auto [min_offset, max_offset] = sc.offset_range();
  fact.range = Interval::Range(static_cast<double>(min_offset),
                               static_cast<double>(max_offset));
  fact.source = "sc:" + sc.name();
  return fact;
}

std::optional<ImplicationFacts::BandFact> LinearBandFact(
    const LinearCorrelationSc& sc) {
  const LinearCorrelationSc::Band band = sc.band();
  if (band.epsilon < 0.0) return std::nullopt;  // Lint flags this; skip.
  ImplicationFacts::BandFact fact;
  fact.a = sc.col_a();
  fact.b = sc.col_b();
  fact.k = band.k;
  fact.c = band.c;
  fact.eps = band.epsilon;
  fact.source = "sc:" + sc.name();
  return fact;
}

namespace {

// Collects interval/diff facts from a null-compliant row predicate (CHECK
// or predicate SC). Decomposing a conjunction is only sound when a single
// NULL conjunct cannot mask a FALSE one — i.e. when the expression is one
// conjunct, or no referenced column is nullable.
void FactsFromRowPredicate(const Expr& expr, const Schema& schema,
                           const std::string& source,
                           ImplicationFacts* out) {
  std::vector<const Expr*> conjuncts;
  ImplicationEngine::CollectConjuncts(expr, &conjuncts);
  if (conjuncts.size() > 1) {
    std::vector<ColumnIdx> cols;
    expr.CollectColumns(&cols);
    for (ColumnIdx col : cols) {
      if (col >= schema.NumColumns() || schema.Column(col).nullable) return;
    }
  }
  for (const Expr* conjunct : conjuncts) {
    std::vector<SimplePredicate> simples;
    if (ExpandSimplePredicates(*conjunct, &simples)) {
      for (const SimplePredicate& sp : simples) {
        auto interval = IntervalForComparison(sp.op, sp.constant);
        if (!interval.has_value()) {
          if (sp.op == CompareOp::kEq && StringNonNull(sp.constant)) {
            interval = Interval::StringPin(sp.constant);
          } else {
            continue;
          }
        }
        out->intervals.push_back({sp.column, *interval, source});
      }
      continue;
    }
    ColumnDiffPredicate diff;
    if (MatchColumnDiffPredicate(*conjunct, &diff) &&
        diff.op != CompareOp::kNe) {
      auto range = IntervalForComparison(diff.op, diff.constant);
      if (range.has_value()) {
        out->diffs.push_back({diff.subtrahend, diff.minuend, *range, source});
      }
      continue;
    }
    ColumnPairPredicate pair;
    if (MatchColumnPair(*conjunct, &pair) && pair.op != CompareOp::kNe) {
      auto range = IntervalForComparison(pair.op, Value::Int64(0));
      if (range.has_value()) {
        out->diffs.push_back({pair.right, pair.left, *range, source});
      }
    }
    // Anything else contributes nothing (sound: facts only shrink rows'
    // admissible region when stated).
  }
}

void CollectTableFacts(const std::string& table, const Catalog& catalog,
                       const IcRegistry* ics, const ScRegistry* scs,
                       const StatsCatalog* stats,
                       const ImplicationFactsOptions& opts, int depth,
                       const std::string& source_prefix,
                       ImplicationFacts* out) {
  auto table_result = catalog.GetTable(table);
  if (!table_result.ok()) return;
  const Schema& schema = (*table_result)->schema();

  if (ics != nullptr && opts.use_checks) {
    for (const CheckConstraint* check : ics->ChecksOn(table)) {
      if (opts.enforced_checks_only && check->informational()) continue;
      FactsFromRowPredicate(check->expr(), schema,
                            source_prefix + "check:" + check->name(), out);
    }
  }

  if (scs != nullptr && opts.use_soft_constraints) {
    for (const SoftConstraint* sc : scs->On(table)) {
      if (sc->table() != table) continue;  // Join-hole right side.
      if (opts.absolute_only && !sc->IsAbsolute()) continue;
      if (!opts.absolute_only && sc->state() == ScState::kDropped) continue;
      switch (sc->kind()) {
        case ScKind::kDomain: {
          auto fact = DomainIntervalFact(*static_cast<const DomainSc*>(sc));
          if (fact.has_value()) {
            fact->source = source_prefix + fact->source;
            out->intervals.push_back(std::move(*fact));
          }
          break;
        }
        case ScKind::kColumnOffset: {
          auto fact =
              OffsetDiffFact(*static_cast<const ColumnOffsetSc*>(sc));
          fact.source = source_prefix + fact.source;
          out->diffs.push_back(std::move(fact));
          break;
        }
        case ScKind::kLinearCorrelation: {
          auto fact = LinearBandFact(
              *static_cast<const LinearCorrelationSc*>(sc));
          if (fact.has_value()) {
            fact->source = source_prefix + fact->source;
            out->bands.push_back(std::move(*fact));
          }
          break;
        }
        case ScKind::kPredicate: {
          FactsFromRowPredicate(
              static_cast<const PredicateSc*>(sc)->expr(), schema,
              source_prefix + "sc:" + sc->name(), out);
          break;
        }
        case ScKind::kInclusion: {
          if (!opts.import_inclusion_parents || depth <= 0) break;
          const auto* incl = static_cast<const InclusionSc*>(sc);
          if (incl->child_columns().size() != 1) break;
          if (incl->parent_table() == table) break;  // Self-cycle guard.
          // Import the parent column's interval facts onto the child
          // column: any non-NULL child value also occurs (non-NULL) in
          // the parent column, so the parent's domain bounds transfer.
          ImplicationFacts parent_facts;
          ImplicationFactsOptions parent_opts = opts;
          parent_opts.use_stats = false;  // Stats never cross tables.
          CollectTableFacts(incl->parent_table(), catalog, ics, scs,
                            nullptr, parent_opts, depth - 1,
                            source_prefix + "sc:" + sc->name() + "<-",
                            &parent_facts);
          const ColumnIdx child_col = incl->child_columns()[0];
          const ColumnIdx parent_col = incl->parent_columns()[0];
          for (const auto& fact : parent_facts.intervals) {
            if (fact.column != parent_col) continue;
            out->intervals.push_back({child_col, fact.interval, fact.source});
          }
          break;
        }
        case ScKind::kFunctionalDependency:
        case ScKind::kJoinHole:
        case ScKind::kBlockZoneMap:
          // FDs constrain row *pairs* and join holes constrain joined
          // tuples; neither yields a sound single-row fact. Zone maps are
          // per-block envelopes consumed by the scan planner, not global
          // facts (callers wanting a whole-table envelope fold the blocks
          // themselves, as the workload analyzer does).
          break;
      }
    }
  }

  if (stats != nullptr && opts.use_stats) {
    const TableStats* ts = stats->Get(table);
    if (ts != nullptr) {
      for (ColumnIdx col = 0; col < schema.NumColumns(); ++col) {
        if (!ts->HasColumn(col)) continue;
        const ColumnStats& cs = ts->columns[col];
        if (!cs.min.has_value() || !cs.max.has_value()) continue;
        if (!NumericNonNull(*cs.min) || !NumericNonNull(*cs.max)) continue;
        out->intervals.push_back(
            {col,
             Interval::Range(cs.min->NumericValue(), cs.max->NumericValue()),
             source_prefix + "stats:" + table});
      }
    }
  }
}

}  // namespace

ImplicationFacts BuildImplicationFacts(const std::string& table,
                                       const Catalog& catalog,
                                       const IcRegistry* ics,
                                       const ScRegistry* scs,
                                       const StatsCatalog* stats,
                                       const ImplicationFactsOptions& opts) {
  ImplicationFacts facts;
  CollectTableFacts(table, catalog, ics, scs, stats, opts,
                    /*depth=*/2, /*source_prefix=*/"", &facts);
  return facts;
}

// ---------------------------------------------------------------------------
// Engine.
// ---------------------------------------------------------------------------

ImplicationEngine::ImplicationEngine(const Schema* schema,
                                     ImplicationFacts facts,
                                     ImplicationOptions opts)
    : schema_(schema), facts_(std::move(facts)), opts_(opts) {}

void ImplicationEngine::CollectConjuncts(const Expr& expr,
                                         std::vector<const Expr*>* out) {
  if (expr.kind() == ExprKind::kAnd) {
    const auto& logical = static_cast<const LogicalExpr&>(expr);
    for (const ExprPtr& child : logical.children()) {
      CollectConjuncts(*child, out);
    }
    return;
  }
  out->push_back(&expr);
}

bool ImplicationEngine::ColumnUsable(const SymbolicEnv& env,
                                     ColumnIdx col) const {
  if (env.known_null.count(col) != 0) return false;
  if (opts_.assume_non_null) return true;
  if (env.non_null.count(col) != 0) return true;
  return schema_ != nullptr && col < schema_->NumColumns() &&
         !schema_->Column(col).nullable;
}

bool ImplicationEngine::MustBeNonNull(const SymbolicEnv& env,
                                      ColumnIdx col) const {
  if (opts_.assume_non_null) return true;
  if (env.non_null.count(col) != 0) return true;
  return schema_ != nullptr && col < schema_->NumColumns() &&
         !schema_->Column(col).nullable;
}

void ImplicationEngine::ApplySimple(const SimplePredicate& sp,
                                    SymbolicEnv* env) const {
  // A comparison conjunct is TRUE only on non-NULL values.
  env->non_null.insert(sp.column);
  if (sp.constant.is_null()) {
    // `col op NULL` is never TRUE: the region is empty.
    env->unsat = true;
    return;
  }
  Interval& slot = env->intervals[sp.column];
  auto interval = IntervalForComparison(sp.op, sp.constant);
  if (interval.has_value()) {
    slot.Intersect(*interval);
  } else if (sp.op == CompareOp::kEq && StringNonNull(sp.constant)) {
    slot.Intersect(Interval::StringPin(sp.constant));
  } else if (sp.op == CompareOp::kNe) {
    env->not_equals.emplace_back(sp.column, sp.constant);
  }
  // Other string comparisons: only the non-NULL knowledge sticks.
  if (slot.empty) {
    env->unsat = true;
    auto it = env->interval_sources.find(sp.column);
    if (it != env->interval_sources.end()) {
      env->unsat_sources.insert(it->second.begin(), it->second.end());
    }
  }
}

void ImplicationEngine::ApplyConjunct(const Expr& e, SymbolicEnv* env) const {
  switch (e.kind()) {
    case ExprKind::kLiteral: {
      const Value& v = static_cast<const LiteralExpr&>(e).value();
      if (v.is_null() || !v.AsBool()) env->unsat = true;
      return;
    }
    case ExprKind::kIsNull: {
      const auto& isnull = static_cast<const IsNullExpr&>(e);
      if (isnull.input()->kind() != ExprKind::kColumnRef) return;  // Opaque.
      const ColumnIdx col =
          static_cast<const ColumnRefExpr&>(*isnull.input()).index();
      if (isnull.negated()) {
        env->non_null.insert(col);
      } else {
        env->known_null.insert(col);
      }
      return;
    }
    case ExprKind::kNot: {
      const Expr* child = static_cast<const NotExpr&>(e).child();
      SimplePredicate sp;
      if (MatchSimplePredicate(*child, &sp)) {
        // NOT(col op c) is TRUE exactly when col is non-NULL and the
        // negated comparison holds.
        switch (sp.op) {
          case CompareOp::kEq: sp.op = CompareOp::kNe; break;
          case CompareOp::kNe: sp.op = CompareOp::kEq; break;
          case CompareOp::kLt: sp.op = CompareOp::kGe; break;
          case CompareOp::kLe: sp.op = CompareOp::kGt; break;
          case CompareOp::kGt: sp.op = CompareOp::kLe; break;
          case CompareOp::kGe: sp.op = CompareOp::kLt; break;
        }
        ApplySimple(sp, env);
      }
      return;  // Other NOTs are opaque.
    }
    default:
      break;
  }

  std::vector<SimplePredicate> simples;
  if (ExpandSimplePredicates(e, &simples)) {
    for (const SimplePredicate& sp : simples) ApplySimple(sp, env);
    return;
  }
  ColumnDiffPredicate diff;
  if (MatchColumnDiffPredicate(e, &diff)) {
    env->non_null.insert(diff.minuend);
    env->non_null.insert(diff.subtrahend);
    auto range = IntervalForComparison(diff.op, diff.constant);
    if (range.has_value()) {
      env->diffs.push_back(
          {diff.subtrahend, diff.minuend, *range, std::string()});
    }
    return;
  }
  ColumnPairPredicate pair;
  if (MatchColumnPair(e, &pair)) {
    env->non_null.insert(pair.left);
    env->non_null.insert(pair.right);
    auto range = IntervalForComparison(pair.op, Value::Int64(0));
    if (range.has_value()) {
      // (left - right) op 0, stored as y=left, x=right.
      env->diffs.push_back({pair.right, pair.left, *range, std::string()});
    }
    return;
  }
  // Opaque conjunct (OR, IN-list, arbitrary arithmetic): dropped. The
  // abstract region only grows, which is sound for both verdicts.
}

void ImplicationEngine::Close(SymbolicEnv* env) const {
  auto interval_of = [&](ColumnIdx col) -> Interval {
    auto it = env->intervals.find(col);
    return it == env->intervals.end() ? Interval::Top() : it->second;
  };
  auto merge_sources = [&](ColumnIdx into, ColumnIdx from,
                           const std::string& link_source) {
    std::set<std::string>& dst = env->interval_sources[into];
    auto it = env->interval_sources.find(from);
    if (it != env->interval_sources.end()) {
      dst.insert(it->second.begin(), it->second.end());
    }
    if (!link_source.empty()) dst.insert(link_source);
  };
  auto tighten = [&](ColumnIdx col, const Interval& by, ColumnIdx from,
                     const std::string& link_source) -> bool {
    if (by.IsTop()) return false;
    Interval& slot = env->intervals[col];
    Interval before = slot;
    slot.Intersect(by);
    if (slot.SameAs(before)) return false;
    merge_sources(col, from, link_source);
    // An emptied interval says "no non-NULL value is possible". That is a
    // contradiction only when the column cannot hide behind NULL; facts
    // are null-compliant, so a nullable column with a void value region
    // simply means "provably NULL on every admitted row".
    if (slot.empty && MustBeNonNull(*env, col)) {
      env->unsat = true;
      auto it = env->interval_sources.find(col);
      if (it != env->interval_sources.end()) {
        env->unsat_sources.insert(it->second.begin(), it->second.end());
      }
    }
    return true;
  };

  for (int pass = 0; pass < kMaxClosurePasses && !env->unsat; ++pass) {
    bool changed = false;
    for (const SymbolicEnv::DiffBound& d : env->diffs) {
      // (y - x) ∈ range, valid where both are non-NULL. Narrowing y's
      // value-when-non-NULL interval through x requires x provably
      // non-NULL on the region (and vice versa).
      if (env->known_null.count(d.x) || env->known_null.count(d.y)) continue;
      if (ColumnUsable(*env, d.x)) {
        changed |= tighten(d.y, interval_of(d.x).Plus(d.range), d.x,
                           d.source);
      }
      if (env->unsat) break;
      if (ColumnUsable(*env, d.y)) {
        changed |= tighten(d.x, interval_of(d.y).Minus(d.range), d.y,
                           d.source);
      }
      if (env->unsat) break;
    }
    for (const SymbolicEnv::Band& b : env->bands) {
      if (env->unsat) break;
      if (env->known_null.count(b.a) || env->known_null.count(b.b)) continue;
      const Interval eps_band = Interval::Range(-b.eps, b.eps);
      if (ColumnUsable(*env, b.b)) {
        // a ∈ k·b + c ± eps.
        changed |= tighten(
            b.a, interval_of(b.b).ScaledBy(b.k, b.c).Plus(eps_band), b.b,
            b.source);
      }
      if (env->unsat) break;
      if (b.k != 0.0 && ColumnUsable(*env, b.a)) {
        // b ∈ (a - c ± eps) / k.
        changed |= tighten(
            b.b,
            interval_of(b.a).Plus(eps_band).ScaledBy(1.0 / b.k, -b.c / b.k),
            b.a, b.source);
      }
      if (env->unsat) break;
    }
    if (!changed) break;
  }

  if (env->unsat) return;

  // `col <> v` against a pinned point; `col IS NULL` against proven
  // non-NULL.
  for (const auto& ne : env->not_equals) {
    auto it = env->intervals.find(ne.first);
    if (it == env->intervals.end()) continue;
    double point = 0.0;
    if (NumericNonNull(ne.second) && it->second.IsPoint(&point) &&
        point == ne.second.NumericValue()) {
      env->unsat = true;
    } else if (it->second.str_equal.has_value() &&
               StringNonNull(ne.second) &&
               it->second.str_equal->GroupEquals(ne.second)) {
      env->unsat = true;
    }
    if (env->unsat) {
      auto src = env->interval_sources.find(ne.first);
      if (src != env->interval_sources.end()) {
        env->unsat_sources.insert(src->second.begin(), src->second.end());
      }
      return;
    }
  }
  for (ColumnIdx col : env->known_null) {
    const bool schema_non_null = schema_ != nullptr &&
                                 col < schema_->NumColumns() &&
                                 !schema_->Column(col).nullable;
    if (env->non_null.count(col) != 0 || schema_non_null) {
      env->unsat = true;
      return;
    }
  }
}

SymbolicEnv ImplicationEngine::MakeEnv(
    const std::vector<const Expr*>& conjuncts) const {
  SymbolicEnv env;
  // Seed the fact base. Interval facts speak about values-when-non-NULL,
  // which is exactly the env's interval semantics, so they apply
  // unconditionally; diffs and bands participate via closure (guarded by
  // non-NULL knowledge).
  for (const auto& fact : facts_.intervals) {
    Interval& slot = env.intervals[fact.column];
    Interval before = slot;
    slot.Intersect(fact.interval);
    if (!slot.SameAs(before)) {
      env.interval_sources[fact.column].insert(fact.source);
    }
  }
  for (const auto& fact : facts_.diffs) {
    env.diffs.push_back({fact.x, fact.y, fact.range, fact.source});
  }
  for (const auto& fact : facts_.bands) {
    env.bands.push_back(
        {fact.a, fact.b, fact.k, fact.c, fact.eps, fact.source});
  }
  for (const Expr* conjunct : conjuncts) {
    ApplyConjunct(*conjunct, &env);
    if (env.unsat) break;
  }
  // Seeded interval facts can already be mutually empty (a contradictory
  // catalog) — surface that before closure, but only where NULL cannot
  // rescue the row (facts are null-compliant).
  for (const auto& entry : env.intervals) {
    if (entry.second.empty && MustBeNonNull(env, entry.first)) {
      env.unsat = true;
      auto it = env.interval_sources.find(entry.first);
      if (it != env.interval_sources.end()) {
        env.unsat_sources.insert(it->second.begin(), it->second.end());
      }
    }
  }
  if (!env.unsat) Close(&env);
  return env;
}

Interval ImplicationEngine::DiffIntervalFor(
    const SymbolicEnv& env, ColumnIdx minuend, ColumnIdx subtrahend,
    std::set<std::string>* used) const {
  Interval out = Interval::Top();
  for (const SymbolicEnv::DiffBound& d : env.diffs) {
    if (d.x == subtrahend && d.y == minuend) {
      out.Intersect(d.range);
      if (used != nullptr && !d.source.empty()) used->insert(d.source);
    } else if (d.x == minuend && d.y == subtrahend) {
      out.Intersect(d.range.Negated());
      if (used != nullptr && !d.source.empty()) used->insert(d.source);
    }
  }
  for (const SymbolicEnv::Band& b : env.bands) {
    if (b.k != 1.0) continue;
    // a - b ∈ [c - eps, c + eps].
    if (b.a == minuend && b.b == subtrahend) {
      out.Intersect(Interval::Range(b.c - b.eps, b.c + b.eps));
      if (used != nullptr && !b.source.empty()) used->insert(b.source);
    } else if (b.a == subtrahend && b.b == minuend) {
      out.Intersect(Interval::Range(-b.c - b.eps, -b.c + b.eps));
      if (used != nullptr && !b.source.empty()) used->insert(b.source);
    }
  }
  auto mi = env.intervals.find(minuend);
  auto si = env.intervals.find(subtrahend);
  if (mi != env.intervals.end() && si != env.intervals.end()) {
    Interval arithmetic = mi->second.Minus(si->second);
    if (!arithmetic.IsTop()) {
      out.Intersect(arithmetic);
      if (used != nullptr) {
        auto ms = env.interval_sources.find(minuend);
        if (ms != env.interval_sources.end()) {
          used->insert(ms->second.begin(), ms->second.end());
        }
        auto ss = env.interval_sources.find(subtrahend);
        if (ss != env.interval_sources.end()) {
          used->insert(ss->second.begin(), ss->second.end());
        }
      }
    }
  }
  return out;
}

bool ImplicationEngine::EntailsSimple(const SymbolicEnv& env,
                                      const SimplePredicate& sp,
                                      std::set<std::string>* used) const {
  if (!ColumnUsable(env, sp.column)) return false;
  if (sp.constant.is_null()) return false;  // Never TRUE.
  auto it = env.intervals.find(sp.column);
  const Interval have =
      it == env.intervals.end() ? Interval::Top() : it->second;
  // An empty interval means the value is provably NULL (e.g. a literal
  // NULL assignment in impact analysis): no comparison is ever TRUE.
  if (have.empty) return false;
  auto note_used = [&]() {
    if (used == nullptr) return;
    auto src = env.interval_sources.find(sp.column);
    if (src != env.interval_sources.end()) {
      used->insert(src->second.begin(), src->second.end());
    }
  };
  if (StringNonNull(sp.constant)) {
    if (have.str_equal.has_value()) {
      const bool same = have.str_equal->GroupEquals(sp.constant);
      if (sp.op == CompareOp::kEq && same) {
        note_used();
        return true;
      }
      if (sp.op == CompareOp::kNe && !same) {
        note_used();
        return true;
      }
    }
    if (sp.op == CompareOp::kNe) {
      for (const auto& ne : env.not_equals) {
        if (ne.first == sp.column && StringNonNull(ne.second) &&
            ne.second.GroupEquals(sp.constant)) {
          return true;
        }
      }
    }
    return false;
  }
  if (!NumericNonNull(sp.constant)) return false;
  const double c = sp.constant.NumericValue();
  if (have.str_equal.has_value()) return false;  // Mixed-type comparison.
  if (sp.op == CompareOp::kNe) {
    if (!have.ContainsPoint(c) && !have.IsTop()) {
      note_used();
      return true;
    }
    for (const auto& ne : env.not_equals) {
      if (ne.first == sp.column && NumericNonNull(ne.second) &&
          ne.second.NumericValue() == c) {
        return true;
      }
    }
    return false;
  }
  auto want = IntervalForComparison(sp.op, sp.constant);
  if (!want.has_value()) return false;
  if (want->Contains(have) && !have.IsTop()) {
    note_used();
    return true;
  }
  return false;
}

bool ImplicationEngine::EntailsConjunct(const SymbolicEnv& env, const Expr& e,
                                        std::set<std::string>* used) const {
  switch (e.kind()) {
    case ExprKind::kLiteral: {
      const Value& v = static_cast<const LiteralExpr&>(e).value();
      return !v.is_null() && v.AsBool();
    }
    case ExprKind::kIsNull: {
      const auto& isnull = static_cast<const IsNullExpr&>(e);
      if (isnull.input()->kind() != ExprKind::kColumnRef) return false;
      const ColumnIdx col =
          static_cast<const ColumnRefExpr&>(*isnull.input()).index();
      if (isnull.negated()) return ColumnUsable(env, col);
      return env.known_null.count(col) != 0;
    }
    case ExprKind::kAnd: {
      const auto& logical = static_cast<const LogicalExpr&>(e);
      for (const ExprPtr& child : logical.children()) {
        if (!EntailsConjunct(env, *child, used)) return false;
      }
      return true;
    }
    case ExprKind::kOr: {
      const auto& logical = static_cast<const LogicalExpr&>(e);
      for (const ExprPtr& child : logical.children()) {
        std::set<std::string> branch_used;
        if (EntailsConjunct(env, *child, &branch_used)) {
          if (used != nullptr) {
            used->insert(branch_used.begin(), branch_used.end());
          }
          return true;
        }
      }
      return false;
    }
    case ExprKind::kNot: {
      const Expr* child = static_cast<const NotExpr&>(e).child();
      SimplePredicate sp;
      if (!MatchSimplePredicate(*child, &sp)) return false;
      switch (sp.op) {
        case CompareOp::kEq: sp.op = CompareOp::kNe; break;
        case CompareOp::kNe: sp.op = CompareOp::kEq; break;
        case CompareOp::kLt: sp.op = CompareOp::kGe; break;
        case CompareOp::kLe: sp.op = CompareOp::kGt; break;
        case CompareOp::kGt: sp.op = CompareOp::kLe; break;
        case CompareOp::kGe: sp.op = CompareOp::kLt; break;
      }
      return EntailsSimple(env, sp, used);
    }
    default:
      break;
  }

  std::vector<SimplePredicate> simples;
  if (ExpandSimplePredicates(e, &simples)) {
    for (const SimplePredicate& sp : simples) {
      if (!EntailsSimple(env, sp, used)) return false;
    }
    return !simples.empty();
  }
  ColumnDiffPredicate diff;
  if (MatchColumnDiffPredicate(e, &diff)) {
    if (!ColumnUsable(env, diff.minuend) ||
        !ColumnUsable(env, diff.subtrahend)) {
      return false;
    }
    std::set<std::string> local_used;
    const Interval have =
        DiffIntervalFor(env, diff.minuend, diff.subtrahend, &local_used);
    if (have.IsTop() || have.empty) return false;
    if (diff.op == CompareOp::kNe) {
      if (!NumericNonNull(diff.constant)) return false;
      if (!have.empty && !have.ContainsPoint(diff.constant.NumericValue())) {
        if (used != nullptr) used->insert(local_used.begin(), local_used.end());
        return true;
      }
      return false;
    }
    auto want = IntervalForComparison(diff.op, diff.constant);
    if (want.has_value() && want->Contains(have)) {
      if (used != nullptr) used->insert(local_used.begin(), local_used.end());
      return true;
    }
    return false;
  }
  ColumnPairPredicate pair;
  if (MatchColumnPair(e, &pair)) {
    if (!ColumnUsable(env, pair.left) || !ColumnUsable(env, pair.right)) {
      return false;
    }
    std::set<std::string> local_used;
    const Interval have =
        DiffIntervalFor(env, pair.left, pair.right, &local_used);
    if (have.IsTop() || have.empty) return false;
    auto accept = [&]() {
      if (used != nullptr) used->insert(local_used.begin(), local_used.end());
      return true;
    };
    switch (pair.op) {
      case CompareOp::kEq: {
        double p = 0.0;
        return have.IsPoint(&p) && p == 0.0 && accept();
      }
      case CompareOp::kNe:
        return !have.empty && !have.ContainsPoint(0.0) && accept();
      case CompareOp::kLt:
        return Interval::AtMost(0.0, true).Contains(have) && accept();
      case CompareOp::kLe:
        return Interval::AtMost(0.0, false).Contains(have) && accept();
      case CompareOp::kGt:
        return Interval::AtLeast(0.0, true).Contains(have) && accept();
      case CompareOp::kGe:
        return Interval::AtLeast(0.0, false).Contains(have) && accept();
    }
    return false;
  }
  if (e.kind() == ExprKind::kInList) {
    const auto& in = static_cast<const InListExpr&>(e);
    if (in.input()->kind() != ExprKind::kColumnRef) return false;
    const ColumnIdx col =
        static_cast<const ColumnRefExpr&>(*in.input()).index();
    if (!ColumnUsable(env, col)) return false;
    auto it = env.intervals.find(col);
    if (it == env.intervals.end()) return false;
    double point = 0.0;
    const bool have_point = it->second.IsPoint(&point);
    const bool have_pin = it->second.str_equal.has_value();
    if (!have_point && !have_pin) return false;
    for (const ExprPtr& item : in.list()) {
      Value v;
      if (!TryConstantFold(*item, &v) || v.is_null()) continue;
      const bool hit =
          have_point ? (NumericNonNull(v) && v.NumericValue() == point)
                     : (StringNonNull(v) &&
                        it->second.str_equal->GroupEquals(v));
      if (hit) {
        if (used != nullptr) {
          auto src = env.interval_sources.find(col);
          if (src != env.interval_sources.end()) {
            used->insert(src->second.begin(), src->second.end());
          }
        }
        return true;
      }
    }
    return false;
  }
  return false;
}

bool ImplicationEngine::EnvEntails(const SymbolicEnv& env, const Expr& q,
                                   std::set<std::string>* used_sources) const {
  if (env.unsat) {
    if (used_sources != nullptr) {
      used_sources->insert(env.unsat_sources.begin(),
                           env.unsat_sources.end());
    }
    return true;  // Vacuous: the premise admits no row.
  }
  std::vector<const Expr*> conjuncts;
  CollectConjuncts(q, &conjuncts);
  for (const Expr* conjunct : conjuncts) {
    if (!EntailsConjunct(env, *conjunct, used_sources)) return false;
  }
  return true;
}

bool ImplicationEngine::Unsatisfiable(
    const std::vector<const Expr*>& conjuncts,
    std::set<std::string>* used_sources) const {
  SymbolicEnv env = MakeEnv(conjuncts);
  if (env.unsat && used_sources != nullptr) {
    used_sources->insert(env.unsat_sources.begin(), env.unsat_sources.end());
  }
  return env.unsat;
}

ImplicationVerdict ImplicationEngine::Check(
    const Expr& p, const Expr& q,
    std::set<std::string>* used_sources) const {
  std::vector<const Expr*> p_conjuncts;
  CollectConjuncts(p, &p_conjuncts);
  SymbolicEnv p_env = MakeEnv(p_conjuncts);
  if (EnvEntails(p_env, q, used_sources)) return ImplicationVerdict::kImplies;

  std::vector<const Expr*> pq_conjuncts = p_conjuncts;
  CollectConjuncts(q, &pq_conjuncts);
  if (Unsatisfiable(pq_conjuncts, used_sources)) {
    return ImplicationVerdict::kContradicts;
  }
  return ImplicationVerdict::kUnknown;
}

bool ImplicationEngine::FactsImply(
    const Expr& q, std::set<std::string>* used_sources) const {
  SymbolicEnv env = MakeEnv({});
  return EnvEntails(env, q, used_sources);
}

bool ImplicationEngine::FactsUnsatisfiable(
    std::set<std::string>* used_sources) const {
  return Unsatisfiable({}, used_sources);
}

}  // namespace softdb
