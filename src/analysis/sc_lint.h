#ifndef SOFTDB_ANALYSIS_SC_LINT_H_
#define SOFTDB_ANALYSIS_SC_LINT_H_

#include <cstddef>
#include <string>
#include <vector>

#include "common/result.h"

namespace softdb {

/// Knobs for the SC-catalog linter.
struct LintOptions {
  /// SCs whose declared confidence falls below this are flagged stale.
  double currency_threshold = 0.5;
};

/// One linter finding. `check` is a stable kebab-case id CI can filter on;
/// every id is registered in analysis/rule_registry.h, which fixes its
/// default severity and its SARIF identity.
struct LintFinding {
  std::string check;     // "domain-check-contradiction", "dead-sc", ...
  std::string severity;  // "error" | "warning" | "note"
  std::string subject;   // The SC / constraint / table / statement concerned.
  std::string message;

  std::string ToString() const {
    return severity + ": [" + check + "] " + subject + ": " + message;
  }
};

/// Everything one lint (or analyzer) run produced.
struct LintReport {
  /// SARIF driver name; softdb_analyze reuses this report type with its
  /// own tool id so both emit registry-stable rule tables.
  std::string tool = "softdb_lint";
  std::vector<LintFinding> findings;

  std::size_t errors() const;
  std::size_t warnings() const;
  std::size_t notes() const;
  /// Human-readable listing, one finding per line plus a summary line.
  std::string ToText() const;
  /// JSON object in the same style as `bench --json` output (2-space
  /// indent, escaped strings): tool, errors, warnings, notes, findings[].
  std::string ToJson() const;
  /// SARIF 2.1.0 document suitable for GitHub code-scanning upload. The
  /// driver carries the tool's *full* registered rule table (stable ids,
  /// see analysis/rule_registry.h), not just the rules that fired.
  /// Findings carry no source positions, so every result is anchored at
  /// line 1 of `artifact_uri` (the catalog file as passed to the CLI).
  std::string ToSarif(const std::string& artifact_uri) const;
};

/// Statically lints an SC catalog against an optional workload, without
/// executing any workload query.
///
/// `catalog_script` is a ';'-separated script mixing regular DDL/DML (used
/// to materialize schemas, integrity constraints and sample data) with
/// soft-constraint directives of the form:
///
///   SOFT CONSTRAINT <name> DOMAIN ON t(col) MIN <v> MAX <v>
///   SOFT CONSTRAINT <name> OFFSET ON t(x, y) MIN <i> MAX <i>
///   SOFT CONSTRAINT <name> LINEAR ON t(a, b) K <v> C <v> EPSILON <v>
///   SOFT CONSTRAINT <name> INCLUSION ON child(c1, ...) REFERENCES p(p1, ...)
///   SOFT CONSTRAINT <name> FD ON t(d1, ...) DETERMINES (e1, ...)
///   SOFT CONSTRAINT <name> PREDICATE ON t CHECK (<expr>)
///
/// each optionally suffixed with `CONFIDENCE <v>` (default 1.0 = absolute)
/// and/or `STATE <ACTIVE|VIOLATED|REPAIR_QUEUED|QUARANTINED|DROPPED>`
/// (default ACTIVE; catalog dumps carry the lifecycle state so the linter
/// can audit it). `--` starts a line comment.
///
/// Checks: contradictory SCs (domain vs CHECK constraint, disjoint domain
/// pairs, inclusion SCs cyclic with referential ICs, linear SCs with
/// negative/vacuous ε), stale confidence below the threshold, lifecycle
/// hygiene (repair-queued SCs warn, quarantined SCs error), and — when
/// `workload_sqls` is non-empty — dead catalog entries no workload query
/// can exploit (queries are parsed and bound through the real SQL stack,
/// never executed; a statement that fails to parse or bind becomes a
/// `workload-unparseable-statement` warning rather than failing the lint).
Result<LintReport> LintCatalog(const std::string& catalog_script,
                               const std::vector<std::string>& workload_sqls,
                               const LintOptions& options = {});

/// Statically audits a WAL directory (the `wal.<seq>.log` segments a
/// WAL-enabled engine writes, see DESIGN.md §14) for SC lifecycle records
/// that recovery would have to repair: an arm transition into ACTIVE whose
/// commit record never reached the log is a `wal-dangling-transition`
/// error — the maintenance pass died mid-arm (or the commit was torn off
/// the tail), and any engine recovering from this log will disarm the SC
/// back into the repair queue. Torn tails are tolerated exactly as
/// recovery tolerates them; a missing directory or one with no segments is
/// NotFound, and corrupt frames surface the underlying DataLoss.
Result<LintReport> LintWal(const std::string& wal_dir);

/// Splits a script on top-level ';' (quote-aware) after stripping `--`
/// comments. Exposed for the CLI's workload loader.
std::vector<std::string> SplitStatements(const std::string& script);

// ------------------------------------------------------------- CLI glue
// Shared by tools/softdb_lint.cc and tools/softdb_analyze.cc so the two
// front-ends cannot drift in how they load scripts or map findings to
// exit codes.

/// Reads a whole file into `*out`; false when it cannot be opened.
bool ReadFileToString(const std::string& path, std::string* out);

/// Loads every workload file and splits it into statements. On failure the
/// status message names the unreadable path.
Result<std::vector<std::string>> LoadWorkloadFiles(
    const std::vector<std::string>& paths);

/// `--fail-on` policy: which finding severities make the process exit
/// non-zero. kAny (the default) fails on any finding, including notes.
enum class FailOn { kAny, kWarning, kError };

/// Parses "warning" / "error" (the accepted `--fail-on` values).
bool ParseFailOn(const std::string& text, FailOn* out);

/// Exit code under `policy`: 1 when findings at or above the threshold
/// severity exist, 0 otherwise.
int ReportExitCode(std::size_t errors, std::size_t warnings,
                   std::size_t notes, FailOn policy);

class SoftDb;

/// Loads a `.sdl` catalog script into `db`: DDL/DML statements execute
/// through the engine, `SOFT CONSTRAINT` directives register SCs without
/// verification. Shared by LintCatalog and the workload analyzer.
Status LoadCatalogScript(SoftDb* db, const std::string& catalog_script);

}  // namespace softdb

#endif  // SOFTDB_ANALYSIS_SC_LINT_H_
