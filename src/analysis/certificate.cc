#include "analysis/certificate.h"

#include <algorithm>
#include <cmath>
#include <map>

#include "common/str_util.h"
#include "constraints/ic_registry.h"
#include "constraints/inclusion_sc.h"
#include "constraints/sc_registry.h"
#include "constraints/zone_map_sc.h"
#include "storage/catalog.h"
#include "storage/table.h"

namespace softdb {

namespace {

bool NumericNonNull(const Value& v) {
  return !v.is_null() && IsNumericType(v.type());
}

bool StringNonNull(const Value& v) {
  return !v.is_null() && v.type() == TypeId::kString;
}

CertificateCheckResult Ok() { return CertificateCheckResult{}; }

CertificateCheckResult Stale(std::string message) {
  return {CertificateVerdict::kStale, std::move(message)};
}

CertificateCheckResult Invalid(std::string message) {
  return {CertificateVerdict::kInvalid, std::move(message)};
}

// ---------------------------------------------------------------------------
// The trusted entailment core.
//
// A deliberately small re-implementation of the interval/diff/band closure:
// the checker must not *call* ImplicationEngine (a closure bug would then
// certify its own wrong conclusion), so the propagation and entailment
// rules are re-derived here from the fact semantics in implication.h:
//   interval fact   col ∈ I                (when col non-NULL)
//   diff fact       (y − x) ∈ R            (when both non-NULL)
//   band fact       |a − (k·b + c)| ≤ eps  (when both non-NULL)
// Shared with the rewriter are only extraction-layer pieces (Interval
// arithmetic, IntervalForComparison, the predicate matchers), whose outputs
// the premise validation cross-checks against the live registries anyway.
// ---------------------------------------------------------------------------

constexpr int kCorePasses = 6;

struct CoreEnv {
  struct Diff {
    ColumnIdx x = 0;
    ColumnIdx y = 0;
    Interval range;  // (y - x) ∈ range.
  };
  struct Band {
    ColumnIdx a = 0;
    ColumnIdx b = 0;
    double k = 0.0;
    double c = 0.0;
    double eps = 0.0;
  };

  const Schema* schema = nullptr;
  /// Twin certificates assert estimation-only conclusions over the rows
  /// where the involved columns are non-NULL; every other kind must prove
  /// NULL-compliance.
  bool assume_non_null = false;

  std::map<ColumnIdx, Interval> intervals;
  std::vector<Diff> diffs;
  std::vector<Band> bands;
  std::set<ColumnIdx> non_null;
  std::set<ColumnIdx> known_null;
  std::vector<std::pair<ColumnIdx, Value>> not_equals;
  bool unsat = false;
};

bool CoreSchemaNonNull(const CoreEnv& env, ColumnIdx col) {
  return env.schema != nullptr && col < env.schema->NumColumns() &&
         !env.schema->Column(col).nullable;
}

/// `col` cannot be NULL on any admitted row.
bool CoreMustBeNonNull(const CoreEnv& env, ColumnIdx col) {
  if (env.assume_non_null) return true;
  if (env.non_null.count(col) != 0) return true;
  return CoreSchemaNonNull(env, col);
}

/// `col`'s value interval may be consulted for an entailment: the column is
/// provably non-NULL and not pinned to NULL.
bool CoreUsable(const CoreEnv& env, ColumnIdx col) {
  if (env.known_null.count(col) != 0) return false;
  return CoreMustBeNonNull(env, col);
}

Interval CoreIntervalOf(const CoreEnv& env, ColumnIdx col) {
  auto it = env.intervals.find(col);
  return it == env.intervals.end() ? Interval::Top() : it->second;
}

void CoreApplySimple(const SimplePredicate& sp, CoreEnv* env) {
  // A TRUE comparison conjunct implies the operand is non-NULL.
  env->non_null.insert(sp.column);
  if (sp.constant.is_null()) {
    env->unsat = true;  // `col op NULL` is never TRUE.
    return;
  }
  Interval& slot = env->intervals[sp.column];
  auto interval = IntervalForComparison(sp.op, sp.constant);
  if (interval.has_value()) {
    slot.Intersect(*interval);
  } else if (sp.op == CompareOp::kEq && StringNonNull(sp.constant)) {
    slot.Intersect(Interval::StringPin(sp.constant));
  } else if (sp.op == CompareOp::kNe) {
    env->not_equals.emplace_back(sp.column, sp.constant);
  }
  if (slot.empty) env->unsat = true;
}

CompareOp NegatedOp(CompareOp op) {
  switch (op) {
    case CompareOp::kEq: return CompareOp::kNe;
    case CompareOp::kNe: return CompareOp::kEq;
    case CompareOp::kLt: return CompareOp::kGe;
    case CompareOp::kLe: return CompareOp::kGt;
    case CompareOp::kGt: return CompareOp::kLe;
    case CompareOp::kGe: return CompareOp::kLt;
  }
  return op;
}

void CoreApplyConjunct(const Expr& e, CoreEnv* env) {
  switch (e.kind()) {
    case ExprKind::kLiteral: {
      const Value& v = static_cast<const LiteralExpr&>(e).value();
      if (v.is_null() || !v.AsBool()) env->unsat = true;
      return;
    }
    case ExprKind::kIsNull: {
      const auto& isnull = static_cast<const IsNullExpr&>(e);
      if (isnull.input()->kind() != ExprKind::kColumnRef) return;
      const ColumnIdx col =
          static_cast<const ColumnRefExpr&>(*isnull.input()).index();
      if (isnull.negated()) {
        env->non_null.insert(col);
      } else {
        env->known_null.insert(col);
      }
      return;
    }
    case ExprKind::kAnd: {
      const auto& logical = static_cast<const LogicalExpr&>(e);
      for (const ExprPtr& child : logical.children()) {
        CoreApplyConjunct(*child, env);
      }
      return;
    }
    case ExprKind::kNot: {
      const Expr* child = static_cast<const NotExpr&>(e).child();
      SimplePredicate sp;
      if (MatchSimplePredicate(*child, &sp)) {
        sp.op = NegatedOp(sp.op);
        CoreApplySimple(sp, env);
      }
      return;
    }
    default:
      break;
  }
  std::vector<SimplePredicate> simples;
  if (ExpandSimplePredicates(e, &simples)) {
    for (const SimplePredicate& sp : simples) CoreApplySimple(sp, env);
    return;
  }
  ColumnDiffPredicate diff;
  if (MatchColumnDiffPredicate(e, &diff)) {
    env->non_null.insert(diff.minuend);
    env->non_null.insert(diff.subtrahend);
    auto range = IntervalForComparison(diff.op, diff.constant);
    if (range.has_value()) {
      env->diffs.push_back({diff.subtrahend, diff.minuend, *range});
    }
    return;
  }
  ColumnPairPredicate pair;
  if (MatchColumnPair(e, &pair)) {
    env->non_null.insert(pair.left);
    env->non_null.insert(pair.right);
    auto range = IntervalForComparison(pair.op, Value::Int64(0));
    if (range.has_value()) {
      env->diffs.push_back({pair.right, pair.left, *range});
    }
    return;
  }
  // Opaque conjunct: dropped. The admitted region only grows, so anything
  // the core still proves also holds with the conjunct in place.
}

void CoreClose(CoreEnv* env) {
  auto tighten = [&](ColumnIdx col, const Interval& by) -> bool {
    if (by.IsTop()) return false;
    Interval& slot = env->intervals[col];
    const Interval before = slot;
    slot.Intersect(by);
    if (slot.SameAs(before)) return false;
    // An emptied value region contradicts only where NULL cannot rescue
    // the row: facts are null-compliant.
    if (slot.empty && CoreMustBeNonNull(*env, col)) env->unsat = true;
    return true;
  };

  for (int pass = 0; pass < kCorePasses && !env->unsat; ++pass) {
    bool changed = false;
    for (const CoreEnv::Diff& d : env->diffs) {
      if (env->known_null.count(d.x) || env->known_null.count(d.y)) continue;
      if (CoreUsable(*env, d.x)) {
        changed |= tighten(d.y, CoreIntervalOf(*env, d.x).Plus(d.range));
      }
      if (env->unsat) break;
      if (CoreUsable(*env, d.y)) {
        changed |= tighten(d.x, CoreIntervalOf(*env, d.y).Minus(d.range));
      }
      if (env->unsat) break;
    }
    for (const CoreEnv::Band& b : env->bands) {
      if (env->unsat) break;
      if (env->known_null.count(b.a) || env->known_null.count(b.b)) continue;
      const Interval eps_band = Interval::Range(-b.eps, b.eps);
      if (CoreUsable(*env, b.b)) {
        changed |= tighten(
            b.a, CoreIntervalOf(*env, b.b).ScaledBy(b.k, b.c).Plus(eps_band));
      }
      if (env->unsat) break;
      if (b.k != 0.0 && CoreUsable(*env, b.a)) {
        changed |= tighten(b.b, CoreIntervalOf(*env, b.a)
                                    .Plus(eps_band)
                                    .ScaledBy(1.0 / b.k, -b.c / b.k));
      }
      if (env->unsat) break;
    }
    if (!changed) break;
  }
  if (env->unsat) return;

  for (const auto& ne : env->not_equals) {
    auto it = env->intervals.find(ne.first);
    if (it == env->intervals.end()) continue;
    double point = 0.0;
    if (NumericNonNull(ne.second) && it->second.IsPoint(&point) &&
        point == ne.second.NumericValue()) {
      env->unsat = true;
      return;
    }
    if (it->second.str_equal.has_value() && StringNonNull(ne.second) &&
        it->second.str_equal->GroupEquals(ne.second)) {
      env->unsat = true;
      return;
    }
  }
  for (ColumnIdx col : env->known_null) {
    if (env->non_null.count(col) != 0 || CoreSchemaNonNull(*env, col)) {
      env->unsat = true;
      return;
    }
  }
}

/// Builds the core environment: fact premises seeded first, then the
/// predicate premises applied as conjuncts, then the bounded closure.
CoreEnv CoreMakeEnv(const Schema* schema, bool assume_non_null,
                    const std::vector<CertificatePremise>& premises,
                    const std::vector<ExprPtr>& premise_exprs) {
  CoreEnv env;
  env.schema = schema;
  env.assume_non_null = assume_non_null;
  for (const CertificatePremise& p : premises) {
    switch (p.kind) {
      case CertificatePremise::Kind::kIntervalFact:
        env.intervals[p.column].Intersect(p.interval);
        break;
      case CertificatePremise::Kind::kDiffFact:
        env.diffs.push_back({p.x, p.y, p.interval});
        break;
      case CertificatePremise::Kind::kBandFact:
        env.bands.push_back({p.column, p.x, p.k, p.c, p.eps});
        break;
      default:
        break;  // Inclusion/unique/zone premises are not row facts.
    }
  }
  for (const ExprPtr& e : premise_exprs) {
    if (e != nullptr) CoreApplyConjunct(*e, &env);
    if (env.unsat) break;
  }
  for (const auto& entry : env.intervals) {
    if (entry.second.empty && CoreMustBeNonNull(env, entry.first)) {
      env.unsat = true;
    }
  }
  if (!env.unsat) CoreClose(&env);
  return env;
}

Interval CoreDiffInterval(const CoreEnv& env, ColumnIdx minuend,
                          ColumnIdx subtrahend) {
  Interval out = Interval::Top();
  for (const CoreEnv::Diff& d : env.diffs) {
    if (d.x == subtrahend && d.y == minuend) {
      out.Intersect(d.range);
    } else if (d.x == minuend && d.y == subtrahend) {
      out.Intersect(d.range.Negated());
    }
  }
  for (const CoreEnv::Band& b : env.bands) {
    if (b.k != 1.0) continue;  // a - b ∈ [c - eps, c + eps] only when k = 1.
    if (b.a == minuend && b.b == subtrahend) {
      out.Intersect(Interval::Range(b.c - b.eps, b.c + b.eps));
    } else if (b.a == subtrahend && b.b == minuend) {
      out.Intersect(Interval::Range(-b.c - b.eps, -b.c + b.eps));
    }
  }
  auto mi = env.intervals.find(minuend);
  auto si = env.intervals.find(subtrahend);
  if (mi != env.intervals.end() && si != env.intervals.end()) {
    out.Intersect(mi->second.Minus(si->second));
  }
  return out;
}

/// Shrinks `have` to the integer-attainable values it admits when `col` is
/// an integer-valued column. Needed for completeness, not soundness: the
/// binder coerces predicate constants to the column type by truncation
/// (`x >= -3.5` arrives as `x >= -3`), so the introduced conclusion can be
/// continuous-narrower than the premise interval while admitting exactly
/// the same column values.
Interval IntegerTighten(const CoreEnv& env, ColumnIdx col, Interval have) {
  if (env.schema == nullptr || col >= env.schema->NumColumns()) return have;
  const TypeId type = env.schema->Column(col).type;
  if (type == TypeId::kDouble || !IsNumericType(type)) return have;
  if (have.empty || have.str_equal.has_value()) return have;
  if (std::isfinite(have.lo)) {
    double lo = std::ceil(have.lo);
    if (have.lo_strict && lo == have.lo) lo += 1.0;
    have.lo = lo;
    have.lo_strict = false;
  }
  if (std::isfinite(have.hi)) {
    double hi = std::floor(have.hi);
    if (have.hi_strict && hi == have.hi) hi -= 1.0;
    have.hi = hi;
    have.hi_strict = false;
  }
  if (have.lo > have.hi) have.empty = true;
  return have;
}

bool CoreEntailsSimple(const CoreEnv& env, const SimplePredicate& sp) {
  if (!CoreUsable(env, sp.column)) return false;
  if (sp.constant.is_null()) return false;
  const Interval have = CoreIntervalOf(env, sp.column);
  if (have.empty) return false;
  if (StringNonNull(sp.constant)) {
    if (have.str_equal.has_value()) {
      const bool same = have.str_equal->GroupEquals(sp.constant);
      if (sp.op == CompareOp::kEq && same) return true;
      if (sp.op == CompareOp::kNe && !same) return true;
    }
    if (sp.op == CompareOp::kNe) {
      for (const auto& ne : env.not_equals) {
        if (ne.first == sp.column && StringNonNull(ne.second) &&
            ne.second.GroupEquals(sp.constant)) {
          return true;
        }
      }
    }
    return false;
  }
  if (!NumericNonNull(sp.constant)) return false;
  if (have.str_equal.has_value()) return false;
  const Interval tight = IntegerTighten(env, sp.column, have);
  if (tight.empty) return false;  // Vacuity is CoreMakeEnv's job, not ours.
  const double c = sp.constant.NumericValue();
  if (sp.op == CompareOp::kNe) {
    if (!tight.ContainsPoint(c) && !tight.IsTop()) return true;
    for (const auto& ne : env.not_equals) {
      if (ne.first == sp.column && NumericNonNull(ne.second) &&
          ne.second.NumericValue() == c) {
        return true;
      }
    }
    return false;
  }
  auto want = IntervalForComparison(sp.op, sp.constant);
  return want.has_value() && want->Contains(tight) && !tight.IsTop();
}

bool CoreEntailsConjunct(const CoreEnv& env, const Expr& e) {
  switch (e.kind()) {
    case ExprKind::kLiteral: {
      const Value& v = static_cast<const LiteralExpr&>(e).value();
      return !v.is_null() && v.AsBool();
    }
    case ExprKind::kIsNull: {
      const auto& isnull = static_cast<const IsNullExpr&>(e);
      if (isnull.input()->kind() != ExprKind::kColumnRef) return false;
      const ColumnIdx col =
          static_cast<const ColumnRefExpr&>(*isnull.input()).index();
      if (isnull.negated()) return CoreUsable(env, col);
      return env.known_null.count(col) != 0;
    }
    case ExprKind::kAnd: {
      const auto& logical = static_cast<const LogicalExpr&>(e);
      for (const ExprPtr& child : logical.children()) {
        if (!CoreEntailsConjunct(env, *child)) return false;
      }
      return true;
    }
    case ExprKind::kOr: {
      const auto& logical = static_cast<const LogicalExpr&>(e);
      for (const ExprPtr& child : logical.children()) {
        if (CoreEntailsConjunct(env, *child)) return true;
      }
      return false;
    }
    case ExprKind::kNot: {
      const Expr* child = static_cast<const NotExpr&>(e).child();
      SimplePredicate sp;
      if (!MatchSimplePredicate(*child, &sp)) return false;
      sp.op = NegatedOp(sp.op);
      return CoreEntailsSimple(env, sp);
    }
    default:
      break;
  }

  std::vector<SimplePredicate> simples;
  if (ExpandSimplePredicates(e, &simples)) {
    for (const SimplePredicate& sp : simples) {
      if (!CoreEntailsSimple(env, sp)) return false;
    }
    return !simples.empty();
  }
  ColumnDiffPredicate diff;
  if (MatchColumnDiffPredicate(e, &diff)) {
    if (!CoreUsable(env, diff.minuend) || !CoreUsable(env, diff.subtrahend)) {
      return false;
    }
    const Interval have = CoreDiffInterval(env, diff.minuend, diff.subtrahend);
    if (have.IsTop() || have.empty) return false;
    if (diff.op == CompareOp::kNe) {
      return NumericNonNull(diff.constant) &&
             !have.ContainsPoint(diff.constant.NumericValue());
    }
    auto want = IntervalForComparison(diff.op, diff.constant);
    return want.has_value() && want->Contains(have);
  }
  ColumnPairPredicate pair;
  if (MatchColumnPair(e, &pair)) {
    if (!CoreUsable(env, pair.left) || !CoreUsable(env, pair.right)) {
      return false;
    }
    const Interval have = CoreDiffInterval(env, pair.left, pair.right);
    if (have.IsTop() || have.empty) return false;
    double point = 0.0;
    switch (pair.op) {
      case CompareOp::kEq:
        return have.IsPoint(&point) && point == 0.0;
      case CompareOp::kNe:
        return !have.ContainsPoint(0.0);
      case CompareOp::kLt:
        return Interval::AtMost(0.0, true).Contains(have);
      case CompareOp::kLe:
        return Interval::AtMost(0.0, false).Contains(have);
      case CompareOp::kGt:
        return Interval::AtLeast(0.0, true).Contains(have);
      case CompareOp::kGe:
        return Interval::AtLeast(0.0, false).Contains(have);
    }
    return false;
  }
  if (e.kind() == ExprKind::kInList) {
    const auto& in = static_cast<const InListExpr&>(e);
    if (in.input()->kind() != ExprKind::kColumnRef) return false;
    const ColumnIdx col =
        static_cast<const ColumnRefExpr&>(*in.input()).index();
    if (!CoreUsable(env, col)) return false;
    const Interval have = CoreIntervalOf(env, col);
    double point = 0.0;
    const bool have_point = have.IsPoint(&point);
    const bool have_pin = have.str_equal.has_value();
    if (!have_point && !have_pin) return false;
    for (const ExprPtr& item : in.list()) {
      Value v;
      if (!TryConstantFold(*item, &v) || v.is_null()) continue;
      const bool hit =
          have_point ? (NumericNonNull(v) && v.NumericValue() == point)
                     : (StringNonNull(v) && have.str_equal->GroupEquals(v));
      if (hit) return true;
    }
    return false;
  }
  return false;
}

bool CoreEntails(const CoreEnv& env, const Expr& q) {
  if (env.unsat) return true;  // Vacuous: the premises admit no row.
  if (q.kind() == ExprKind::kAnd) {
    const auto& logical = static_cast<const LogicalExpr&>(q);
    for (const ExprPtr& child : logical.children()) {
      if (!CoreEntails(env, *child)) return false;
    }
    return true;
  }
  return CoreEntailsConjunct(env, q);
}

// ------------------------------------------------ premise cross-validation

/// Splits an inclusion-import composite source ("sc:a<-check:b") into its
/// "<-"-separated segments.
std::vector<std::string> SourceSegments(const std::string& source) {
  std::vector<std::string> segments;
  std::size_t pos = 0;
  while (pos <= source.size()) {
    const std::size_t arrow = source.find("<-", pos);
    if (arrow == std::string::npos) {
      segments.push_back(source.substr(pos));
      break;
    }
    segments.push_back(source.substr(pos, arrow - pos));
    pos = arrow + 2;
  }
  return segments;
}

}  // namespace

const char* CertificateKindName(CertificateKind kind) {
  switch (kind) {
    case CertificateKind::kImplicationPrune:
      return "implication-prune";
    case CertificateKind::kImplicationContradiction:
      return "implication-contradiction";
    case CertificateKind::kJoinElimination:
      return "join-elimination";
    case CertificateKind::kTwinSubstitution:
      return "twin-substitution";
    case CertificateKind::kPredicateIntroduction:
      return "predicate-introduction";
    case CertificateKind::kZoneMapSkip:
      return "zone-map-skip";
  }
  return "unknown";
}

const char* CertificateVerdictName(CertificateVerdict v) {
  switch (v) {
    case CertificateVerdict::kOk:
      return "ok";
    case CertificateVerdict::kStale:
      return "stale";
    case CertificateVerdict::kInvalid:
      return "invalid";
  }
  return "unknown";
}

RewriteCertificate RewriteCertificate::Clone() const {
  RewriteCertificate out;
  out.kind = kind;
  out.rule = rule;
  out.table = table;
  out.premises = premises;
  out.premise_exprs.reserve(premise_exprs.size());
  for (const ExprPtr& e : premise_exprs) {
    out.premise_exprs.push_back(e != nullptr ? e->Clone() : nullptr);
  }
  out.conclusion_expr =
      conclusion_expr != nullptr ? conclusion_expr->Clone() : nullptr;
  out.estimation_only = estimation_only;
  out.parent_table = parent_table;
  out.inclusion_source = inclusion_source;
  out.zm_column = zm_column;
  out.skipped_blocks = skipped_blocks;
  return out;
}

bool CertificateChecker::EpochsCurrent(const RewriteCertificate& cert) const {
  for (const CertificatePremise& p : cert.premises) {
    for (const auto& [name, epoch] : p.sc_epochs) {
      const SoftConstraint* sc = scs_ != nullptr ? scs_->Find(name) : nullptr;
      if (sc == nullptr || !sc->active() || sc->epoch() != epoch) {
        return false;
      }
    }
  }
  return true;
}

std::vector<std::string> RewriteCertificate::ScEpochStrings() const {
  std::set<std::string> seen;
  std::vector<std::string> out;
  for (const CertificatePremise& p : premises) {
    for (const auto& [name, epoch] : p.sc_epochs) {
      std::string entry = name + "@" + StrFormat("%llu",
          static_cast<unsigned long long>(epoch));
      if (seen.insert(entry).second) out.push_back(std::move(entry));
    }
  }
  return out;
}

void AppendScEpochs(const std::string& source, const ScRegistry* scs,
                    std::vector<std::pair<std::string, std::uint64_t>>* out) {
  for (const std::string& segment : SourceSegments(source)) {
    if (segment.rfind("sc:", 0) != 0) continue;
    const std::string name = segment.substr(3);
    std::uint64_t epoch = 0;
    if (scs != nullptr) {
      if (const SoftConstraint* sc = scs->Find(name)) epoch = sc->epoch();
    }
    out->emplace_back(name, epoch);
  }
}

void AppendFactPremises(const ImplicationFacts& facts,
                        const std::set<std::string>& used_sources,
                        const ScRegistry* scs,
                        std::vector<CertificatePremise>* out) {
  for (const auto& fact : facts.intervals) {
    if (used_sources.count(fact.source) == 0) continue;
    CertificatePremise p;
    p.kind = CertificatePremise::Kind::kIntervalFact;
    p.source = fact.source;
    p.column = fact.column;
    p.interval = fact.interval;
    AppendScEpochs(fact.source, scs, &p.sc_epochs);
    out->push_back(std::move(p));
  }
  for (const auto& fact : facts.diffs) {
    if (used_sources.count(fact.source) == 0) continue;
    CertificatePremise p;
    p.kind = CertificatePremise::Kind::kDiffFact;
    p.source = fact.source;
    p.x = fact.x;
    p.y = fact.y;
    p.interval = fact.range;
    AppendScEpochs(fact.source, scs, &p.sc_epochs);
    out->push_back(std::move(p));
  }
  for (const auto& fact : facts.bands) {
    if (used_sources.count(fact.source) == 0) continue;
    CertificatePremise p;
    p.kind = CertificatePremise::Kind::kBandFact;
    p.source = fact.source;
    p.column = fact.a;
    p.x = fact.b;
    p.k = fact.k;
    p.c = fact.c;
    p.eps = fact.eps;
    AppendScEpochs(fact.source, scs, &p.sc_epochs);
    out->push_back(std::move(p));
  }
}

// ---------------------------------------------------------------------------
// CertificateChecker.
// ---------------------------------------------------------------------------

CertificateCheckResult CertificateChecker::ValidateFactPremises(
    const RewriteCertificate& cert) const {
  const bool require_absolute =
      cert.kind != CertificateKind::kTwinSubstitution;

  bool any_fact = false;
  for (const CertificatePremise& p : cert.premises) {
    if (p.kind != CertificatePremise::Kind::kIntervalFact &&
        p.kind != CertificatePremise::Kind::kDiffFact &&
        p.kind != CertificatePremise::Kind::kBandFact) {
      continue;
    }
    any_fact = true;
    for (const auto& [name, epoch] : p.sc_epochs) {
      const SoftConstraint* sc =
          scs_ != nullptr ? scs_->Find(name) : nullptr;
      if (sc == nullptr || !sc->active()) {
        return Stale("premise SC '" + name + "' is gone or inactive");
      }
      if (sc->epoch() != epoch) {
        return Stale(StrFormat("premise SC '%s' moved: epoch %llu -> %llu",
                               name.c_str(),
                               static_cast<unsigned long long>(epoch),
                               static_cast<unsigned long long>(sc->epoch())));
      }
      if (require_absolute && !sc->IsAbsolute()) {
        return Stale("premise SC '" + name +
                     "' is no longer absolute (semantics-changing rewrite)");
      }
    }
  }
  if (!any_fact) return Ok();

  // Rebuild the fact base fresh and require every recorded fact to be no
  // stronger than what its source provides today. Twin premises come from
  // statistical SCs, so their rebuild must not filter on confidence.
  if (catalog_ == nullptr) return Invalid("checker has no catalog");
  ImplicationFactsOptions opts;
  opts.absolute_only = require_absolute;
  const ImplicationFacts fresh = BuildImplicationFacts(
      cert.table, *catalog_, ics_, scs_, /*stats=*/nullptr, opts);

  for (const CertificatePremise& p : cert.premises) {
    switch (p.kind) {
      case CertificatePremise::Kind::kIntervalFact: {
        bool matched = false;
        for (const auto& fact : fresh.intervals) {
          if (fact.source != p.source || fact.column != p.column) continue;
          matched = true;
          if (p.interval.Contains(fact.interval)) break;
          return Invalid("recorded interval " + p.interval.ToString() +
                         " for column " + StrFormat("%u", p.column) +
                         " is stronger than source '" + p.source +
                         "' provides (" + fact.interval.ToString() + ")");
        }
        if (!matched) {
          return Stale("source '" + p.source +
                       "' no longer provides an interval fact for column " +
                       StrFormat("%u", p.column));
        }
        break;
      }
      case CertificatePremise::Kind::kDiffFact: {
        bool matched = false;
        for (const auto& fact : fresh.diffs) {
          if (fact.source != p.source || fact.x != p.x || fact.y != p.y) {
            continue;
          }
          matched = true;
          if (p.interval.Contains(fact.range)) break;
          return Invalid("recorded diff bound " + p.interval.ToString() +
                         " is stronger than source '" + p.source +
                         "' provides (" + fact.range.ToString() + ")");
        }
        if (!matched) {
          return Stale("source '" + p.source +
                       "' no longer provides a diff fact");
        }
        break;
      }
      case CertificatePremise::Kind::kBandFact: {
        bool matched = false;
        for (const auto& fact : fresh.bands) {
          if (fact.source != p.source || fact.a != p.column ||
              fact.b != p.x) {
            continue;
          }
          matched = true;
          if (fact.k == p.k && fact.c == p.c && p.eps >= fact.eps) break;
          return Invalid("recorded band (k=" + StrFormat("%g", p.k) +
                         ", c=" + StrFormat("%g", p.c) +
                         ", eps=" + StrFormat("%g", p.eps) +
                         ") is stronger than source '" + p.source +
                         "' provides");
        }
        if (!matched) {
          return Stale("source '" + p.source +
                       "' no longer provides a band fact");
        }
        break;
      }
      default:
        break;
    }
  }
  return Ok();
}

CertificateCheckResult CertificateChecker::CheckEntailment(
    const RewriteCertificate& cert) const {
  const bool contradiction =
      cert.kind == CertificateKind::kImplicationContradiction;
  if (!contradiction && cert.conclusion_expr == nullptr) {
    return Invalid("certificate has no conclusion predicate");
  }
  if (cert.kind == CertificateKind::kTwinSubstitution &&
      !cert.estimation_only) {
    return Invalid("twin certificate concludes a filtering predicate");
  }
  if (cert.kind != CertificateKind::kTwinSubstitution &&
      cert.estimation_only) {
    return Invalid("non-twin certificate marked estimation-only");
  }

  CertificateCheckResult premises = ValidateFactPremises(cert);
  if (!premises.ok()) return premises;

  auto table_result = catalog_->GetTable(cert.table);
  if (!table_result.ok()) return Stale("table '" + cert.table + "' is gone");
  const Schema& schema = (*table_result)->schema();

  const CoreEnv env = CoreMakeEnv(
      &schema,
      /*assume_non_null=*/cert.kind == CertificateKind::kTwinSubstitution,
      cert.premises, cert.premise_exprs);

  if (contradiction) {
    if (env.unsat) return Ok();
    return Invalid("premises do not contradict: rows may satisfy the folded "
                   "scan's predicates");
  }
  if (!CoreEntails(env, *cert.conclusion_expr)) {
    return Invalid("premises do not entail conclusion '" +
                   cert.conclusion_expr->ToString() + "'");
  }
  return Ok();
}

CertificateCheckResult CertificateChecker::CheckJoinElimination(
    const RewriteCertificate& cert) const {
  const CertificatePremise* unique = nullptr;
  const CertificatePremise* inclusion = nullptr;
  for (const CertificatePremise& p : cert.premises) {
    if (p.kind == CertificatePremise::Kind::kUniqueKey) unique = &p;
    if (p.kind == CertificatePremise::Kind::kInclusion) inclusion = &p;
  }
  if (unique == nullptr) return Invalid("missing unique-key premise");
  if (inclusion == nullptr) return Invalid("missing inclusion premise");
  if (inclusion->columns.size() != inclusion->parent_columns.size() ||
      inclusion->columns.empty()) {
    return Invalid("malformed inclusion premise");
  }

  // Child key columns must be non-nullable: a NULL key row survives the
  // original join... not — it is dropped by the join, so elimination would
  // resurrect it. Re-read the live schema.
  auto child_result = catalog_->GetTable(cert.table);
  if (!child_result.ok()) return Stale("child table '" + cert.table +
                                       "' is gone");
  const Schema& child_schema = (*child_result)->schema();
  for (ColumnIdx col : inclusion->columns) {
    if (col >= child_schema.NumColumns()) {
      return Invalid("inclusion premise references a column out of range");
    }
    if (child_schema.Column(col).nullable) {
      return Invalid(StrFormat(
          "child key column %u is nullable: elimination does not preserve "
          "the row count", col));
    }
  }

  if (ics_ == nullptr ||
      !ics_->IsUniqueOver(cert.parent_table, unique->parent_columns)) {
    return Stale("parent key is no longer unique over the joined columns");
  }

  const std::string& source = cert.inclusion_source;
  if (source.rfind("fk:", 0) == 0) {
    const std::string name = source.substr(3);
    bool found = false;
    if (ics_ != nullptr) {
      for (const ForeignKeyConstraint* fk :
           ics_->ForeignKeysFrom(cert.table)) {
        if (fk->name() == name &&
            fk->parent_table() == cert.parent_table &&
            fk->columns() == inclusion->columns &&
            fk->parent_columns() == inclusion->parent_columns) {
          found = true;
        }
      }
    }
    if (!found) return Stale("foreign key '" + name + "' no longer matches");
    return Ok();
  }
  if (source.rfind("sc:", 0) == 0) {
    const std::string name = source.substr(3);
    const auto* inc = dynamic_cast<const InclusionSc*>(
        scs_ != nullptr ? scs_->Find(name) : nullptr);
    if (inc == nullptr || !inc->active() || !inc->IsAbsolute()) {
      return Stale("inclusion SC '" + name + "' is gone or demoted");
    }
    for (const auto& [sc_name, epoch] : inclusion->sc_epochs) {
      if (sc_name == name && inc->epoch() != epoch) {
        return Stale("inclusion SC '" + name + "' moved since planning");
      }
    }
    if (inc->child_table() != cert.table ||
        inc->parent_table() != cert.parent_table ||
        inc->child_columns() != inclusion->columns ||
        inc->parent_columns() != inclusion->parent_columns) {
      return Invalid("inclusion SC '" + name +
                     "' does not cover the joined columns");
    }
    return Ok();
  }
  return Invalid("unknown inclusion source '" + source + "'");
}

CertificateCheckResult CertificateChecker::CheckZoneMapSkip(
    const RewriteCertificate& cert) const {
  if (cert.skipped_blocks.empty()) {
    return Invalid("zone-map certificate with an empty skip set");
  }
  // Resolve the zone-map SC from the block premises.
  std::string zm_name;
  std::uint64_t zm_epoch = 0;
  std::map<std::uint64_t, const CertificatePremise*> block_premises;
  for (const CertificatePremise& p : cert.premises) {
    if (p.kind != CertificatePremise::Kind::kZoneBlock) continue;
    block_premises[p.block_index] = &p;
    for (const auto& [name, epoch] : p.sc_epochs) {
      zm_name = name;
      zm_epoch = epoch;
    }
  }
  if (zm_name.empty()) return Invalid("zone-map certificate names no SC");

  const auto* zm = dynamic_cast<const ZoneMapSc*>(
      scs_ != nullptr ? scs_->Find(zm_name) : nullptr);
  if (zm == nullptr || !zm->active() || !zm->IsAbsolute()) {
    return Stale("zone-map SC '" + zm_name + "' is gone or demoted");
  }
  if (zm->epoch() != zm_epoch) {
    return Stale("zone-map SC '" + zm_name + "' moved since planning");
  }
  if (zm->column() != cert.zm_column) {
    return Invalid("zone-map SC '" + zm_name +
                   "' covers a different column than the skip set claims");
  }

  // Re-derive the prune tests this scan's predicates impose on the mapped
  // column — independently of the planner's CollectPruneTests.
  std::vector<Interval> test_intervals;
  bool has_comparison = false;
  bool has_is_null = false;
  bool has_is_not_null = false;
  std::vector<SimplePredicate> sps;
  for (const ExprPtr& e : cert.premise_exprs) {
    if (e == nullptr) continue;
    sps.clear();
    if (ExpandSimplePredicates(*e, &sps)) {
      for (const SimplePredicate& sp : sps) {
        if (sp.column != cert.zm_column || sp.constant.is_null() ||
            !IsNumericType(sp.constant.type())) {
          continue;
        }
        has_comparison = true;
        if (auto iv = IntervalForComparison(sp.op, sp.constant)) {
          test_intervals.push_back(*iv);
        }
      }
      continue;
    }
    if (e->kind() == ExprKind::kIsNull) {
      const auto& isn = static_cast<const IsNullExpr&>(*e);
      if (isn.input()->kind() != ExprKind::kColumnRef) continue;
      const auto& ref = static_cast<const ColumnRefExpr&>(*isn.input());
      if (ref.bound() && ref.index() == cert.zm_column) {
        (isn.negated() ? has_is_not_null : has_is_null) = true;
      }
    }
  }
  if (!has_comparison && !has_is_null && !has_is_not_null) {
    return Invalid("scan predicates impose no test on the mapped column");
  }

  const std::vector<ZoneMapSc::BlockSma> blocks = zm->SnapshotBlocks();
  for (std::uint64_t b : cert.skipped_blocks) {
    auto it = block_premises.find(b);
    if (it == block_premises.end()) {
      return Invalid(StrFormat(
          "skipped block %llu has no recorded envelope premise",
          static_cast<unsigned long long>(b)));
    }
    if (b >= blocks.size()) {
      return Invalid(StrFormat("skipped block %llu is beyond the zone map "
                               "(%zu blocks)",
                               static_cast<unsigned long long>(b),
                               blocks.size()));
    }
    const CertificatePremise& rec = *it->second;
    const ZoneMapSc::BlockSma& fresh = blocks[b];
    // Folds only widen a block under the serialized DML/query model, so
    // the recorded envelope must fit inside today's: a recorded envelope
    // wider (or tighter on min/max in the narrowing direction) than the
    // live one was never produced by this zone map.
    if (rec.block_has_value) {
      if (!fresh.has_value) {
        return Invalid(StrFormat("block %llu recorded live values the zone "
                                 "map never saw",
                                 static_cast<unsigned long long>(b)));
      }
      if (rec.block_min < fresh.min || rec.block_max > fresh.max) {
        return Invalid(StrFormat(
            "block %llu recorded envelope [%g, %g] exceeds the live "
            "envelope [%g, %g]",
            static_cast<unsigned long long>(b), rec.block_min, rec.block_max,
            fresh.min, fresh.max));
      }
    }
    if (rec.block_null_count > fresh.null_count) {
      return Invalid(StrFormat("block %llu recorded more NULLs than the "
                               "zone map tracks",
                               static_cast<unsigned long long>(b)));
    }
    // Justify the skip against the LIVE envelope: immediately after
    // planning (the only time a zone certificate is checked) the fold
    // discipline guarantees it matches the planning-time snapshot.
    bool justified = false;
    if (!fresh.has_value) {
      justified = has_comparison || has_is_not_null;
    } else {
      const Interval envelope = Interval::Range(fresh.min, fresh.max);
      for (const Interval& iv : test_intervals) {
        Interval clipped = iv;
        clipped.Intersect(envelope);
        if (clipped.empty) {
          justified = true;
          break;
        }
      }
    }
    if (!justified && has_is_null && fresh.null_count == 0) {
      justified = true;
    }
    if (!justified) {
      return Invalid(StrFormat(
          "block %llu skip is not justified: its envelope is compatible "
          "with every scan test",
          static_cast<unsigned long long>(b)));
    }
  }
  return Ok();
}

CertificateCheckResult CertificateChecker::Check(
    const RewriteCertificate& cert) const {
  if (catalog_ == nullptr) return Invalid("checker has no catalog");
  switch (cert.kind) {
    case CertificateKind::kImplicationPrune:
    case CertificateKind::kImplicationContradiction:
    case CertificateKind::kPredicateIntroduction:
    case CertificateKind::kTwinSubstitution:
      return CheckEntailment(cert);
    case CertificateKind::kJoinElimination:
      return CheckJoinElimination(cert);
    case CertificateKind::kZoneMapSkip:
      return CheckZoneMapSkip(cert);
  }
  return Invalid("unknown certificate kind");
}

}  // namespace softdb
