#ifndef SOFTDB_ANALYSIS_PLAN_VERIFIER_H_
#define SOFTDB_ANALYSIS_PLAN_VERIFIER_H_

#include <map>
#include <string>
#include <vector>

#include "analysis/invariants.h"
#include "exec/column_batch.h"
#include "exec/operator.h"
#include "mv/materialized_view.h"
#include "plan/logical_plan.h"
#include "storage/catalog.h"

namespace softdb {

/// What the verifier may consult. Every pointer is optional: checks that
/// need an absent component are skipped (hand-built plans in tests verify
/// structurally without a catalog).
struct PlanVerifierContext {
  const Catalog* catalog = nullptr;
  const MvRegistry* mvs = nullptr;
  /// sc name -> exception AST name, as wired into the optimizer.
  const std::map<std::string, std::string>* exception_asts = nullptr;
};

/// Static checker for plan trees. The rewriter invokes it after each
/// rewrite phase, the physical planner after lowering; debug builds verify
/// unconditionally, release builds behind EngineOptions::verify_plans.
/// Violations are structural diagnostics naming the phase and plan node
/// path — a non-empty result is an engine bug, never a user error.
class PlanVerifier {
 public:
  explicit PlanVerifier(PlanVerifierContext ctx = {}) : ctx_(ctx) {}

  /// All violations in a logical plan tree (empty when sound).
  std::vector<PlanViolation> CheckLogical(const PlanNode& root,
                                          const std::string& phase) const;

  /// All violations in a physical operator tree.
  std::vector<PlanViolation> CheckPhysical(const Operator& root,
                                           const std::string& phase) const;

  /// Checks one batch's selection vector (ascending, duplicate-free, in
  /// bounds) — used by the batch tests and the differential fuzzer.
  std::vector<PlanViolation> CheckBatch(const ColumnBatch& batch,
                                        const std::string& phase) const;

  /// Check + convert: OK when clean, internal error listing every
  /// violation otherwise.
  Status VerifyLogical(const PlanNode& root, const std::string& phase) const;
  Status VerifyPhysical(const Operator& root, const std::string& phase) const;

 private:
  PlanVerifierContext ctx_;
};

}  // namespace softdb

#endif  // SOFTDB_ANALYSIS_PLAN_VERIFIER_H_
