#include "analysis/rule_registry.h"

namespace softdb {

const std::vector<RuleSpec>& AllRules() {
  // Append-only. The order here is the order SARIF rule tables are emitted
  // in, and tests pin it; insert new rules at the end of the owning block.
  static const std::vector<RuleSpec>* const kRules = new std::vector<RuleSpec>{
      // ------------------------------------------------------- softdb_lint
      {"domain-check-contradiction", "softdb_lint", "error",
       "A domain SC excludes every value an enforced CHECK constraint "
       "allows: all stored rows violate the SC."},
      {"domain-domain-contradiction", "softdb_lint", "error",
       "Two domain SCs on the same column declare disjoint intervals."},
      {"predicate-domain-contradiction", "softdb_lint", "error",
       "No row satisfying the table's other characterizations can satisfy "
       "the predicate SC."},
      {"sc-chain-contradiction", "softdb_lint", "error",
       "The table's constraint characterizations jointly admit no "
       "compliant row (transitive chain)."},
      {"inclusion-cycle", "softdb_lint", "error",
       "An inclusion SC closes a reference cycle with the catalog's "
       "referential constraints."},
      {"linear-negative-epsilon", "softdb_lint", "error",
       "A linear-correlation SC declares a negative epsilon: no row can "
       "ever satisfy the band."},
      {"linear-degenerate", "softdb_lint", "warning",
       "A linear-correlation SC with k = 0 degenerates to a domain "
       "constraint."},
      {"linear-vacuous-epsilon", "softdb_lint", "warning",
       "The correlation band spans the column's whole declared domain and "
       "can never narrow an estimate or a predicate."},
      {"zonemap-degenerate-block", "softdb_lint", "error",
       "A zone-map block declares an inverted min/max envelope: scans "
       "would silently skip its rows."},
      {"zonemap-redundant-with-domain", "softdb_lint", "warning",
       "Every zone-map block envelope spans a domain SC's interval; the "
       "map can never prune a block the domain does not already prune."},
      {"stuck-repair", "softdb_lint", "warning",
       "An SC is parked in the repair queue; maintenance is not running "
       "or keeps failing."},
      {"quarantined-sc", "softdb_lint", "error",
       "An SC exhausted its repair-attempt budget and was quarantined."},
      {"stale-ssc", "softdb_lint", "warning",
       "An SC's declared confidence is below the currency threshold."},
      {"dead-sc", "softdb_lint", "warning",
       "No workload query can statically exploit the SC."},
      {"wal-dangling-transition", "softdb_lint", "error",
       "The WAL records an SC arm transition with no matching commit: a "
       "maintenance pass died mid-arm, and recovery will disarm the SC."},
      // ------------------------------------------------------------ shared
      {"workload-unparseable-statement", "both", "warning",
       "A workload statement could not be parsed or bound against the "
       "catalog schema and was excluded from the analysis."},
      // ---------------------------------------------------- softdb_analyze
      {"query-contradiction", "softdb_analyze", "error",
       "The statement's predicates, together with the armed SC/CHECK "
       "facts, provably match no row."},
      {"query-redundant-predicate", "softdb_analyze", "warning",
       "A predicate is implied by armed SCs or CHECK constraints and "
       "filters nothing."},
      {"query-dead-range", "softdb_analyze", "warning",
       "Part of a range or IN-list predicate lies outside the column's "
       "domain/zone-map envelope and can never match."},
      {"never-exploitable-sc", "softdb_analyze", "warning",
       "No statement in the workload can statically consume the SC; it is "
       "a retirement candidate."},
      {"uncovered-statement", "softdb_analyze", "warning",
       "No armed SC is statically consumable by the statement: it runs "
       "without any soft-constraint support."},
      {"dml-wholesale-revalidation", "softdb_analyze", "warning",
       "The DML statement impacts every SC on its table; maintenance "
       "cannot be scoped below wholesale re-validation."},
      {"harvest-candidate", "softdb_analyze", "note",
       "A recurring workload or DDL pattern is a candidate soft "
       "constraint worth mining."},
      {"certificate-failed", "softdb_analyze", "error",
       "A rewrite certificate failed independent re-validation: the "
       "optimizer derived a conclusion its recorded premises do not "
       "prove."},
  };
  return *kRules;
}

const RuleSpec* FindRule(const std::string& id) {
  for (const RuleSpec& rule : AllRules()) {
    if (id == rule.id) return &rule;
  }
  return nullptr;
}

std::vector<const RuleSpec*> RulesForTool(const std::string& tool) {
  std::vector<const RuleSpec*> out;
  for (const RuleSpec& rule : AllRules()) {
    if (tool == rule.tool || std::string("both") == rule.tool) {
      out.push_back(&rule);
    }
  }
  return out;
}

}  // namespace softdb
