#include "analysis/workload_analyzer.h"

#include <algorithm>
#include <limits>
#include <map>
#include <optional>
#include <set>
#include <utility>

#include "analysis/certificate.h"
#include "analysis/impact.h"
#include "analysis/implication.h"
#include "common/str_util.h"
#include "optimizer/cardinality.h"
#include "optimizer/planner.h"
#include "optimizer/rewriter.h"
#include "constraints/column_offset_sc.h"
#include "constraints/domain_sc.h"
#include "constraints/fd_sc.h"
#include "constraints/inclusion_sc.h"
#include "constraints/linear_correlation_sc.h"
#include "constraints/predicate_sc.h"
#include "constraints/zone_map_sc.h"
#include "engine/softdb.h"
#include "sql/binder.h"
#include "sql/parser.h"

namespace softdb {

namespace {

// ------------------------------------------------------- plan fact walking

/// Local copy of the rewriter's base-table resolution (keeps the analyzer
/// decoupled from optimizer internals).
bool ResolveToBase(const PlanNode& node, ColumnIdx col, std::string* table,
                   ColumnIdx* base_col) {
  switch (node.kind()) {
    case PlanKind::kScan: {
      *table = static_cast<const ScanNode&>(node).table_name();
      *base_col = col;
      return true;
    }
    case PlanKind::kFilter:
    case PlanKind::kSort:
    case PlanKind::kLimit:
      return ResolveToBase(*node.children()[0], col, table, base_col);
    case PlanKind::kJoin: {
      const ColumnIdx la = static_cast<ColumnIdx>(
          node.children()[0]->output_schema().NumColumns());
      if (col < la) {
        return ResolveToBase(*node.children()[0], col, table, base_col);
      }
      return ResolveToBase(*node.children()[1], col - la, table, base_col);
    }
    default:
      return false;
  }
}

void RecordPredicate(const PlanNode& input, const Expr& expr,
                     StatementFacts* facts) {
  std::vector<SimplePredicate> simples;
  if (ExpandSimplePredicates(expr, &simples)) {
    for (const SimplePredicate& sp : simples) {
      std::string table;
      ColumnIdx base = 0;
      if (ResolveToBase(input, sp.column, &table, &base)) {
        StatementFacts::TableUse& use = facts->tables[table];
        use.pred_columns.insert(base);
        use.simple_preds.push_back(
            StatementFacts::PredRecord{base, sp.op, sp.constant});
      }
    }
    return;
  }
  // `col IS NOT NULL` — a predicate-SC harvest channel, recorded apart
  // from pred_columns (it is not a range predicate and prunes nothing).
  if (expr.kind() == ExprKind::kIsNull) {
    const auto& isnull = static_cast<const IsNullExpr&>(expr);
    std::vector<ColumnIdx> cols;
    isnull.CollectColumns(&cols);
    if (isnull.negated() && cols.size() == 1) {
      std::string table;
      ColumnIdx base = 0;
      if (ResolveToBase(input, cols[0], &table, &base)) {
        facts->tables[table].not_null_pred_columns.insert(base);
      }
    }
    return;
  }
  ColumnDiffPredicate diff;
  if (MatchColumnDiffPredicate(expr, &diff)) {
    std::string t1, t2;
    ColumnIdx b1 = 0, b2 = 0;
    if (ResolveToBase(input, diff.minuend, &t1, &b1) &&
        ResolveToBase(input, diff.subtrahend, &t2, &b2) && t1 == t2) {
      facts->tables[t1].diff_columns.insert({b1, b2});
    }
  }
}

/// Resolves an ordered expression list (GROUP BY / ORDER BY) to base
/// columns; succeeds only when every expression is a single column and all
/// resolve to the same base table.
bool ResolveGroupingList(const PlanNode& input,
                         const std::vector<ExprPtr>& exprs,
                         std::string* table, std::vector<ColumnIdx>* cols) {
  cols->clear();
  table->clear();
  for (const ExprPtr& e : exprs) {
    std::vector<ColumnIdx> refs;
    e->CollectColumns(&refs);
    if (refs.size() != 1) return false;
    std::string t;
    ColumnIdx base = 0;
    if (!ResolveToBase(input, refs[0], &t, &base)) return false;
    if (table->empty()) {
      *table = t;
    } else if (*table != t) {
      return false;
    }
    cols->push_back(base);
  }
  return cols->size() >= 2;
}

void NormalizedJoinPair(StatementFacts* facts, const std::string& a,
                        const std::string& b) {
  facts->join_pairs.insert(a < b ? std::make_pair(a, b)
                                 : std::make_pair(b, a));
}

// ----------------------------------------------------------------- helpers

void Report(LintReport* report, std::string check, std::string severity,
            std::string subject, std::string message) {
  report->findings.push_back(LintFinding{std::move(check), std::move(severity),
                                         std::move(subject),
                                         std::move(message)});
}

std::string StmtSubject(std::size_t index) {
  return StrFormat("stmt#%zu", index + 1);
}

std::string Excerpt(const std::string& sql) {
  // Single-line excerpt: internal newlines/tabs become spaces so findings
  // stay one-line in the text report and control-character-free in JSON.
  std::string flat = Trim(sql);
  for (char& c : flat) {
    if (c == '\n' || c == '\r' || c == '\t') c = ' ';
  }
  if (flat.size() <= 60) return flat;
  return flat.substr(0, 57) + "...";
}

std::string SourceList(const std::set<std::string>& used) {
  return Join(std::vector<std::string>(used.begin(), used.end()), " + ");
}

std::string ColumnName(const Schema& schema, ColumnIdx col) {
  if (col < schema.NumColumns()) return schema.Column(col).name;
  return "#" + std::to_string(col);
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += StrFormat("\\u%04x", c);
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

// ---------------------------------------------------- per-query diagnostics

/// The fact base for lint-mode diagnostics on one table: declared SC
/// parameters regardless of confidence, enforced + informational CHECKs,
/// plus global zone-map envelopes (BuildImplicationFacts omits zone maps —
/// they describe current data, which is exactly what a diagnostic wants).
ImplicationFacts DiagnosticFacts(SoftDb* db, const std::string& table) {
  ImplicationFactsOptions opts;
  opts.absolute_only = false;
  opts.import_inclusion_parents = false;
  ImplicationFacts facts = BuildImplicationFacts(
      table, db->catalog(), &db->ics(), &db->scs(), nullptr, opts);
  for (SoftConstraint* sc : db->scs().ByKind(ScKind::kBlockZoneMap)) {
    if (!sc->active() || sc->table() != table) continue;
    const auto* zm = static_cast<const ZoneMapSc*>(sc);
    double lo = std::numeric_limits<double>::infinity();
    double hi = -std::numeric_limits<double>::infinity();
    bool any = false;
    for (const ZoneMapSc::BlockSma& b : zm->SnapshotBlocks()) {
      if (!b.has_value) continue;
      any = true;
      lo = std::min(lo, b.min);
      hi = std::max(hi, b.max);
    }
    if (!any) continue;
    facts.intervals.push_back(ImplicationFacts::IntervalFact{
        zm->column(), Interval::Range(lo, hi), "sc:" + zm->name()});
  }
  return facts;
}

/// query-dead-range for one conjunct the facts do not wholly imply: a
/// BETWEEN half or IN-list element that lies outside the column's fact
/// envelope can never match. One-sided comparisons are deliberately not
/// flagged (a merely-implied bound is redundancy, handled above; an
/// excluded one contradicts, handled by Unsatisfiable).
void CheckDeadRange(const Expr& conjunct, const Schema& schema,
                    const std::map<ColumnIdx, Interval>& envelope,
                    const std::map<ColumnIdx, std::set<std::string>>& sources,
                    const std::string& subject, const std::string& table,
                    LintReport* out) {
  const auto envelope_for =
      [&](ColumnIdx col) -> const Interval* {
    auto it = envelope.find(col);
    if (it == envelope.end() || it->second.IsTop() ||
        it->second.str_equal.has_value() || it->second.empty) {
      return nullptr;
    }
    return &it->second;
  };
  const auto sources_for = [&](ColumnIdx col) {
    auto it = sources.find(col);
    return it == sources.end() ? std::set<std::string>() : it->second;
  };

  if (conjunct.kind() == ExprKind::kBetween) {
    std::vector<SimplePredicate> halves;
    if (!ExpandSimplePredicates(conjunct, &halves)) return;
    std::vector<std::string> dead;
    ColumnIdx col = 0;
    for (const SimplePredicate& sp : halves) {
      const Interval* env = envelope_for(sp.column);
      if (env == nullptr || sp.constant.is_null() ||
          !IsNumericType(sp.constant.type())) {
        continue;
      }
      std::optional<Interval> half =
          IntervalForComparison(sp.op, sp.constant);
      if (!half.has_value()) continue;
      if (half->Contains(*env)) {
        col = sp.column;
        dead.push_back((sp.op == CompareOp::kGe || sp.op == CompareOp::kGt)
                           ? "lower bound " + sp.constant.ToString()
                           : "upper bound " + sp.constant.ToString());
      }
    }
    if (!dead.empty() && dead.size() < halves.size()) {
      Report(out, "query-dead-range", "warning", subject,
             "in '" + conjunct.ToString() + "' on " + table + ", " +
                 Join(dead, " and ") + " lies outside the " +
                 ColumnName(schema, col) + " envelope " +
                 envelope.at(col).ToString() + " (" +
                 SourceList(sources_for(col)) + "); the range is " +
                 "effectively clipped");
    }
    return;
  }

  if (conjunct.kind() == ExprKind::kInList) {
    const auto& in = static_cast<const InListExpr&>(conjunct);
    std::vector<ColumnIdx> cols;
    in.input()->CollectColumns(&cols);
    if (cols.size() != 1) return;
    const Interval* env = envelope_for(cols[0]);
    if (env == nullptr) return;
    std::vector<std::string> dead;
    bool any_alive_or_unknown = false;
    for (const ExprPtr& elem : in.list()) {
      if (elem->kind() != ExprKind::kLiteral) {
        any_alive_or_unknown = true;
        continue;
      }
      const Value& v = static_cast<const LiteralExpr&>(*elem).value();
      if (v.is_null() || !IsNumericType(v.type())) {
        any_alive_or_unknown = true;
        continue;
      }
      if (env->ContainsPoint(v.NumericValue())) {
        any_alive_or_unknown = true;
      } else {
        dead.push_back(v.ToString());
      }
    }
    if (dead.empty()) return;
    const std::string detail =
        "IN-list value(s) " + Join(dead, ", ") + " lie outside the " +
        ColumnName(schema, cols[0]) + " envelope " + env->ToString() + " (" +
        SourceList(sources_for(cols[0])) + ")";
    if (!any_alive_or_unknown) {
      Report(out, "query-contradiction", "error", subject,
             "every " + detail + ": '" + conjunct.ToString() + "' on " +
                 table + " provably matches no row");
    } else {
      Report(out, "query-dead-range", "warning", subject,
             detail + " and can never match in '" + conjunct.ToString() +
                 "' on " + table);
    }
  }
}

/// Pass 1 over one bound query plan: contradictions, redundant predicates
/// and dead ranges per scanned table. Bound single-table WHERE conjuncts
/// live on the ScanNode (binder pushdown), bound to the base schema.
void DiagnoseQuery(SoftDb* db, const PlanNode& node,
                   const std::string& subject, LintReport* out) {
  if (node.kind() == PlanKind::kScan) {
    const auto& scan = static_cast<const ScanNode&>(node);
    std::vector<const Expr*> conjuncts;
    for (const Predicate& p : scan.predicates()) {
      if (p.origin != "user" || p.estimation_only || p.expr == nullptr) {
        continue;
      }
      ImplicationEngine::CollectConjuncts(*p.expr, &conjuncts);
    }
    auto table = db->catalog().GetTable(scan.table_name());
    if (!conjuncts.empty() && table.ok()) {
      const Schema& schema = (*table)->schema();
      ImplicationOptions lint_mode;
      lint_mode.assume_non_null = true;
      const ImplicationEngine engine(
          &schema, DiagnosticFacts(db, scan.table_name()), lint_mode);

      std::set<std::string> used;
      if (engine.Unsatisfiable(conjuncts, &used)) {
        Report(out, "query-contradiction", "error", subject,
               "predicates on " + scan.table_name() +
                   " provably match no row" +
                   (used.empty() ? "" : " (against " + SourceList(used) + ")"));
      } else {
        // Per-column fact envelope (all interval facts intersected) with
        // the contributing sources, for the dead-range check.
        std::map<ColumnIdx, Interval> envelope;
        std::map<ColumnIdx, std::set<std::string>> sources;
        for (const ImplicationFacts::IntervalFact& f :
             engine.facts().intervals) {
          auto [it, inserted] = envelope.emplace(f.column, f.interval);
          if (!inserted) it->second.Intersect(f.interval);
          sources[f.column].insert(f.source);
        }
        for (const Expr* c : conjuncts) {
          // `x IS NOT NULL` is "implied" in lint mode only because the
          // engine assumes non-null semantics; on a nullable column the
          // filter is real. Report it only when the schema already
          // forbids NULLs.
          if (c->kind() == ExprKind::kIsNull) {
            const auto& isnull = static_cast<const IsNullExpr&>(*c);
            if (isnull.negated() &&
                isnull.input()->kind() == ExprKind::kColumnRef) {
              const ColumnIdx col =
                  static_cast<const ColumnRefExpr&>(*isnull.input()).index();
              if (col < schema.NumColumns() && schema.Column(col).nullable) {
                continue;
              }
            }
          }
          std::set<std::string> implied_by;
          if (engine.FactsImply(*c, &implied_by)) {
            Report(out, "query-redundant-predicate", "warning", subject,
                   "'" + c->ToString() + "' on " + scan.table_name() +
                       " is implied by " +
                       (implied_by.empty() ? "the catalog facts"
                                           : SourceList(implied_by)) +
                       " and filters nothing");
            continue;
          }
          CheckDeadRange(*c, schema, envelope, sources, subject,
                         scan.table_name(), out);
        }
      }
    }
  }
  for (const PlanPtr& c : node.children()) {
    DiagnoseQuery(db, *c, subject, out);
  }
}

// ----------------------------------------------------------- harvest pass

/// Uniquifies a suggested SC name against the registry and prior picks.
std::string UniqueName(const ScRegistry& scs, std::set<std::string>* used,
                       std::string base) {
  std::string name = base;
  int n = 2;
  while (scs.Find(name) != nullptr || used->count(name) > 0) {
    name = base + "_" + std::to_string(n++);
  }
  used->insert(name);
  return name;
}

/// Renders a harvest bound in the column's storage type so a materialized
/// DomainSc compares like-for-like.
Value BoundValue(TypeId type, double v) {
  if (type != TypeId::kDouble &&
      v == static_cast<double>(static_cast<std::int64_t>(v))) {
    return Value::Int64(static_cast<std::int64_t>(v));
  }
  return Value::Double(v);
}

struct BoundStatement {
  std::size_t index = 0;
  StatementFacts facts;
};

std::vector<HarvestedCandidate> HarvestCandidates(
    SoftDb* db, const std::vector<BoundStatement>& bound,
    const AnalyzerOptions& options) {
  std::vector<HarvestedCandidate> out;
  std::set<std::string> used_names;
  const Catalog& catalog = db->catalog();

  // --- Channel A: recurring predicate ranges -> domain candidates. A
  // column qualifies when the workload bounds it from *both* sides across
  // min_support distinct statements; the candidate interval is the loosest
  // bound seen each way (a tighter one would reject rows some query
  // expects to exist).
  struct DomainAgg {
    std::set<std::size_t> stmts;
    double lo = std::numeric_limits<double>::infinity();
    double hi = -std::numeric_limits<double>::infinity();
    bool has_lo = false;
    bool has_hi = false;
  };
  std::map<std::pair<std::string, ColumnIdx>, DomainAgg> domains;
  for (const BoundStatement& bs : bound) {
    for (const auto& [table, use] : bs.facts.tables) {
      for (const StatementFacts::PredRecord& pr : use.simple_preds) {
        if (pr.constant.is_null() || !IsNumericType(pr.constant.type())) {
          continue;
        }
        const double v = pr.constant.NumericValue();
        DomainAgg& agg = domains[{table, pr.column}];
        switch (pr.op) {
          case CompareOp::kGe:
          case CompareOp::kGt:
            agg.has_lo = true;
            agg.lo = std::min(agg.lo, v);
            agg.stmts.insert(bs.index);
            break;
          case CompareOp::kLe:
          case CompareOp::kLt:
            agg.has_hi = true;
            agg.hi = std::max(agg.hi, v);
            agg.stmts.insert(bs.index);
            break;
          default:
            break;  // Equality/inequality say nothing about range shape.
        }
      }
    }
  }
  for (const auto& [key, agg] : domains) {
    if (!agg.has_lo || !agg.has_hi || agg.lo > agg.hi) continue;
    if (agg.stmts.size() < options.min_support) continue;
    auto table = catalog.GetTable(key.first);
    if (!table.ok()) continue;
    const Schema& schema = (*table)->schema();
    if (key.second >= schema.NumColumns()) continue;
    const ColumnDef& def = schema.Column(key.second);

    HarvestedCandidate cand;
    cand.kind = HarvestedCandidate::Kind::kDomain;
    cand.table = key.first;
    cand.column = key.second;
    cand.min_value = BoundValue(def.type, agg.lo);
    cand.max_value = BoundValue(def.type, agg.hi);
    cand.support = agg.stmts.size();
    if (CandidateAlreadyArmed(cand, db->scs(), &db->ics())) continue;
    cand.name = UniqueName(db->scs(), &used_names,
                           "hv_" + key.first + "_" + def.name + "_range");
    cand.rationale = StrFormat(
        "%zu statements bound %s.%s on both sides", agg.stmts.size(),
        key.first.c_str(), def.name.c_str());
    cand.directive = "SOFT CONSTRAINT " + cand.name + " DOMAIN ON " +
                     key.first + "(" + def.name + ") MIN " +
                     cand.min_value.ToString() + " MAX " +
                     cand.max_value.ToString();
    out.push_back(std::move(cand));
  }

  // --- Channel B: recurring equi-join edges -> inclusion candidates, in
  // each direction whose join column is a unique key of the would-be
  // parent (values of the other side must then be a subset for the join
  // to be lossless — exactly what join elimination needs).
  struct EdgeKey {
    std::string ta, tb;
    ColumnIdx ca = 0, cb = 0;
    bool operator<(const EdgeKey& o) const {
      return std::tie(ta, ca, tb, cb) < std::tie(o.ta, o.ca, o.tb, o.cb);
    }
  };
  std::map<EdgeKey, std::set<std::size_t>> edges;
  for (const BoundStatement& bs : bound) {
    for (const StatementFacts::JoinEdge& e : bs.facts.joins) {
      EdgeKey key;
      if (std::tie(e.left_table, e.left_column) <=
          std::tie(e.right_table, e.right_column)) {
        key = {e.left_table, e.right_table, e.left_column, e.right_column};
      } else {
        key = {e.right_table, e.left_table, e.right_column, e.left_column};
      }
      edges[key].insert(bs.index);
    }
  }
  for (const auto& [key, stmts] : edges) {
    if (stmts.size() < options.min_support) continue;
    struct Direction {
      std::string child, parent;
      ColumnIdx child_col, parent_col;
    };
    for (const Direction& dir :
         {Direction{key.ta, key.tb, key.ca, key.cb},
          Direction{key.tb, key.ta, key.cb, key.ca}}) {
      if (dir.child == dir.parent) continue;  // Self-joins: no inclusion.
      if (!db->ics().IsUniqueOver(dir.parent, {dir.parent_col})) continue;
      auto child_t = catalog.GetTable(dir.child);
      auto parent_t = catalog.GetTable(dir.parent);
      if (!child_t.ok() || !parent_t.ok()) continue;

      HarvestedCandidate cand;
      cand.kind = HarvestedCandidate::Kind::kInclusion;
      cand.table = dir.child;
      cand.columns = {dir.child_col};
      cand.parent_table = dir.parent;
      cand.parent_columns = {dir.parent_col};
      cand.support = stmts.size();
      if (CandidateAlreadyArmed(cand, db->scs(), &db->ics())) continue;
      const std::string child_col =
          ColumnName((*child_t)->schema(), dir.child_col);
      const std::string parent_col =
          ColumnName((*parent_t)->schema(), dir.parent_col);
      cand.name = UniqueName(
          db->scs(), &used_names,
          "hv_" + dir.child + "_" + child_col + "_in_" + dir.parent);
      cand.rationale = StrFormat(
          "%zu statements join %s.%s = %s.%s (unique parent key)",
          stmts.size(), dir.child.c_str(), child_col.c_str(),
          dir.parent.c_str(), parent_col.c_str());
      cand.directive = "SOFT CONSTRAINT " + cand.name + " INCLUSION ON " +
                       dir.child + "(" + child_col + ") REFERENCES " +
                       dir.parent + "(" + parent_col + ")";
      out.push_back(std::move(cand));
    }
  }

  // --- Channel C: recurring multi-column GROUP BY lists -> FD candidates
  // (first column determines the rest; if true, the optimizer can prune
  // the trailing grouping columns).
  std::map<std::pair<std::string, std::vector<ColumnIdx>>,
           std::set<std::size_t>>
      groupings;
  for (const BoundStatement& bs : bound) {
    for (const auto& [table, use] : bs.facts.tables) {
      for (const std::vector<ColumnIdx>& list : use.grouping_lists) {
        groupings[{table, list}].insert(bs.index);
      }
    }
  }
  for (const auto& [key, stmts] : groupings) {
    if (stmts.size() < options.min_support) continue;
    const std::string& table_name = key.first;
    const std::vector<ColumnIdx>& list = key.second;
    if (db->ics().IsUniqueOver(table_name, {list[0]})) {
      continue;  // A key determines everything; nothing to mine.
    }
    auto table = catalog.GetTable(table_name);
    if (!table.ok()) continue;
    const Schema& schema = (*table)->schema();

    HarvestedCandidate cand;
    cand.kind = HarvestedCandidate::Kind::kFd;
    cand.table = table_name;
    cand.columns = {list[0]};
    cand.dependents.assign(list.begin() + 1, list.end());
    cand.support = stmts.size();
    if (CandidateAlreadyArmed(cand, db->scs(), &db->ics())) continue;
    std::vector<std::string> dep_names;
    for (ColumnIdx c : cand.dependents) {
      dep_names.push_back(ColumnName(schema, c));
    }
    const std::string det_name = ColumnName(schema, list[0]);
    cand.name = UniqueName(db->scs(), &used_names,
                           "hv_" + table_name + "_" + det_name + "_fd");
    cand.rationale =
        StrFormat("%zu statements group %s by (%s, %s)", stmts.size(),
                  table_name.c_str(), det_name.c_str(),
                  Join(dep_names, ", ").c_str());
    cand.directive = "SOFT CONSTRAINT " + cand.name + " FD ON " +
                     table_name + "(" + det_name + ") DETERMINES (" +
                     Join(dep_names, ", ") + ")";
    out.push_back(std::move(cand));
  }

  // --- Channel D1: informational (NOT ENFORCED) CHECK constraints from
  // the DDL. The application promises them but the engine never validates;
  // a predicate SC makes the promise minable, verifiable and exploitable.
  for (const std::string& table_name : catalog.TableNames()) {
    std::size_t scan_support = 0;
    for (const BoundStatement& bs : bound) {
      auto it = bs.facts.tables.find(table_name);
      if (it != bs.facts.tables.end() && it->second.scanned) ++scan_support;
    }
    for (const CheckConstraint* check : db->ics().ChecksOn(table_name)) {
      if (!check->informational()) continue;
      HarvestedCandidate cand;
      cand.kind = HarvestedCandidate::Kind::kPredicate;
      cand.table = table_name;
      cand.predicate = check->expr().Clone();
      cand.support = 1 + scan_support;  // The DDL declaration itself counts.
      if (CandidateAlreadyArmed(cand, db->scs(), &db->ics())) continue;
      cand.name = UniqueName(db->scs(), &used_names, "hv_" + check->name());
      cand.rationale = "informational CHECK constraint '" + check->name() +
                       "' on " + table_name + " is declared but never "
                       "validated";
      cand.directive = "SOFT CONSTRAINT " + cand.name + " PREDICATE ON " +
                       table_name + " CHECK (" +
                       cand.predicate->ToString() + ")";
      out.push_back(std::move(cand));
    }
  }

  // --- Channel D2: recurring IS NOT NULL filters on nullable columns ->
  // predicate candidates (if the column is in fact never NULL, the filter
  // — and the null checks feeding it — fold away).
  std::map<std::pair<std::string, ColumnIdx>, std::set<std::size_t>>
      not_nulls;
  for (const BoundStatement& bs : bound) {
    for (const auto& [table, use] : bs.facts.tables) {
      for (ColumnIdx c : use.not_null_pred_columns) {
        not_nulls[{table, c}].insert(bs.index);
      }
    }
  }
  for (const auto& [key, stmts] : not_nulls) {
    if (stmts.size() < options.min_support) continue;
    auto table = catalog.GetTable(key.first);
    if (!table.ok()) continue;
    const Schema& schema = (*table)->schema();
    if (key.second >= schema.NumColumns()) continue;
    const ColumnDef& def = schema.Column(key.second);
    if (!def.nullable) continue;  // Schema already guarantees it.

    HarvestedCandidate cand;
    cand.kind = HarvestedCandidate::Kind::kPredicate;
    cand.table = key.first;
    cand.predicate = std::make_unique<IsNullExpr>(
        std::make_unique<ColumnRefExpr>(def.name, key.second, def.type),
        /*negated=*/true);
    cand.support = stmts.size();
    if (CandidateAlreadyArmed(cand, db->scs(), &db->ics())) continue;
    cand.name = UniqueName(db->scs(), &used_names,
                           "hv_" + key.first + "_" + def.name + "_notnull");
    cand.rationale =
        StrFormat("%zu statements filter %s.%s IS NOT NULL", stmts.size(),
                  key.first.c_str(), def.name.c_str());
    cand.directive = "SOFT CONSTRAINT " + cand.name + " PREDICATE ON " +
                     key.first + " CHECK (" + cand.predicate->ToString() +
                     ")";
    out.push_back(std::move(cand));
  }

  return out;
}

}  // namespace

// --------------------------------------------------------- shared facts API

void CollectStatementFacts(const PlanNode& node, StatementFacts* facts) {
  switch (node.kind()) {
    case PlanKind::kScan: {
      const auto& scan = static_cast<const ScanNode&>(node);
      facts->tables[scan.table_name()].scanned = true;
      for (const Predicate& p : scan.predicates()) {
        if (p.origin != "user") continue;  // Only what the query asks.
        RecordPredicate(node, *p.expr, facts);
      }
      break;
    }
    case PlanKind::kFilter: {
      const auto& filter = static_cast<const FilterNode&>(node);
      for (const Predicate& p : filter.predicates()) {
        RecordPredicate(*node.children()[0], *p.expr, facts);
      }
      break;
    }
    case PlanKind::kJoin: {
      const auto& join = static_cast<const JoinNode&>(node);
      for (const JoinNode::EquiKey& key : join.equi_keys()) {
        std::string lt, rt;
        ColumnIdx lb = 0, rb = 0;
        if (ResolveToBase(*node.children()[0], key.left, &lt, &lb) &&
            ResolveToBase(*node.children()[1], key.right, &rt, &rb)) {
          facts->joins.push_back(StatementFacts::JoinEdge{lt, lb, rt, rb});
          NormalizedJoinPair(facts, lt, rt);
        }
      }
      break;
    }
    case PlanKind::kSort: {
      const auto& sort = static_cast<const SortNode&>(node);
      for (const SortKey& k : sort.keys()) {
        std::vector<ColumnIdx> cols;
        k.expr->CollectColumns(&cols);
        for (ColumnIdx c : cols) {
          std::string table;
          ColumnIdx base = 0;
          if (ResolveToBase(*node.children()[0], c, &table, &base)) {
            facts->tables[table].group_order_columns.insert(base);
          }
        }
      }
      break;
    }
    case PlanKind::kAggregate: {
      const auto& agg = static_cast<const AggregateNode&>(node);
      for (const ExprPtr& g : agg.group_by()) {
        std::vector<ColumnIdx> cols;
        g->CollectColumns(&cols);
        for (ColumnIdx c : cols) {
          std::string table;
          ColumnIdx base = 0;
          if (ResolveToBase(*node.children()[0], c, &table, &base)) {
            facts->tables[table].group_order_columns.insert(base);
          }
        }
      }
      std::string table;
      std::vector<ColumnIdx> list;
      if (ResolveGroupingList(*node.children()[0], agg.group_by(), &table,
                              &list)) {
        facts->tables[table].grouping_lists.push_back(std::move(list));
      }
      break;
    }
    default:
      break;
  }
  for (const PlanPtr& c : node.children()) CollectStatementFacts(*c, facts);
}

bool ScExploitableBy(const SoftConstraint& sc, const StatementFacts& facts) {
  auto table_it = facts.tables.find(sc.table());
  const StatementFacts::TableUse* tf =
      table_it == facts.tables.end() ? nullptr : &table_it->second;
  switch (sc.kind()) {
    case ScKind::kDomain: {
      const auto& dom = static_cast<const DomainSc&>(sc);
      return tf != nullptr && tf->pred_columns.count(dom.column()) > 0;
    }
    case ScKind::kLinearCorrelation: {
      const auto& lin = static_cast<const LinearCorrelationSc&>(sc);
      return tf != nullptr && (tf->pred_columns.count(lin.col_a()) > 0 ||
                               tf->pred_columns.count(lin.col_b()) > 0);
    }
    case ScKind::kColumnOffset: {
      const auto& off = static_cast<const ColumnOffsetSc&>(sc);
      if (tf == nullptr) return false;
      return tf->pred_columns.count(off.col_x()) > 0 ||
             tf->pred_columns.count(off.col_y()) > 0 ||
             tf->diff_columns.count({off.col_y(), off.col_x()}) > 0;
    }
    case ScKind::kInclusion: {
      const auto& inc = static_cast<const InclusionSc&>(sc);
      const auto& a = inc.child_table();
      const auto& b = inc.parent_table();
      return facts.join_pairs.count(a < b ? std::make_pair(a, b)
                                          : std::make_pair(b, a)) > 0;
    }
    case ScKind::kFunctionalDependency: {
      const auto& fd = static_cast<const FunctionalDependencySc&>(sc);
      if (tf == nullptr) return false;
      return std::any_of(fd.dependents().begin(), fd.dependents().end(),
                         [&](ColumnIdx dep) {
                           return tf->group_order_columns.count(dep) > 0;
                         });
    }
    case ScKind::kPredicate:
      // Twinning / exception-AST rewrites apply to any scan of the table.
      return tf != nullptr && tf->scanned;
    case ScKind::kBlockZoneMap: {
      // Blocks are skipped against simple predicates on the mapped column.
      const auto& zm = static_cast<const ZoneMapSc&>(sc);
      return tf != nullptr && tf->pred_columns.count(zm.column()) > 0;
    }
    case ScKind::kJoinHole:
      return std::any_of(facts.join_pairs.begin(), facts.join_pairs.end(),
                         [&](const auto& pair) {
                           return pair.first == sc.table() ||
                                  pair.second == sc.table();
                         });
  }
  return true;
}

const char* ScExploitChannel(ScKind kind) {
  switch (kind) {
    case ScKind::kDomain:
      return "implication-pruning";
    case ScKind::kLinearCorrelation:
    case ScKind::kColumnOffset:
      return "predicate-introduction";
    case ScKind::kInclusion:
      return "join-elimination";
    case ScKind::kFunctionalDependency:
      return "fd-sort-pruning";
    case ScKind::kPredicate:
      return "twinning/exception-ast";
    case ScKind::kBlockZoneMap:
      return "zone-map-skipping";
    case ScKind::kJoinHole:
      return "hole-trimming";
  }
  return "unknown";
}

// --------------------------------------------------------- certificate audit

namespace {

/// Replans one bound SELECT through the rewriter + physical planner and
/// re-validates every emitted certificate with the independent checker
/// (DESIGN.md §13). Plans are built but never executed. The physical pass
/// is best-effort: a planner failure only forfeits zone-map certificates.
void CertifyStatement(SoftDb* db, std::unique_ptr<PlanNode> bound,
                      std::size_t index, const std::string& subject,
                      AnalyzerReport* report) {
  OptimizerContext ctx = db->MakeContext();
  Rewriter rewriter(&ctx);
  auto plan = rewriter.Rewrite(std::move(bound));
  if (!plan.ok()) {
    Report(&report->lint, "workload-unparseable-statement", "warning",
           subject,
           "certify: rewrite failed: " + plan.status().message() +
               "; statement excluded from the certificate audit");
    return;
  }
  CardinalityEstimator estimator = db->MakeEstimator();
  PhysicalPlanner planner(&ctx, &estimator);
  (void)planner.Plan(**plan);
  const CertificateChecker checker(&db->catalog(), &db->ics(), &db->scs());
  for (const RewriteCertificate& cert : ctx.certificates) {
    const CertificateCheckResult res = checker.Check(cert);
    CertificateAuditRow row;
    row.statement = index;
    row.rule = cert.rule;
    row.kind = CertificateKindName(cert.kind);
    row.sc_epochs = cert.ScEpochStrings();
    row.verdict = CertificateVerdictName(res.verdict);
    row.message = res.message;
    ++report->certificates_checked;
    if (res.verdict == CertificateVerdict::kInvalid) {
      ++report->certificates_failed;
      Report(&report->lint, "certificate-failed", "error", subject,
             std::string(CertificateKindName(cert.kind)) + " certificate [" +
                 cert.rule + "] failed independent re-validation: " +
                 res.message);
    }
    report->certificates.push_back(std::move(row));
  }
}

}  // namespace

// ------------------------------------------------------------ entry points

Result<AnalyzerReport> AnalyzeWorkloadAgainstDb(
    SoftDb* db, const std::vector<std::string>& workload_sqls,
    const AnalyzerOptions& options) {
  AnalyzerReport report;
  report.lint.tool = "softdb_analyze";
  report.statements = workload_sqls.size();

  Binder binder(&db->catalog());
  const ImpactAnalyzer impact(&db->catalog(), &db->ics(), &db->scs());
  std::vector<BoundStatement> bound;

  for (std::size_t i = 0; i < workload_sqls.size(); ++i) {
    const std::string& sql = workload_sqls[i];
    const std::string subject = StmtSubject(i);
    auto stmt = ParseStatement(sql);
    if (!stmt.ok()) {
      Report(&report.lint, "workload-unparseable-statement", "warning",
             subject,
             "cannot parse '" + Excerpt(sql) + "': " +
                 stmt.status().message() + "; statement excluded from the "
                 "analysis");
      continue;
    }
    switch (stmt->kind) {
      case Statement::Kind::kSelect:
      case Statement::Kind::kExplain: {
        auto plan = binder.BindSelect(*stmt->select);
        if (!plan.ok()) {
          Report(&report.lint, "workload-unparseable-statement", "warning",
                 subject,
                 "cannot bind '" + Excerpt(sql) + "' against the catalog "
                 "schema: " + plan.status().message() + "; statement "
                 "excluded from the analysis");
          continue;
        }
        ++report.queries_bound;
        DiagnoseQuery(db, **plan, subject, &report.lint);
        BoundStatement bs;
        bs.index = i;
        CollectStatementFacts(**plan, &bs.facts);
        bound.push_back(std::move(bs));
        if (options.certify) {
          CertifyStatement(db, std::move(*plan), i, subject, &report);
        }
        break;
      }
      case Statement::Kind::kInsert:
      case Statement::Kind::kUpdate:
      case Statement::Kind::kDelete: {
        auto dml = impact.Analyze(*stmt);
        if (!dml.ok()) {
          Report(&report.lint, "workload-unparseable-statement", "warning",
                 subject,
                 "cannot bind '" + Excerpt(sql) + "' against the catalog "
                 "schema: " + dml.status().message() + "; statement "
                 "excluded from the analysis");
          continue;
        }
        DmlImpactRow row;
        row.statement = i;
        row.kind = stmt->kind == Statement::Kind::kInsert   ? "insert"
                   : stmt->kind == Statement::Kind::kUpdate ? "update"
                                                            : "delete";
        row.table = dml->table;
        row.impacted = dml->impacted;
        row.candidates = dml->candidates;
        row.narrowed = dml->Narrowed();
        row.where_unsatisfiable = dml->where_unsatisfiable;
        if (dml->where_unsatisfiable) {
          Report(&report.lint, "query-contradiction", "error", subject,
                 "WHERE clause of '" + Excerpt(sql) + "' provably matches "
                 "no row; the statement is a no-op");
        } else {
          // Wholesale check: every SC *on the written table* would need
          // synchronous maintenance — impact scoping buys nothing here.
          std::vector<std::string> relevant;
          for (const SoftConstraint* sc : db->scs().On(dml->table)) {
            relevant.push_back(sc->name());
          }
          const bool wholesale =
              !relevant.empty() &&
              std::all_of(relevant.begin(), relevant.end(),
                          [&](const std::string& name) {
                            return dml->Contains(name);
                          });
          if (wholesale) {
            Report(&report.lint, "dml-wholesale-revalidation", "warning",
                   subject,
                   StrFormat("%s on %s re-validates all %zu SC(s) on the "
                             "table; consider narrowing the write set or "
                             "adding a WHERE the impact analyzer can reason "
                             "about",
                             row.kind.c_str(), dml->table.c_str(),
                             relevant.size()));
          }
        }
        report.impact.push_back(std::move(row));
        break;
      }
      default:
        break;  // DDL in a workload: nothing to analyze statically.
    }
  }

  // Pass 2: SC exploitation-coverage.
  const std::vector<SoftConstraint*> all_scs = db->scs().All();
  for (const SoftConstraint* sc : all_scs) {
    ScCoverageRow row;
    row.sc = sc->name();
    row.kind = ScKindName(sc->kind());
    row.channel = ScExploitChannel(sc->kind());
    for (const BoundStatement& bs : bound) {
      if (ScExploitableBy(*sc, bs.facts)) row.statements.push_back(bs.index);
    }
    if (row.statements.empty() && !bound.empty()) {
      Report(&report.lint, "never-exploitable-sc", "warning", sc->name(),
             std::string(ScKindName(sc->kind())) + " SC on " + sc->table() +
                 " is not statically consumable by any of the " +
                 std::to_string(bound.size()) +
                 " bound workload queries; retirement candidate");
    }
    report.coverage.push_back(std::move(row));
  }
  if (!all_scs.empty()) {
    for (const BoundStatement& bs : bound) {
      const bool covered =
          std::any_of(all_scs.begin(), all_scs.end(),
                      [&](const SoftConstraint* sc) {
                        return ScExploitableBy(*sc, bs.facts);
                      });
      if (!covered) {
        Report(&report.lint, "uncovered-statement", "warning",
               StmtSubject(bs.index),
               "'" + Excerpt(workload_sqls[bs.index]) + "' can consume "
               "none of the " + std::to_string(all_scs.size()) +
                   " catalog SC(s): it runs without soft-constraint "
                   "support");
      }
    }
  }

  // Pass 3: application-constraint harvesting, scored through the mining
  // selection stage.
  if (options.harvest) {
    WorkloadProfile profile;
    for (const BoundStatement& bs : bound) {
      for (const auto& [table, use] : bs.facts.tables) {
        for (ColumnIdx c : use.pred_columns) {
          profile.RecordPredicate(table, c);
        }
      }
    }
    std::vector<HarvestedCandidate> harvested =
        HarvestCandidates(db, bound, options);
    std::vector<ScoredCandidate> selected = SelectTop(
        ScoreHarvestedCandidates(harvested, profile), options.harvest_budget);
    for (const ScoredCandidate& s : selected) {
      HarvestedCandidate cand = std::move(harvested[s.index]);
      Report(&report.lint, "harvest-candidate", "note", cand.name,
             cand.directive + " -- " + cand.rationale +
                 StrFormat(" (utility %.1f)", s.utility));
      report.candidates.push_back(std::move(cand));
    }
  }

  return report;
}

Result<AnalyzerReport> AnalyzeWorkloadStatic(
    const std::string& catalog_script,
    const std::vector<std::string>& workload_sqls,
    const AnalyzerOptions& options) {
  SoftDb db;
  SOFTDB_RETURN_IF_ERROR(LoadCatalogScript(&db, catalog_script));
  return AnalyzeWorkloadAgainstDb(&db, workload_sqls, options);
}

// ---------------------------------------------------------------- rendering

std::string AnalyzerReport::ToText() const {
  std::string out = lint.ToText();
  if (!coverage.empty()) {
    out += StrFormat("\nSC exploitation coverage (%zu bound quer%s):\n",
                     queries_bound, queries_bound == 1 ? "y" : "ies");
    for (const ScCoverageRow& row : coverage) {
      out += "  " + row.sc + " (" + row.kind + ", " + row.channel + "): ";
      if (row.statements.empty()) {
        out += "never exploitable";
      } else {
        std::vector<std::string> stmts;
        for (std::size_t s : row.statements) stmts.push_back(StmtSubject(s));
        out += Join(stmts, ", ");
      }
      out += '\n';
    }
  }
  if (!impact.empty()) {
    out += "\nDML impact matrix:\n";
    for (const DmlImpactRow& row : impact) {
      out += "  " + StmtSubject(row.statement) + " " + row.kind + " " +
             row.table + ": ";
      if (row.where_unsatisfiable) {
        out += "WHERE provably empty (no-op)";
      } else {
        out += StrFormat("%zu/%zu SC(s) impacted", row.impacted.size(),
                         row.candidates);
        if (!row.impacted.empty()) out += ": " + Join(row.impacted, ", ");
      }
      out += '\n';
    }
  }
  if (!candidates.empty()) {
    out += "\nHarvested SC candidates:\n";
    for (const HarvestedCandidate& c : candidates) {
      out += StrFormat("  %s (%s, support %llu): %s\n", c.name.c_str(),
                       HarvestKindName(c.kind),
                       static_cast<unsigned long long>(c.support),
                       c.directive.c_str());
    }
  }
  if (certificates_checked > 0 || !certificates.empty()) {
    out += StrFormat("\nCertificate audit (%zu checked, %zu failed):\n",
                     certificates_checked, certificates_failed);
    for (const CertificateAuditRow& row : certificates) {
      out += "  " + StmtSubject(row.statement) + " " + row.kind + " [" +
             row.rule + "]";
      if (!row.sc_epochs.empty()) out += " on " + Join(row.sc_epochs, ", ");
      out += ": " + row.verdict;
      if (!row.message.empty()) out += " (" + row.message + ")";
      out += '\n';
    }
  }
  return out;
}

std::string AnalyzerReport::ToJson() const {
  std::string out = "{\n";
  out += "  \"tool\": \"" + JsonEscape(lint.tool) + "\",\n";
  out += StrFormat("  \"statements\": %zu,\n", statements);
  out += StrFormat("  \"queries_bound\": %zu,\n", queries_bound);
  out += StrFormat("  \"errors\": %zu,\n", lint.errors());
  out += StrFormat("  \"warnings\": %zu,\n", lint.warnings());
  out += StrFormat("  \"notes\": %zu,\n", lint.notes());
  out += StrFormat("  \"certificates_checked\": %zu,\n", certificates_checked);
  out += StrFormat("  \"certificates_failed\": %zu,\n", certificates_failed);
  out += "  \"findings\": [";
  for (std::size_t i = 0; i < lint.findings.size(); ++i) {
    const LintFinding& f = lint.findings[i];
    out += i == 0 ? "\n" : ",\n";
    out += "    {\"check\": \"" + JsonEscape(f.check) + "\", \"severity\": \"" +
           JsonEscape(f.severity) + "\", \"subject\": \"" +
           JsonEscape(f.subject) + "\", \"message\": \"" +
           JsonEscape(f.message) + "\"}";
  }
  out += lint.findings.empty() ? "],\n" : "\n  ],\n";
  out += "  \"coverage\": [";
  for (std::size_t i = 0; i < coverage.size(); ++i) {
    const ScCoverageRow& row = coverage[i];
    out += i == 0 ? "\n" : ",\n";
    out += "    {\"sc\": \"" + JsonEscape(row.sc) + "\", \"kind\": \"" +
           JsonEscape(row.kind) + "\", \"channel\": \"" +
           JsonEscape(row.channel) + "\", \"statements\": [";
    for (std::size_t j = 0; j < row.statements.size(); ++j) {
      if (j > 0) out += ", ";
      out += std::to_string(row.statements[j]);
    }
    out += "]}";
  }
  out += coverage.empty() ? "],\n" : "\n  ],\n";
  out += "  \"impact\": [";
  for (std::size_t i = 0; i < impact.size(); ++i) {
    const DmlImpactRow& row = impact[i];
    out += i == 0 ? "\n" : ",\n";
    out += "    {\"statement\": " + std::to_string(row.statement) +
           ", \"kind\": \"" + JsonEscape(row.kind) + "\", \"table\": \"" +
           JsonEscape(row.table) + "\", \"impacted\": [";
    for (std::size_t j = 0; j < row.impacted.size(); ++j) {
      if (j > 0) out += ", ";
      out += "\"" + JsonEscape(row.impacted[j]) + "\"";
    }
    out += StrFormat("], \"candidates\": %zu, \"narrowed\": %s, "
                     "\"where_unsatisfiable\": %s}",
                     row.candidates, row.narrowed ? "true" : "false",
                     row.where_unsatisfiable ? "true" : "false");
  }
  out += impact.empty() ? "],\n" : "\n  ],\n";
  out += "  \"candidates\": [";
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    const HarvestedCandidate& c = candidates[i];
    out += i == 0 ? "\n" : ",\n";
    out += "    {\"name\": \"" + JsonEscape(c.name) + "\", \"kind\": \"" +
           std::string(HarvestKindName(c.kind)) + "\", \"table\": \"" +
           JsonEscape(c.table) + "\", \"support\": " +
           std::to_string(c.support) + ", \"directive\": \"" +
           JsonEscape(c.directive) + "\", \"rationale\": \"" +
           JsonEscape(c.rationale) + "\"}";
  }
  out += candidates.empty() ? "],\n" : "\n  ],\n";
  out += "  \"certificates\": [";
  for (std::size_t i = 0; i < certificates.size(); ++i) {
    const CertificateAuditRow& row = certificates[i];
    out += i == 0 ? "\n" : ",\n";
    out += "    {\"statement\": " + std::to_string(row.statement) +
           ", \"rule\": \"" + JsonEscape(row.rule) + "\", \"kind\": \"" +
           JsonEscape(row.kind) + "\", \"sc_epochs\": [";
    for (std::size_t j = 0; j < row.sc_epochs.size(); ++j) {
      if (j > 0) out += ", ";
      out += "\"" + JsonEscape(row.sc_epochs[j]) + "\"";
    }
    out += "], \"verdict\": \"" + JsonEscape(row.verdict) +
           "\", \"message\": \"" + JsonEscape(row.message) + "\"}";
  }
  out += certificates.empty() ? "]\n" : "\n  ]\n";
  out += "}\n";
  return out;
}

std::string AnalyzerReport::ToSarif(const std::string& artifact_uri) const {
  return lint.ToSarif(artifact_uri);
}

}  // namespace softdb
