#include "analysis/impact.h"

#include <map>
#include <optional>
#include <utility>

#include "analysis/implication.h"
#include "constraints/column_offset_sc.h"
#include "constraints/domain_sc.h"
#include "constraints/fd_sc.h"
#include "constraints/ic_registry.h"
#include "constraints/inclusion_sc.h"
#include "constraints/join_hole_sc.h"
#include "constraints/linear_correlation_sc.h"
#include "constraints/predicate_sc.h"
#include "constraints/sc_registry.h"
#include "constraints/zone_map_sc.h"
#include "storage/catalog.h"

namespace softdb {

namespace {

// Columns of `table` a violation of `sc` can depend on. Returns false when
// the SC cannot be invalidated by ANY write to `table` rows (its reads
// don't touch the table, or — for inclusion parents under INSERT — the
// mutation direction can only help).
bool ScReadsTable(const SoftConstraint& sc, const std::string& table,
                  std::vector<ColumnIdx>* cols) {
  cols->clear();
  switch (sc.kind()) {
    case ScKind::kDomain: {
      if (sc.table() != table) return false;
      cols->push_back(static_cast<const DomainSc&>(sc).column());
      return true;
    }
    case ScKind::kColumnOffset: {
      if (sc.table() != table) return false;
      const auto& offset = static_cast<const ColumnOffsetSc&>(sc);
      cols->push_back(offset.col_x());
      cols->push_back(offset.col_y());
      return true;
    }
    case ScKind::kLinearCorrelation: {
      if (sc.table() != table) return false;
      const auto& linear = static_cast<const LinearCorrelationSc&>(sc);
      cols->push_back(linear.col_a());
      cols->push_back(linear.col_b());
      return true;
    }
    case ScKind::kPredicate: {
      if (sc.table() != table) return false;
      static_cast<const PredicateSc&>(sc).expr().CollectColumns(cols);
      return true;
    }
    case ScKind::kFunctionalDependency: {
      if (sc.table() != table) return false;
      const auto& fd = static_cast<const FunctionalDependencySc&>(sc);
      cols->insert(cols->end(), fd.determinants().begin(),
                   fd.determinants().end());
      cols->insert(cols->end(), fd.dependents().begin(),
                   fd.dependents().end());
      return true;
    }
    case ScKind::kInclusion: {
      const auto& incl = static_cast<const InclusionSc&>(sc);
      bool reads = false;
      if (incl.child_table() == table) {
        cols->insert(cols->end(), incl.child_columns().begin(),
                     incl.child_columns().end());
        reads = true;
      }
      if (incl.parent_table() == table) {
        cols->insert(cols->end(), incl.parent_columns().begin(),
                     incl.parent_columns().end());
        reads = true;
      }
      return reads;
    }
    case ScKind::kBlockZoneMap: {
      // Block envelopes cover one column; any write to it can widen or
      // invalidate a block's min/max.
      if (sc.table() != table) return false;
      cols->push_back(static_cast<const ZoneMapSc&>(sc).column());
      return true;
    }
    case ScKind::kJoinHole: {
      const auto& hole = static_cast<const JoinHoleSc&>(sc);
      bool reads = false;
      if (hole.left_table() == table) {
        cols->push_back(hole.left_join_col());
        cols->push_back(hole.attr_a());
        reads = true;
      }
      if (hole.right_table() == table) {
        cols->push_back(hole.right_join_col());
        cols->push_back(hole.attr_b());
        reads = true;
      }
      return reads;
    }
  }
  return false;
}

bool IsRowLocalKind(ScKind kind) {
  return kind == ScKind::kDomain || kind == ScKind::kColumnOffset ||
         kind == ScKind::kLinearCorrelation || kind == ScKind::kPredicate;
}

// Folds one INSERT row to schema-coerced constants, mirroring
// SoftDb::InsertRow's coercion (cast unless either side is a string).
bool FoldInsertRow(const std::vector<ExprPtr>& exprs, const Schema& schema,
                   std::vector<Value>* out) {
  if (exprs.size() != schema.NumColumns()) return false;
  out->clear();
  out->reserve(exprs.size());
  for (ColumnIdx i = 0; i < exprs.size(); ++i) {
    auto v = exprs[i]->Eval({});
    if (!v.ok()) return false;
    Value value = std::move(*v);
    const TypeId want = schema.Column(i).type;
    if (!value.is_null() && value.type() != want &&
        value.type() != TypeId::kString && want != TypeId::kString) {
      auto cast = value.CastTo(want);
      if (!cast.ok()) return false;
      value = std::move(*cast);
    }
    out->push_back(std::move(value));
  }
  return true;
}

// Matches an assignment expression of the shape `col`, `col + k`,
// `col - k` or `k + col` (k a foldable constant): the only shapes we turn
// into an exact post-state difference bound.
bool MatchShiftedColumn(const Expr& expr, ColumnIdx* base, double* shift) {
  if (expr.kind() == ExprKind::kColumnRef) {
    *base = static_cast<const ColumnRefExpr&>(expr).index();
    *shift = 0.0;
    return true;
  }
  if (expr.kind() != ExprKind::kArithmetic) return false;
  const auto& arith = static_cast<const ArithmeticExpr&>(expr);
  if (arith.op() != ArithOp::kAdd && arith.op() != ArithOp::kSub) {
    return false;
  }
  Value k;
  if (arith.left()->kind() == ExprKind::kColumnRef &&
      TryConstantFold(*arith.right(), &k) && !k.is_null() &&
      IsNumericType(k.type())) {
    *base = static_cast<const ColumnRefExpr&>(*arith.left()).index();
    *shift = arith.op() == ArithOp::kAdd ? k.NumericValue()
                                         : -k.NumericValue();
    return true;
  }
  if (arith.op() == ArithOp::kAdd &&
      arith.right()->kind() == ExprKind::kColumnRef &&
      TryConstantFold(*arith.left(), &k) && !k.is_null() &&
      IsNumericType(k.type())) {
    *base = static_cast<const ColumnRefExpr&>(*arith.right()).index();
    *shift = k.NumericValue();
    return true;
  }
  return false;
}

// Abstract value of an assignment RHS over the pre-state environment.
// Sound contract: whenever the evaluated value is non-NULL, it lies in the
// returned interval. (An Empty interval therefore means "always NULL".)
Interval EvalExprInterval(const Expr& expr, const SymbolicEnv& pre) {
  switch (expr.kind()) {
    case ExprKind::kLiteral: {
      const Value& v = static_cast<const LiteralExpr&>(expr).value();
      if (v.is_null()) return Interval::Empty();
      if (IsNumericType(v.type())) return Interval::Point(v.NumericValue());
      if (v.type() == TypeId::kString) return Interval::StringPin(v);
      return Interval::Top();
    }
    case ExprKind::kColumnRef: {
      const ColumnIdx col =
          static_cast<const ColumnRefExpr&>(expr).index();
      auto it = pre.intervals.find(col);
      return it == pre.intervals.end() ? Interval::Top() : it->second;
    }
    case ExprKind::kArithmetic: {
      const auto& arith = static_cast<const ArithmeticExpr&>(expr);
      const Interval left = EvalExprInterval(*arith.left(), pre);
      const Interval right = EvalExprInterval(*arith.right(), pre);
      switch (arith.op()) {
        case ArithOp::kAdd:
          return left.Plus(right);
        case ArithOp::kSub:
          return left.Minus(right);
        case ArithOp::kMul: {
          double k = 0.0;
          if (right.IsPoint(&k)) return left.ScaledBy(k, 0.0);
          if (left.IsPoint(&k)) return right.ScaledBy(k, 0.0);
          return Interval::Top();
        }
        case ArithOp::kDiv: {
          double k = 0.0;
          if (right.IsPoint(&k) && k != 0.0) {
            return left.ScaledBy(1.0 / k, 0.0);
          }
          return Interval::Top();
        }
      }
      return Interval::Top();
    }
    default:
      return Interval::Top();
  }
}

struct PostState {
  SymbolicEnv env;
  // Columns whose post value is an exact shift of an *unassigned* base
  // column: post[col] = pre[base] + shift.
  struct Shift {
    ColumnIdx col = 0;
    ColumnIdx base = 0;
    double shift = 0.0;
  };
  std::vector<Shift> shifts;
};

// Builds the post-UPDATE symbolic state: assigned columns get the abstract
// value of their RHS over the WHERE environment; unassigned columns keep
// their pre-state intervals and pairwise relations.
PostState BuildPostState(
    const SymbolicEnv& pre,
    const std::map<ColumnIdx, const Expr*>& assignments) {
  PostState post;
  // Unassigned columns carry over; assigned ones are recomputed.
  for (const auto& entry : pre.intervals) {
    if (assignments.count(entry.first) == 0) {
      post.env.intervals[entry.first] = entry.second;
    }
  }
  for (ColumnIdx col : pre.non_null) {
    if (assignments.count(col) == 0) post.env.non_null.insert(col);
  }
  for (ColumnIdx col : pre.known_null) {
    if (assignments.count(col) == 0) post.env.known_null.insert(col);
  }
  // Pre-state diffs/bands survive only between two unassigned columns.
  for (const SymbolicEnv::DiffBound& d : pre.diffs) {
    if (assignments.count(d.x) == 0 && assignments.count(d.y) == 0) {
      post.env.diffs.push_back(d);
    }
  }
  for (const SymbolicEnv::Band& b : pre.bands) {
    if (assignments.count(b.a) == 0 && assignments.count(b.b) == 0) {
      post.env.bands.push_back(b);
    }
  }

  for (const auto& assignment : assignments) {
    const ColumnIdx col = assignment.first;
    const Expr& rhs = *assignment.second;
    post.env.intervals[col] = EvalExprInterval(rhs, pre);
    ColumnIdx base = 0;
    double shift = 0.0;
    if (MatchShiftedColumn(rhs, &base, &shift)) {
      if (assignments.count(base) == 0) {
        // post[col] - post[base] = shift exactly (and col is NULL iff base
        // is NULL, so the diff is valid on its both-non-NULL domain).
        post.env.diffs.push_back(
            {base, col, Interval::Point(shift), std::string()});
        post.shifts.push_back({col, base, shift});
      } else if (base == col && shift == 0.0) {
        // `SET c = c`: identity, keep pre facts.
        post.env.intervals[col] =
            pre.intervals.count(col) ? pre.intervals.at(col)
                                     : Interval::Top();
      }
    }
  }
  // Exact diffs between two assigned columns sharing an unassigned base:
  // (b2 + s2) - (b1 + s1) with b1 == b2.
  for (std::size_t i = 0; i < post.shifts.size(); ++i) {
    for (std::size_t j = i + 1; j < post.shifts.size(); ++j) {
      if (post.shifts[i].base != post.shifts[j].base) continue;
      post.env.diffs.push_back(
          {post.shifts[i].col, post.shifts[j].col,
           Interval::Point(post.shifts[j].shift - post.shifts[i].shift),
           std::string()});
    }
  }
  return post;
}

}  // namespace

Result<DmlImpact> ImpactAnalyzer::Analyze(const Statement& stmt) const {
  switch (stmt.kind) {
    case Statement::Kind::kInsert:
      return AnalyzeInsert(*stmt.insert);
    case Statement::Kind::kUpdate:
      return AnalyzeUpdate(*stmt.update);
    case Statement::Kind::kDelete:
      return AnalyzeDelete(*stmt.del);
    default:
      return Status::InvalidArgument("impact analysis is DML-only");
  }
}

Result<DmlImpact> ImpactAnalyzer::AnalyzeInsert(const InsertStmt& stmt) const {
  DmlImpact impact;
  impact.kind = Statement::Kind::kInsert;
  impact.table = stmt.table;
  const std::vector<SoftConstraint*> all = scs_->All();
  impact.candidates = all.size();

  auto table_result = catalog_->GetTable(stmt.table);
  if (!table_result.ok()) return table_result.status();
  const Schema& schema = (*table_result)->schema();

  // Fold all rows once; a row that does not fold (non-constant or arity
  // mismatch) disables per-row exclusion but not footprint exclusion.
  std::vector<std::vector<Value>> folded;
  bool all_folded = true;
  for (const auto& row_exprs : stmt.rows) {
    std::vector<Value> row;
    if (!FoldInsertRow(row_exprs, schema, &row)) {
      all_folded = false;
      break;
    }
    folded.push_back(std::move(row));
  }

  std::vector<ColumnIdx> cols;
  for (const SoftConstraint* sc : all) {
    if (!ScReadsTable(*sc, stmt.table, &cols)) {
      ++impact.footprint_excluded;
      continue;
    }
    if (sc->kind() == ScKind::kInclusion &&
        static_cast<const InclusionSc*>(sc)->child_table() != stmt.table) {
      // Parent-side only: inserting into the parent grows the reference
      // set — it can never orphan a child.
      ++impact.footprint_excluded;
      continue;
    }
    bool excluded = false;
    if (all_folded && !folded.empty() &&
        (IsRowLocalKind(sc->kind()) || sc->kind() == ScKind::kInclusion)) {
      // Row-local kinds: compliance depends only on the row itself.
      // Child-side inclusion: a pre-state parent probe is sound because
      // the parent set only grows during this statement.
      excluded = true;
      for (const std::vector<Value>& row : folded) {
        auto check = sc->CheckRow(*catalog_, row);
        if (!check.ok() || !*check) {
          excluded = false;
          break;
        }
      }
    } else if (all_folded && folded.size() == 1 &&
               sc->kind() == ScKind::kFunctionalDependency) {
      // A single constant row consistent with the existing det→dep mapping
      // cannot add a first-image conflict. (Multi-row inserts could
      // conflict among themselves; they stay impacted.)
      auto check = sc->CheckRow(*catalog_, folded[0]);
      excluded = check.ok() && *check;
    }
    if (excluded) {
      ++impact.implication_excluded;
    } else {
      impact.impacted.push_back(sc->name());
    }
  }
  std::sort(impact.impacted.begin(), impact.impacted.end());
  return impact;
}

Result<DmlImpact> ImpactAnalyzer::AnalyzeUpdate(const UpdateStmt& stmt) const {
  DmlImpact impact;
  impact.kind = Statement::Kind::kUpdate;
  impact.table = stmt.table;
  const std::vector<SoftConstraint*> all = scs_->All();
  impact.candidates = all.size();

  auto table_result = catalog_->GetTable(stmt.table);
  if (!table_result.ok()) return table_result.status();
  const Schema& schema = (*table_result)->schema();

  // Bind private clones of the WHERE and assignment expressions.
  ExprPtr where;
  if (stmt.where != nullptr) {
    where = stmt.where->Clone();
    auto bound = where->Bind(schema);
    if (!bound.ok()) return bound;
  }
  std::map<ColumnIdx, const Expr*> assignments;
  std::vector<ExprPtr> assignment_exprs;  // Keeps the clones alive.
  std::set<ColumnIdx> assigned;
  for (const auto& assignment : stmt.assignments) {
    auto col = schema.Resolve(assignment.first);
    if (!col.ok()) return col.status();
    ExprPtr rhs = assignment.second->Clone();
    auto bound = rhs->Bind(schema);
    if (!bound.ok()) return bound;
    assigned.insert(*col);
    assignments[*col] = rhs.get();
    assignment_exprs.push_back(std::move(rhs));
  }

  // The pre-state environment: WHERE conjuncts on top of *enforced* CHECK
  // facts only. Exclusion proofs must not rest on soft constraints (their
  // truth is what's in question) nor on informational CHECKs (unverified
  // promises).
  ImplicationFactsOptions fact_opts;
  fact_opts.use_soft_constraints = false;
  fact_opts.use_checks = true;
  fact_opts.enforced_checks_only = true;
  ImplicationEngine engine(
      &schema,
      BuildImplicationFacts(stmt.table, *catalog_, ics_, nullptr, nullptr,
                            fact_opts));
  std::vector<const Expr*> where_conjuncts;
  if (where != nullptr) {
    ImplicationEngine::CollectConjuncts(*where, &where_conjuncts);
  }
  SymbolicEnv pre = engine.MakeEnv(where_conjuncts);
  if (pre.unsat) {
    // No stored row can match the WHERE: nothing is written at all.
    impact.where_unsatisfiable = true;
    impact.footprint_excluded = all.size();
    return impact;
  }
  const PostState post = BuildPostState(pre, assignments);

  std::vector<ColumnIdx> cols;
  for (const SoftConstraint* sc : all) {
    if (!ScReadsTable(*sc, stmt.table, &cols)) {
      ++impact.footprint_excluded;
      continue;
    }
    // UPDATE adds/removes no row; an SC whose read columns are all
    // untouched sees byte-identical values.
    bool touches = false;
    for (ColumnIdx col : cols) {
      if (assigned.count(col) != 0) {
        touches = true;
        break;
      }
    }
    if (!touches) {
      ++impact.footprint_excluded;
      continue;
    }

    // SET/WHERE implication refinement for row-local kinds. All four are
    // null-compliant (a NULL participant vacuously satisfies the SC), so
    // proving "every non-NULL post value lies inside the constraint
    // region" suffices — no non-NULL obligations.
    bool excluded = false;
    switch (sc->kind()) {
      case ScKind::kDomain: {
        const auto* domain = static_cast<const DomainSc*>(sc);
        auto fact = DomainIntervalFact(*domain);
        auto it = post.env.intervals.find(domain->column());
        excluded = fact.has_value() && it != post.env.intervals.end() &&
                   fact->interval.Contains(it->second);
        break;
      }
      case ScKind::kColumnOffset: {
        const auto* offset = static_cast<const ColumnOffsetSc*>(sc);
        const ImplicationFacts::DiffFact fact = OffsetDiffFact(*offset);
        Interval have = Interval::Top();
        for (const SymbolicEnv::DiffBound& d : post.env.diffs) {
          if (d.x == fact.x && d.y == fact.y) have.Intersect(d.range);
          if (d.x == fact.y && d.y == fact.x) {
            have.Intersect(d.range.Negated());
          }
        }
        auto yi = post.env.intervals.find(fact.y);
        auto xi = post.env.intervals.find(fact.x);
        if (yi != post.env.intervals.end() &&
            xi != post.env.intervals.end()) {
          have.Intersect(yi->second.Minus(xi->second));
        }
        excluded = !have.IsTop() && fact.range.Contains(have);
        break;
      }
      case ScKind::kLinearCorrelation: {
        const auto* linear = static_cast<const LinearCorrelationSc*>(sc);
        const LinearCorrelationSc::Band band = linear->band();
        if (band.epsilon < 0.0) break;  // Never provably satisfied.
        auto ai = post.env.intervals.find(linear->col_a());
        auto bi = post.env.intervals.find(linear->col_b());
        if (ai == post.env.intervals.end() ||
            bi == post.env.intervals.end()) {
          break;
        }
        // a - (k·b + c) must stay within ±eps.
        const Interval residual =
            ai->second.Minus(bi->second.ScaledBy(band.k, band.c));
        excluded = !residual.IsTop() &&
                   Interval::Range(-band.epsilon, band.epsilon)
                       .Contains(residual);
        break;
      }
      case ScKind::kPredicate: {
        const auto* predicate = static_cast<const PredicateSc*>(sc);
        // EnvEntails proves the expression TRUE outright — stronger than
        // needed (NULL results comply too) but always sound.
        excluded = engine.EnvEntails(post.env, predicate->expr());
        break;
      }
      default:
        break;  // FD / inclusion / join-hole: conservative.
    }
    if (excluded) {
      ++impact.implication_excluded;
    } else {
      impact.impacted.push_back(sc->name());
    }
  }
  std::sort(impact.impacted.begin(), impact.impacted.end());
  return impact;
}

Result<DmlImpact> ImpactAnalyzer::AnalyzeDelete(const DeleteStmt& stmt) const {
  DmlImpact impact;
  impact.kind = Statement::Kind::kDelete;
  impact.table = stmt.table;
  const std::vector<SoftConstraint*> all = scs_->All();
  impact.candidates = all.size();

  auto table_result = catalog_->GetTable(stmt.table);
  if (!table_result.ok()) return table_result.status();
  const Schema& schema = (*table_result)->schema();

  if (stmt.where != nullptr) {
    ExprPtr where = stmt.where->Clone();
    auto bound = where->Bind(schema);
    if (!bound.ok()) return bound;
    ImplicationFactsOptions fact_opts;
    fact_opts.use_soft_constraints = false;
    fact_opts.enforced_checks_only = true;
    ImplicationEngine engine(
        &schema,
        BuildImplicationFacts(stmt.table, *catalog_, ics_, nullptr, nullptr,
                              fact_opts));
    std::vector<const Expr*> conjuncts;
    ImplicationEngine::CollectConjuncts(*where, &conjuncts);
    if (engine.Unsatisfiable(conjuncts)) {
      impact.where_unsatisfiable = true;
      impact.footprint_excluded = all.size();
      return impact;
    }
  }

  // Removing rows is monotone for row-local kinds, child-side inclusions
  // and join holes: each compliant row stays compliant and violating rows
  // can only disappear. Two kinds CAN get worse under deletion:
  // parent-side inclusion (a deleted parent row can orphan children), and
  // FDs on the target table — the verifier counts conflicts against the
  // *first* row of each determinant group, so deleting that reference row
  // can re-key the group to a minority image and grow the count (deps
  // [A, B, A, A] has one violation; drop the leading A and reference B
  // leaves two).
  for (const SoftConstraint* sc : all) {
    const bool parent_side =
        sc->kind() == ScKind::kInclusion &&
        static_cast<const InclusionSc*>(sc)->parent_table() == stmt.table;
    const bool fd_on_target =
        sc->kind() == ScKind::kFunctionalDependency &&
        sc->table() == stmt.table;
    if (parent_side || fd_on_target) {
      impact.impacted.push_back(sc->name());
    } else {
      ++impact.footprint_excluded;
    }
  }
  std::sort(impact.impacted.begin(), impact.impacted.end());
  return impact;
}

}  // namespace softdb
