#ifndef SOFTDB_ANALYSIS_IMPACT_H_
#define SOFTDB_ANALYSIS_IMPACT_H_

#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include "common/result.h"
#include "sql/statement.h"

namespace softdb {

class Catalog;
class IcRegistry;
class ScRegistry;

/// Result of statically analyzing one DML statement: which soft
/// constraints the statement *could* invalidate. The contract is a sound
/// over-approximation — every SC the statement can actually violate is in
/// `impacted`; SCs outside it provably keep their compliance status, so
/// synchronous maintenance may skip them and the plan cache may keep plans
/// that only depend on them.
struct DmlImpact {
  Statement::Kind kind = Statement::Kind::kInsert;
  std::string table;
  /// Sorted names of SCs the statement may invalidate.
  std::vector<std::string> impacted;
  /// Total SCs registered when the analysis ran.
  std::size_t candidates = 0;
  /// How many candidates were excluded because the statement's write set
  /// cannot reach them (wrong table / untouched columns).
  std::size_t footprint_excluded = 0;
  /// How many were excluded by SET/WHERE implication reasoning.
  std::size_t implication_excluded = 0;
  /// UPDATE/DELETE whose WHERE provably matches no row.
  bool where_unsatisfiable = false;

  bool Contains(const std::string& name) const {
    return std::binary_search(impacted.begin(), impacted.end(), name);
  }
  /// Did the analysis beat the re-check-everything baseline?
  bool Narrowed() const { return impacted.size() < candidates; }
  /// The scope set synchronous maintenance consumes.
  std::set<std::string> ImpactSet() const {
    return std::set<std::string>(impacted.begin(), impacted.end());
  }
};

/// Static DML impact analyzer. Sound over-approximation rules:
///
/// * INSERT — SCs on other tables are unreachable (inclusion SCs only via
///   their child side: a growing parent set cannot orphan anyone). FDs
///   stay impacted unless a single constant row provably matches the
///   existing determinant→dependent mapping; row-local kinds (domain,
///   offset, linear, predicate) and child-side inclusions are excluded
///   when every constant-folded row passes CheckRow against the pre-state.
/// * UPDATE — SCs whose column footprint misses the SET column set keep
///   their status (no row is added or removed, untouched values are
///   byte-identical). For touched row-local SCs, a symbolic post-state
///   built from the WHERE environment (facts = enforced CHECKs only) and
///   the assignment expressions may prove the new values still comply.
/// * DELETE — removing rows can only violate parent-side inclusion SCs;
///   every other kind's violation count is non-increasing under row
///   removal (including FDs, whose first-image violation count never grows
///   when a row disappears).
///
/// `Unknown` is always safe: anything unprovable stays impacted.
class ImpactAnalyzer {
 public:
  ImpactAnalyzer(const Catalog* catalog, const IcRegistry* ics,
                 const ScRegistry* scs)
      : catalog_(catalog), ics_(ics), scs_(scs) {}

  Result<DmlImpact> Analyze(const Statement& stmt) const;
  Result<DmlImpact> AnalyzeInsert(const InsertStmt& stmt) const;
  Result<DmlImpact> AnalyzeUpdate(const UpdateStmt& stmt) const;
  Result<DmlImpact> AnalyzeDelete(const DeleteStmt& stmt) const;

 private:
  const Catalog* catalog_;
  const IcRegistry* ics_;
  const ScRegistry* scs_;
};

}  // namespace softdb

#endif  // SOFTDB_ANALYSIS_IMPACT_H_
