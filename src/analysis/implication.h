#ifndef SOFTDB_ANALYSIS_IMPLICATION_H_
#define SOFTDB_ANALYSIS_IMPLICATION_H_

#include <limits>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "plan/expr.h"
#include "plan/predicate.h"
#include "storage/schema.h"

namespace softdb {

class Catalog;
class IcRegistry;
class ScRegistry;
class StatsCatalog;
class DomainSc;
class ColumnOffsetSc;
class LinearCorrelationSc;

/// Three-valued verdict of the implication engine. The soundness contract
/// is one-sided: `kImplies` / `kContradicts` are proofs, `kUnknown` is the
/// always-safe default. Consumers must treat `kUnknown` as "no information"
/// — never as a license to act.
enum class ImplicationVerdict { kImplies, kContradicts, kUnknown };

const char* ImplicationVerdictName(ImplicationVerdict v);

/// A (possibly half-open) interval over the numeric rendering of a column's
/// non-NULL values. Strings are representable only as equality pins; any
/// other string comparison stays opaque. The interval abstraction is the
/// base layer of the implication lattice: every fact and every conjunct
/// either narrows an interval (sound: real region ⊆ abstract region) or is
/// dropped (also sound: the abstract region only grows).
///
/// An `empty` interval means "no non-NULL value is possible" — note this is
/// NOT the same as "no row is possible": a provably-NULL column is modeled
/// as an empty interval and is vacuously inside every domain.
struct Interval {
  double lo = -std::numeric_limits<double>::infinity();
  double hi = std::numeric_limits<double>::infinity();
  bool lo_strict = false;  // lo excluded (half-open below).
  bool hi_strict = false;  // hi excluded (half-open above).
  /// Set when the only information is a string equality pin.
  std::optional<Value> str_equal;
  bool empty = false;

  static Interval Top() { return Interval{}; }
  static Interval Point(double v) {
    Interval i;
    i.lo = i.hi = v;
    return i;
  }
  static Interval Empty() {
    Interval i;
    i.empty = true;
    return i;
  }
  static Interval AtLeast(double v, bool strict) {
    Interval i;
    i.lo = v;
    i.lo_strict = strict;
    return i;
  }
  static Interval AtMost(double v, bool strict) {
    Interval i;
    i.hi = v;
    i.hi_strict = strict;
    return i;
  }
  static Interval Range(double lo, double hi) {
    Interval i;
    i.lo = lo;
    i.hi = hi;
    return i;
  }
  static Interval StringPin(Value v) {
    Interval i;
    i.str_equal = std::move(v);
    return i;
  }

  bool IsTop() const;
  /// True iff the interval is a single inclusive numeric point.
  bool IsPoint(double* v) const;
  bool ContainsPoint(double v) const;
  /// Subset test: every value admitted by `inner` is admitted by *this.
  /// (An empty `inner` is inside everything.)
  bool Contains(const Interval& inner) const;
  /// In-place intersection; sets `empty` when the result is void.
  void Intersect(const Interval& other);
  /// Interval arithmetic (Minkowski): {a+b}, {a-b}, {k·a + c}. Infinite
  /// bounds are absorbing; results never produce NaN. String pins degrade
  /// to Top (sound: the abstract region grows).
  Interval Plus(const Interval& other) const;
  Interval Minus(const Interval& other) const;
  Interval ScaledBy(double k, double c) const;
  /// {-a}: negation, used to flip a (y - x) bound into an (x - y) bound.
  Interval Negated() const;
  /// Exact bound-for-bound equality (used to detect narrowing).
  bool SameAs(const Interval& other) const;

  std::string ToString() const;
};

/// The fact base: what the table's constraint-like characterizations say
/// about every row, independent of any particular predicate. Facts hold in
/// the null-compliant sense the SC runtime uses — each speaks only about
/// rows where the mentioned columns are non-NULL.
struct ImplicationFacts {
  /// col ∈ interval (when col is non-NULL). From domain SCs, CHECKs,
  /// decomposable predicate SCs, imported inclusion-parent domains, and
  /// (optionally) ANALYZE min/max.
  struct IntervalFact {
    ColumnIdx column = 0;
    Interval interval;
    std::string source;  // "sc:<name>" | "check:<table>" | "stats:<table>"
  };
  /// (y - x) ∈ [lo, hi] when both non-NULL. From column-offset SCs.
  struct DiffFact {
    ColumnIdx x = 0;
    ColumnIdx y = 0;
    Interval range;
    std::string source;
  };
  /// |a - (k·b + c)| ≤ eps when both non-NULL. From linear-correlation SCs.
  struct BandFact {
    ColumnIdx a = 0;
    ColumnIdx b = 0;
    double k = 0.0;
    double c = 0.0;
    double eps = 0.0;
    std::string source;
  };

  std::vector<IntervalFact> intervals;
  std::vector<DiffFact> diffs;
  std::vector<BandFact> bands;

  bool Empty() const {
    return intervals.empty() && diffs.empty() && bands.empty();
  }
};

/// Which characterizations feed the fact base.
struct ImplicationFactsOptions {
  /// Include soft constraints at all.
  bool use_soft_constraints = true;
  /// Only active SCs with confidence ≥ 1 (required whenever the consumer
  /// changes semantics: rewrites, pruning). Lint turns this off to reason
  /// about *declared* parameters regardless of confidence.
  bool absolute_only = true;
  /// Include CHECK integrity constraints.
  bool use_checks = true;
  /// Restrict CHECKs to enforced ones (impact analysis: informational
  /// CHECKs are promises, not guarantees, so exclusions must not rest on
  /// them).
  bool enforced_checks_only = false;
  /// Import the parent column's domain facts across single-column absolute
  /// inclusion SCs (child values are a subset of parent values).
  bool import_inclusion_parents = true;
  /// Include ANALYZE-time column min/max. These describe the last-analyzed
  /// snapshot, NOT an invariant — never enable for semantics-changing
  /// consumers; diagnostic/estimation use only.
  bool use_stats = false;
};

/// Builds the fact base for `table`. Any of `ics` / `scs` / `stats` may be
/// null (that layer simply contributes nothing).
ImplicationFacts BuildImplicationFacts(const std::string& table,
                                       const Catalog& catalog,
                                       const IcRegistry* ics,
                                       const ScRegistry* scs,
                                       const StatsCatalog* stats,
                                       const ImplicationFactsOptions& opts);

/// Fact-extraction helpers shared with the linter's pairwise checks.
std::optional<ImplicationFacts::IntervalFact> DomainIntervalFact(
    const DomainSc& sc);
ImplicationFacts::DiffFact OffsetDiffFact(const ColumnOffsetSc& sc);
std::optional<ImplicationFacts::BandFact> LinearBandFact(
    const LinearCorrelationSc& sc);

/// The symbolic state MakeEnv derives from a conjunct list plus the fact
/// base: per-column intervals, pairwise difference bounds, ε-bands,
/// NULL/non-NULL knowledge and `<>` exclusions, closed under a bounded
/// number of propagation passes.
struct SymbolicEnv {
  struct DiffBound {
    ColumnIdx x = 0;
    ColumnIdx y = 0;
    Interval range;  // (y - x) ∈ range, when both non-NULL.
    std::string source;
  };
  struct Band {
    ColumnIdx a = 0;
    ColumnIdx b = 0;
    double k = 0.0;
    double c = 0.0;
    double eps = 0.0;
    std::string source;
  };

  std::map<ColumnIdx, Interval> intervals;
  /// Provenance of each column's narrowing (fact sources only; conjuncts
  /// contribute anonymously). Consulted for RecordScUse attribution.
  std::map<ColumnIdx, std::set<std::string>> interval_sources;
  std::vector<DiffBound> diffs;
  std::vector<Band> bands;
  std::set<ColumnIdx> non_null;   // Proven non-NULL by a conjunct.
  std::set<ColumnIdx> known_null; // Conjunct `col IS NULL`.
  std::vector<std::pair<ColumnIdx, Value>> not_equals;  // col <> v.
  bool unsat = false;
  /// Fact sources implicated in the unsat proof (superset).
  std::set<std::string> unsat_sources;
};

struct ImplicationOptions {
  /// Lint mode: reason only about rows whose columns are all non-NULL
  /// ("no non-NULL value can comply" is the lint notion of contradiction).
  /// Semantics-preserving consumers must leave this off.
  bool assume_non_null = false;
};

/// The decision procedure. Stateless once constructed; all methods are
/// const and sound-by-construction: every conjunct either tightens the
/// abstraction or is ignored, so `kImplies` / `kContradicts` are proofs
/// while anything unprovable stays `kUnknown`.
class ImplicationEngine {
 public:
  ImplicationEngine(const Schema* schema, ImplicationFacts facts,
                    ImplicationOptions opts = {});

  /// Flattens nested ANDs into a conjunct list (non-owning walk).
  static void CollectConjuncts(const Expr& expr,
                               std::vector<const Expr*>* out);

  /// Builds the symbolic environment for `conjuncts` on top of the facts.
  SymbolicEnv MakeEnv(const std::vector<const Expr*>& conjuncts) const;

  /// True iff `q` provably evaluates to TRUE (not NULL, not FALSE) on
  /// every row admitted by `env`. Fills `used_sources` (may be null) with
  /// the fact sources consulted.
  bool EnvEntails(const SymbolicEnv& env, const Expr& q,
                  std::set<std::string>* used_sources = nullptr) const;

  /// True iff facts ∧ conjuncts admit no row.
  bool Unsatisfiable(const std::vector<const Expr*>& conjuncts,
                     std::set<std::string>* used_sources = nullptr) const;

  /// Full verdict for a predicate pair: does P imply Q / contradict Q?
  ImplicationVerdict Check(const Expr& p, const Expr& q,
                           std::set<std::string>* used_sources = nullptr)
      const;

  /// Does the fact base alone entail `q`? (Predicate-vs-SC-set query.)
  bool FactsImply(const Expr& q,
                  std::set<std::string>* used_sources = nullptr) const;

  /// Is the fact base self-contradictory? (The linter's transitive-chain
  /// check: domain(x) + offset(x,y) + domain(y) with no compatible row.)
  bool FactsUnsatisfiable(std::set<std::string>* used_sources = nullptr)
      const;

  const Schema* schema() const { return schema_; }
  const ImplicationFacts& facts() const { return facts_; }

 private:
  bool ColumnUsable(const SymbolicEnv& env, ColumnIdx col) const;
  /// True when `col` cannot be NULL on any row `env` admits — the gate for
  /// turning an emptied value interval into an unsat proof (a nullable
  /// column with a void value region is merely "provably NULL").
  bool MustBeNonNull(const SymbolicEnv& env, ColumnIdx col) const;
  void ApplyConjunct(const Expr& e, SymbolicEnv* env) const;
  void ApplySimple(const SimplePredicate& sp, SymbolicEnv* env) const;
  void Close(SymbolicEnv* env) const;
  bool EntailsConjunct(const SymbolicEnv& env, const Expr& e,
                       std::set<std::string>* used) const;
  bool EntailsSimple(const SymbolicEnv& env, const SimplePredicate& sp,
                     std::set<std::string>* used) const;
  Interval DiffIntervalFor(const SymbolicEnv& env, ColumnIdx minuend,
                           ColumnIdx subtrahend,
                           std::set<std::string>* used) const;

  const Schema* schema_;
  ImplicationFacts facts_;
  ImplicationOptions opts_;
};

/// The TRUE-region of `col op constant` as an interval (numeric constants
/// only; `kNe` is not interval-representable and yields nullopt, as do
/// string/NULL constants).
std::optional<Interval> IntervalForComparison(CompareOp op, const Value& v);

}  // namespace softdb

#endif  // SOFTDB_ANALYSIS_IMPLICATION_H_
