// Quickstart: create a database, declare a statistical soft constraint,
// and watch the optimizer use it — the paper's §4.4/§5 shipment example
// end to end.
//
// Build & run:  cmake -B build -G Ninja && cmake --build build &&
//               ./build/examples/quickstart

#include <cstdio>

#include "engine/softdb.h"
#include "workload/generator.h"
#include "workload/sc_kit.h"

int main() {
  using namespace softdb;

  SoftDb db;

  // 1. Load a small retail workload: purchase(order_date, ship_date, ...)
  // where 99% of rows ship within three weeks of ordering, and an index
  // exists on order_date but NOT on ship_date.
  WorkloadOptions options;
  options.purchases = 20000;
  Status st = GenerateWorkload(&db, options);
  if (!st.ok()) {
    std::printf("workload generation failed: %s\n", st.ToString().c_str());
    return 1;
  }

  // 2. Plain SQL works.
  auto count = db.Execute("SELECT COUNT(*) AS n FROM purchase");
  if (!count.ok()) {
    std::printf("query failed: %s\n", count.status().ToString().c_str());
    return 1;
  }
  std::printf("purchase rows: %s\n",
              count->rows.rows[0][0].ToString().c_str());

  // 3. Declare the business rule as a *soft* constraint: ship_date is
  // between order_date and order_date + 21 days. The data violates it for
  // ~1% of rows, so it verifies as a statistical soft constraint.
  auto sc_name = RegisterShipWindowSc(&db);
  if (!sc_name.ok()) {
    std::printf("SC registration failed: %s\n",
                sc_name.status().ToString().c_str());
    return 1;
  }
  const SoftConstraint* sc = db.scs().Find(*sc_name);
  std::printf("registered: %s\n", sc->Describe().c_str());

  // 4. A query on the un-indexed ship_date column. Without help the plan
  // is a full scan; with the SSC the optimizer *twins* an estimation-only
  // predicate onto order_date and gets a far better cardinality estimate
  // on multi-column conjunctions (shown on the paper's "shipped but
  // ordered recently" shape).
  const std::string query =
      "SELECT * FROM purchase "
      "WHERE ship_date = DATE '1999-12-15' "
      "AND order_date >= DATE '1999-11-01'";

  auto with_sc = db.Execute(query);
  if (!with_sc.ok()) {
    std::printf("query failed: %s\n", with_sc.status().ToString().c_str());
    return 1;
  }
  std::printf("\nactual rows matching: %zu\n", with_sc->rows.NumRows());
  std::printf("estimate with SSC twinning: %.1f rows\n",
              with_sc->estimated_rows);
  for (const auto& rule : with_sc->applied_rules) {
    std::printf("  applied: %s\n", rule.c_str());
  }

  db.options().use_twins_in_estimation = false;
  db.options().enable_twinning = false;
  db.plan_cache().Clear();
  auto without_sc = db.Execute(query);
  std::printf("estimate without SSC (independence): %.1f rows\n",
              without_sc->estimated_rows);

  // 5. Promote the rule to an exception-backed ASC (§4.4): materialize the
  // ~1% of late shipments as an AST; the rewrite becomes exact and can use
  // the order_date index, UNION ALL-ing the exceptions back in.
  db.options().enable_twinning = true;
  db.options().use_twins_in_estimation = true;
  auto view = db.CreateExceptionAst(*sc_name);
  if (!view.ok()) {
    std::printf("exception AST failed: %s\n",
                view.status().ToString().c_str());
    return 1;
  }
  std::printf("\nexception AST: %s\n", (*view)->Describe().c_str());

  db.plan_cache().Clear();
  auto exact = db.Execute(query);
  std::printf("rows via exception-AST rewrite: %zu (pages read: %llu)\n",
              exact->rows.NumRows(),
              static_cast<unsigned long long>(exact->exec_stats.pages_read));
  std::printf("rows via plain full scan:       %zu (pages read: %llu)\n",
              with_sc->rows.NumRows(),
              static_cast<unsigned long long>(
                  with_sc->exec_stats.pages_read));
  for (const auto& rule : exact->applied_rules) {
    std::printf("  applied: %s\n", rule.c_str());
  }

  std::printf("\nEXPLAIN of the rewritten query:\n%s\n",
              db.Explain(query)->c_str());
  return 0;
}
