-- A deliberately smelly workload for analyze_catalog.sdl: every analyzer
-- finding class fires at least once, and several recurring patterns are
-- harvestable as soft-constraint candidates. softdb_analyze exits 1 on
-- this pair (findings reported; exit 2 would mean a usage/parse error).

-- [query-contradiction] total is characterized as [0, 100000]; no row can
-- ever satisfy this predicate.
SELECT id FROM orders WHERE total > 200000;

-- [query-redundant-predicate] total >= 0 is already implied by the CHECK
-- constraint and the domain SC; it filters nothing.
SELECT id FROM orders WHERE total >= 0 AND order_day > 100;

-- [query-dead-range] the upper half of the BETWEEN lies entirely outside
-- the [0, 100000] envelope: the range is effectively clipped at 100000.
SELECT id FROM orders WHERE total BETWEEN 50 AND 500000;

-- [uncovered-statement] x2 + the IS-NOT-NULL harvesting channel: no SC
-- helps these scans, and the recurring referrer IS NOT NULL filter
-- suggests a predicate-SC candidate.
SELECT id FROM customers WHERE referrer IS NOT NULL;
SELECT id, region FROM customers WHERE referrer IS NOT NULL;

-- Recurring two-sided ranges on order_day (domain-SC harvesting channel):
-- the loosest bounds seen, [0, 365], become the candidate interval. Both
-- queries exploit ship_lag on the way.
SELECT id FROM orders WHERE order_day BETWEEN 0 AND 180;
SELECT id FROM orders WHERE order_day BETWEEN 100 AND 365;

-- Recurring equi-join with a unique parent key and no armed inclusion SC
-- or foreign key (inclusion-SC harvesting channel).
SELECT o.id, c.region
FROM orders o JOIN customers c ON o.customer_id = c.id
WHERE o.ship_day < 10;
SELECT o.id, c.id
FROM orders o JOIN customers c ON o.customer_id = c.id
WHERE o.ship_day > 2;

-- Recurring multi-column GROUP BY (FD harvesting channel): if region
-- determined signup_day, the trailing grouping column could be pruned.
SELECT region, signup_day, COUNT(*) FROM customers
GROUP BY region, signup_day;
SELECT region, signup_day, SUM(id) FROM customers
GROUP BY region, signup_day;

-- [dml-wholesale-revalidation] the update rewrites every column both SCs
-- on orders depend on; impact scoping cannot narrow the maintenance set.
UPDATE orders SET order_day = order_day + 1, ship_day = ship_day + 2,
  total = total * 2;

-- [query-contradiction] the WHERE clause is self-contradictory: the
-- delete provably matches no row.
DELETE FROM orders WHERE id > 1000000 AND id < 5;

-- [workload-unparseable-statement] a typo'd keyword: reported as a
-- warning and excluded from the other passes, not a hard failure.
SELEC id FROM orders;
