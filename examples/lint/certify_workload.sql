-- Workload for certify_catalog.sdl: each statement triggers a different
-- SC-driven plan transformation, so the --certify audit re-validates one
-- certificate class per line. See DESIGN.md §13.

-- Implied by order_total_range: the predicate is pruned (with a
-- certificate proving entailment from the recorded domain fact).
SELECT id FROM orders WHERE total >= 0;

-- Contradicts order_total_range: the plan collapses to an empty scan.
SELECT id FROM orders WHERE total > 200000;

-- ship_lag introduces a derived order_day bound next to the ship_day one.
SELECT id FROM orders WHERE ship_day < 50;

-- orders_have_customers + the parent's unique key: the join is eliminated
-- when only child columns survive.
SELECT o.id, o.total FROM orders o JOIN customers c ON o.customer_id = c.id;
