-- Representative workload for clean_catalog.sdl. Every soft constraint in
-- that catalog is exploitable by at least one of these queries, so the
-- dead-sc check stays quiet.

-- Exploits order_total_range (predicate on orders.total).
SELECT id, total FROM orders WHERE total > 500;

-- Exploits ship_lag (predicate on orders.ship_day).
SELECT id FROM orders WHERE ship_day < 20;

-- Exploits orders_have_customers (join between orders and customers).
SELECT o.id, c.region
FROM orders o JOIN customers c ON o.customer_id = c.id
WHERE o.order_day > 10;
