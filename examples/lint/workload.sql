-- Representative workload for clean_catalog.sdl. Every soft constraint in
-- that catalog is exploitable by at least one of these queries, every
-- query can consume at least one SC, and every recurring pattern the
-- analyzer could harvest is already covered by an armed SC — so both
-- softdb_lint and softdb_analyze exit 0 on this pair:
--
--   softdb_lint    examples/lint/clean_catalog.sdl examples/lint/workload.sql
--   softdb_analyze examples/lint/clean_catalog.sdl examples/lint/workload.sql

-- Exploits order_total_range (predicate on orders.total).
SELECT id, total FROM orders WHERE total > 500;

-- Exploits ship_lag (predicate on orders.ship_day).
SELECT id FROM orders WHERE ship_day < 20;

-- Exploits orders_have_customers (join between orders and customers).
SELECT o.id, c.region
FROM orders o JOIN customers c ON o.customer_id = c.id
WHERE o.order_day > 10;

-- A two-sided range strictly inside order_total_range: not redundant, not
-- dead, and the recurring total-range pattern it forms with the first
-- query dedupes against the armed domain SC instead of being re-harvested.
SELECT COUNT(*) FROM orders WHERE total BETWEEN 100 AND 900;

-- A second orders-customers join (recurring edge): the inclusion pattern
-- dedupes against orders_have_customers. Single-column GROUP BY yields no
-- FD candidate.
SELECT c.region, COUNT(*)
FROM orders o JOIN customers c ON o.customer_id = c.id
GROUP BY c.region;
