// Project tracking: the §5 worked example. A project table with correlated
// start/end dates defeats the independence assumption; the SSC
// `end_date <= start_date + 30 (conf ~90%)` fixes the estimates via
// twinned predicates, without ever being applied at runtime.

#include <cmath>
#include <cstdio>

#include "engine/softdb.h"
#include "workload/generator.h"
#include "workload/sc_kit.h"

using namespace softdb;

namespace {

double QError(double estimate, double actual) {
  const double e = std::max(estimate, 0.5);
  const double a = std::max(actual, 0.5);
  return std::max(e / a, a / e);
}

}  // namespace

int main() {
  SoftDb db;
  WorkloadOptions options;
  options.projects = 5000;
  options.project_conf = 0.90;  // §5: "90% of tuples abide".
  if (!GenerateWorkload(&db, options).ok()) return 1;

  if (!RegisterProjectWindowSc(&db).ok()) return 1;
  const SoftConstraint* sc = db.scs().Find("sc_project_window");
  std::printf("SSC: %s\n\n", sc->Describe().c_str());

  std::printf("%-14s %8s %14s %14s %10s %10s\n", "active on", "actual",
              "est indep.", "est twinned", "q-indep", "q-twin");
  for (const char* day : {"1999-04-01", "1999-08-15", "2000-01-10",
                          "2000-05-20", "2000-09-01"}) {
    const std::string query = std::string(
        "SELECT * FROM project WHERE start_date <= DATE '") + day +
        "' AND end_date >= DATE '" + day + "'";

    db.options().use_twins_in_estimation = true;
    db.plan_cache().Clear();
    auto twinned = db.Execute(query);
    db.options().use_twins_in_estimation = false;
    db.plan_cache().Clear();
    auto baseline = db.Execute(query);
    if (!twinned.ok() || !baseline.ok()) return 1;

    const double actual = static_cast<double>(twinned->rows.NumRows());
    std::printf("%-14s %8.0f %14.1f %14.1f %10.1f %10.1f\n", day, actual,
                baseline->estimated_rows, twinned->estimated_rows,
                QError(baseline->estimated_rows, actual),
                QError(twinned->estimated_rows, actual));
  }

  // The twinned predicate is estimation-only: EXPLAIN shows it marked, and
  // the executor never evaluates it.
  db.options().use_twins_in_estimation = true;
  db.plan_cache().Clear();
  auto plan = db.Explain(
      "SELECT * FROM project WHERE start_date <= DATE '2000-01-10' "
      "AND end_date >= DATE '2000-01-10'");
  if (!plan.ok()) return 1;
  std::printf("\nEXPLAIN:\n%s", plan->c_str());

  // §5's second example: "projects completed in 5 days" — a column-pair
  // predicate the engine evaluates with date arithmetic.
  auto quick = db.Execute(
      "SELECT COUNT(*) AS n FROM project WHERE end_date - start_date <= 5");
  if (!quick.ok()) return 1;
  std::printf("\nprojects completed in <= 5 days: %s of 5000\n",
              quick->rows.rows[0][0].ToString().c_str());
  return 0;
}
