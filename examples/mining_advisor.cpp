// Mining advisor: runs every discovery algorithm over the workload, scores
// the candidates against a query profile, and registers the winners — the
// full discovery → selection pipeline of §3.2 presented as the kind of
// "advisor" tool the paper envisions sitting beside the optimizer.

#include <cstdio>

#include "constraints/column_offset_sc.h"
#include "constraints/fd_sc.h"
#include "constraints/join_hole_sc.h"
#include "constraints/linear_correlation_sc.h"
#include "engine/softdb.h"
#include "mining/correlation_miner.h"
#include "mining/fd_miner.h"
#include "mining/hole_miner.h"
#include "mining/offset_miner.h"
#include "mining/selection.h"
#include "workload/generator.h"
#include "workload/sc_kit.h"

using namespace softdb;

int main() {
  SoftDb db;
  if (!GenerateWorkload(&db).ok()) return 1;

  // The workload the advisor optimizes for.
  WorkloadProfile profile;
  profile.RecordPredicate("part", WorkloadColumns::kPartPrice, 120);
  profile.RecordPredicate("purchase", WorkloadColumns::kPurchaseShipDate, 80);
  profile.RecordPredicate("customer", WorkloadColumns::kCustomerRegion, 40);

  std::printf("== discovery ==\n");

  Table* part = *db.catalog().GetTable("part");
  auto correlations = MineLinearCorrelations(*part);
  std::printf("part: %zu linear correlation(s)\n", correlations.size());

  Table* purchase = *db.catalog().GetTable("purchase");
  auto offsets = MineColumnOffsets(*purchase);
  std::printf("purchase: %zu offset bound(s)\n", offsets.size());

  Table* customer = *db.catalog().GetTable("customer");
  auto fds = MineFunctionalDependencies(*customer);
  std::printf("customer: %zu functional dependenc(ies)\n", fds.size());

  Table* orders = *db.catalog().GetTable("orders");
  auto holes = MineJoinHoles(*orders, WorkloadColumns::kOrderCustomer,
                             WorkloadColumns::kOrderPrice, *customer,
                             WorkloadColumns::kCustomerKey,
                             WorkloadColumns::kCustomerBalance);
  if (!holes.ok()) return 1;
  std::printf("orders x customer: %zu join hole(s) over %llu join pairs\n\n",
              holes->holes.size(),
              static_cast<unsigned long long>(holes->join_pairs));

  std::printf("== selection ==\n");
  int registered = 0;

  auto corr_scored =
      ScoreCorrelationCandidates(correlations, "part", profile, db.catalog());
  for (const auto& pick : SelectTop(corr_scored, 1)) {
    const auto& c = correlations[pick.index];
    auto sc = std::make_unique<LinearCorrelationSc>(
        "adv_corr", "part", c.col_a, c.col_b, c.k, c.c, c.epsilon_full);
    if (db.scs().Add(std::move(sc), db.catalog()).ok()) {
      std::printf("kept linear corr (utility %.1f): %s\n", pick.utility,
                  db.scs().Find("adv_corr")->Describe().c_str());
      ++registered;
    }
  }

  auto offset_scored =
      ScoreOffsetCandidates(offsets, "purchase", profile, db.catalog());
  for (const auto& pick : SelectTop(offset_scored, 1)) {
    const auto& c = offsets[pick.index];
    auto sc = std::make_unique<ColumnOffsetSc>(
        "adv_offset", "purchase", c.col_x, c.col_y, c.min_partial,
        c.max_partial);
    if (db.scs().Add(std::move(sc), db.catalog()).ok()) {
      std::printf("kept offset bound (utility %.1f): %s\n", pick.utility,
                  db.scs().Find("adv_offset")->Describe().c_str());
      ++registered;
    }
  }

  auto fd_scored = ScoreFdCandidates(fds, "customer", profile);
  for (const auto& pick : SelectTop(fd_scored, 1)) {
    const auto& c = fds[pick.index];
    auto sc = std::make_unique<FunctionalDependencySc>(
        "adv_fd", "customer", c.determinants,
        std::vector<ColumnIdx>{c.dependent});
    if (db.scs().Add(std::move(sc), db.catalog()).ok()) {
      std::printf("kept FD (utility %.1f): %s\n", pick.utility,
                  db.scs().Find("adv_fd")->Describe().c_str());
      ++registered;
    }
  }

  if (!holes->holes.empty()) {
    auto sc = std::make_unique<JoinHoleSc>(
        "adv_holes", "orders", WorkloadColumns::kOrderCustomer,
        WorkloadColumns::kOrderPrice, "customer",
        WorkloadColumns::kCustomerKey, WorkloadColumns::kCustomerBalance,
        holes->holes);
    if (db.scs().Add(std::move(sc), db.catalog()).ok()) {
      std::printf("kept join holes: %s\n",
                  db.scs().Find("adv_holes")->Describe().c_str());
      ++registered;
    }
  }
  std::printf("registered %d soft constraints\n\n", registered);

  std::printf("== effect on the workload ==\n");
  const char* queries[] = {
      "SELECT * FROM part WHERE p_retailprice BETWEEN 900 AND 905",
      "SELECT * FROM purchase WHERE ship_date = DATE '1999-08-01'",
      "SELECT c_nationkey, c_regionkey, COUNT(*) AS n FROM customer "
      "GROUP BY c_nationkey, c_regionkey",
      // Well inside the planted hole (mined holes snap to grid cells, so
      // stay clear of the exact edges).
      "SELECT o_orderkey FROM orders JOIN customer ON o_custkey = c_custkey "
      "WHERE o_totalprice BETWEEN 8500 AND 9500 AND c_acctbal "
      "BETWEEN 500 AND 1500",
  };
  for (const char* sql : queries) {
    auto r = db.Execute(sql);
    if (!r.ok()) {
      std::printf("query failed: %s\n", r.status().ToString().c_str());
      return 1;
    }
    std::printf("%zu rows, %llu pages", r->rows.NumRows(),
                static_cast<unsigned long long>(r->exec_stats.pages_read));
    for (const auto& rule : r->applied_rules) {
      std::printf("  [%s]", rule.c_str());
    }
    std::printf("\n  %s\n", sql);
  }

  // Probation sweep (§3.2): SCs that never helped get dropped.
  auto to_drop = ProbationSweep(db.scs(), /*min_uses_observed=*/1,
                                /*min_total_benefit=*/0.5);
  std::printf("\nprobation sweep would drop %zu unused SC(s)\n",
              to_drop.size());
  for (const auto& name : to_drop) std::printf("  - %s\n", name.c_str());
  return 0;
}
