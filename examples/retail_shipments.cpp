// Retail shipments: the paper's §4.4 scenario end to end, including the
// full soft-constraint lifecycle of §3.2 — discovery, selection,
// maintenance — on the purchase table.
//
//   business rule: "products are shipped within three weeks"
//   reality:       ~1% of shipments are late
//
// The example (1) MINES the rule from data instead of hand-declaring it,
// (2) SELECTS it using a workload profile, (3) registers it with an
// exception AST so the optimizer can rewrite exactly, and (4) shows the
// maintenance machinery reacting to new violating inserts.

#include <cstdio>

#include "common/date.h"
#include "engine/softdb.h"
#include "mining/offset_miner.h"
#include "mining/selection.h"
#include "constraints/column_offset_sc.h"
#include "workload/generator.h"
#include "workload/sc_kit.h"

using namespace softdb;

int main() {
  SoftDb db;
  WorkloadOptions options;
  options.purchases = 20000;
  if (!GenerateWorkload(&db, options).ok()) return 1;

  // ---- 1. Discovery (§3.2): mine offset bounds over purchase. ----
  Table* purchase = *db.catalog().GetTable("purchase");
  auto candidates = MineColumnOffsets(*purchase);
  std::printf("mined %zu offset candidates over purchase\n",
              candidates.size());

  // ---- 2. Selection: a workload that constantly filters on ship_date. --
  WorkloadProfile profile;
  profile.RecordPredicate("purchase", WorkloadColumns::kPurchaseShipDate,
                          200);
  auto scored =
      ScoreOffsetCandidates(candidates, "purchase", profile, db.catalog());
  auto top = SelectTop(scored, 1);
  if (top.empty()) {
    std::printf("selection kept nothing (unexpected)\n");
    return 1;
  }
  const OffsetCandidate& chosen = candidates[top[0].index];
  std::printf("selected: col%u - col%u in [%lld, %lld] @ %.0f%%  (%s)\n",
              chosen.col_y, chosen.col_x,
              static_cast<long long>(chosen.min_partial),
              static_cast<long long>(chosen.max_partial),
              chosen.confidence * 100.0, top[0].rationale.c_str());

  // ---- 3. Register the SSC + exception AST (§4.4). ----
  auto sc = std::make_unique<ColumnOffsetSc>(
      "ship_window", "purchase", chosen.col_x, chosen.col_y,
      chosen.min_partial, chosen.max_partial);
  sc->set_policy(ScMaintenancePolicy::kAsyncRepair);
  if (!db.scs().Add(std::move(sc), db.catalog()).ok()) return 1;
  std::printf("registered: %s\n",
              db.scs().Find("ship_window")->Describe().c_str());

  auto view = db.CreateExceptionAst("ship_window");
  if (!view.ok()) return 1;
  std::printf("exception AST holds %zu late shipments (%.2f%% of table)\n",
              (*view)->NumRows(),
              100.0 * static_cast<double>((*view)->NumRows()) /
                  static_cast<double>(purchase->NumRows()));

  // ---- 4. The query the workload cares about. ----
  const std::string query =
      "SELECT * FROM purchase WHERE ship_date "
      "BETWEEN DATE '1999-12-01' AND DATE '1999-12-07'";
  auto fast = db.Execute(query);
  db.options().enable_exception_asts = false;
  db.options().enable_twinning = false;
  db.plan_cache().Clear();
  auto slow = db.Execute(query);
  db.options().enable_exception_asts = true;
  db.options().enable_twinning = true;
  if (!fast.ok() || !slow.ok()) return 1;
  std::printf(
      "\nweekly late-shipment report: %zu rows\n"
      "  with exception-AST rewrite: %llu pages\n"
      "  plain full scan:            %llu pages\n",
      fast->rows.NumRows(),
      static_cast<unsigned long long>(fast->exec_stats.pages_read),
      static_cast<unsigned long long>(slow->exec_stats.pages_read));
  if (fast->rows.NumRows() != slow->rows.NumRows()) {
    std::printf("ANSWER MISMATCH\n");
    return 1;
  }

  // ---- 5. Maintenance: a very late shipment arrives. ----
  const std::int64_t d = *Date::Parse("2000-11-01");
  if (!db.InsertRow("purchase",
                    {Value::Int64(999999), Value::Int64(1), Value::Int64(1),
                     Value::Date(d), Value::Date(d + 200),
                     Value::Date(d + 201), Value::Int64(1),
                     Value::Double(10.0), Value::Double(0.0)})
           .ok()) {
    return 1;
  }
  // Because the SC is statistical (conf < 1), no synchronous check runs —
  // §3: "SSCs do not have to be checked at update"; currency tracking
  // bounds the drift instead, and the exception AST absorbs the row.
  std::printf("\nafter a 200-day-late insert: SC state = %s (statistical: "
              "no sync check), currency margin = %.4f\n",
              ScStateName(db.scs().Find("ship_window")->state()),
              db.scs().Find("ship_window")->CurrencyMargin(*purchase));
  std::printf("exception AST now holds %zu rows (maintained incrementally)\n",
              (*view)->NumRows());

  // Off-peak maintenance re-fits the SC exactly and re-arms plans (§4.3).
  if (!db.RunMaintenance().ok()) return 1;
  std::printf("after maintenance: %s\n",
              db.scs().Find("ship_window")->Describe().c_str());
  return 0;
}
