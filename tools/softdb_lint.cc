// softdb_lint: static SC-catalog + workload consistency linter.
//
// Usage: softdb_lint [--json | --sarif] [--currency-threshold X]
//                    [--fail-on <warning|error>] [--wal <dir>]
//                    [<catalog.sdl>] [workload.sql ...]
//
// Exit codes: 0 = clean, 1 = findings reported, 2 = usage or input error.

#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

#include "analysis/sc_lint.h"

namespace {

constexpr int kExitClean = 0;
constexpr int kExitUsage = 2;

void PrintUsage(std::FILE* out) {
  std::fprintf(out,
               "usage: softdb_lint [--json | --sarif] "
               "[--currency-threshold X]\n"
               "                   [--fail-on <warning|error>] "
               "[--wal <dir>]\n"
               "                   [<catalog.sdl>] [workload.sql ...]\n"
               "\n"
               "Statically checks a soft-constraint catalog for\n"
               "contradictions, vacuous or stale constraints, and (given a\n"
               "workload) dead entries no query can exploit. Nothing is\n"
               "executed beyond loading the catalog script. --fail-on raises\n"
               "the severity needed for a non-zero exit (default: any\n"
               "finding). --wal audits a write-ahead-log directory for SC\n"
               "arm transitions that never committed (dangling arms a\n"
               "recovery would disarm); it may be used alone or together\n"
               "with a catalog script.\n"
               "\n"
               "exit codes: 0 clean, 1 findings, 2 usage/input error\n");
}

}  // namespace

int main(int argc, char** argv) {
  bool json = false;
  bool sarif = false;
  softdb::LintOptions options;
  softdb::FailOn fail_on = softdb::FailOn::kAny;
  std::string wal_dir;
  std::vector<std::string> paths;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json") {
      json = true;
    } else if (arg == "--sarif") {
      sarif = true;
    } else if (arg == "--currency-threshold") {
      if (i + 1 >= argc) {
        std::fprintf(stderr,
                     "softdb_lint: --currency-threshold needs a value\n");
        return kExitUsage;
      }
      char* end = nullptr;
      options.currency_threshold = std::strtod(argv[++i], &end);
      if (end == nullptr || *end != '\0') {
        std::fprintf(stderr, "softdb_lint: bad threshold '%s'\n", argv[i]);
        return kExitUsage;
      }
    } else if (arg == "--wal") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "softdb_lint: --wal needs a directory\n");
        return kExitUsage;
      }
      wal_dir = argv[++i];
    } else if (arg == "--fail-on") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "softdb_lint: --fail-on needs a value\n");
        return kExitUsage;
      }
      if (!softdb::ParseFailOn(argv[++i], &fail_on)) {
        std::fprintf(stderr,
                     "softdb_lint: --fail-on wants 'warning' or 'error', "
                     "got '%s'\n",
                     argv[i]);
        return kExitUsage;
      }
    } else if (arg == "--help" || arg == "-h") {
      PrintUsage(stdout);
      return kExitClean;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "softdb_lint: unknown flag '%s'\n", arg.c_str());
      PrintUsage(stderr);
      return kExitUsage;
    } else {
      paths.push_back(arg);
    }
  }
  if (paths.empty() && wal_dir.empty()) {
    PrintUsage(stderr);
    return kExitUsage;
  }

  softdb::LintReport report;
  if (!paths.empty()) {
    std::string catalog_script;
    if (!softdb::ReadFileToString(paths[0], &catalog_script)) {
      std::fprintf(stderr, "softdb_lint: cannot read catalog '%s'\n",
                   paths[0].c_str());
      return kExitUsage;
    }

    auto workload = softdb::LoadWorkloadFiles(
        std::vector<std::string>(paths.begin() + 1, paths.end()));
    if (!workload.ok()) {
      std::fprintf(stderr, "softdb_lint: %s\n",
                   workload.status().ToString().c_str());
      return kExitUsage;
    }

    auto catalog_report =
        softdb::LintCatalog(catalog_script, *workload, options);
    if (!catalog_report.ok()) {
      std::fprintf(stderr, "softdb_lint: %s\n",
                   catalog_report.status().ToString().c_str());
      return kExitUsage;
    }
    report = std::move(*catalog_report);
  }

  if (!wal_dir.empty()) {
    auto wal_report = softdb::LintWal(wal_dir);
    if (!wal_report.ok()) {
      std::fprintf(stderr, "softdb_lint: %s\n",
                   wal_report.status().ToString().c_str());
      return kExitUsage;
    }
    for (auto& finding : wal_report->findings) {
      report.findings.push_back(std::move(finding));
    }
  }

  // SARIF results anchor to the catalog when one was linted, else to the
  // WAL directory under audit.
  const std::string& artifact = paths.empty() ? wal_dir : paths[0];
  if (sarif) {
    std::fputs(report.ToSarif(artifact).c_str(), stdout);
  } else if (json) {
    std::fputs(report.ToJson().c_str(), stdout);
  } else {
    std::fputs(report.ToText().c_str(), stdout);
  }
  return softdb::ReportExitCode(report.errors(), report.warnings(),
                                report.notes(), fail_on);
}
