// softdb_serve: multi-session load drill for one served engine.
//
// Usage: softdb_serve [--sessions N] [--rounds N] [--workers N]
//                     [--queue-depth N] [--high-water N]
//                     [--deadline-ms N] [--wal-dir DIR] [--json]
//                     <catalog.sdl> [workload.sql ...]
//
// Loads the catalog script into a fresh engine (optionally WAL-backed),
// then opens N concurrent sessions that sweep the workload statements
// round-robin for the requested number of rounds, exercising the full
// serving path: admission control, shedding, per-session retry/backoff,
// and a graceful drain (WAL checkpoint included) at the end. The report
// is the exported ServerStats plus per-session rollups — the same
// counters the overload drill in tests/server_test.cc asserts on.
//
// Exit codes: 0 = drill completed and drained, 1 = statements failed with
// non-retryable/untyped errors, 2 = usage or input error.

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "analysis/sc_lint.h"
#include "engine/softdb.h"
#include "server/session.h"

namespace {

constexpr int kExitClean = 0;
constexpr int kExitFailures = 1;
constexpr int kExitUsage = 2;

void PrintUsage(std::FILE* out) {
  std::fprintf(
      out,
      "usage: softdb_serve [--sessions N] [--rounds N] [--workers N]\n"
      "                    [--queue-depth N] [--high-water N]\n"
      "                    [--deadline-ms N] [--wal-dir DIR] [--json]\n"
      "                    <catalog.sdl> [workload.sql ...]\n"
      "\n"
      "Serves the workload to N concurrent sessions through the\n"
      "admission-controlled dispatcher, then drains gracefully (WAL\n"
      "checkpoint included when --wal-dir is set) and reports ServerStats.\n"
      "Statements rejected under overload retry inside their session; a\n"
      "run is clean when every failure (if any) was typed retryable.\n"
      "\n"
      "exit codes: 0 clean, 1 non-retryable failures, 2 usage/input error\n");
}

bool ParseCount(const char* text, std::size_t* out) {
  char* end = nullptr;
  const long long v = std::strtoll(text, &end, 10);
  if (end == nullptr || *end != '\0' || v < 0) return false;
  *out = static_cast<std::size_t>(v);
  return true;
}

void EmitJson(const softdb::ServerStats& stats, std::size_t sessions,
              std::size_t rounds, std::uint64_t non_retryable,
              double wall_sec) {
  std::printf("{\n");
  std::printf("  \"sessions\": %zu,\n", sessions);
  std::printf("  \"rounds\": %zu,\n", rounds);
  std::printf("  \"wall_sec\": %.6f,\n", wall_sec);
  std::printf("  \"non_retryable_failures\": %llu,\n",
              static_cast<unsigned long long>(non_retryable));
  auto field = [](const char* key, std::uint64_t v, bool last = false) {
    std::printf("  \"%s\": %llu%s\n", key,
                static_cast<unsigned long long>(v), last ? "" : ",");
  };
  field("submitted", stats.submitted.load());
  field("admitted", stats.admitted.load());
  field("executed", stats.executed.load());
  field("succeeded", stats.succeeded.load());
  field("failed", stats.failed.load());
  field("rejected_queue_full", stats.rejected_queue_full.load());
  field("rejected_expired_deadline", stats.rejected_expired_deadline.load());
  field("rejected_draining", stats.rejected_draining.load());
  field("shed", stats.shed.load());
  field("expired_in_queue", stats.expired_in_queue.load());
  field("deadline_tightened", stats.deadline_tightened.load());
  field("retries", stats.retries.load());
  field("backoff_ms_total", stats.backoff_ms_total.load());
  field("queue_depth_high_water", stats.queue_depth_high_water.load());
  field("rows_output", stats.rows_output.load());
  field("wal_records", stats.wal_records.load());
  field("drains", stats.drains.load(), /*last=*/true);
  std::printf("}\n");
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t sessions = 4;
  std::size_t rounds = 3;
  std::size_t deadline_ms = 0;
  bool json = false;
  softdb::ServerOptions server_options;
  softdb::EngineOptions engine_options;
  std::vector<std::string> paths;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next_count = [&](std::size_t* out) {
      if (i + 1 >= argc || !ParseCount(argv[++i], out)) {
        std::fprintf(stderr, "softdb_serve: %s needs a count\n", arg.c_str());
        return false;
      }
      return true;
    };
    if (arg == "--json") {
      json = true;
    } else if (arg == "--sessions") {
      if (!next_count(&sessions)) return kExitUsage;
    } else if (arg == "--rounds") {
      if (!next_count(&rounds)) return kExitUsage;
    } else if (arg == "--workers") {
      if (!next_count(&server_options.worker_threads)) return kExitUsage;
    } else if (arg == "--queue-depth") {
      if (!next_count(&server_options.max_queue_depth)) return kExitUsage;
      // Shedding engages in the top quarter unless --high-water overrides.
      server_options.high_water_depth = server_options.max_queue_depth -
                                        server_options.max_queue_depth / 4;
    } else if (arg == "--high-water") {
      if (!next_count(&server_options.high_water_depth)) return kExitUsage;
    } else if (arg == "--deadline-ms") {
      if (!next_count(&deadline_ms)) return kExitUsage;
    } else if (arg == "--wal-dir") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "softdb_serve: --wal-dir needs a path\n");
        return kExitUsage;
      }
      engine_options.wal_dir = argv[++i];
    } else if (arg == "--help" || arg == "-h") {
      PrintUsage(stdout);
      return kExitClean;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "softdb_serve: unknown flag %s\n", arg.c_str());
      PrintUsage(stderr);
      return kExitUsage;
    } else {
      paths.push_back(arg);
    }
  }
  if (paths.empty()) {
    PrintUsage(stderr);
    return kExitUsage;
  }
  if (sessions == 0 || rounds == 0) {
    std::fprintf(stderr, "softdb_serve: --sessions and --rounds must be > 0\n");
    return kExitUsage;
  }

  std::string catalog_script;
  if (!softdb::ReadFileToString(paths[0], &catalog_script)) {
    std::fprintf(stderr, "softdb_serve: cannot read %s\n", paths[0].c_str());
    return kExitUsage;
  }
  softdb::SoftDb db(engine_options);
  softdb::Status loaded = softdb::LoadCatalogScript(&db, catalog_script);
  if (!loaded.ok()) {
    std::fprintf(stderr, "softdb_serve: catalog load failed: %s\n",
                 loaded.ToString().c_str());
    return kExitUsage;
  }

  // Workload statements: explicit files, or a default probe sweep over the
  // catalog's tables when none were given.
  std::vector<std::string> statements;
  if (paths.size() > 1) {
    auto files = softdb::LoadWorkloadFiles(
        std::vector<std::string>(paths.begin() + 1, paths.end()));
    if (!files.ok()) {
      std::fprintf(stderr, "softdb_serve: %s\n",
                   files.status().ToString().c_str());
      return kExitUsage;
    }
    statements = *std::move(files);
  } else {
    for (const std::string& table : db.catalog().TableNames()) {
      statements.push_back("SELECT * FROM " + table);
    }
  }
  if (statements.empty()) {
    std::fprintf(stderr, "softdb_serve: nothing to serve\n");
    return kExitUsage;
  }

  softdb::SessionManager server(&db, server_options);
  std::atomic<std::uint64_t> non_retryable{0};
  const auto wall0 = std::chrono::steady_clock::now();
  std::vector<std::thread> clients;
  for (std::size_t c = 0; c < sessions; ++c) {
    clients.emplace_back([&, c] {
      auto session = server.OpenSession("serve-" + std::to_string(c));
      if (!session.ok()) {
        non_retryable.fetch_add(1);
        return;
      }
      for (std::size_t round = 0; round < rounds; ++round) {
        for (std::size_t s = 0; s < statements.size(); ++s) {
          const std::string& sql =
              statements[(s + c) % statements.size()];
          softdb::QueryContext ctx;
          if (deadline_ms > 0) {
            ctx.SetDeadlineAfter(std::chrono::milliseconds(
                static_cast<std::int64_t>(deadline_ms)));
          }
          softdb::Result<softdb::QueryResult> r =
              (*session)->Execute(sql, deadline_ms > 0 ? &ctx : nullptr);
          // Retryable failures already ran the session's backoff arc;
          // anything still failing non-retryably is a real problem
          // (unless the caller armed deadlines, which make
          // kDeadlineExceeded an expected outcome).
          if (!r.ok() && !softdb::IsRetryableStatus(r.status()) &&
              !(deadline_ms > 0 && r.status().code() ==
                                       softdb::StatusCode::kDeadlineExceeded)) {
            non_retryable.fetch_add(1);
            std::fprintf(stderr, "softdb_serve: %s\n  %s\n",
                         r.status().ToString().c_str(), sql.c_str());
          }
        }
      }
    });
  }
  for (auto& t : clients) t.join();
  const double wall_sec = std::chrono::duration<double>(
                              std::chrono::steady_clock::now() - wall0)
                              .count();

  softdb::Status drained = server.Drain();
  if (!drained.ok()) {
    std::fprintf(stderr, "softdb_serve: drain failed: %s\n",
                 drained.ToString().c_str());
    return kExitFailures;
  }

  const softdb::ServerStats& stats = server.stats();
  if (json) {
    EmitJson(stats, sessions, rounds, non_retryable.load(), wall_sec);
  } else {
    std::printf(
        "served %llu statements from %zu sessions in %.3fs "
        "(%llu succeeded, %llu failed, %llu retries, %llu shed, "
        "%llu queue-full rejections, queue high-water %llu)\n",
        static_cast<unsigned long long>(stats.submitted.load()), sessions,
        wall_sec, static_cast<unsigned long long>(stats.succeeded.load()),
        static_cast<unsigned long long>(stats.failed.load()),
        static_cast<unsigned long long>(stats.retries.load()),
        static_cast<unsigned long long>(stats.shed.load()),
        static_cast<unsigned long long>(stats.rejected_queue_full.load()),
        static_cast<unsigned long long>(
            stats.queue_depth_high_water.load()));
  }
  return non_retryable.load() == 0 ? kExitClean : kExitFailures;
}
