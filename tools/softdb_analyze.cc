// softdb_analyze: whole-workload static analyzer.
//
// Usage: softdb_analyze [--json | --sarif] [--min-support N]
//                       [--harvest-budget N] [--no-harvest] [--certify]
//                       [--fail-on <warning|error>]
//                       <catalog.sdl> [workload.sql ...]
//
// Exit codes: 0 = clean, 1 = findings reported, 2 = usage or input error.

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "analysis/sc_lint.h"
#include "analysis/workload_analyzer.h"

namespace {

constexpr int kExitClean = 0;
constexpr int kExitUsage = 2;

void PrintUsage(std::FILE* out) {
  std::fprintf(out,
               "usage: softdb_analyze [--json | --sarif] [--min-support N]\n"
               "                      [--harvest-budget N] [--no-harvest]\n"
               "                      [--certify] [--fail-on <warning|error>]\n"
               "                      <catalog.sdl> [workload.sql ...]\n"
               "\n"
               "Statically analyzes a SQL workload against a soft-constraint\n"
               "catalog: per-query implication diagnostics (contradictions,\n"
               "redundant predicates, dead ranges), SC exploitation coverage,\n"
               "a DML impact matrix, and application-constraint harvesting.\n"
               "Workload statements are parsed and bound, never executed.\n"
               "\n"
               "--certify additionally replans every bound SELECT and\n"
               "re-validates each SC-driven rewrite certificate with the\n"
               "independent checker; invalid certificates are\n"
               "`certificate-failed` errors. --fail-on raises the severity\n"
               "needed for a non-zero exit (default: any finding).\n"
               "\n"
               "exit codes: 0 clean, 1 findings, 2 usage/input error\n");
}

bool ParseCount(const char* text, std::size_t* out) {
  char* end = nullptr;
  const long long v = std::strtoll(text, &end, 10);
  if (end == nullptr || *end != '\0' || v < 0) return false;
  *out = static_cast<std::size_t>(v);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  bool json = false;
  bool sarif = false;
  softdb::AnalyzerOptions options;
  softdb::FailOn fail_on = softdb::FailOn::kAny;
  std::vector<std::string> paths;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json") {
      json = true;
    } else if (arg == "--sarif") {
      sarif = true;
    } else if (arg == "--no-harvest") {
      options.harvest = false;
    } else if (arg == "--certify") {
      options.certify = true;
    } else if (arg == "--fail-on") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "softdb_analyze: --fail-on needs a value\n");
        return kExitUsage;
      }
      if (!softdb::ParseFailOn(argv[++i], &fail_on)) {
        std::fprintf(stderr,
                     "softdb_analyze: --fail-on wants 'warning' or 'error', "
                     "got '%s'\n",
                     argv[i]);
        return kExitUsage;
      }
    } else if (arg == "--min-support" || arg == "--harvest-budget") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "softdb_analyze: %s needs a value\n",
                     arg.c_str());
        return kExitUsage;
      }
      std::size_t value = 0;
      if (!ParseCount(argv[++i], &value)) {
        std::fprintf(stderr, "softdb_analyze: bad count '%s'\n", argv[i]);
        return kExitUsage;
      }
      (arg == "--min-support" ? options.min_support
                              : options.harvest_budget) = value;
    } else if (arg == "--help" || arg == "-h") {
      PrintUsage(stdout);
      return kExitClean;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "softdb_analyze: unknown flag '%s'\n", arg.c_str());
      PrintUsage(stderr);
      return kExitUsage;
    } else {
      paths.push_back(arg);
    }
  }
  if (paths.empty()) {
    PrintUsage(stderr);
    return kExitUsage;
  }

  std::string catalog_script;
  if (!softdb::ReadFileToString(paths[0], &catalog_script)) {
    std::fprintf(stderr, "softdb_analyze: cannot read catalog '%s'\n",
                 paths[0].c_str());
    return kExitUsage;
  }

  auto workload = softdb::LoadWorkloadFiles(
      std::vector<std::string>(paths.begin() + 1, paths.end()));
  if (!workload.ok()) {
    std::fprintf(stderr, "softdb_analyze: %s\n",
                 workload.status().ToString().c_str());
    return kExitUsage;
  }

  auto report = softdb::AnalyzeWorkloadStatic(catalog_script, *workload,
                                              options);
  if (!report.ok()) {
    std::fprintf(stderr, "softdb_analyze: %s\n",
                 report.status().ToString().c_str());
    return kExitUsage;
  }

  if (sarif) {
    std::fputs(report->ToSarif(paths[0]).c_str(), stdout);
  } else if (json) {
    std::fputs(report->ToJson().c_str(), stdout);
  } else {
    std::fputs(report->ToText().c_str(), stdout);
  }
  return softdb::ReportExitCode(report->lint.errors(),
                                report->lint.warnings(),
                                report->lint.notes(), fail_on);
}
