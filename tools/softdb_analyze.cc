// softdb_analyze: whole-workload static analyzer.
//
// Usage: softdb_analyze [--json | --sarif] [--min-support N]
//                       [--harvest-budget N] [--no-harvest]
//                       <catalog.sdl> [workload.sql ...]
//
// Exit codes: 0 = clean, 1 = findings reported, 2 = usage or input error.

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/sc_lint.h"
#include "analysis/workload_analyzer.h"

namespace {

constexpr int kExitClean = 0;
constexpr int kExitFindings = 1;
constexpr int kExitUsage = 2;

void PrintUsage(std::FILE* out) {
  std::fprintf(out,
               "usage: softdb_analyze [--json | --sarif] [--min-support N]\n"
               "                      [--harvest-budget N] [--no-harvest]\n"
               "                      <catalog.sdl> [workload.sql ...]\n"
               "\n"
               "Statically analyzes a SQL workload against a soft-constraint\n"
               "catalog: per-query implication diagnostics (contradictions,\n"
               "redundant predicates, dead ranges), SC exploitation coverage,\n"
               "a DML impact matrix, and application-constraint harvesting.\n"
               "Workload statements are parsed and bound, never executed.\n"
               "\n"
               "exit codes: 0 clean, 1 findings, 2 usage/input error\n");
}

bool ReadFile(const std::string& path, std::string* out) {
  std::ifstream in(path);
  if (!in) return false;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  *out = buffer.str();
  return true;
}

bool ParseCount(const char* text, std::size_t* out) {
  char* end = nullptr;
  const long long v = std::strtoll(text, &end, 10);
  if (end == nullptr || *end != '\0' || v < 0) return false;
  *out = static_cast<std::size_t>(v);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  bool json = false;
  bool sarif = false;
  softdb::AnalyzerOptions options;
  std::vector<std::string> paths;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json") {
      json = true;
    } else if (arg == "--sarif") {
      sarif = true;
    } else if (arg == "--no-harvest") {
      options.harvest = false;
    } else if (arg == "--min-support" || arg == "--harvest-budget") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "softdb_analyze: %s needs a value\n",
                     arg.c_str());
        return kExitUsage;
      }
      std::size_t value = 0;
      if (!ParseCount(argv[++i], &value)) {
        std::fprintf(stderr, "softdb_analyze: bad count '%s'\n", argv[i]);
        return kExitUsage;
      }
      (arg == "--min-support" ? options.min_support
                              : options.harvest_budget) = value;
    } else if (arg == "--help" || arg == "-h") {
      PrintUsage(stdout);
      return kExitClean;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "softdb_analyze: unknown flag '%s'\n", arg.c_str());
      PrintUsage(stderr);
      return kExitUsage;
    } else {
      paths.push_back(arg);
    }
  }
  if (paths.empty()) {
    PrintUsage(stderr);
    return kExitUsage;
  }

  std::string catalog_script;
  if (!ReadFile(paths[0], &catalog_script)) {
    std::fprintf(stderr, "softdb_analyze: cannot read catalog '%s'\n",
                 paths[0].c_str());
    return kExitUsage;
  }

  std::vector<std::string> workload;
  for (std::size_t i = 1; i < paths.size(); ++i) {
    std::string content;
    if (!ReadFile(paths[i], &content)) {
      std::fprintf(stderr, "softdb_analyze: cannot read workload '%s'\n",
                   paths[i].c_str());
      return kExitUsage;
    }
    for (std::string& stmt : softdb::SplitStatements(content)) {
      workload.push_back(std::move(stmt));
    }
  }

  auto report = softdb::AnalyzeWorkloadStatic(catalog_script, workload,
                                              options);
  if (!report.ok()) {
    std::fprintf(stderr, "softdb_analyze: %s\n",
                 report.status().ToString().c_str());
    return kExitUsage;
  }

  if (sarif) {
    std::fputs(report->ToSarif(paths[0]).c_str(), stdout);
  } else if (json) {
    std::fputs(report->ToJson().c_str(), stdout);
  } else {
    std::fputs(report->ToText().c_str(), stdout);
  }
  return report->lint.findings.empty() ? kExitClean : kExitFindings;
}
