# Empty dependencies file for bench_e5_asc_as_ast.
# This may be replaced when dependencies are built.
