file(REMOVE_RECURSE
  "CMakeFiles/bench_e5_asc_as_ast.dir/bench_e5_asc_as_ast.cc.o"
  "CMakeFiles/bench_e5_asc_as_ast.dir/bench_e5_asc_as_ast.cc.o.d"
  "bench_e5_asc_as_ast"
  "bench_e5_asc_as_ast.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e5_asc_as_ast.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
