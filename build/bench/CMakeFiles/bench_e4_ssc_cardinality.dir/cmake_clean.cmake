file(REMOVE_RECURSE
  "CMakeFiles/bench_e4_ssc_cardinality.dir/bench_e4_ssc_cardinality.cc.o"
  "CMakeFiles/bench_e4_ssc_cardinality.dir/bench_e4_ssc_cardinality.cc.o.d"
  "bench_e4_ssc_cardinality"
  "bench_e4_ssc_cardinality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e4_ssc_cardinality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
