# Empty dependencies file for bench_e4_ssc_cardinality.
# This may be replaced when dependencies are built.
