# Empty dependencies file for bench_e8_currency.
# This may be replaced when dependencies are built.
