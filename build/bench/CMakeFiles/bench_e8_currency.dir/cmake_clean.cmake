file(REMOVE_RECURSE
  "CMakeFiles/bench_e8_currency.dir/bench_e8_currency.cc.o"
  "CMakeFiles/bench_e8_currency.dir/bench_e8_currency.cc.o.d"
  "bench_e8_currency"
  "bench_e8_currency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e8_currency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
