# Empty compiler generated dependencies file for bench_e10_unionall_pruning.
# This may be replaced when dependencies are built.
