file(REMOVE_RECURSE
  "CMakeFiles/bench_e10_unionall_pruning.dir/bench_e10_unionall_pruning.cc.o"
  "CMakeFiles/bench_e10_unionall_pruning.dir/bench_e10_unionall_pruning.cc.o.d"
  "bench_e10_unionall_pruning"
  "bench_e10_unionall_pruning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e10_unionall_pruning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
