# Empty compiler generated dependencies file for bench_e1_predicate_introduction.
# This may be replaced when dependencies are built.
