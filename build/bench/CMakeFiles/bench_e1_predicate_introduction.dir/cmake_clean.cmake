file(REMOVE_RECURSE
  "CMakeFiles/bench_e1_predicate_introduction.dir/bench_e1_predicate_introduction.cc.o"
  "CMakeFiles/bench_e1_predicate_introduction.dir/bench_e1_predicate_introduction.cc.o.d"
  "bench_e1_predicate_introduction"
  "bench_e1_predicate_introduction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e1_predicate_introduction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
