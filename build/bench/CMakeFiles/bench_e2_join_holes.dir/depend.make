# Empty dependencies file for bench_e2_join_holes.
# This may be replaced when dependencies are built.
