file(REMOVE_RECURSE
  "CMakeFiles/bench_e2_join_holes.dir/bench_e2_join_holes.cc.o"
  "CMakeFiles/bench_e2_join_holes.dir/bench_e2_join_holes.cc.o.d"
  "bench_e2_join_holes"
  "bench_e2_join_holes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e2_join_holes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
