file(REMOVE_RECURSE
  "CMakeFiles/bench_e6_fd_sort.dir/bench_e6_fd_sort.cc.o"
  "CMakeFiles/bench_e6_fd_sort.dir/bench_e6_fd_sort.cc.o.d"
  "bench_e6_fd_sort"
  "bench_e6_fd_sort.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e6_fd_sort.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
