# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/storage_test[1]_include.cmake")
include("/root/repo/build/tests/stats_test[1]_include.cmake")
include("/root/repo/build/tests/sql_test[1]_include.cmake")
include("/root/repo/build/tests/exec_test[1]_include.cmake")
include("/root/repo/build/tests/constraints_test[1]_include.cmake")
include("/root/repo/build/tests/mining_test[1]_include.cmake")
include("/root/repo/build/tests/mv_test[1]_include.cmake")
include("/root/repo/build/tests/optimizer_test[1]_include.cmake")
include("/root/repo/build/tests/engine_test[1]_include.cmake")
include("/root/repo/build/tests/workload_test[1]_include.cmake")
include("/root/repo/build/tests/extensions_test[1]_include.cmake")
include("/root/repo/build/tests/smj_test[1]_include.cmake")
include("/root/repo/build/tests/fuzz_differential_test[1]_include.cmake")
include("/root/repo/build/tests/explain_test[1]_include.cmake")
