file(REMOVE_RECURSE
  "CMakeFiles/smj_test.dir/smj_test.cc.o"
  "CMakeFiles/smj_test.dir/smj_test.cc.o.d"
  "smj_test"
  "smj_test.pdb"
  "smj_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smj_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
