# Empty dependencies file for smj_test.
# This may be replaced when dependencies are built.
