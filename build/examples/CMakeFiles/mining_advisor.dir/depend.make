# Empty dependencies file for mining_advisor.
# This may be replaced when dependencies are built.
