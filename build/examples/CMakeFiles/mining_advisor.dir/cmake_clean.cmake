file(REMOVE_RECURSE
  "CMakeFiles/mining_advisor.dir/mining_advisor.cpp.o"
  "CMakeFiles/mining_advisor.dir/mining_advisor.cpp.o.d"
  "mining_advisor"
  "mining_advisor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mining_advisor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
