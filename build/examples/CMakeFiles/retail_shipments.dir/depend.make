# Empty dependencies file for retail_shipments.
# This may be replaced when dependencies are built.
