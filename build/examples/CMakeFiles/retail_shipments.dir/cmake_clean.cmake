file(REMOVE_RECURSE
  "CMakeFiles/retail_shipments.dir/retail_shipments.cpp.o"
  "CMakeFiles/retail_shipments.dir/retail_shipments.cpp.o.d"
  "retail_shipments"
  "retail_shipments.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/retail_shipments.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
