# Empty compiler generated dependencies file for project_tracking.
# This may be replaced when dependencies are built.
