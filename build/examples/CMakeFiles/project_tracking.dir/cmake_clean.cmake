file(REMOVE_RECURSE
  "CMakeFiles/project_tracking.dir/project_tracking.cpp.o"
  "CMakeFiles/project_tracking.dir/project_tracking.cpp.o.d"
  "project_tracking"
  "project_tracking.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/project_tracking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
