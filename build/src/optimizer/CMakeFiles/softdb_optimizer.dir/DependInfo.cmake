
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/optimizer/cardinality.cc" "src/optimizer/CMakeFiles/softdb_optimizer.dir/cardinality.cc.o" "gcc" "src/optimizer/CMakeFiles/softdb_optimizer.dir/cardinality.cc.o.d"
  "/root/repo/src/optimizer/plan_cache.cc" "src/optimizer/CMakeFiles/softdb_optimizer.dir/plan_cache.cc.o" "gcc" "src/optimizer/CMakeFiles/softdb_optimizer.dir/plan_cache.cc.o.d"
  "/root/repo/src/optimizer/planner.cc" "src/optimizer/CMakeFiles/softdb_optimizer.dir/planner.cc.o" "gcc" "src/optimizer/CMakeFiles/softdb_optimizer.dir/planner.cc.o.d"
  "/root/repo/src/optimizer/range_analysis.cc" "src/optimizer/CMakeFiles/softdb_optimizer.dir/range_analysis.cc.o" "gcc" "src/optimizer/CMakeFiles/softdb_optimizer.dir/range_analysis.cc.o.d"
  "/root/repo/src/optimizer/rewriter.cc" "src/optimizer/CMakeFiles/softdb_optimizer.dir/rewriter.cc.o" "gcc" "src/optimizer/CMakeFiles/softdb_optimizer.dir/rewriter.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/softdb_common.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/softdb_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/plan/CMakeFiles/softdb_plan.dir/DependInfo.cmake"
  "/root/repo/build/src/exec/CMakeFiles/softdb_exec.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/softdb_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/constraints/CMakeFiles/softdb_constraints.dir/DependInfo.cmake"
  "/root/repo/build/src/mv/CMakeFiles/softdb_mv.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
