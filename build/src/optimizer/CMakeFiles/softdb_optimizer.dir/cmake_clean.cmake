file(REMOVE_RECURSE
  "CMakeFiles/softdb_optimizer.dir/cardinality.cc.o"
  "CMakeFiles/softdb_optimizer.dir/cardinality.cc.o.d"
  "CMakeFiles/softdb_optimizer.dir/plan_cache.cc.o"
  "CMakeFiles/softdb_optimizer.dir/plan_cache.cc.o.d"
  "CMakeFiles/softdb_optimizer.dir/planner.cc.o"
  "CMakeFiles/softdb_optimizer.dir/planner.cc.o.d"
  "CMakeFiles/softdb_optimizer.dir/range_analysis.cc.o"
  "CMakeFiles/softdb_optimizer.dir/range_analysis.cc.o.d"
  "CMakeFiles/softdb_optimizer.dir/rewriter.cc.o"
  "CMakeFiles/softdb_optimizer.dir/rewriter.cc.o.d"
  "libsoftdb_optimizer.a"
  "libsoftdb_optimizer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/softdb_optimizer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
