# Empty compiler generated dependencies file for softdb_optimizer.
# This may be replaced when dependencies are built.
