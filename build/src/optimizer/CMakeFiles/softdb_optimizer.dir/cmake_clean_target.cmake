file(REMOVE_RECURSE
  "libsoftdb_optimizer.a"
)
