
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/constraints/column_offset_sc.cc" "src/constraints/CMakeFiles/softdb_constraints.dir/column_offset_sc.cc.o" "gcc" "src/constraints/CMakeFiles/softdb_constraints.dir/column_offset_sc.cc.o.d"
  "/root/repo/src/constraints/domain_sc.cc" "src/constraints/CMakeFiles/softdb_constraints.dir/domain_sc.cc.o" "gcc" "src/constraints/CMakeFiles/softdb_constraints.dir/domain_sc.cc.o.d"
  "/root/repo/src/constraints/fd_sc.cc" "src/constraints/CMakeFiles/softdb_constraints.dir/fd_sc.cc.o" "gcc" "src/constraints/CMakeFiles/softdb_constraints.dir/fd_sc.cc.o.d"
  "/root/repo/src/constraints/ic_registry.cc" "src/constraints/CMakeFiles/softdb_constraints.dir/ic_registry.cc.o" "gcc" "src/constraints/CMakeFiles/softdb_constraints.dir/ic_registry.cc.o.d"
  "/root/repo/src/constraints/inclusion_sc.cc" "src/constraints/CMakeFiles/softdb_constraints.dir/inclusion_sc.cc.o" "gcc" "src/constraints/CMakeFiles/softdb_constraints.dir/inclusion_sc.cc.o.d"
  "/root/repo/src/constraints/integrity.cc" "src/constraints/CMakeFiles/softdb_constraints.dir/integrity.cc.o" "gcc" "src/constraints/CMakeFiles/softdb_constraints.dir/integrity.cc.o.d"
  "/root/repo/src/constraints/join_hole_sc.cc" "src/constraints/CMakeFiles/softdb_constraints.dir/join_hole_sc.cc.o" "gcc" "src/constraints/CMakeFiles/softdb_constraints.dir/join_hole_sc.cc.o.d"
  "/root/repo/src/constraints/linear_correlation_sc.cc" "src/constraints/CMakeFiles/softdb_constraints.dir/linear_correlation_sc.cc.o" "gcc" "src/constraints/CMakeFiles/softdb_constraints.dir/linear_correlation_sc.cc.o.d"
  "/root/repo/src/constraints/predicate_sc.cc" "src/constraints/CMakeFiles/softdb_constraints.dir/predicate_sc.cc.o" "gcc" "src/constraints/CMakeFiles/softdb_constraints.dir/predicate_sc.cc.o.d"
  "/root/repo/src/constraints/sc_registry.cc" "src/constraints/CMakeFiles/softdb_constraints.dir/sc_registry.cc.o" "gcc" "src/constraints/CMakeFiles/softdb_constraints.dir/sc_registry.cc.o.d"
  "/root/repo/src/constraints/soft_constraint.cc" "src/constraints/CMakeFiles/softdb_constraints.dir/soft_constraint.cc.o" "gcc" "src/constraints/CMakeFiles/softdb_constraints.dir/soft_constraint.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/softdb_common.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/softdb_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/plan/CMakeFiles/softdb_plan.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
