file(REMOVE_RECURSE
  "libsoftdb_constraints.a"
)
