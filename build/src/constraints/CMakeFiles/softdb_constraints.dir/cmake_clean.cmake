file(REMOVE_RECURSE
  "CMakeFiles/softdb_constraints.dir/column_offset_sc.cc.o"
  "CMakeFiles/softdb_constraints.dir/column_offset_sc.cc.o.d"
  "CMakeFiles/softdb_constraints.dir/domain_sc.cc.o"
  "CMakeFiles/softdb_constraints.dir/domain_sc.cc.o.d"
  "CMakeFiles/softdb_constraints.dir/fd_sc.cc.o"
  "CMakeFiles/softdb_constraints.dir/fd_sc.cc.o.d"
  "CMakeFiles/softdb_constraints.dir/ic_registry.cc.o"
  "CMakeFiles/softdb_constraints.dir/ic_registry.cc.o.d"
  "CMakeFiles/softdb_constraints.dir/inclusion_sc.cc.o"
  "CMakeFiles/softdb_constraints.dir/inclusion_sc.cc.o.d"
  "CMakeFiles/softdb_constraints.dir/integrity.cc.o"
  "CMakeFiles/softdb_constraints.dir/integrity.cc.o.d"
  "CMakeFiles/softdb_constraints.dir/join_hole_sc.cc.o"
  "CMakeFiles/softdb_constraints.dir/join_hole_sc.cc.o.d"
  "CMakeFiles/softdb_constraints.dir/linear_correlation_sc.cc.o"
  "CMakeFiles/softdb_constraints.dir/linear_correlation_sc.cc.o.d"
  "CMakeFiles/softdb_constraints.dir/predicate_sc.cc.o"
  "CMakeFiles/softdb_constraints.dir/predicate_sc.cc.o.d"
  "CMakeFiles/softdb_constraints.dir/sc_registry.cc.o"
  "CMakeFiles/softdb_constraints.dir/sc_registry.cc.o.d"
  "CMakeFiles/softdb_constraints.dir/soft_constraint.cc.o"
  "CMakeFiles/softdb_constraints.dir/soft_constraint.cc.o.d"
  "libsoftdb_constraints.a"
  "libsoftdb_constraints.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/softdb_constraints.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
