# Empty compiler generated dependencies file for softdb_constraints.
# This may be replaced when dependencies are built.
