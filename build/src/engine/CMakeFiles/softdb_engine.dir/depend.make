# Empty dependencies file for softdb_engine.
# This may be replaced when dependencies are built.
