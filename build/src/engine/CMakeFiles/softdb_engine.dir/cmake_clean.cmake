file(REMOVE_RECURSE
  "CMakeFiles/softdb_engine.dir/softdb.cc.o"
  "CMakeFiles/softdb_engine.dir/softdb.cc.o.d"
  "libsoftdb_engine.a"
  "libsoftdb_engine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/softdb_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
