file(REMOVE_RECURSE
  "libsoftdb_engine.a"
)
