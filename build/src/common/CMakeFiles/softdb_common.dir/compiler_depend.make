# Empty compiler generated dependencies file for softdb_common.
# This may be replaced when dependencies are built.
