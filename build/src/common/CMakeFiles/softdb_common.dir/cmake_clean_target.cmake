file(REMOVE_RECURSE
  "libsoftdb_common.a"
)
