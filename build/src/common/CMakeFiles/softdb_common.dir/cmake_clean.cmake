file(REMOVE_RECURSE
  "CMakeFiles/softdb_common.dir/date.cc.o"
  "CMakeFiles/softdb_common.dir/date.cc.o.d"
  "CMakeFiles/softdb_common.dir/rng.cc.o"
  "CMakeFiles/softdb_common.dir/rng.cc.o.d"
  "CMakeFiles/softdb_common.dir/status.cc.o"
  "CMakeFiles/softdb_common.dir/status.cc.o.d"
  "CMakeFiles/softdb_common.dir/str_util.cc.o"
  "CMakeFiles/softdb_common.dir/str_util.cc.o.d"
  "CMakeFiles/softdb_common.dir/types.cc.o"
  "CMakeFiles/softdb_common.dir/types.cc.o.d"
  "CMakeFiles/softdb_common.dir/value.cc.o"
  "CMakeFiles/softdb_common.dir/value.cc.o.d"
  "libsoftdb_common.a"
  "libsoftdb_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/softdb_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
