file(REMOVE_RECURSE
  "libsoftdb_storage.a"
)
