file(REMOVE_RECURSE
  "CMakeFiles/softdb_storage.dir/catalog.cc.o"
  "CMakeFiles/softdb_storage.dir/catalog.cc.o.d"
  "CMakeFiles/softdb_storage.dir/column_vector.cc.o"
  "CMakeFiles/softdb_storage.dir/column_vector.cc.o.d"
  "CMakeFiles/softdb_storage.dir/index.cc.o"
  "CMakeFiles/softdb_storage.dir/index.cc.o.d"
  "CMakeFiles/softdb_storage.dir/schema.cc.o"
  "CMakeFiles/softdb_storage.dir/schema.cc.o.d"
  "CMakeFiles/softdb_storage.dir/table.cc.o"
  "CMakeFiles/softdb_storage.dir/table.cc.o.d"
  "libsoftdb_storage.a"
  "libsoftdb_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/softdb_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
