# Empty dependencies file for softdb_storage.
# This may be replaced when dependencies are built.
