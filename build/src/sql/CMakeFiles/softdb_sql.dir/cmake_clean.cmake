file(REMOVE_RECURSE
  "CMakeFiles/softdb_sql.dir/binder.cc.o"
  "CMakeFiles/softdb_sql.dir/binder.cc.o.d"
  "CMakeFiles/softdb_sql.dir/lexer.cc.o"
  "CMakeFiles/softdb_sql.dir/lexer.cc.o.d"
  "CMakeFiles/softdb_sql.dir/parser.cc.o"
  "CMakeFiles/softdb_sql.dir/parser.cc.o.d"
  "libsoftdb_sql.a"
  "libsoftdb_sql.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/softdb_sql.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
