file(REMOVE_RECURSE
  "libsoftdb_sql.a"
)
