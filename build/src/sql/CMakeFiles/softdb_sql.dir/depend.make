# Empty dependencies file for softdb_sql.
# This may be replaced when dependencies are built.
