file(REMOVE_RECURSE
  "CMakeFiles/softdb_mv.dir/materialized_view.cc.o"
  "CMakeFiles/softdb_mv.dir/materialized_view.cc.o.d"
  "libsoftdb_mv.a"
  "libsoftdb_mv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/softdb_mv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
