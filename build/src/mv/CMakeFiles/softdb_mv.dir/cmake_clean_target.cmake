file(REMOVE_RECURSE
  "libsoftdb_mv.a"
)
