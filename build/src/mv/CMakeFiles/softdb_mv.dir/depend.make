# Empty dependencies file for softdb_mv.
# This may be replaced when dependencies are built.
