file(REMOVE_RECURSE
  "CMakeFiles/softdb_exec.dir/operator.cc.o"
  "CMakeFiles/softdb_exec.dir/operator.cc.o.d"
  "CMakeFiles/softdb_exec.dir/operators.cc.o"
  "CMakeFiles/softdb_exec.dir/operators.cc.o.d"
  "libsoftdb_exec.a"
  "libsoftdb_exec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/softdb_exec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
