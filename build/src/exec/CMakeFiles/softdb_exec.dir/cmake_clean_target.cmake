file(REMOVE_RECURSE
  "libsoftdb_exec.a"
)
