# Empty compiler generated dependencies file for softdb_exec.
# This may be replaced when dependencies are built.
