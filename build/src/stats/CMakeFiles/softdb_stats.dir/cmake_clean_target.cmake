file(REMOVE_RECURSE
  "libsoftdb_stats.a"
)
