file(REMOVE_RECURSE
  "CMakeFiles/softdb_stats.dir/analyzer.cc.o"
  "CMakeFiles/softdb_stats.dir/analyzer.cc.o.d"
  "CMakeFiles/softdb_stats.dir/histogram.cc.o"
  "CMakeFiles/softdb_stats.dir/histogram.cc.o.d"
  "libsoftdb_stats.a"
  "libsoftdb_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/softdb_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
