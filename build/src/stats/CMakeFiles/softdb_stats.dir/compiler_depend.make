# Empty compiler generated dependencies file for softdb_stats.
# This may be replaced when dependencies are built.
