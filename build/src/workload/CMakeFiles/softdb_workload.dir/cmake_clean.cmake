file(REMOVE_RECURSE
  "CMakeFiles/softdb_workload.dir/generator.cc.o"
  "CMakeFiles/softdb_workload.dir/generator.cc.o.d"
  "CMakeFiles/softdb_workload.dir/sc_kit.cc.o"
  "CMakeFiles/softdb_workload.dir/sc_kit.cc.o.d"
  "libsoftdb_workload.a"
  "libsoftdb_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/softdb_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
