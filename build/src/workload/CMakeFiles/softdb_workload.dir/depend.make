# Empty dependencies file for softdb_workload.
# This may be replaced when dependencies are built.
