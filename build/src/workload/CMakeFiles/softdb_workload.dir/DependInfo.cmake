
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/generator.cc" "src/workload/CMakeFiles/softdb_workload.dir/generator.cc.o" "gcc" "src/workload/CMakeFiles/softdb_workload.dir/generator.cc.o.d"
  "/root/repo/src/workload/sc_kit.cc" "src/workload/CMakeFiles/softdb_workload.dir/sc_kit.cc.o" "gcc" "src/workload/CMakeFiles/softdb_workload.dir/sc_kit.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/engine/CMakeFiles/softdb_engine.dir/DependInfo.cmake"
  "/root/repo/build/src/sql/CMakeFiles/softdb_sql.dir/DependInfo.cmake"
  "/root/repo/build/src/mining/CMakeFiles/softdb_mining.dir/DependInfo.cmake"
  "/root/repo/build/src/optimizer/CMakeFiles/softdb_optimizer.dir/DependInfo.cmake"
  "/root/repo/build/src/exec/CMakeFiles/softdb_exec.dir/DependInfo.cmake"
  "/root/repo/build/src/constraints/CMakeFiles/softdb_constraints.dir/DependInfo.cmake"
  "/root/repo/build/src/mv/CMakeFiles/softdb_mv.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/softdb_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/plan/CMakeFiles/softdb_plan.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/softdb_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/softdb_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
