file(REMOVE_RECURSE
  "libsoftdb_workload.a"
)
