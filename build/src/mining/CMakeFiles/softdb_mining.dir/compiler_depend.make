# Empty compiler generated dependencies file for softdb_mining.
# This may be replaced when dependencies are built.
