file(REMOVE_RECURSE
  "CMakeFiles/softdb_mining.dir/correlation_miner.cc.o"
  "CMakeFiles/softdb_mining.dir/correlation_miner.cc.o.d"
  "CMakeFiles/softdb_mining.dir/fd_miner.cc.o"
  "CMakeFiles/softdb_mining.dir/fd_miner.cc.o.d"
  "CMakeFiles/softdb_mining.dir/hole_miner.cc.o"
  "CMakeFiles/softdb_mining.dir/hole_miner.cc.o.d"
  "CMakeFiles/softdb_mining.dir/offset_miner.cc.o"
  "CMakeFiles/softdb_mining.dir/offset_miner.cc.o.d"
  "CMakeFiles/softdb_mining.dir/selection.cc.o"
  "CMakeFiles/softdb_mining.dir/selection.cc.o.d"
  "libsoftdb_mining.a"
  "libsoftdb_mining.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/softdb_mining.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
