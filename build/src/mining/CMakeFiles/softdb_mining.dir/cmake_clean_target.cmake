file(REMOVE_RECURSE
  "libsoftdb_mining.a"
)
