
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mining/correlation_miner.cc" "src/mining/CMakeFiles/softdb_mining.dir/correlation_miner.cc.o" "gcc" "src/mining/CMakeFiles/softdb_mining.dir/correlation_miner.cc.o.d"
  "/root/repo/src/mining/fd_miner.cc" "src/mining/CMakeFiles/softdb_mining.dir/fd_miner.cc.o" "gcc" "src/mining/CMakeFiles/softdb_mining.dir/fd_miner.cc.o.d"
  "/root/repo/src/mining/hole_miner.cc" "src/mining/CMakeFiles/softdb_mining.dir/hole_miner.cc.o" "gcc" "src/mining/CMakeFiles/softdb_mining.dir/hole_miner.cc.o.d"
  "/root/repo/src/mining/offset_miner.cc" "src/mining/CMakeFiles/softdb_mining.dir/offset_miner.cc.o" "gcc" "src/mining/CMakeFiles/softdb_mining.dir/offset_miner.cc.o.d"
  "/root/repo/src/mining/selection.cc" "src/mining/CMakeFiles/softdb_mining.dir/selection.cc.o" "gcc" "src/mining/CMakeFiles/softdb_mining.dir/selection.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/softdb_common.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/softdb_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/constraints/CMakeFiles/softdb_constraints.dir/DependInfo.cmake"
  "/root/repo/build/src/plan/CMakeFiles/softdb_plan.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
