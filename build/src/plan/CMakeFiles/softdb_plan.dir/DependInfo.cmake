
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/plan/expr.cc" "src/plan/CMakeFiles/softdb_plan.dir/expr.cc.o" "gcc" "src/plan/CMakeFiles/softdb_plan.dir/expr.cc.o.d"
  "/root/repo/src/plan/logical_plan.cc" "src/plan/CMakeFiles/softdb_plan.dir/logical_plan.cc.o" "gcc" "src/plan/CMakeFiles/softdb_plan.dir/logical_plan.cc.o.d"
  "/root/repo/src/plan/predicate.cc" "src/plan/CMakeFiles/softdb_plan.dir/predicate.cc.o" "gcc" "src/plan/CMakeFiles/softdb_plan.dir/predicate.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/softdb_common.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/softdb_storage.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
