file(REMOVE_RECURSE
  "CMakeFiles/softdb_plan.dir/expr.cc.o"
  "CMakeFiles/softdb_plan.dir/expr.cc.o.d"
  "CMakeFiles/softdb_plan.dir/logical_plan.cc.o"
  "CMakeFiles/softdb_plan.dir/logical_plan.cc.o.d"
  "CMakeFiles/softdb_plan.dir/predicate.cc.o"
  "CMakeFiles/softdb_plan.dir/predicate.cc.o.d"
  "libsoftdb_plan.a"
  "libsoftdb_plan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/softdb_plan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
