file(REMOVE_RECURSE
  "libsoftdb_plan.a"
)
