# Empty compiler generated dependencies file for softdb_plan.
# This may be replaced when dependencies are built.
