// E6 — FD-driven GROUP BY / ORDER BY pruning ([29], §2). With the exact FD
// c_nationkey -> c_regionkey held as an absolute SC, the optimizer removes
// c_regionkey from grouping keys (carried, not compared) and from sort keys
// (a key determined by the prefix cannot affect the order). Paper claim:
// "most effective to optimize group by and order by queries ... can save
// on sorting costs and sometimes eliminate sorting from the query plan
// completely."

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>

#include "bench/bench_util.h"

namespace softdb::bench {
namespace {

struct QuerySpec {
  const char* label;
  const char* sql;
  const char* expected_rule;  // Substring or "" when none expected.
};

const QuerySpec kQueries[] = {
    {"group by nation,region",
     "SELECT c_nationkey, c_regionkey, COUNT(*) AS n FROM customer "
     "GROUP BY c_nationkey, c_regionkey ORDER BY c_nationkey",
     "fd-groupby-prune"},
    {"order by nation,region,key",
     "SELECT c_custkey, c_nationkey, c_regionkey FROM customer "
     "ORDER BY c_nationkey, c_regionkey, c_custkey",
     "fd-orderby-prune"},
    {"region first: no prune",
     "SELECT c_custkey FROM customer ORDER BY c_regionkey, c_custkey",
     ""},
};

double MedianLatencyUs(SoftDb* db, const std::string& sql, int runs = 7) {
  std::vector<double> samples;
  for (int i = 0; i < runs; ++i) {
    const auto start = std::chrono::steady_clock::now();
    MustExecute(db, sql);
    samples.push_back(std::chrono::duration<double, std::micro>(
                          std::chrono::steady_clock::now() - start)
                          .count());
  }
  std::sort(samples.begin(), samples.end());
  return samples[samples.size() / 2];
}

void PrintExperimentTable() {
  Banner("E6: FD SC c_nationkey -> c_regionkey prunes GROUP BY / ORDER BY");
  TablePrinter table({"query", "rule fired", "rows", "latency base (us)",
                      "latency w/ rule", "answers equal"});
  for (const QuerySpec& q : kQueries) {
    auto db = MakeWorkloadDb();
    if (!RegisterCustomerRegionFd(db.get()).ok()) std::abort();

    db->options().enable_fd_pruning = false;
    auto base = MustExecute(db.get(), q.sql);
    const double base_us = MedianLatencyUs(db.get(), q.sql);
    db->options().enable_fd_pruning = true;
    db->plan_cache().Clear();
    auto with = MustExecute(db.get(), q.sql);
    const double with_us = MedianLatencyUs(db.get(), q.sql);

    bool fired = false;
    for (const auto& rule : with.applied_rules) {
      fired = fired || (q.expected_rule[0] != '\0' &&
                        rule.find(q.expected_rule) != std::string::npos);
    }
    bool equal = with.rows.NumRows() == base.rows.NumRows();
    for (std::size_t i = 0; equal && i < with.rows.NumRows(); ++i) {
      for (std::size_t c = 0; c < with.rows.rows[i].size(); ++c) {
        const Value& a = with.rows.rows[i][c];
        const Value& b = base.rows.rows[i][c];
        equal = equal && (a.GroupEquals(b) || (a.is_null() && b.is_null()));
      }
    }
    table.PrintRow({q.label, fired ? "yes" : "no", FmtU(with.rows.NumRows()),
                    Fmt("%.0f", base_us), Fmt("%.0f", with_us),
                    equal ? "yes" : "NO!"});
    if (!equal) std::abort();
  }
  table.PrintRule();
  std::puts(
      "shape check: pruned grouping/sort keys mean fewer comparisons and "
      "hash work with identical output; determinant-last orderings are "
      "(correctly) not prunable.");
}

void BM_E6_GroupByWithFd(::benchmark::State& state) {
  static auto db = [] {
    auto d = MakeWorkloadDb();
    if (!RegisterCustomerRegionFd(d.get()).ok()) std::abort();
    return d;
  }();
  db->options().enable_fd_pruning = true;
  db->plan_cache().Clear();
  for (auto _ : state) {
    auto r = MustExecute(db.get(), kQueries[0].sql);
    ::benchmark::DoNotOptimize(r.rows.NumRows());
  }
}
BENCHMARK(BM_E6_GroupByWithFd);

void BM_E6_GroupByBaseline(::benchmark::State& state) {
  static auto db = MakeWorkloadDb();
  db->options().enable_fd_pruning = false;
  db->plan_cache().Clear();
  for (auto _ : state) {
    auto r = MustExecute(db.get(), kQueries[0].sql);
    ::benchmark::DoNotOptimize(r.rows.NumRows());
  }
}
BENCHMARK(BM_E6_GroupByBaseline);

}  // namespace
}  // namespace softdb::bench

int main(int argc, char** argv) {
  softdb::bench::PrintExperimentTable();
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
