// SIMD batch kernels + block zone maps on the E1 scan+filter shape.
//
// Two layers of measurement:
//  - google-benchmark microbenches of the raw mask kernels against
//    hand-rolled branchy scalar loops (same semantics), isolating the
//    per-element win of branch-free masks + bitmask compaction;
//  - a macro A/B over the purchase table (physically clustered on pu_key /
//    order_date, like real order tables): the same selective scan+filter
//    executed (1) on the batch engine with kernels disabled — the PR-1
//    vectorized baseline — (2) with kernels, and (3) with kernels plus
//    mined kBlockZoneMap SCs so the planner skips non-matching 1024-row
//    blocks outright. `--json` writes BENCH_E1_SIMD.json with the host's
//    actual SIMD capability recorded next to host_threads.

#include <benchmark/benchmark.h>

#include <cstdint>
#include <vector>

#include "bench/bench_util.h"
#include "exec/kernels.h"

namespace softdb::bench {
namespace {

// The selective scan+filter shape: a clustered-key range that overlaps one
// block in twenty, plus two compute conjuncts that keep the kernels busy
// on whatever survives. All conjuncts are statically error-free, so the
// zone-map gate admits the scan. pu_key is the PK (no secondary index), so
// the scan stays sequential — exactly the shape zone maps accelerate.
const char* kSelective =
    "SELECT pu_key, quantity, price FROM purchase "
    "WHERE pu_key BETWEEN 10000 AND 10999 AND quantity < 25 "
    "AND price > 100.0";

struct ConfigSample {
  double sec_per_query = 0;
  QueryResult warm;
};

ConfigSample TimeConfig(SoftDb* db, const std::string& sql, bool kernels_on,
                        bool zone_maps_on, int iterations = 60) {
  db->options().use_vectorized = true;
  db->options().use_kernels = kernels_on;
  db->options().enable_zone_maps = zone_maps_on;
  db->plan_cache().Clear();
  ConfigSample out;
  out.warm = MustExecute(db, sql);
  const auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < iterations; ++i) {
    volatile std::uint64_t sink = MustExecute(db, sql).rows.NumRows();
    (void)sink;
  }
  const auto t1 = std::chrono::steady_clock::now();
  out.sec_per_query =
      std::chrono::duration<double>(t1 - t0).count() / iterations;
  return out;
}

void PrintExperimentTable() {
  Banner(
      "SIMD kernels + zone maps -- selective scan+filter on purchase "
      "(clustered pu_key range, compute conjuncts); capability: " +
      kernels::SimdCapability());
  auto db = MakeWorkloadDb();

  auto scalar = TimeConfig(db.get(), kSelective, /*kernels=*/false,
                           /*zone_maps=*/false);
  auto kernel = TimeConfig(db.get(), kSelective, /*kernels=*/true,
                           /*zone_maps=*/false);
  Status mined = db->MineZoneMaps("purchase");
  if (!mined.ok()) std::abort();
  auto zoned = TimeConfig(db.get(), kSelective, /*kernels=*/true,
                          /*zone_maps=*/true);

  if (scalar.warm.rows.NumRows() != kernel.warm.rows.NumRows() ||
      scalar.warm.rows.NumRows() != zoned.warm.rows.NumRows()) {
    std::fprintf(stderr, "kernel/zone-map A/B answer mismatch!\n");
    std::abort();
  }

  TablePrinter table({"config", "sec/query", "speedup", "rows scanned",
                      "blocks skipped"});
  auto row = [&](const char* name, const ConfigSample& s) {
    table.PrintRow(
        {name, Fmt("%.6f", s.sec_per_query),
         Fmt("%.2fx", s.sec_per_query > 0
                          ? scalar.sec_per_query / s.sec_per_query
                          : 0.0),
         FmtU(s.warm.exec_stats.rows_scanned),
         FmtU(s.warm.exec_stats.blocks_skipped) + "/" +
             FmtU(s.warm.exec_stats.blocks_total)});
  };
  row("batch scalar", scalar);
  row("batch kernel", kernel);
  row("kernel+zonemap", zoned);
  table.PrintRule();
  std::puts(
      "shape check: kernels shave the per-row filter cost; zone maps "
      "remove 18 of 20 blocks before any row is touched (the key range "
      "straddles one block boundary), so the combined config wins by "
      "block elimination times kernel throughput.");
}

void EmitJson() {
  auto db = MakeWorkloadDb();

  // Row-engine reference for scale.
  db->options().use_vectorized = false;
  db->options().enable_zone_maps = false;
  db->plan_cache().Clear();
  (void)MustExecute(db.get(), kSelective);
  const auto r0 = std::chrono::steady_clock::now();
  for (int i = 0; i < 20; ++i) {
    volatile std::uint64_t sink =
        MustExecute(db.get(), kSelective).rows.NumRows();
    (void)sink;
  }
  const double row_sec =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - r0)
          .count() /
      20;

  auto scalar = TimeConfig(db.get(), kSelective, false, false);
  auto kernel = TimeConfig(db.get(), kSelective, true, false);
  if (!db->MineZoneMaps("purchase").ok()) std::abort();
  auto zoned = TimeConfig(db.get(), kSelective, true, true);
  if (scalar.warm.rows.NumRows() != zoned.warm.rows.NumRows()) std::abort();

  JsonWriter j;
  j.Add("bench", "E1_SIMD");
  j.Add("query", kSelective);
  j.Add("host_threads",
        static_cast<std::uint64_t>(std::thread::hardware_concurrency()));
  j.Add("simd_capability", kernels::SimdCapability());
  j.Add("rows", scalar.warm.rows.NumRows());
  j.Add("row_engine_sec_per_query", row_sec);
  j.Add("batch_scalar_sec_per_query", scalar.sec_per_query);
  j.Add("batch_kernel_sec_per_query", kernel.sec_per_query);
  j.Add("kernel_zonemap_sec_per_query", zoned.sec_per_query);
  j.Add("kernel_speedup_vs_scalar",
        kernel.sec_per_query > 0
            ? scalar.sec_per_query / kernel.sec_per_query
            : 0.0);
  j.Add("kernel_zonemap_speedup_vs_scalar",
        zoned.sec_per_query > 0 ? scalar.sec_per_query / zoned.sec_per_query
                                : 0.0);
  j.Add("blocks_skipped", zoned.warm.exec_stats.blocks_skipped);
  j.Add("blocks_total", zoned.warm.exec_stats.blocks_total);
  j.Add("rows_scanned_scalar", scalar.warm.exec_stats.rows_scanned);
  j.Add("rows_scanned_zonemap", zoned.warm.exec_stats.rows_scanned);
  j.WriteFile("BENCH_E1_SIMD.json");
}

// ------------------------------------------------ kernel microbenches

constexpr std::size_t kN = 1024;

struct MaskFixture {
  std::vector<std::int64_t> i64;
  std::vector<double> f64;
  std::vector<std::uint8_t> nulls;
  std::vector<std::uint8_t> mask;
  std::vector<SelIdx> sel;

  MaskFixture() : i64(kN), f64(kN), nulls(kN, 0), mask(kN), sel(kN) {
    for (std::size_t i = 0; i < kN; ++i) {
      i64[i] = static_cast<std::int64_t>((i * 2654435761u) % 1000);
      f64[i] = static_cast<double>((i * 40503u) % 1000);
      if (i % 31 == 0) nulls[i] = 1;
    }
  }
  void ResetSel() {
    for (std::size_t i = 0; i < kN; ++i) sel[i] = static_cast<SelIdx>(i);
  }
};

void BM_CompareMaskI64_Kernel(::benchmark::State& state) {
  MaskFixture fx;
  for (auto _ : state) {
    fx.ResetSel();
    kernels::CompareMaskI64(fx.i64.data(), fx.nulls.data(), kN, CompareOp::kLt,
                            500, fx.mask.data());
    const std::size_t n =
        kernels::FilterSelByMask(fx.mask.data(), fx.sel.data(), kN);
    ::benchmark::DoNotOptimize(n);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * kN);
}
BENCHMARK(BM_CompareMaskI64_Kernel);

// The branchy per-row formulation the kernels replace (value test and
// selection append fused, one branch per element).
void BM_CompareMaskI64_Branchy(::benchmark::State& state) {
  MaskFixture fx;
  for (auto _ : state) {
    std::size_t n = 0;
    for (std::size_t i = 0; i < kN; ++i) {
      if (!fx.nulls[i] && fx.i64[i] < 500) {
        fx.sel[n++] = static_cast<SelIdx>(i);
      }
    }
    ::benchmark::DoNotOptimize(n);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * kN);
}
BENCHMARK(BM_CompareMaskI64_Branchy);

void BM_CompareMaskF64_Kernel(::benchmark::State& state) {
  MaskFixture fx;
  for (auto _ : state) {
    fx.ResetSel();
    kernels::CompareMaskF64(fx.f64.data(), fx.nulls.data(), kN, CompareOp::kGt,
                            250.0, fx.mask.data());
    const std::size_t n =
        kernels::FilterSelByMask(fx.mask.data(), fx.sel.data(), kN);
    ::benchmark::DoNotOptimize(n);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * kN);
}
BENCHMARK(BM_CompareMaskF64_Kernel);

void BM_CompareMaskF64_Branchy(::benchmark::State& state) {
  MaskFixture fx;
  for (auto _ : state) {
    std::size_t n = 0;
    for (std::size_t i = 0; i < kN; ++i) {
      if (!fx.nulls[i] && fx.f64[i] > 250.0) {
        fx.sel[n++] = static_cast<SelIdx>(i);
      }
    }
    ::benchmark::DoNotOptimize(n);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * kN);
}
BENCHMARK(BM_CompareMaskF64_Branchy);

void BM_AndMask(::benchmark::State& state) {
  MaskFixture fx;
  std::vector<std::uint8_t> other(kN, 1);
  kernels::CompareMaskI64(fx.i64.data(), fx.nulls.data(), kN, CompareOp::kLt,
                          500, fx.mask.data());
  for (auto _ : state) {
    kernels::AndMask(other.data(), kN, fx.mask.data());
    ::benchmark::DoNotOptimize(fx.mask.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * kN);
}
BENCHMARK(BM_AndMask);

}  // namespace
}  // namespace softdb::bench

int main(int argc, char** argv) {
  const bool emit_json = softdb::bench::StripJsonFlag(&argc, argv);
  softdb::bench::PrintExperimentTable();
  if (emit_json) softdb::bench::EmitJson();
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
