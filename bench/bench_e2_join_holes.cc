// E2 — Join-hole range trimming ([8], §2, §4.3). Knowing the empty
// rectangles of the (o_totalprice, c_acctbal) joint distribution over
// orders ⋈ customer lets the optimizer prune the join entirely when the
// query rectangle falls inside a hole, and trim range predicates when it
// straddles one. Paper claim: "good optimization has been demonstrated
// through range restriction using the holes ... can reduce the number of
// pages that need to be scanned for the join."

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "common/str_util.h"

namespace softdb::bench {
namespace {

std::string HoleQuery(double a_lo, double a_hi, double b_lo, double b_hi) {
  return StrFormat(
      "SELECT o_orderkey FROM orders JOIN customer ON o_custkey = c_custkey "
      "WHERE o_totalprice BETWEEN %.0f AND %.0f "
      "AND c_acctbal BETWEEN %.0f AND %.0f",
      a_lo, a_hi, b_lo, b_hi);
}

void PrintExperimentTable() {
  Banner(
      "E2: join holes -- planted hole: o_totalprice in [8000,10000] x "
      "c_acctbal in [0,2000] is empty over orders JOIN customer");

  struct Scenario {
    const char* label;
    double a_lo, a_hi, b_lo, b_hi;
  };
  const Scenario scenarios[] = {
      {"inside hole", 8500, 9500, 500, 1500},
      {"straddles (high)", 9000, 12000, 500, 1500},
      {"straddles (low)", 6000, 9000, 500, 1500},
      {"spans hole", 7000, 11000, 500, 1500},
      {"outside hole", 12000, 15000, 500, 1500},
      {"B outside", 8500, 9500, 3000, 5000},
  };

  TablePrinter table({"query rect", "rows out", "pages base", "pages w/ SC",
                      "join input base", "join input w/SC", "rule"});
  for (const Scenario& s : scenarios) {
    auto db = MakeWorkloadDb();
    const std::string query = HoleQuery(s.a_lo, s.a_hi, s.b_lo, s.b_hi);

    auto base = MustExecute(db.get(), query);

    Status st = RegisterOrdersHoleSc(db.get()).status();
    if (!st.ok()) std::abort();
    db->plan_cache().Clear();
    auto with = MustExecute(db.get(), query);
    if (with.rows.NumRows() != base.rows.NumRows()) {
      std::fprintf(stderr, "E2: answer mismatch on %s\n", s.label);
      std::abort();
    }

    std::string rule = "-";
    for (const auto& r : with.applied_rules) {
      if (r.find("join-hole-prune") != std::string::npos) rule = "prune";
      if (r.find("join-hole-trim") != std::string::npos) rule = "trim";
    }
    table.PrintRow({s.label, FmtU(with.rows.NumRows()),
                    FmtU(base.exec_stats.pages_read),
                    FmtU(with.exec_stats.pages_read),
                    FmtU(base.exec_stats.rows_emitted),
                    FmtU(with.exec_stats.rows_emitted), rule});
  }
  table.PrintRule();
  std::puts(
      "shape check: in-hole queries answer from metadata alone (no scan); "
      "straddling queries trim the range, shrinking the rows feeding the "
      "join; disjoint queries are untouched (no degradation). Mid-range "
      "holes (the 'spans hole' row) would need range splitting, which [8] "
      "sketches and we note as future work.");
}

// --json: machine-readable report. The A/B covers the two shapes this
// experiment exercises — a plain scan+filter over orders, and the
// orders ⋈ customer hash join the holes trim — each measured on the row
// and the vectorized engine.
void EmitJson() {
  auto db = MakeWorkloadDb();
  const std::string kScanFilter =
      "SELECT o_orderkey, o_totalprice FROM orders "
      "WHERE o_custkey - 200 >= 0 AND o_totalprice * 2 < 16000 "
      "AND o_status = 'F'";
  auto scan_ab = MeasureEngineAb(db.get(), kScanFilter);
  const std::string kJoin =
      "SELECT o_orderkey FROM orders JOIN customer ON o_custkey = c_custkey "
      "WHERE o_totalprice < 5000 AND c_acctbal < 2000";
  auto join_ab = MeasureEngineAb(db.get(), kJoin);

  JsonWriter j;
  j.Add("bench", "E2");
  j.Add("scan_filter_query", kScanFilter);
  j.Add("row_engine_sec_per_query", scan_ab.row_sec);
  j.Add("batch_engine_sec_per_query", scan_ab.batch_sec);
  j.Add("vectorized_speedup", scan_ab.speedup);
  j.Add("join_query", kJoin);
  j.Add("join_row_engine_sec_per_query", join_ab.row_sec);
  j.Add("join_batch_engine_sec_per_query", join_ab.batch_sec);
  j.Add("join_vectorized_speedup", join_ab.speedup);
  j.Add("ab_iterations", scan_ab.iterations);
  j.WriteFile("BENCH_E2.json");
}

// --threads 1,4: morsel-parallel sweep of the orders ⋈ customer hash join
// (partitioned parallel build + probe). Emits BENCH_E2_PAR.json.
void EmitParallelJson(const std::vector<std::size_t>& thread_counts) {
  auto db = MakeWorkloadDb();
  const std::string kJoin =
      "SELECT o_orderkey FROM orders JOIN customer ON o_custkey = c_custkey "
      "WHERE o_totalprice < 5000 AND c_acctbal < 2000";
  auto samples = MeasureParallelSweep(db.get(), kJoin, thread_counts);
  WriteParallelJson("E2", kJoin, samples);
}

void BM_E2_InHoleWithSc(::benchmark::State& state) {
  static auto db = [] {
    auto d = MakeWorkloadDb();
    if (!RegisterOrdersHoleSc(d.get()).ok()) std::abort();
    return d;
  }();
  const std::string query = HoleQuery(8500, 9500, 500, 1500);
  for (auto _ : state) {
    auto r = MustExecute(db.get(), query);
    ::benchmark::DoNotOptimize(r.rows.NumRows());
  }
}
BENCHMARK(BM_E2_InHoleWithSc);

void BM_E2_InHoleBaseline(::benchmark::State& state) {
  static auto db = MakeWorkloadDb();
  const std::string query = HoleQuery(8500, 9500, 500, 1500);
  for (auto _ : state) {
    auto r = MustExecute(db.get(), query);
    ::benchmark::DoNotOptimize(r.rows.NumRows());
  }
}
BENCHMARK(BM_E2_InHoleBaseline);

}  // namespace
}  // namespace softdb::bench

int main(int argc, char** argv) {
  const bool emit_json = softdb::bench::StripJsonFlag(&argc, argv);
  std::vector<std::size_t> thread_counts;
  const bool sweep_threads =
      softdb::bench::StripThreadsFlag(&argc, argv, &thread_counts);
  softdb::bench::PrintExperimentTable();
  if (emit_json) softdb::bench::EmitJson();
  if (sweep_threads) softdb::bench::EmitParallelJson(thread_counts);
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
