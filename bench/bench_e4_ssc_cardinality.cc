// E4 — SSC twinned predicates for cardinality estimation (§5, §5.1). The
// paper's project example: `start_date <= d AND end_date >= d` suffers
// under attribute independence because the columns are tightly correlated;
// the SSC `end_date <= start_date + 30 (conf ~90%)` lets the optimizer twin
// the end_date predicate onto start_date, collapsing the conjunction onto
// one column where the histogram is accurate, with a confidence-factor
// adjustment. Metric: q-error = max(est/actual, actual/est).

#include <benchmark/benchmark.h>

#include <cmath>

#include "bench/bench_util.h"
#include "common/date.h"
#include "common/str_util.h"

namespace softdb::bench {
namespace {

double QError(double estimate, double actual) {
  const double e = std::max(estimate, 0.5);
  const double a = std::max(actual, 0.5);
  return std::max(e / a, a / e);
}

void PrintExperimentTable() {
  Banner(
      "E4: SSC twinning for cardinality -- 'projects active on day d' "
      "(start_date <= d AND end_date >= d), SSC: duration in [0,30] d "
      "(~90%)");

  auto db = MakeWorkloadDb();
  if (!RegisterProjectWindowSc(db.get()).ok()) std::abort();

  TablePrinter table({"day d", "actual", "est indep.", "est twinned",
                      "q-err indep.", "q-err twinned"});
  double sum_q_base = 0, sum_q_twin = 0, max_q_base = 0, max_q_twin = 0;
  int n = 0;
  for (const char* day :
       {"1999-03-01", "1999-06-15", "1999-10-01", "2000-02-01",
        "2000-06-15", "2000-10-01"}) {
    const std::string query = StrFormat(
        "SELECT * FROM project WHERE start_date <= DATE '%s' "
        "AND end_date >= DATE '%s'",
        day, day);

    db->options().use_twins_in_estimation = true;
    db->plan_cache().Clear();
    auto twinned = MustExecute(db.get(), query);
    db->options().use_twins_in_estimation = false;
    db->plan_cache().Clear();
    auto baseline = MustExecute(db.get(), query);

    const double actual = static_cast<double>(twinned.rows.NumRows());
    const double q_base = QError(baseline.estimated_rows, actual);
    const double q_twin = QError(twinned.estimated_rows, actual);
    sum_q_base += q_base;
    sum_q_twin += q_twin;
    max_q_base = std::max(max_q_base, q_base);
    max_q_twin = std::max(max_q_twin, q_twin);
    ++n;
    table.PrintRow({day, Fmt("%.0f", actual),
                    Fmt("%.1f", baseline.estimated_rows),
                    Fmt("%.1f", twinned.estimated_rows),
                    Fmt("%.1f", q_base), Fmt("%.1f", q_twin)});
  }
  table.PrintRule();
  table.PrintRow({"mean / max", "",
                  Fmt("mean %.1f", sum_q_base / n),
                  Fmt("mean %.1f", sum_q_twin / n),
                  Fmt("max %.1f", max_q_base), Fmt("max %.1f", max_q_twin)});
  table.PrintRule();

  // Second shape: the twin must never hurt a query it cannot help.
  Banner("E4b: twinning is bounded -- equality on ship_date (purchase)");
  if (!RegisterShipWindowSc(db.get()).ok()) std::abort();
  TablePrinter t2({"query", "actual", "est indep.", "est twinned"});
  const std::string eq_query =
      "SELECT * FROM purchase WHERE ship_date = DATE '1999-12-15'";
  db->options().use_twins_in_estimation = true;
  db->plan_cache().Clear();
  auto tw = MustExecute(db.get(), eq_query);
  db->options().use_twins_in_estimation = false;
  db->plan_cache().Clear();
  auto bs = MustExecute(db.get(), eq_query);
  t2.PrintRow({"ship_date = d", FmtU(tw.rows.NumRows()),
               Fmt("%.1f", bs.estimated_rows), Fmt("%.1f", tw.estimated_rows)});
  t2.PrintRule();

  // Third shape: §5's second example — "projects completed in 5 days" —
  // estimated from the virtual-column statistics the offset SC keeps.
  Banner(
      "E4c: duration predicates via virtual-column stats "
      "(end_date - start_date <= N)");
  db->options().use_twins_in_estimation = true;
  TablePrinter t3({"N (days)", "actual", "est default", "est virt-col",
                   "q-err default", "q-err virt-col"});
  for (int n : {3, 5, 10, 30, 60}) {
    const std::string dur_query = StrFormat(
        "SELECT * FROM project WHERE end_date - start_date <= %d", n);
    db->plan_cache().Clear();
    auto smart = MustExecute(db.get(), dur_query);
    db->options().use_twins_in_estimation = false;
    db->plan_cache().Clear();
    auto plain = MustExecute(db.get(), dur_query);
    db->options().use_twins_in_estimation = true;
    const double actual = static_cast<double>(smart.rows.NumRows());
    t3.PrintRow({FmtU(n), Fmt("%.0f", actual),
                 Fmt("%.1f", plain.estimated_rows),
                 Fmt("%.1f", smart.estimated_rows),
                 Fmt("%.1f", QError(plain.estimated_rows, actual)),
                 Fmt("%.1f", QError(smart.estimated_rows, actual))});
  }
  t3.PrintRule();
  std::puts(
      "shape check: independence overestimates the correlated-range query "
      "by an order of magnitude; the twinned estimate lands within a small "
      "factor of actual, never degrades the single-column case, and the "
      "virtual-column histogram tracks duration predicates across N.");
}

void BM_E4_EstimateWithTwins(::benchmark::State& state) {
  static auto db = [] {
    auto d = MakeWorkloadDb();
    if (!RegisterProjectWindowSc(d.get()).ok()) std::abort();
    return d;
  }();
  db->options().use_twins_in_estimation = true;
  for (auto _ : state) {
    auto r = db->Explain(
        "SELECT * FROM project WHERE start_date <= DATE '1999-10-01' "
        "AND end_date >= DATE '1999-10-01'");
    ::benchmark::DoNotOptimize(r.ok());
  }
}
BENCHMARK(BM_E4_EstimateWithTwins);

}  // namespace
}  // namespace softdb::bench

int main(int argc, char** argv) {
  softdb::bench::PrintExperimentTable();
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
