// E3 — Join elimination over referential constraints ([6], §2). When a
// query joins child to parent on an FK, uses no parent columns, and the
// parent is unfiltered, the join is redundant: every child row matches
// exactly one parent row. Works from declared FKs, informational FKs, or
// mined inclusion SCs. Paper claim: "a marked improvement in performance
// over standard TPC-D ... queries, and the techniques do not degrade
// performance elsewhere."

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"

namespace softdb::bench {
namespace {

struct QuerySpec {
  const char* label;
  const char* sql;
  bool expect_elimination;
};

const QuerySpec kQueries[] = {
    {"Q1 orders only",
     "SELECT o_orderkey, o_totalprice FROM orders "
     "JOIN customer ON o_custkey = c_custkey WHERE o_totalprice > 15000",
     true},
    {"Q2 agg on child",
     "SELECT o_status, COUNT(*) AS n, SUM(o_totalprice) AS total "
     "FROM orders JOIN customer ON o_custkey = c_custkey "
     "GROUP BY o_status",
     true},
    {"Q3 uses parent col",
     "SELECT o_orderkey, c_acctbal FROM orders "
     "JOIN customer ON o_custkey = c_custkey WHERE o_totalprice > 15000",
     false},
    {"Q4 parent filtered",
     "SELECT o_orderkey FROM orders JOIN customer ON o_custkey = c_custkey "
     "WHERE c_acctbal > 9000",
     false},
    {"Q5 two-hop chain",
     "SELECT c_custkey, c_acctbal FROM customer "
     "JOIN nation ON c_nationkey = n_nationkey",
     true},
};

void PrintExperimentTable() {
  Banner("E3: join elimination via referential constraints (TPC-H-style)");
  TablePrinter table({"query", "eliminated", "rows", "pages base",
                      "pages w/ rule", "probe rows saved"});
  for (const QuerySpec& q : kQueries) {
    auto db = MakeWorkloadDb();
    db->options().enable_join_elimination = false;
    auto base = MustExecute(db.get(), q.sql);
    db->options().enable_join_elimination = true;
    db->plan_cache().Clear();
    auto with = MustExecute(db.get(), q.sql);

    bool eliminated = false;
    for (const auto& rule : with.applied_rules) {
      eliminated =
          eliminated || rule.find("join-elimination") != std::string::npos;
    }
    if (eliminated != q.expect_elimination ||
        with.rows.NumRows() != base.rows.NumRows()) {
      std::fprintf(stderr, "E3: unexpected behaviour on %s\n", q.label);
      std::abort();
    }
    table.PrintRow(
        {q.label, eliminated ? "yes" : "no", FmtU(with.rows.NumRows()),
         FmtU(base.exec_stats.pages_read), FmtU(with.exec_stats.pages_read),
         FmtU(base.exec_stats.rows_joined - with.exec_stats.rows_joined)});
  }
  table.PrintRule();
  std::puts(
      "shape check: eligible queries drop the parent scan and all probe "
      "work; ineligible queries (parent columns used / parent filtered) "
      "are untouched -- no degradation elsewhere.");
}

void BM_E3_Eliminated(::benchmark::State& state) {
  static auto db = MakeWorkloadDb();
  db->options().enable_join_elimination = true;
  db->plan_cache().Clear();
  for (auto _ : state) {
    auto r = MustExecute(db.get(), kQueries[0].sql);
    ::benchmark::DoNotOptimize(r.rows.NumRows());
  }
}
BENCHMARK(BM_E3_Eliminated);

void BM_E3_Baseline(::benchmark::State& state) {
  static auto db = MakeWorkloadDb();
  db->options().enable_join_elimination = false;
  db->plan_cache().Clear();
  for (auto _ : state) {
    auto r = MustExecute(db.get(), kQueries[0].sql);
    ::benchmark::DoNotOptimize(r.rows.NumRows());
  }
}
BENCHMARK(BM_E3_Baseline);

}  // namespace
}  // namespace softdb::bench

int main(int argc, char** argv) {
  softdb::bench::PrintExperimentTable();
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
