// E10 — Union-all view branch knock-off (§5). A month-partitioned sales
// "view" is a 12-branch UNION ALL, each branch carrying a range constraint
// on sale_date (declared informational: the loaders guarantee it). A query
// with a date range needs only the overlapping branches; the optimizer
// knocks off the rest by proving their predicate sets unsatisfiable against
// the branch constraints. Paper example: "a predicate asking for data from
// January to March ... requires us to only look at the first three
// branches."

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "common/str_util.h"

namespace softdb::bench {
namespace {

std::string PartitionedQuery(const std::string& lo, const std::string& hi) {
  std::string query;
  for (int m = 1; m <= 12; ++m) {
    if (m > 1) query += " UNION ALL ";
    query += StrFormat(
        "SELECT sale_id, amount FROM sales_m%d WHERE "
        "sale_date BETWEEN DATE '%s' AND DATE '%s'",
        m, lo.c_str(), hi.c_str());
  }
  return query;
}

void PrintExperimentTable() {
  Banner(
      "E10: union-all branch knock-off -- 12 month partitions with "
      "informational range checks; query asks for a date range");

  struct Scenario {
    const char* label;
    const char* lo;
    const char* hi;
    int months_needed;
  };
  const Scenario scenarios[] = {
      {"one month", "1999-05-01", "1999-05-31", 1},
      {"Jan..Mar", "1999-01-01", "1999-03-31", 3},
      {"half year", "1999-01-01", "1999-06-30", 6},
      {"full year", "1999-01-01", "1999-12-31", 12},
      {"no month", "2005-01-01", "2005-12-31", 0},
  };

  TablePrinter table({"query range", "months live", "rows", "pages base",
                      "pages pruned", "answers equal"});
  for (const Scenario& s : scenarios) {
    auto db = MakeWorkloadDb();
    const std::string query = PartitionedQuery(s.lo, s.hi);

    db->options().enable_unionall_pruning = false;
    auto base = MustExecute(db.get(), query);
    db->options().enable_unionall_pruning = true;
    db->plan_cache().Clear();
    auto pruned = MustExecute(db.get(), query);

    if (base.rows.NumRows() != pruned.rows.NumRows()) {
      std::fprintf(stderr, "E10: answer mismatch on %s\n", s.label);
      std::abort();
    }
    table.PrintRow({s.label, FmtU(s.months_needed),
                    FmtU(pruned.rows.NumRows()),
                    FmtU(base.exec_stats.pages_read),
                    FmtU(pruned.exec_stats.pages_read), "yes"});
  }
  table.PrintRule();
  std::puts(
      "shape check: pages scale with the number of overlapping months, "
      "not the number of branches; a fully out-of-range query touches "
      "(nearly) nothing.");
}

void BM_E10_PrunedOneMonth(::benchmark::State& state) {
  static auto db = MakeWorkloadDb();
  db->options().enable_unionall_pruning = true;
  db->plan_cache().Clear();
  const std::string query = PartitionedQuery("1999-05-01", "1999-05-31");
  for (auto _ : state) {
    auto r = MustExecute(db.get(), query);
    ::benchmark::DoNotOptimize(r.rows.NumRows());
  }
}
BENCHMARK(BM_E10_PrunedOneMonth);

void BM_E10_BaselineOneMonth(::benchmark::State& state) {
  static auto db = MakeWorkloadDb();
  db->options().enable_unionall_pruning = false;
  db->plan_cache().Clear();
  const std::string query = PartitionedQuery("1999-05-01", "1999-05-31");
  for (auto _ : state) {
    auto r = MustExecute(db.get(), query);
    ::benchmark::DoNotOptimize(r.rows.NumRows());
  }
}
BENCHMARK(BM_E10_BaselineOneMonth);

}  // namespace
}  // namespace softdb::bench

int main(int argc, char** argv) {
  softdb::bench::PrintExperimentTable();
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
