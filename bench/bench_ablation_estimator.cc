// Ablation — twin-handling in the cardinality estimator. DESIGN.md's
// estimator folds a twin in by *substituting* it for its source column's
// predicate and keeping the tighter of baseline/twinned ("apply upper and
// lower bounds on our estimates", §5.1). The obvious alternative — treating
// the twin as one more independent conjunct — double-counts the very
// correlation the SSC describes and *under*estimates. This bench justifies
// the design choice on both the paper's query shapes.

#include <benchmark/benchmark.h>

#include <cmath>

#include "bench/bench_util.h"
#include "common/str_util.h"
#include "optimizer/cardinality.h"
#include "optimizer/rewriter.h"
#include "sql/binder.h"
#include "sql/parser.h"

namespace softdb::bench {
namespace {

double QError(double estimate, double actual) {
  const double e = std::max(estimate, 0.5);
  const double a = std::max(actual, 0.5);
  return std::max(e / a, a / e);
}

struct Estimates {
  double off = 0, naive = 0, bounded = 0;
};

Estimates EstimateAllModes(SoftDb* db, const std::string& sql) {
  // Build the rewritten plan once (twins attached), then estimate it under
  // each estimator mode.
  auto stmt = ParseStatement(sql);
  if (!stmt.ok()) std::abort();
  Binder binder(&db->catalog());
  auto bound = binder.BindSelect(*stmt->select);
  if (!bound.ok()) std::abort();
  OptimizerContext ctx = db->MakeContext();
  Rewriter rewriter(&ctx);
  auto plan = rewriter.Rewrite(std::move(*bound));
  if (!plan.ok()) std::abort();

  Estimates out;
  EstimatorOptions opts;
  opts.use_twinned_predicates = false;
  out.off = CardinalityEstimator(&db->catalog(), &db->stats(), opts,
                                 &db->scs())
                .EstimateRows(**plan);
  opts.use_twinned_predicates = true;
  opts.naive_twin_conjunction = true;
  out.naive = CardinalityEstimator(&db->catalog(), &db->stats(), opts,
                                   &db->scs())
                  .EstimateRows(**plan);
  opts.naive_twin_conjunction = false;
  out.bounded = CardinalityEstimator(&db->catalog(), &db->stats(), opts,
                                     &db->scs())
                    .EstimateRows(**plan);
  return out;
}

void PrintExperimentTable() {
  Banner(
      "Ablation: twin handling -- independence (off) vs naive conjunction "
      "vs substitute-and-bound (ours)");
  auto db = MakeWorkloadDb();
  if (!RegisterProjectWindowSc(db.get()).ok()) std::abort();
  if (!RegisterShipWindowSc(db.get()).ok()) std::abort();

  struct Case {
    const char* label;
    const char* sql;
  };
  const Case cases[] = {
      {"range+range (project active)",
       "SELECT * FROM project WHERE start_date <= DATE '1999-10-01' "
       "AND end_date >= DATE '1999-10-01'"},
      {"range+range (late window)",
       "SELECT * FROM project WHERE start_date <= DATE '2000-05-20' "
       "AND end_date >= DATE '2000-05-20'"},
      {"equality (ship_date = d)",
       "SELECT * FROM purchase WHERE ship_date = DATE '1999-12-15'"},
      {"eq + range (ship + order)",
       "SELECT * FROM purchase WHERE ship_date = DATE '1999-12-15' "
       "AND order_date >= DATE '1999-11-01'"},
  };

  TablePrinter table({"query shape", "actual", "q-err off", "q-err naive",
                      "q-err bounded"});
  for (const Case& c : cases) {
    auto exec = MustExecute(db.get(), c.sql);
    const double actual = static_cast<double>(exec.rows.NumRows());
    const Estimates est = EstimateAllModes(db.get(), c.sql);
    table.PrintRow({c.label, Fmt("%.0f", actual),
                    Fmt("%.1f", QError(est.off, actual)),
                    Fmt("%.1f", QError(est.naive, actual)),
                    Fmt("%.1f", QError(est.bounded, actual))});
  }
  table.PrintRule();
  std::puts(
      "shape check: naive conjunction matches ours on pure range+range "
      "shapes but collapses on equality shapes (it multiplies the twin's "
      "range into an already-selective equality, underestimating by an "
      "order of magnitude); substitute-and-bound is never worse than the "
      "independence baseline.");
}

void BM_Ablation_BoundedEstimate(::benchmark::State& state) {
  static auto db = [] {
    auto d = MakeWorkloadDb();
    if (!RegisterProjectWindowSc(d.get()).ok()) std::abort();
    return d;
  }();
  for (auto _ : state) {
    auto est = EstimateAllModes(
        db.get(),
        "SELECT * FROM project WHERE start_date <= DATE '1999-10-01' "
        "AND end_date >= DATE '1999-10-01'");
    ::benchmark::DoNotOptimize(est.bounded);
  }
}
BENCHMARK(BM_Ablation_BoundedEstimate);

}  // namespace
}  // namespace softdb::bench

int main(int argc, char** argv) {
  softdb::bench::PrintExperimentTable();
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
