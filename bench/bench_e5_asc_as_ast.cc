// E5 — ASCs as ASTs: the late_shipments exception table (§4.4). The
// business rule "products ship within three weeks" holds for ~99% of rows;
// the exceptions are materialized in an AST. A query on ship_date is then
// rewritten *exactly* as
//   (base scan + introduced order_date predicate)  UNION ALL
//   (exception AST scan)
// which the paper notes is safe ("we can use union all regardless since
// the two sub-queries return mutually distinct tuples") and cheap when the
// exception set is small.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "common/str_util.h"

namespace softdb::bench {
namespace {

std::unique_ptr<SoftDb> MakeDbWithExceptionAst(double ship_conf) {
  auto options = StandardScale();
  options.ship_conf = ship_conf;
  auto db = MakeWorkloadDb(options);
  if (!RegisterShipWindowSc(db.get()).ok()) std::abort();
  if (!db->CreateExceptionAst("sc_ship_window").ok()) std::abort();
  return db;
}

const char* kQuery =
    "SELECT * FROM purchase WHERE ship_date = DATE '1999-12-15'";

void PrintExperimentTable() {
  Banner(
      "E5: ASC-as-AST -- late_shipments exception table; exact rewrite = "
      "indexed base branch UNION ALL exception branch");
  TablePrinter table({"violation rate", "exc. rows", "rows out",
                      "pages base", "pages rewrite", "answers equal"});
  for (double conf : {0.999, 0.99, 0.95, 0.80, 0.50}) {
    auto db = MakeDbWithExceptionAst(conf);
    const auto* view = db->mvs().Find("exc_sc_ship_window");

    db->options().enable_exception_asts = false;
    auto base = MustExecute(db.get(), kQuery);
    db->options().enable_exception_asts = true;
    db->plan_cache().Clear();
    auto rewritten = MustExecute(db.get(), kQuery);

    table.PrintRow({Fmt("%.1f%%", (1.0 - conf) * 100.0),
                    FmtU(view->NumRows()), FmtU(rewritten.rows.NumRows()),
                    FmtU(base.exec_stats.pages_read),
                    FmtU(rewritten.exec_stats.pages_read),
                    rewritten.rows.NumRows() == base.rows.NumRows()
                        ? "yes"
                        : "NO!"});
  }
  table.PrintRule();
  std::puts(
      "shape check: at ~1% exceptions the rewrite wins by an order of "
      "magnitude (tiny exception branch + indexed main branch); as the "
      "violation rate grows the exception branch swallows the gain.");
}

void BM_E5_ExceptionRewrite(::benchmark::State& state) {
  static auto db = MakeDbWithExceptionAst(0.99);
  db->options().enable_exception_asts = true;
  db->plan_cache().Clear();
  for (auto _ : state) {
    auto r = MustExecute(db.get(), kQuery);
    ::benchmark::DoNotOptimize(r.rows.NumRows());
  }
}
BENCHMARK(BM_E5_ExceptionRewrite);

void BM_E5_FullScan(::benchmark::State& state) {
  static auto db = MakeDbWithExceptionAst(0.99);
  db->options().enable_exception_asts = false;
  db->plan_cache().Clear();
  for (auto _ : state) {
    auto r = MustExecute(db.get(), kQuery);
    ::benchmark::DoNotOptimize(r.rows.NumRows());
  }
}
BENCHMARK(BM_E5_FullScan);

}  // namespace
}  // namespace softdb::bench

int main(int argc, char** argv) {
  softdb::bench::PrintExperimentTable();
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
