// bench_wal: durability cost and recovery speed (DESIGN.md §14).
//
// Measures single-row INSERT throughput with the WAL off vs on across the
// group-commit sweep wal_sync_every_n ∈ {1, 32, 256}, and times cold
// recovery (checkpoint-less full-log replay) for each sweep point. CI
// gates the sync=256 overhead at <= 1.5x the WAL-off baseline via
// BENCH_WAL.json (--json).

#include <benchmark/benchmark.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "storage/wal.h"

namespace softdb::bench {
namespace {

constexpr int kRows = 1500;
constexpr int kRounds = 3;

std::string MakeTempDir() {
  char tmpl[] = "/tmp/softdb_benchwal_XXXXXX";
  const char* d = ::mkdtemp(tmpl);
  if (d == nullptr) {
    std::fprintf(stderr, "mkdtemp failed\n");
    std::abort();
  }
  return d;
}

struct InsertRun {
  double sec = 0;
  std::uint64_t fsyncs = 0;
  std::uint64_t wal_records = 0;
};

/// Creates the table and times kRows single-row inserts, accumulating the
/// per-statement WAL attribution from ExecStats.
InsertRun RunInserts(SoftDb* db) {
  MustExecute(db,
              "CREATE TABLE w (id BIGINT NOT NULL, v BIGINT, tag VARCHAR)");
  InsertRun run;
  const auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < kRows; ++i) {
    QueryResult r = MustExecute(
        db, "INSERT INTO w VALUES (" + std::to_string(i) + ", " +
                std::to_string(i % 997) + ", 'r')");
    run.fsyncs += r.exec_stats.wal_fsyncs;
    run.wal_records += r.exec_stats.wal_records;
  }
  const auto t1 = std::chrono::steady_clock::now();
  run.sec = std::chrono::duration<double>(t1 - t0).count();
  return run;
}

struct SweepPoint {
  std::size_t sync_every_n = 1;
  double insert_sec = 0;    // Best-of-rounds wall time for kRows inserts.
  double recovery_sec = 0;  // Best-of-rounds full-log replay time.
  std::uint64_t fsyncs = 0;
  std::uint64_t wal_records = 0;
};

SweepPoint MeasureWalOn(std::size_t sync_every_n) {
  SweepPoint point;
  point.sync_every_n = sync_every_n;
  point.insert_sec = 1e30;
  point.recovery_sec = 1e30;
  for (int round = 0; round < kRounds; ++round) {
    const std::string dir = MakeTempDir();
    {
      EngineOptions options;
      options.wal_dir = dir;
      options.wal_sync_every_n = sync_every_n;
      SoftDb db(options);
      const InsertRun run = RunInserts(&db);
      point.insert_sec = std::min(point.insert_sec, run.sec);
      point.fsyncs = run.fsyncs;
      point.wal_records = run.wal_records;
    }
    const auto t0 = std::chrono::steady_clock::now();
    auto recovered = SoftDb::Recover(dir);
    const auto t1 = std::chrono::steady_clock::now();
    if (!recovered.ok()) {
      std::fprintf(stderr, "recovery failed: %s\n",
                   recovered.status().ToString().c_str());
      std::abort();
    }
    point.recovery_sec = std::min(
        point.recovery_sec, std::chrono::duration<double>(t1 - t0).count());
    const std::uint64_t rows =
        MustExecute(recovered->get(), "SELECT * FROM w").rows.NumRows();
    if (rows != static_cast<std::uint64_t>(kRows)) {
      std::fprintf(stderr, "recovered %llu rows, want %d\n",
                   static_cast<unsigned long long>(rows), kRows);
      std::abort();
    }
    recovered->reset();
    std::error_code ec;
    std::filesystem::remove_all(dir, ec);
  }
  return point;
}

double MeasureWalOff() {
  double best = 1e30;
  for (int round = 0; round < kRounds; ++round) {
    SoftDb db;
    best = std::min(best, RunInserts(&db).sec);
  }
  return best;
}

void PrintAndEmit(bool emit_json) {
  Banner("WAL durability cost (single-row inserts, best of " +
         std::to_string(kRounds) + " rounds)");
  const double off_sec = MeasureWalOff();
  const std::vector<std::size_t> sweep = {1, 32, 256};
  std::vector<SweepPoint> points;
  points.reserve(sweep.size());
  for (const std::size_t n : sweep) points.push_back(MeasureWalOn(n));

  TablePrinter table({"config", "inserts/sec", "overhead x", "fsyncs",
                      "recovery sec"});
  table.PrintRow({"wal off", Fmt("%.0f", kRows / off_sec), "1.00", "0", "-"});
  for (const SweepPoint& p : points) {
    table.PrintRow({"sync=" + std::to_string(p.sync_every_n),
                    Fmt("%.0f", kRows / p.insert_sec),
                    Fmt("%.2f", p.insert_sec / off_sec), FmtU(p.fsyncs),
                    Fmt("%.4f", p.recovery_sec)});
  }
  table.PrintRule();

  if (!emit_json) return;
  JsonWriter j;
  j.Add("bench", "WAL");
  j.Add("insert_rows", kRows);
  j.Add("rounds", kRounds);
  j.Add("wal_off_sec", off_sec);
  for (const SweepPoint& p : points) {
    const std::string tag = "sync_" + std::to_string(p.sync_every_n);
    j.Add("wal_on_sec_" + tag, p.insert_sec);
    j.Add("wal_overhead_x_" + tag,
          off_sec > 0 ? p.insert_sec / off_sec : 0.0);
    j.Add("fsyncs_" + tag, p.fsyncs);
    j.Add("wal_records_" + tag, p.wal_records);
    j.Add("recovery_sec_" + tag, p.recovery_sec);
  }
  j.WriteFile("BENCH_WAL.json");
}

/// Static WAL-backed engine for the microbenchmark loop; the log directory
/// is torn down with the engine at process exit.
struct StaticWalDb {
  StaticWalDb(std::size_t sync_every_n) : dir(MakeTempDir()) {
    EngineOptions options;
    options.wal_dir = dir;
    options.wal_sync_every_n = sync_every_n;
    db = std::make_unique<SoftDb>(options);
    MustExecute(db.get(),
                "CREATE TABLE w (id BIGINT NOT NULL, v BIGINT, tag VARCHAR)");
  }
  ~StaticWalDb() {
    db.reset();
    std::error_code ec;
    std::filesystem::remove_all(dir, ec);
  }
  std::string dir;
  std::unique_ptr<SoftDb> db;
};

void BM_InsertWalOff(::benchmark::State& state) {
  static SoftDb* db = [] {
    auto* fresh = new SoftDb();
    MustExecute(fresh,
                "CREATE TABLE w (id BIGINT NOT NULL, v BIGINT, tag VARCHAR)");
    return fresh;
  }();
  std::int64_t i = 0;
  for (auto _ : state) {
    auto r = MustExecute(db, "INSERT INTO w VALUES (" + std::to_string(i++) +
                                 ", 1, 'r')");
    ::benchmark::DoNotOptimize(r.rows.NumRows());
  }
}
BENCHMARK(BM_InsertWalOff);

void BM_InsertWalOnSync256(::benchmark::State& state) {
  static StaticWalDb wal(256);
  std::int64_t i = 0;
  for (auto _ : state) {
    auto r = MustExecute(wal.db.get(),
                         "INSERT INTO w VALUES (" + std::to_string(i++) +
                             ", 1, 'r')");
    ::benchmark::DoNotOptimize(r.rows.NumRows());
  }
}
BENCHMARK(BM_InsertWalOnSync256);

}  // namespace
}  // namespace softdb::bench

int main(int argc, char** argv) {
  const bool emit_json = softdb::bench::StripJsonFlag(&argc, argv);
  softdb::bench::PrintAndEmit(emit_json);
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
