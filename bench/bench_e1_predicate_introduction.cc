// E1 — Predicate introduction via linear-correlation / offset ASCs (§2
// [10], §3.3). An absolute SC lets the rewriter add a range predicate on an
// indexed column to a query that only constrains the un-indexed one; the
// win scales with the envelope's selectivity.
//
// Paper claim: "This allows for the potential use of the index on A"; the
// rewrite must be semantically equivalent (100% envelope only).

#include <benchmark/benchmark.h>

#include <algorithm>
#include <vector>

#include "bench/bench_util.h"
#include "common/date.h"
#include "constraints/column_offset_sc.h"
#include "exec/kernels.h"

namespace softdb::bench {
namespace {

std::unique_ptr<SoftDb> MakeDbWithWindow(int window_days) {
  auto options = StandardScale();
  options.ship_conf = 1.0;  // Absolute: every row inside the window.
  options.ship_window = window_days;
  auto db = MakeWorkloadDb(options);
  auto sc = std::make_unique<ColumnOffsetSc>(
      "abs_ship", "purchase", WorkloadColumns::kPurchaseOrderDate,
      WorkloadColumns::kPurchaseShipDate, 0, window_days);
  Status st = db->scs().Add(std::move(sc), db->catalog());
  if (!st.ok()) std::abort();
  return db;
}

const char* kQuery =
    "SELECT * FROM purchase WHERE ship_date = DATE '1999-12-15'";

void PrintExperimentTable() {
  Banner(
      "E1: predicate introduction -- query on un-indexed ship_date; "
      "index on order_date; ASC ship_date-order_date in [0, W]");
  TablePrinter table({"window W (d)", "rows out", "pages base",
                      "pages rewritten", "page ratio", "rule fired"});
  for (int window : {7, 21, 60, 180, 420}) {
    auto db = MakeDbWithWindow(window);

    db->options().enable_predicate_introduction = false;
    auto base = MustExecute(db.get(), kQuery);
    db->options().enable_predicate_introduction = true;
    db->plan_cache().Clear();
    auto rewritten = MustExecute(db.get(), kQuery);

    if (base.rows.NumRows() != rewritten.rows.NumRows()) {
      std::fprintf(stderr, "E1: answer mismatch!\n");
      std::abort();
    }
    bool fired = false;
    for (const auto& rule : rewritten.applied_rules) {
      fired = fired || rule.find("predicate-introduction") != std::string::npos;
    }
    table.PrintRow(
        {FmtU(window), FmtU(rewritten.rows.NumRows()),
         FmtU(base.exec_stats.pages_read),
         FmtU(rewritten.exec_stats.pages_read),
         Fmt("%.1fx", static_cast<double>(base.exec_stats.pages_read) /
                          std::max<std::uint64_t>(
                              1, rewritten.exec_stats.pages_read)),
         fired ? "yes" : "no"});
  }
  table.PrintRule();
  std::puts(
      "shape check: tight windows (selective envelopes) give order-of-"
      "magnitude page savings; a window wider than the data range gives "
      "none (the introduced range stops being selective).");
}

// --json: machine-readable report. Alongside the rewrite page counts, an
// A/B of the vectorized engine against the row engine on the scan+filter
// shape this experiment stresses (full purchase scan, compute-heavy
// conjunctive predicate, no index applicable).
void EmitJson() {
  auto db = MakeWorkloadDb();
  const std::string kScanFilter =
      "SELECT pu_key, quantity, price FROM purchase "
      "WHERE ship_date - order_date <= 9 AND quantity < 25 "
      "AND price * discount > 40 AND receipt_date - ship_date >= 1";
  auto ab = MeasureEngineAb(db.get(), kScanFilter);
  // Same A/B with the comparison kernels forced off: isolates how much of
  // the vectorized win is the branch-free mask path (bench_kernels has the
  // full scalar/kernel/zone-map sweep).
  db->options().use_kernels = false;
  auto ab_scalar = MeasureEngineAb(db.get(), kScanFilter);
  db->options().use_kernels = true;

  auto windowed = MakeDbWithWindow(21);
  windowed->options().enable_predicate_introduction = false;
  auto base = MustExecute(windowed.get(), kQuery);
  windowed->options().enable_predicate_introduction = true;
  windowed->plan_cache().Clear();
  auto rewritten = MustExecute(windowed.get(), kQuery);

  // Certify-plans overhead: with certify_plans on, every cached rewrite
  // certificate is re-validated on each execution (epoch fast path, full
  // re-derivation on drift; translation validation, DESIGN.md §13). CI
  // gates the steady-state overhead on this introduction-heavy shape at
  // <= 5%.
  auto time_batch = [&](bool on) {
    windowed->options().certify_plans = on;
    const int iters = 50;
    const auto t0 = std::chrono::steady_clock::now();
    for (int i = 0; i < iters; ++i) {
      volatile std::uint64_t sink =
          MustExecute(windowed.get(), kQuery).rows.NumRows();
      (void)sink;
    }
    const auto t1 = std::chrono::steady_clock::now();
    return std::chrono::duration<double>(t1 - t0).count() / iters;
  };
  windowed->plan_cache().Clear();
  (void)MustExecute(windowed.get(), kQuery);  // Warm: plan + cache.
  // Paired rounds: each round times both modes back to back, so slow
  // machine drift cancels in the per-round ratio; the median ratio is the
  // reported overhead.
  std::vector<double> off_secs, on_secs, ratios;
  for (int round = 0; round < 16; ++round) {
    const double off = time_batch(false);
    const double on = time_batch(true);
    off_secs.push_back(off);
    on_secs.push_back(on);
    if (off > 0) ratios.push_back(on / off);
  }
  windowed->options().certify_plans = true;
  std::sort(ratios.begin(), ratios.end());
  const double median_ratio =
      ratios.empty() ? 1.0 : ratios[ratios.size() / 2];
  const double certify_off_sec =
      *std::min_element(off_secs.begin(), off_secs.end());
  const double certify_on_sec =
      *std::min_element(on_secs.begin(), on_secs.end());

  JsonWriter j;
  j.Add("bench", "E1");
  j.Add("scan_filter_query", kScanFilter);
  j.Add("row_engine_sec_per_query", ab.row_sec);
  j.Add("batch_engine_sec_per_query", ab.batch_sec);
  j.Add("vectorized_speedup", ab.speedup);
  j.Add("ab_iterations", ab.iterations);
  j.Add("simd_capability", kernels::SimdCapability());
  j.Add("batch_no_kernel_sec_per_query", ab_scalar.batch_sec);
  j.Add("kernel_speedup_in_batch",
        ab.batch_sec > 0 ? ab_scalar.batch_sec / ab.batch_sec : 0.0);
  j.Add("introduction_pages_base", base.exec_stats.pages_read);
  j.Add("introduction_pages_rewritten", rewritten.exec_stats.pages_read);
  j.Add("certify_off_sec_per_query", certify_off_sec);
  j.Add("certify_on_sec_per_query", certify_on_sec);
  j.Add("certify_overhead_pct", (median_ratio - 1.0) * 100.0);
  j.WriteFile("BENCH_E1.json");
}

// --threads 1,4: morsel-parallel sweep of the scan+filter shape (the E1
// workload's compute-heavy full scan) — parallel output must stay
// bit-identical to serial at every thread count. Emits BENCH_E1_PAR.json.
void EmitParallelJson(const std::vector<std::size_t>& thread_counts) {
  auto db = MakeWorkloadDb();
  const std::string kScanFilter =
      "SELECT pu_key, quantity, price FROM purchase "
      "WHERE ship_date - order_date <= 9 AND quantity < 25 "
      "AND price * discount > 40 AND receipt_date - ship_date >= 1";
  auto samples = MeasureParallelSweep(db.get(), kScanFilter, thread_counts);
  WriteParallelJson("E1", kScanFilter, samples);
}

void BM_E1_WithIntroduction(::benchmark::State& state) {
  static auto db = MakeDbWithWindow(21);
  db->options().enable_predicate_introduction = true;
  db->plan_cache().Clear();
  for (auto _ : state) {
    auto r = MustExecute(db.get(), kQuery);
    ::benchmark::DoNotOptimize(r.rows.NumRows());
  }
}
BENCHMARK(BM_E1_WithIntroduction);

void BM_E1_WithoutIntroduction(::benchmark::State& state) {
  static auto db = MakeDbWithWindow(21);
  db->options().enable_predicate_introduction = false;
  db->plan_cache().Clear();
  for (auto _ : state) {
    auto r = MustExecute(db.get(), kQuery);
    ::benchmark::DoNotOptimize(r.rows.NumRows());
  }
}
BENCHMARK(BM_E1_WithoutIntroduction);

}  // namespace
}  // namespace softdb::bench

int main(int argc, char** argv) {
  const bool emit_json = softdb::bench::StripJsonFlag(&argc, argv);
  std::vector<std::size_t> thread_counts;
  const bool sweep_threads =
      softdb::bench::StripThreadsFlag(&argc, argv, &thread_counts);
  softdb::bench::PrintExperimentTable();
  if (emit_json) softdb::bench::EmitJson();
  if (sweep_threads) softdb::bench::EmitParallelJson(thread_counts);
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
