// E1 — Predicate introduction via linear-correlation / offset ASCs (§2
// [10], §3.3). An absolute SC lets the rewriter add a range predicate on an
// indexed column to a query that only constrains the un-indexed one; the
// win scales with the envelope's selectivity.
//
// Paper claim: "This allows for the potential use of the index on A"; the
// rewrite must be semantically equivalent (100% envelope only).

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "common/date.h"
#include "constraints/column_offset_sc.h"

namespace softdb::bench {
namespace {

std::unique_ptr<SoftDb> MakeDbWithWindow(int window_days) {
  auto options = StandardScale();
  options.ship_conf = 1.0;  // Absolute: every row inside the window.
  options.ship_window = window_days;
  auto db = MakeWorkloadDb(options);
  auto sc = std::make_unique<ColumnOffsetSc>(
      "abs_ship", "purchase", WorkloadColumns::kPurchaseOrderDate,
      WorkloadColumns::kPurchaseShipDate, 0, window_days);
  Status st = db->scs().Add(std::move(sc), db->catalog());
  if (!st.ok()) std::abort();
  return db;
}

const char* kQuery =
    "SELECT * FROM purchase WHERE ship_date = DATE '1999-12-15'";

void PrintExperimentTable() {
  Banner(
      "E1: predicate introduction -- query on un-indexed ship_date; "
      "index on order_date; ASC ship_date-order_date in [0, W]");
  TablePrinter table({"window W (d)", "rows out", "pages base",
                      "pages rewritten", "page ratio", "rule fired"});
  for (int window : {7, 21, 60, 180, 420}) {
    auto db = MakeDbWithWindow(window);

    db->options().enable_predicate_introduction = false;
    auto base = MustExecute(db.get(), kQuery);
    db->options().enable_predicate_introduction = true;
    db->plan_cache().Clear();
    auto rewritten = MustExecute(db.get(), kQuery);

    if (base.rows.NumRows() != rewritten.rows.NumRows()) {
      std::fprintf(stderr, "E1: answer mismatch!\n");
      std::abort();
    }
    bool fired = false;
    for (const auto& rule : rewritten.applied_rules) {
      fired = fired || rule.find("predicate-introduction") != std::string::npos;
    }
    table.PrintRow(
        {FmtU(window), FmtU(rewritten.rows.NumRows()),
         FmtU(base.exec_stats.pages_read),
         FmtU(rewritten.exec_stats.pages_read),
         Fmt("%.1fx", static_cast<double>(base.exec_stats.pages_read) /
                          std::max<std::uint64_t>(
                              1, rewritten.exec_stats.pages_read)),
         fired ? "yes" : "no"});
  }
  table.PrintRule();
  std::puts(
      "shape check: tight windows (selective envelopes) give order-of-"
      "magnitude page savings; a window wider than the data range gives "
      "none (the introduced range stops being selective).");
}

void BM_E1_WithIntroduction(::benchmark::State& state) {
  static auto db = MakeDbWithWindow(21);
  db->options().enable_predicate_introduction = true;
  db->plan_cache().Clear();
  for (auto _ : state) {
    auto r = MustExecute(db.get(), kQuery);
    ::benchmark::DoNotOptimize(r.rows.NumRows());
  }
}
BENCHMARK(BM_E1_WithIntroduction);

void BM_E1_WithoutIntroduction(::benchmark::State& state) {
  static auto db = MakeDbWithWindow(21);
  db->options().enable_predicate_introduction = false;
  db->plan_cache().Clear();
  for (auto _ : state) {
    auto r = MustExecute(db.get(), kQuery);
    ::benchmark::DoNotOptimize(r.rows.NumRows());
  }
}
BENCHMARK(BM_E1_WithoutIntroduction);

}  // namespace
}  // namespace softdb::bench

int main(int argc, char** argv) {
  softdb::bench::PrintExperimentTable();
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
