// E8 — SSC currency (§3.3). "Given a fact table of a million records and
// the knowledge that only a thousand tuples are affected by updates daily,
// the margin of error for an SSC ... will be quite small over the course of
// several days. But within a month's time, the margin of error would be
// 3%." We replay that exact scenario (scaled 10x down: 100k rows, 100
// adversarial updates/day) and compare the predicted currency margin with
// the measured confidence decay.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "constraints/column_offset_sc.h"

namespace softdb::bench {
namespace {

constexpr std::size_t kRows = 100000;
constexpr int kUpdatesPerDay = 100;

std::unique_ptr<SoftDb> MakeFactDb() {
  auto db = std::make_unique<SoftDb>();
  if (!db->Execute("CREATE TABLE fact (x BIGINT NOT NULL, y BIGINT NOT NULL)")
           .ok()) {
    std::abort();
  }
  Table* fact = *db->catalog().GetTable("fact");
  fact->Reserve(kRows);
  for (std::size_t i = 0; i < kRows; ++i) {
    // All rows comply initially: y - x = 5.
    if (!fact->Append({Value::Int64(static_cast<std::int64_t>(i)),
                       Value::Int64(static_cast<std::int64_t>(i) + 5)})
             .ok()) {
      std::abort();
    }
  }
  return db;
}

void PrintExperimentTable() {
  Banner(
      "E8: SSC currency -- 100k-row fact table, 100 adversarial "
      "updates/day (every update violates the SC statement)");
  auto db = MakeFactDb();
  auto sc_owned =
      std::make_unique<ColumnOffsetSc>("win", "fact", 0, 1, 0, 10);
  SoftConstraint* sc = sc_owned.get();
  if (!db->scs().Add(std::move(sc_owned), db->catalog()).ok()) std::abort();
  Table* fact = *db->catalog().GetTable("fact");

  TablePrinter table({"day", "mutations", "predicted margin",
                      "conf lower bound", "true violation rate",
                      "bound holds"});
  std::int64_t next_row = 0;
  for (int day : {1, 3, 7, 14, 30}) {
    // Apply updates up to `day` (days are cumulative across iterations).
    static int applied_days = 0;
    for (; applied_days < day; ++applied_days) {
      for (int u = 0; u < kUpdatesPerDay; ++u) {
        // Worst case: every touched row now violates (y - x = 100).
        if (!fact->Set(static_cast<RowId>(next_row), 1,
                       Value::Int64(next_row + 100))
                 .ok()) {
          std::abort();
        }
        ++next_row;
      }
    }
    const double predicted = sc->CurrencyMargin(*fact);
    const double lower_bound = sc->CurrencyAdjustedConfidence(*fact);
    // Ground truth by re-counting (without resetting the SC's baseline).
    ColumnOffsetSc probe("probe", "fact", 0, 1, 0, 10);
    auto outcome = probe.Verify(db->catalog());
    if (!outcome.ok()) std::abort();
    const double true_rate =
        static_cast<double>(outcome->violations) /
        static_cast<double>(outcome->rows);
    table.PrintRow({FmtU(day), FmtU(day * kUpdatesPerDay),
                    Fmt("%.3f%%", predicted * 100.0),
                    Fmt("%.4f", lower_bound),
                    Fmt("%.3f%%", true_rate * 100.0),
                    1.0 - true_rate >= lower_bound - 1e-9 ? "yes" : "NO!"});
  }
  table.PrintRule();
  std::puts(
      "shape check: after 30 days the predicted margin reaches 3% (the "
      "paper's number) and the currency-adjusted confidence is always a "
      "sound lower bound on the true compliance rate.");
}

void BM_E8_CurrencyMarginQuery(::benchmark::State& state) {
  static auto db = MakeFactDb();
  static SoftConstraint* sc = [] {
    auto owned = std::make_unique<ColumnOffsetSc>("win", "fact", 0, 1, 0, 10);
    SoftConstraint* ptr = owned.get();
    if (!db->scs().Add(std::move(owned), db->catalog()).ok()) std::abort();
    return ptr;
  }();
  Table* fact = *db->catalog().GetTable("fact");
  for (auto _ : state) {
    ::benchmark::DoNotOptimize(sc->CurrencyAdjustedConfidence(*fact));
  }
}
BENCHMARK(BM_E8_CurrencyMarginQuery);

void BM_E8_FullVerify100k(::benchmark::State& state) {
  static auto db = MakeFactDb();
  ColumnOffsetSc sc("probe", "fact", 0, 1, 0, 10);
  for (auto _ : state) {
    auto outcome = sc.Verify(db->catalog());
    ::benchmark::DoNotOptimize(outcome.ok());
  }
}
BENCHMARK(BM_E8_FullVerify100k);

}  // namespace
}  // namespace softdb::bench

int main(int argc, char** argv) {
  softdb::bench::PrintExperimentTable();
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
