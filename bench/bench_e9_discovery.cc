// E9 — Discovery costs and the selection stage (§3.2, [8], [10]). The
// paper claims the join-hole discovery algorithm "is quite efficient and is
// linear in the size of the resulting join table"; we sweep the join size
// and report ms and pairs/ms (a flat pairs/ms column = linear scaling).
// The second table shows the workload-driven selection stage picking the
// useful candidates out of everything mined.

#include <benchmark/benchmark.h>

#include <chrono>

#include "bench/bench_util.h"
#include "mining/correlation_miner.h"
#include "mining/fd_miner.h"
#include "mining/hole_miner.h"
#include "mining/offset_miner.h"
#include "mining/selection.h"

namespace softdb::bench {
namespace {

double MillisSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

void PrintHoleScalingTable() {
  Banner("E9a: join-hole discovery scales linearly in the join size ([8])");
  TablePrinter table({"orders (join sz)", "holes found", "time (ms)",
                      "pairs / ms"});
  for (std::size_t orders : {2000u, 4000u, 8000u, 16000u, 32000u}) {
    auto options = StandardScale();
    options.orders = orders;
    options.purchases = 100;   // Irrelevant here, keep load fast.
    options.projects = 100;
    options.parts = 100;
    options.sales_per_month = 10;
    options.analyze = false;
    auto db = MakeWorkloadDb(options);
    Table* o = *db->catalog().GetTable("orders");
    Table* c = *db->catalog().GetTable("customer");

    const auto start = std::chrono::steady_clock::now();
    auto result = MineJoinHoles(*o, WorkloadColumns::kOrderCustomer,
                                WorkloadColumns::kOrderPrice, *c,
                                WorkloadColumns::kCustomerKey,
                                WorkloadColumns::kCustomerBalance);
    const double ms = MillisSince(start);
    if (!result.ok()) std::abort();
    table.PrintRow({FmtU(orders), FmtU(result->holes.size()),
                    Fmt("%.2f", ms),
                    Fmt("%.0f", static_cast<double>(result->join_pairs) / ms)});
  }
  table.PrintRule();
  std::puts(
      "shape check: total time = (per-pair cost) x pairs + fixed grid-"
      "extraction cost; pairs/ms rises toward a plateau as the fixed cost "
      "amortizes, consistent with [8]'s linear-in-join-size bound.");
}

void PrintMinerSummaryTable() {
  Banner("E9b: all miners against the standard workload");
  auto db = MakeWorkloadDb();
  TablePrinter table({"miner", "table", "candidates", "best finding",
                      "time (ms)"});

  {
    Table* part = *db->catalog().GetTable("part");
    const auto start = std::chrono::steady_clock::now();
    auto cands = MineLinearCorrelations(*part);
    const double ms = MillisSince(start);
    std::string best = cands.empty()
                           ? "-"
                           : Fmt("k=%.3f", cands[0].k) + ", " +
                                 Fmt("sel=%.3f", cands[0].selectivity);
    table.PrintRow({"linear corr", "part", FmtU(cands.size()), best,
                    Fmt("%.2f", ms)});
  }
  {
    Table* purchase = *db->catalog().GetTable("purchase");
    const auto start = std::chrono::steady_clock::now();
    auto cands = MineColumnOffsets(*purchase);
    const double ms = MillisSince(start);
    std::string best = "-";
    for (const auto& c : cands) {
      if (c.col_x == WorkloadColumns::kPurchaseOrderDate &&
          c.col_y == WorkloadColumns::kPurchaseShipDate) {
        best = "ship-order in [" + FmtU(c.min_partial) + "," +
               FmtU(c.max_partial) + "]";
        break;
      }
    }
    table.PrintRow({"column offset", "purchase", FmtU(cands.size()), best,
                    Fmt("%.2f", ms)});
  }
  {
    Table* customer = *db->catalog().GetTable("customer");
    const auto start = std::chrono::steady_clock::now();
    auto cands = MineFunctionalDependencies(*customer);
    const double ms = MillisSince(start);
    std::string best = "-";
    for (const auto& fd : cands) {
      if (fd.determinants ==
              std::vector<ColumnIdx>{WorkloadColumns::kCustomerNation} &&
          fd.dependent == WorkloadColumns::kCustomerRegion) {
        best = Fmt("nation->region conf %.2f", fd.confidence);
        break;
      }
    }
    table.PrintRow({"FDs", "customer", FmtU(cands.size()), best,
                    Fmt("%.2f", ms)});
  }
  table.PrintRule();
}

void PrintSelectionTable() {
  Banner("E9c: selection stage -- workload steers which SCs to keep");
  auto db = MakeWorkloadDb();
  Table* part = *db->catalog().GetTable("part");
  auto cands = MineLinearCorrelations(*part);

  // Workload A: predicates on p_retailprice (the correlation pays off).
  WorkloadProfile hot;
  hot.RecordPredicate("part", WorkloadColumns::kPartPrice, 100);
  // Workload B: predicates elsewhere (it does not).
  WorkloadProfile cold;
  cold.RecordPredicate("part", 3, 100);

  TablePrinter table({"workload", "candidates", "selected", "top utility",
                      "rationale"});
  for (const auto& [label, profile] :
       {std::pair<const char*, const WorkloadProfile*>{"price-heavy", &hot},
        {"unrelated", &cold}}) {
    auto scored =
        ScoreCorrelationCandidates(cands, "part", *profile, db->catalog());
    auto top = SelectTop(scored, 4);
    table.PrintRow({label, FmtU(cands.size()), FmtU(top.size()),
                    top.empty() ? "-" : Fmt("%.1f", top[0].utility),
                    top.empty() ? "no useful SCs" : top[0].rationale});
  }
  table.PrintRule();
  std::puts(
      "shape check: the same mined candidates are kept under the workload "
      "that queries the correlated column and discarded otherwise (SS3.2's "
      "selection by estimated utility).");
}

void BM_E9_MineHoles(::benchmark::State& state) {
  static auto db = MakeWorkloadDb();
  Table* o = *db->catalog().GetTable("orders");
  Table* c = *db->catalog().GetTable("customer");
  for (auto _ : state) {
    auto result = MineJoinHoles(*o, WorkloadColumns::kOrderCustomer,
                                WorkloadColumns::kOrderPrice, *c,
                                WorkloadColumns::kCustomerKey,
                                WorkloadColumns::kCustomerBalance);
    ::benchmark::DoNotOptimize(result.ok());
  }
}
BENCHMARK(BM_E9_MineHoles);

void BM_E9_MineCorrelations(::benchmark::State& state) {
  static auto db = MakeWorkloadDb();
  Table* part = *db->catalog().GetTable("part");
  for (auto _ : state) {
    auto cands = MineLinearCorrelations(*part);
    ::benchmark::DoNotOptimize(cands.size());
  }
}
BENCHMARK(BM_E9_MineCorrelations);

void BM_E9_MineFds(::benchmark::State& state) {
  static auto db = MakeWorkloadDb();
  Table* customer = *db->catalog().GetTable("customer");
  for (auto _ : state) {
    auto cands = MineFunctionalDependencies(*customer);
    ::benchmark::DoNotOptimize(cands.size());
  }
}
BENCHMARK(BM_E9_MineFds);

}  // namespace
}  // namespace softdb::bench

int main(int argc, char** argv) {
  softdb::bench::PrintHoleScalingTable();
  softdb::bench::PrintMinerSummaryTable();
  softdb::bench::PrintSelectionTable();
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
