#ifndef SOFTDB_BENCH_BENCH_UTIL_H_
#define SOFTDB_BENCH_BENCH_UTIL_H_

#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "engine/softdb.h"
#include "workload/generator.h"
#include "workload/sc_kit.h"

namespace softdb::bench {

/// Standard experiment scale (large enough for stable page counts, small
/// enough that every bench binary runs in seconds).
inline WorkloadOptions StandardScale() {
  WorkloadOptions options;
  options.customers = 1000;
  options.orders = 10000;
  options.purchases = 20000;
  options.parts = 2000;
  options.projects = 5000;
  options.sales_per_month = 500;
  return options;
}

inline std::unique_ptr<SoftDb> MakeWorkloadDb(
    const WorkloadOptions& options = StandardScale()) {
  auto db = std::make_unique<SoftDb>();
  Status st = GenerateWorkload(db.get(), options);
  if (!st.ok()) {
    std::fprintf(stderr, "workload generation failed: %s\n",
                 st.ToString().c_str());
    std::abort();
  }
  return db;
}

/// Executes and aborts on error (benches should fail loudly).
inline QueryResult MustExecute(SoftDb* db, const std::string& sql) {
  auto result = db->Execute(sql);
  if (!result.ok()) {
    std::fprintf(stderr, "query failed: %s\n  %s\n",
                 result.status().ToString().c_str(), sql.c_str());
    std::abort();
  }
  return *std::move(result);
}

/// Fixed-width table printer for the paper-style result tables.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers,
                        std::size_t col_width = 14)
      : num_cols_(headers.size()), col_width_(col_width) {
    PrintRule();
    PrintRow(headers);
    PrintRule();
  }

  void PrintRow(const std::vector<std::string>& cells) {
    std::string line = "|";
    for (std::size_t i = 0; i < num_cols_; ++i) {
      std::string cell = i < cells.size() ? cells[i] : "";
      if (cell.size() > col_width_) cell.resize(col_width_);
      line += " " + cell + std::string(col_width_ - cell.size(), ' ') + " |";
    }
    std::puts(line.c_str());
  }

  void PrintRule() {
    std::string line = "+";
    for (std::size_t i = 0; i < num_cols_; ++i) {
      line += std::string(col_width_ + 2, '-') + "+";
    }
    std::puts(line.c_str());
  }

 private:
  std::size_t num_cols_;
  std::size_t col_width_;
};

inline std::string Fmt(const char* fmt, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), fmt, v);
  return buf;
}
inline std::string FmtU(std::uint64_t v) { return std::to_string(v); }

inline void Banner(const std::string& title) {
  std::puts("");
  std::puts(("=== " + title + " ===").c_str());
}

/// Removes a leading `--json` from argv (so benchmark::Initialize never
/// sees it) and reports whether it was present. Benches passed --json
/// additionally write a machine-readable BENCH_<tag>.json.
inline bool StripJsonFlag(int* argc, char** argv) {
  bool found = false;
  int w = 1;
  for (int r = 1; r < *argc; ++r) {
    if (std::string(argv[r]) == "--json") {
      found = true;
      continue;
    }
    argv[w++] = argv[r];
  }
  *argc = w;
  return found;
}

/// Tiny flat-object JSON emitter (keys added in order; no nesting — bench
/// reports are one level deep by design).
class JsonWriter {
 public:
  void Add(const std::string& key, const std::string& value) {
    entries_.push_back("\"" + key + "\": \"" + Escape(value) + "\"");
  }
  void Add(const std::string& key, const char* value) {
    Add(key, std::string(value));
  }
  void Add(const std::string& key, double value) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.6g", value);
    entries_.push_back("\"" + key + "\": " + buf);
  }
  void Add(const std::string& key, std::uint64_t value) {
    entries_.push_back("\"" + key + "\": " + std::to_string(value));
  }
  void Add(const std::string& key, int value) {
    entries_.push_back("\"" + key + "\": " + std::to_string(value));
  }

  bool WriteFile(const std::string& path) const {
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) return false;
    std::fputs("{\n", f);
    for (std::size_t i = 0; i < entries_.size(); ++i) {
      std::fputs(("  " + entries_[i] +
                  (i + 1 < entries_.size() ? ",\n" : "\n"))
                     .c_str(),
                 f);
    }
    std::fputs("}\n", f);
    std::fclose(f);
    std::printf("wrote %s\n", path.c_str());
    return true;
  }

 private:
  static std::string Escape(const std::string& s) {
    std::string out;
    for (char c : s) {
      if (c == '"' || c == '\\') out += '\\';
      out += c;
    }
    return out;
  }

  std::vector<std::string> entries_;
};

/// Row-engine vs batch-engine A/B on one query: clears the plan cache per
/// engine (so each engine plans once), warms, then times `iterations`
/// executions. Aborts if the two engines disagree on the answer.
struct EngineAb {
  double row_sec = 0;    // Seconds per execution, row engine.
  double batch_sec = 0;  // Seconds per execution, vectorized engine.
  double speedup = 0;    // row_sec / batch_sec.
  int iterations = 0;
};

inline EngineAb MeasureEngineAb(SoftDb* db, const std::string& sql,
                                int iterations = 40) {
  const bool saved = db->options().use_vectorized;
  std::uint64_t row_answer = 0, batch_answer = 0;
  auto time_engine = [&](bool vectorized, std::uint64_t* answer) {
    db->options().use_vectorized = vectorized;
    db->plan_cache().Clear();
    *answer = MustExecute(db, sql).rows.NumRows();  // Warm: plan + caches.
    const auto t0 = std::chrono::steady_clock::now();
    for (int i = 0; i < iterations; ++i) {
      volatile std::uint64_t sink = MustExecute(db, sql).rows.NumRows();
      (void)sink;
    }
    const auto t1 = std::chrono::steady_clock::now();
    return std::chrono::duration<double>(t1 - t0).count() / iterations;
  };
  EngineAb out;
  out.iterations = iterations;
  out.row_sec = time_engine(false, &row_answer);
  out.batch_sec = time_engine(true, &batch_answer);
  out.speedup = out.batch_sec > 0 ? out.row_sec / out.batch_sec : 0;
  db->options().use_vectorized = saved;
  db->plan_cache().Clear();
  if (row_answer != batch_answer) {
    std::fprintf(stderr, "engine A/B answer mismatch on %s\n", sql.c_str());
    std::abort();
  }
  return out;
}

/// Removes a leading `--threads N[,M...]` from argv (before
/// benchmark::Initialize sees it) and fills `out` with the requested
/// thread counts. Returns true when the flag was present. Benches passed
/// --threads additionally sweep the morsel-parallel engine and write a
/// BENCH_<tag>_PAR.json report.
inline bool StripThreadsFlag(int* argc, char** argv,
                             std::vector<std::size_t>* out) {
  bool found = false;
  int w = 1;
  for (int r = 1; r < *argc; ++r) {
    if (std::string(argv[r]) == "--threads" && r + 1 < *argc) {
      found = true;
      const std::string list = argv[++r];
      std::size_t pos = 0;
      while (pos < list.size()) {
        std::size_t comma = list.find(',', pos);
        if (comma == std::string::npos) comma = list.size();
        out->push_back(
            static_cast<std::size_t>(std::stoul(list.substr(pos, comma - pos))));
        pos = comma + 1;
      }
      continue;
    }
    argv[w++] = argv[r];
  }
  *argc = w;
  return found;
}

/// One thread-count sample of the parallel sweep.
struct ParallelSample {
  std::size_t threads = 1;
  double sec_per_query = 0;
  std::uint64_t rows = 0;
  std::uint64_t morsels = 0;
};

/// Times `sql` on the vectorized engine at each thread count (1 = the
/// serial batch engine; >1 = the morsel-driven parallel engine). Aborts if
/// any thread count changes the answer — parallel output must be
/// bit-identical to serial.
inline std::vector<ParallelSample> MeasureParallelSweep(
    SoftDb* db, const std::string& sql,
    const std::vector<std::size_t>& thread_counts, int iterations = 40) {
  const bool saved_vec = db->options().use_vectorized;
  const std::size_t saved_threads = db->options().num_threads;
  db->options().use_vectorized = true;

  std::vector<ParallelSample> samples;
  std::string reference;  // Serialized first-run rows, for bit-identity.
  for (const std::size_t threads : thread_counts) {
    db->options().num_threads = threads;
    db->plan_cache().Clear();
    QueryResult warm = MustExecute(db, sql);  // Warm: plan + scheduler.
    std::string rendered;
    for (const auto& row : warm.rows.rows) {
      for (const Value& v : row) rendered += v.ToString() + "|";
      rendered += "\n";
    }
    if (reference.empty()) {
      reference = rendered;
    } else if (rendered != reference) {
      std::fprintf(stderr, "parallel answer mismatch at %zu threads on %s\n",
                   threads, sql.c_str());
      std::abort();
    }
    const auto t0 = std::chrono::steady_clock::now();
    for (int i = 0; i < iterations; ++i) {
      volatile std::uint64_t sink = MustExecute(db, sql).rows.NumRows();
      (void)sink;
    }
    const auto t1 = std::chrono::steady_clock::now();
    ParallelSample s;
    s.threads = threads;
    s.sec_per_query =
        std::chrono::duration<double>(t1 - t0).count() / iterations;
    s.rows = warm.rows.NumRows();
    s.morsels = warm.exec_stats.morsels;
    samples.push_back(s);
  }
  db->options().use_vectorized = saved_vec;
  db->options().num_threads = saved_threads;
  db->plan_cache().Clear();
  return samples;
}

/// Emits the BENCH_<tag>_PAR.json report for a parallel sweep over one or
/// two query shapes.
inline void WriteParallelJson(const std::string& tag, const std::string& sql,
                              const std::vector<ParallelSample>& samples) {
  JsonWriter j;
  j.Add("bench", tag + "_PAR");
  j.Add("query", sql);
  j.Add("host_threads",
        static_cast<std::uint64_t>(std::thread::hardware_concurrency()));
  double serial_sec = 0;
  for (const ParallelSample& s : samples) {
    const std::string prefix = "t" + std::to_string(s.threads);
    j.Add(prefix + "_sec_per_query", s.sec_per_query);
    j.Add(prefix + "_rows", s.rows);
    j.Add(prefix + "_morsels", s.morsels);
    if (s.threads == 1) serial_sec = s.sec_per_query;
    if (serial_sec > 0 && s.threads > 1) {
      j.Add(prefix + "_speedup_vs_serial",
            s.sec_per_query > 0 ? serial_sec / s.sec_per_query : 0.0);
    }
  }
  j.WriteFile("BENCH_" + tag + "_PAR.json");
}

}  // namespace softdb::bench

#endif  // SOFTDB_BENCH_BENCH_UTIL_H_
