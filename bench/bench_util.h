#ifndef SOFTDB_BENCH_BENCH_UTIL_H_
#define SOFTDB_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "engine/softdb.h"
#include "workload/generator.h"
#include "workload/sc_kit.h"

namespace softdb::bench {

/// Standard experiment scale (large enough for stable page counts, small
/// enough that every bench binary runs in seconds).
inline WorkloadOptions StandardScale() {
  WorkloadOptions options;
  options.customers = 1000;
  options.orders = 10000;
  options.purchases = 20000;
  options.parts = 2000;
  options.projects = 5000;
  options.sales_per_month = 500;
  return options;
}

inline std::unique_ptr<SoftDb> MakeWorkloadDb(
    const WorkloadOptions& options = StandardScale()) {
  auto db = std::make_unique<SoftDb>();
  Status st = GenerateWorkload(db.get(), options);
  if (!st.ok()) {
    std::fprintf(stderr, "workload generation failed: %s\n",
                 st.ToString().c_str());
    std::abort();
  }
  return db;
}

/// Executes and aborts on error (benches should fail loudly).
inline QueryResult MustExecute(SoftDb* db, const std::string& sql) {
  auto result = db->Execute(sql);
  if (!result.ok()) {
    std::fprintf(stderr, "query failed: %s\n  %s\n",
                 result.status().ToString().c_str(), sql.c_str());
    std::abort();
  }
  return *std::move(result);
}

/// Fixed-width table printer for the paper-style result tables.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers,
                        std::size_t col_width = 14)
      : num_cols_(headers.size()), col_width_(col_width) {
    PrintRule();
    PrintRow(headers);
    PrintRule();
  }

  void PrintRow(const std::vector<std::string>& cells) {
    std::string line = "|";
    for (std::size_t i = 0; i < num_cols_; ++i) {
      std::string cell = i < cells.size() ? cells[i] : "";
      if (cell.size() > col_width_) cell.resize(col_width_);
      line += " " + cell + std::string(col_width_ - cell.size(), ' ') + " |";
    }
    std::puts(line.c_str());
  }

  void PrintRule() {
    std::string line = "+";
    for (std::size_t i = 0; i < num_cols_; ++i) {
      line += std::string(col_width_ + 2, '-') + "+";
    }
    std::puts(line.c_str());
  }

 private:
  std::size_t num_cols_;
  std::size_t col_width_;
};

inline std::string Fmt(const char* fmt, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), fmt, v);
  return buf;
}
inline std::string FmtU(std::uint64_t v) { return std::to_string(v); }

inline void Banner(const std::string& title) {
  std::puts("");
  std::puts(("=== " + title + " ===").c_str());
}

}  // namespace softdb::bench

#endif  // SOFTDB_BENCH_BENCH_UTIL_H_
