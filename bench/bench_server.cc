// bench_server: serving-layer throughput and tail latency (DESIGN.md §15).
//
// Closed-loop clients drive one shared engine through SessionManager at 1,
// 4 and 16 sessions, reporting per-statement throughput and p50/p99. A
// second run overloads a deliberately tiny admission queue (16 sessions,
// 2 workers, queue depth 8, retries off) and checks the two properties the
// dispatcher sells: every failure is a typed kResourceExhausted admission
// rejection (never a partial execution), and the p99 of *admitted* work
// stays a bounded multiple of the uncontended p99 — the queue bound, not
// the offered load, caps how much latency an admitted statement can absorb.
// CI gates both via BENCH_SERVER.json (--json).

#include <benchmark/benchmark.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "server/session.h"

namespace softdb::bench {
namespace {

constexpr int kTableRows = 4000;
constexpr int kStatementsPerClient = 150;

std::unique_ptr<SoftDb> MakeServedDb() {
  auto db = std::make_unique<SoftDb>();
  MustExecute(db.get(), "CREATE TABLE t (id BIGINT NOT NULL, v BIGINT)");
  for (int i = 0; i < kTableRows; ++i) {
    MustExecute(db.get(), "INSERT INTO t VALUES (" + std::to_string(i) +
                              ", " + std::to_string(i % 997) + ")");
  }
  MustExecute(db.get(), "ANALYZE t");
  return db;
}

std::string ProbeSql(int i) {
  const int lo = (i * 37) % (kTableRows - 200);
  return "SELECT id, v FROM t WHERE id BETWEEN " + std::to_string(lo) +
         " AND " + std::to_string(lo + 50);
}

double Percentile(std::vector<double> samples, double p) {
  if (samples.empty()) return 0;
  std::sort(samples.begin(), samples.end());
  const std::size_t idx = std::min(
      samples.size() - 1,
      static_cast<std::size_t>(p * static_cast<double>(samples.size())));
  return samples[idx];
}

struct LoadResult {
  std::size_t sessions = 0;
  double wall_sec = 0;
  double qps = 0;
  double p50_ms = 0;
  double p99_ms = 0;
  std::uint64_t ok = 0;
  std::uint64_t rejected = 0;   // Typed admission rejections.
  std::uint64_t untyped = 0;    // Anything else — must stay zero.
};

/// Closed loop: `sessions` clients each issue kStatementsPerClient probes
/// back-to-back, one outstanding statement per session. Latency samples
/// cover admitted (successful) statements only.
LoadResult RunClosedLoop(SoftDb* db, std::size_t sessions,
                         const ServerOptions& options) {
  SessionManager server(db, options);
  std::mutex mu;
  std::vector<double> latencies_ms;
  LoadResult out;
  out.sessions = sessions;
  std::atomic<std::uint64_t> ok{0}, rejected{0}, untyped{0};

  const auto wall0 = std::chrono::steady_clock::now();
  std::vector<std::thread> clients;
  for (std::size_t c = 0; c < sessions; ++c) {
    clients.emplace_back([&, c] {
      auto session = server.OpenSession("bench-" + std::to_string(c));
      if (!session.ok()) {
        std::fprintf(stderr, "OpenSession failed: %s\n",
                     session.status().ToString().c_str());
        std::abort();
      }
      std::vector<double> local;
      local.reserve(kStatementsPerClient);
      for (int i = 0; i < kStatementsPerClient; ++i) {
        const std::string sql = ProbeSql(static_cast<int>(c) * 1000 + i);
        const auto t0 = std::chrono::steady_clock::now();
        auto r = (*session)->Execute(sql);
        const auto t1 = std::chrono::steady_clock::now();
        if (r.ok()) {
          ok.fetch_add(1);
          local.push_back(
              std::chrono::duration<double, std::milli>(t1 - t0).count());
        } else if (r.status().code() == StatusCode::kResourceExhausted) {
          rejected.fetch_add(1);
        } else {
          untyped.fetch_add(1);
          std::fprintf(stderr, "untyped serving failure: %s\n",
                       r.status().ToString().c_str());
        }
      }
      std::lock_guard<std::mutex> lk(mu);
      latencies_ms.insert(latencies_ms.end(), local.begin(), local.end());
    });
  }
  for (auto& t : clients) t.join();
  out.wall_sec = std::chrono::duration<double>(
                     std::chrono::steady_clock::now() - wall0)
                     .count();
  if (!server.Drain().ok()) {
    std::fprintf(stderr, "Drain failed\n");
    std::abort();
  }
  out.ok = ok.load();
  out.rejected = rejected.load();
  out.untyped = untyped.load();
  out.qps = out.wall_sec > 0 ? static_cast<double>(out.ok) / out.wall_sec : 0;
  out.p50_ms = Percentile(latencies_ms, 0.50);
  out.p99_ms = Percentile(latencies_ms, 0.99);
  return out;
}

void PrintAndEmit(bool emit_json) {
  auto db = MakeServedDb();

  Banner("Serving throughput (closed loop, " +
         std::to_string(kStatementsPerClient) + " statements/session)");
  ServerOptions ample;
  ample.worker_threads = 4;
  ample.max_queue_depth = 256;
  ample.high_water_depth = 240;
  std::vector<LoadResult> sweep;
  for (const std::size_t sessions : {1u, 4u, 16u}) {
    sweep.push_back(RunClosedLoop(db.get(), sessions, ample));
  }

  TablePrinter table(
      {"sessions", "qps", "p50 ms", "p99 ms", "ok", "rejected"});
  for (const LoadResult& r : sweep) {
    table.PrintRow({std::to_string(r.sessions), Fmt("%.0f", r.qps),
                    Fmt("%.3f", r.p50_ms), Fmt("%.3f", r.p99_ms),
                    FmtU(r.ok), FmtU(r.rejected)});
  }
  table.PrintRule();
  for (const LoadResult& r : sweep) {
    // With an ample queue nothing is shed and nothing fails untyped.
    if (r.rejected != 0 || r.untyped != 0 ||
        r.ok != r.sessions * kStatementsPerClient) {
      std::fprintf(stderr, "ample-queue run lost statements\n");
      std::abort();
    }
  }
  const double uncontended_p99 = sweep.front().p99_ms;

  Banner("Overload: 16 sessions, 2 workers, queue depth 8, retries off");
  ServerOptions tight;
  tight.worker_threads = 2;
  tight.max_queue_depth = 8;
  tight.high_water_depth = 8;  // Reject, don't shed: equal priorities.
  tight.retry.max_attempts = 1;
  const LoadResult overload = RunClosedLoop(db.get(), 16, tight);
  TablePrinter otable(
      {"sessions", "qps", "p50 ms", "p99 ms", "ok", "rejected", "untyped"});
  otable.PrintRow({std::to_string(overload.sessions),
                   Fmt("%.0f", overload.qps), Fmt("%.3f", overload.p50_ms),
                   Fmt("%.3f", overload.p99_ms), FmtU(overload.ok),
                   FmtU(overload.rejected), FmtU(overload.untyped)});
  otable.PrintRule();

  // The dispatcher's overload contract, asserted loudly: failures are
  // typed rejections only, and admitted-tail latency is bounded by the
  // queue (depth/workers service times of wait), not by offered load.
  // 40x leaves generous headroom over the ~5x the queue math predicts.
  if (overload.untyped != 0) {
    std::fprintf(stderr, "overload produced untyped failures\n");
    std::abort();
  }
  if (uncontended_p99 > 0 && overload.p99_ms > 40.0 * uncontended_p99 &&
      overload.p99_ms > 50.0) {
    std::fprintf(stderr,
                 "admitted p99 %.3fms exceeds 40x uncontended %.3fms\n",
                 overload.p99_ms, uncontended_p99);
    std::abort();
  }

  if (!emit_json) return;
  JsonWriter j;
  j.Add("bench", "SERVER");
  j.Add("table_rows", kTableRows);
  j.Add("statements_per_session", kStatementsPerClient);
  for (const LoadResult& r : sweep) {
    const std::string tag = "s" + std::to_string(r.sessions);
    j.Add(tag + "_qps", r.qps);
    j.Add(tag + "_p50_ms", r.p50_ms);
    j.Add(tag + "_p99_ms", r.p99_ms);
    j.Add(tag + "_ok", r.ok);
    j.Add(tag + "_rejected", r.rejected);
  }
  j.Add("overload_sessions", static_cast<std::uint64_t>(overload.sessions));
  j.Add("overload_qps", overload.qps);
  j.Add("overload_p50_ms", overload.p50_ms);
  j.Add("overload_p99_ms", overload.p99_ms);
  j.Add("overload_ok", overload.ok);
  j.Add("overload_rejected_typed", overload.rejected);
  j.Add("overload_untyped", overload.untyped);
  j.Add("overload_p99_over_uncontended",
        uncontended_p99 > 0 ? overload.p99_ms / uncontended_p99 : 0.0);
  j.WriteFile("BENCH_SERVER.json");
}

void BM_ServedPointSelect(::benchmark::State& state) {
  static SoftDb* db = MakeServedDb().release();
  static SessionManager* server = new SessionManager(db);
  static Session* session = [] {
    auto s = server->OpenSession("bm");
    if (!s.ok()) std::abort();
    return *s;
  }();
  std::int64_t i = 0;
  for (auto _ : state) {
    auto r = session->Execute("SELECT v FROM t WHERE id = " +
                              std::to_string(i++ % kTableRows));
    if (!r.ok()) std::abort();
    ::benchmark::DoNotOptimize(r->rows.NumRows());
  }
}
BENCHMARK(BM_ServedPointSelect);

void BM_DirectPointSelect(::benchmark::State& state) {
  static SoftDb* db = MakeServedDb().release();
  std::int64_t i = 0;
  for (auto _ : state) {
    auto r = db->Execute("SELECT v FROM t WHERE id = " +
                         std::to_string(i++ % kTableRows));
    if (!r.ok()) std::abort();
    ::benchmark::DoNotOptimize(r->rows.NumRows());
  }
}
BENCHMARK(BM_DirectPointSelect);

}  // namespace
}  // namespace softdb::bench

int main(int argc, char** argv) {
  const bool emit_json = softdb::bench::StripJsonFlag(&argc, argv);
  softdb::bench::PrintAndEmit(emit_json);
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
