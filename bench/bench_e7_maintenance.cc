// E7 — Constraint maintenance costs and ASC violation handling (§1, §3.2,
// §4.1–4.3). Three tables:
//   (a) insert-path overhead: no constraints vs informational vs enforced
//       (informational constraints "never need to be expensively checked");
//   (b) ASC maintenance policies under a violating workload: drop / sync
//       repair / async repair / tolerate;
//   (c) plan invalidation: packages built on an overturned ASC flip to
//       their ASC-free backup plans (§4.1).

#include <benchmark/benchmark.h>

#include <chrono>

#include "bench/bench_util.h"
#include "constraints/column_offset_sc.h"

namespace softdb::bench {
namespace {

std::unique_ptr<SoftDb> MakeEmployerDb(int constraint_mode) {
  // constraint_mode: 0 none, 1 informational, 2 enforced.
  auto db = std::make_unique<SoftDb>();
  if (!db->Execute("CREATE TABLE parent (p BIGINT NOT NULL)").ok()) {
    std::abort();
  }
  for (int i = 0; i < 1000; ++i) {
    if (!db->InsertRow("parent", {Value::Int64(i)}).ok()) std::abort();
  }
  if (!db->Execute("CREATE TABLE child (c BIGINT NOT NULL, "
                   "fk BIGINT NOT NULL, v BIGINT)")
           .ok()) {
    std::abort();
  }
  if (constraint_mode > 0) {
    const ConstraintMode mode = constraint_mode == 1
                                    ? ConstraintMode::kInformational
                                    : ConstraintMode::kEnforced;
    if (!db->ics()
             .Add(std::make_unique<UniqueConstraint>(
                      "pk_parent", "parent", std::vector<ColumnIdx>{0}, true,
                      mode),
                  db->catalog())
             .ok()) {
      std::abort();
    }
    if (!db->ics()
             .Add(std::make_unique<UniqueConstraint>(
                      "pk_child", "child", std::vector<ColumnIdx>{0}, true,
                      mode),
                  db->catalog())
             .ok()) {
      std::abort();
    }
    if (!db->ics()
             .Add(std::make_unique<ForeignKeyConstraint>(
                      "fk_child", "child", std::vector<ColumnIdx>{1},
                      "parent", std::vector<ColumnIdx>{0}, mode),
                  db->catalog())
             .ok()) {
      std::abort();
    }
  }
  return db;
}

double InsertThroughput(SoftDb* db, int rows) {
  const auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < rows; ++i) {
    if (!db->InsertRow("child", {Value::Int64(i), Value::Int64(i % 1000),
                                 Value::Int64(i)})
             .ok()) {
      std::abort();
    }
  }
  const auto end = std::chrono::steady_clock::now();
  const double seconds =
      std::chrono::duration<double>(end - start).count();
  return static_cast<double>(rows) / seconds;
}

void PrintInsertOverheadTable() {
  Banner("E7a: insert-path cost -- enforced vs informational constraints");
  TablePrinter table({"constraints", "rows/sec", "row checks", "relative"});
  constexpr int kRows = 20000;
  double baseline = 0.0;
  const char* labels[] = {"none", "informational", "enforced (PK+FK)"};
  for (int mode = 0; mode < 3; ++mode) {
    auto db = MakeEmployerDb(mode);
    const double throughput = InsertThroughput(db.get(), kRows);
    if (mode == 0) baseline = throughput;
    table.PrintRow({labels[mode], Fmt("%.0f", throughput),
                    FmtU(db->ics().checks_performed()),
                    Fmt("%.2fx", throughput / baseline)});
  }
  table.PrintRule();
  std::puts(
      "shape check: informational constraints cost (almost) nothing on the "
      "insert path -- the paper's warehouse-loader scenario -- while "
      "enforced PK+FK checking has a visible per-row cost.");
}

void PrintPolicyTable() {
  Banner("E7b: ASC maintenance policies under a 1%-violating insert stream");
  TablePrinter table({"policy", "violations", "final state", "conf after",
                      "sync repairs", "queue len"});
  const struct {
    ScMaintenancePolicy policy;
    const char* label;
  } kPolicies[] = {
      {ScMaintenancePolicy::kDropOnViolation, "drop"},
      {ScMaintenancePolicy::kSyncRepair, "sync repair"},
      {ScMaintenancePolicy::kAsyncRepair, "async repair"},
      {ScMaintenancePolicy::kTolerate, "tolerate"},
  };
  for (const auto& p : kPolicies) {
    auto db = std::make_unique<SoftDb>();
    if (!db->Execute("CREATE TABLE t (x BIGINT NOT NULL, y BIGINT NOT NULL)")
             .ok()) {
      std::abort();
    }
    for (int i = 0; i < 1000; ++i) {
      if (!db->InsertRow("t", {Value::Int64(i), Value::Int64(i + 3)}).ok()) {
        std::abort();
      }
    }
    auto sc = std::make_unique<ColumnOffsetSc>("win", "t", 0, 1, 0, 10);
    sc->set_policy(p.policy);
    if (!db->scs().Add(std::move(sc), db->catalog()).ok()) std::abort();

    // 1000 inserts, 1% violating.
    for (int i = 0; i < 1000; ++i) {
      const std::int64_t y = (i % 100 == 0) ? i + 100 : i + 5;
      if (!db->InsertRow("t", {Value::Int64(10000 + i), Value::Int64(10000 + y)})
               .ok()) {
        std::abort();
      }
    }
    const SoftConstraint* sc_after = db->scs().Find("win");
    table.PrintRow({p.label, FmtU(db->scs().stats().violations),
                    ScStateName(sc_after->state()),
                    Fmt("%.4f", sc_after->confidence()),
                    FmtU(db->scs().stats().sync_repairs),
                    FmtU(db->scs().repair_queue_size())});
  }
  table.PrintRule();
  std::puts(
      "shape check: drop loses the SC at the first violation; sync repair "
      "keeps it absolute by widening; async queues one exact repair; "
      "tolerate demotes it to a statistical SC.");
}

void PrintInvalidationTable() {
  Banner("E7c: plan invalidation and backup-plan flip (SS4.1)");
  auto db = std::make_unique<SoftDb>();
  if (!db->Execute("CREATE TABLE t (x BIGINT NOT NULL, y BIGINT NOT NULL)")
           .ok()) {
    std::abort();
  }
  for (int i = 0; i < 5000; ++i) {
    if (!db->InsertRow("t", {Value::Int64(i), Value::Int64(i + 3)}).ok()) {
      std::abort();
    }
  }
  if (!db->Execute("CREATE INDEX ix ON t (x)").ok()) std::abort();
  if (!db->Execute("ANALYZE t").ok()) std::abort();
  auto sc = std::make_unique<ColumnOffsetSc>("win", "t", 0, 1, 0, 10);
  sc->set_policy(ScMaintenancePolicy::kDropOnViolation);
  if (!db->scs().Add(std::move(sc), db->catalog()).ok()) std::abort();

  const std::string query = "SELECT * FROM t WHERE y BETWEEN 600 AND 620";
  TablePrinter table({"phase", "plan source", "backup?", "rows",
                      "pages read"});
  auto first = MustExecute(db.get(), query);
  table.PrintRow({"compile", "fresh", first.used_backup_plan ? "yes" : "no",
                  FmtU(first.rows.NumRows()),
                  FmtU(first.exec_stats.pages_read)});
  auto cached = MustExecute(db.get(), query);
  table.PrintRow({"re-run", "cache", cached.used_backup_plan ? "yes" : "no",
                  FmtU(cached.rows.NumRows()),
                  FmtU(cached.exec_stats.pages_read)});
  // Violating insert lands inside the query window: the primary plan would
  // now be wrong; the backup plan finds the new row.
  if (!db->InsertRow("t", {Value::Int64(9999), Value::Int64(610)}).ok()) {
    std::abort();
  }
  auto flipped = MustExecute(db.get(), query);
  table.PrintRow({"post-violation", "cache",
                  flipped.used_backup_plan ? "yes" : "no",
                  FmtU(flipped.rows.NumRows()),
                  FmtU(flipped.exec_stats.pages_read)});
  table.PrintRule();
  if (flipped.rows.NumRows() != cached.rows.NumRows() + 1 ||
      !flipped.used_backup_plan) {
    std::fprintf(stderr, "E7c: backup flip failed!\n");
    std::abort();
  }
  std::puts(
      "shape check: the violating row (y=610, x=9999, outside the ASC "
      "window) is FOUND after the flip -- the backup plan preserved "
      "correctness at the cost of the full scan.");
}

void BM_E7_InsertEnforced(::benchmark::State& state) {
  auto db = MakeEmployerDb(2);
  std::int64_t i = 0;
  for (auto _ : state) {
    if (!db->InsertRow("child", {Value::Int64(i), Value::Int64(i % 1000),
                                 Value::Int64(i)})
             .ok()) {
      std::abort();
    }
    ++i;
  }
}
BENCHMARK(BM_E7_InsertEnforced);

void BM_E7_InsertInformational(::benchmark::State& state) {
  auto db = MakeEmployerDb(1);
  std::int64_t i = 0;
  for (auto _ : state) {
    if (!db->InsertRow("child", {Value::Int64(i), Value::Int64(i % 1000),
                                 Value::Int64(i)})
             .ok()) {
      std::abort();
    }
    ++i;
  }
}
BENCHMARK(BM_E7_InsertInformational);

}  // namespace
}  // namespace softdb::bench

int main(int argc, char** argv) {
  softdb::bench::PrintInsertOverheadTable();
  softdb::bench::PrintPolicyTable();
  softdb::bench::PrintInvalidationTable();
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
