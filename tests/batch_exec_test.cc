// Vectorized batch engine tests: the batch path must be byte-identical to
// the row path — same rows, same ExecStats — across tombstones, §4.2
// runtime-parameterized scans, and hash-join result sets larger than one
// batch. Plus direct ColumnBatch unit coverage.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "engine/softdb.h"
#include "exec/column_batch.h"

namespace softdb {
namespace {

class BatchExecTest : public ::testing::Test {
 protected:
  // Runs `sql` on the row engine and the batch engine; asserts identical
  // rows (type, nullness, rendering) and identical ExecStats, then returns
  // the batch-engine result for further assertions.
  QueryResult RunBoth(const std::string& sql) {
    db_.options().use_vectorized = false;
    db_.plan_cache().Clear();
    auto row_result = db_.Execute(sql);
    EXPECT_TRUE(row_result.ok())
        << sql << " -> " << row_result.status().ToString();

    db_.options().use_vectorized = true;
    db_.plan_cache().Clear();
    auto batch_result = db_.Execute(sql);
    EXPECT_TRUE(batch_result.ok())
        << sql << " -> " << batch_result.status().ToString();
    if (!row_result.ok() || !batch_result.ok()) return QueryResult{};

    EXPECT_EQ(row_result->rows.NumRows(), batch_result->rows.NumRows())
        << sql;
    if (row_result->rows.NumRows() == batch_result->rows.NumRows()) {
      for (std::size_t i = 0; i < row_result->rows.NumRows(); ++i) {
        const auto& rr = row_result->rows.rows[i];
        const auto& br = batch_result->rows.rows[i];
        EXPECT_EQ(rr.size(), br.size()) << sql << " row " << i;
        if (rr.size() != br.size()) break;
        for (std::size_t c = 0; c < rr.size(); ++c) {
          EXPECT_EQ(rr[c].type(), br[c].type())
              << sql << " row " << i << " col " << c;
          EXPECT_EQ(rr[c].is_null(), br[c].is_null())
              << sql << " row " << i << " col " << c;
          EXPECT_EQ(rr[c].ToString(), br[c].ToString())
              << sql << " row " << i << " col " << c;
        }
      }
    }
    const ExecStats& rs = row_result->exec_stats;
    const ExecStats& bs = batch_result->exec_stats;
    EXPECT_EQ(rs.rows_scanned, bs.rows_scanned) << sql;
    EXPECT_EQ(rs.rows_emitted, bs.rows_emitted) << sql;
    EXPECT_EQ(rs.pages_read, bs.pages_read) << sql;
    EXPECT_EQ(rs.rows_output, bs.rows_output) << sql;
    EXPECT_EQ(rs.index_lookups, bs.index_lookups) << sql;
    EXPECT_EQ(rs.rows_joined, bs.rows_joined) << sql;
    EXPECT_EQ(rs.runtime_param_skips, bs.runtime_param_skips) << sql;
    return *std::move(batch_result);
  }

  SoftDb db_;
};

TEST_F(BatchExecTest, MultiBatchScanWithTombstones) {
  // > 2 batches of rows, then punch tombstone holes so batch boundaries
  // land inside deleted ranges: the selection vector must skip dead slots
  // exactly as the row scan does.
  ASSERT_TRUE(
      db_.Execute("CREATE TABLE big (k BIGINT NOT NULL, v BIGINT)").ok());
  for (int i = 0; i < 3000; ++i) {
    ASSERT_TRUE(db_.InsertRow("big", {Value::Int64(i),
                                      i % 11 == 0 ? Value::Null()
                                                  : Value::Int64(i % 97)})
                    .ok());
  }
  ASSERT_TRUE(db_.Execute("ANALYZE big").ok());
  ASSERT_TRUE(db_.Execute("DELETE FROM big WHERE k >= 1000 AND k < 1100").ok());
  ASSERT_TRUE(db_.Execute("DELETE FROM big WHERE k - 2040 = 0").ok());

  auto r = RunBoth("SELECT k, v FROM big WHERE v < 50");
  EXPECT_GT(r.rows.NumRows(), 0u);
  EXPECT_EQ(r.exec_stats.rows_scanned, 2899u);

  RunBoth("SELECT k + v, v FROM big WHERE v IS NULL OR k < 700");
}

TEST_F(BatchExecTest, RuntimeParamSkipAndContradictionMatchRowEngine) {
  ASSERT_TRUE(
      db_.Execute("CREATE TABLE t (v BIGINT NOT NULL, p BIGINT)").ok());
  for (int i = 0; i < 2000; ++i) {
    const std::int64_t v = (i * 7919) % 2000;
    ASSERT_TRUE(db_.InsertRow("t", {Value::Int64(v), Value::Int64(i)}).ok());
  }
  ASSERT_TRUE(db_.Execute("CREATE INDEX iv ON t (v)").ok());
  ASSERT_TRUE(db_.Execute("ANALYZE t").ok());

  // Tautology: v <= 10000 covers the whole domain — skipped at Open on
  // both engines, counted identically.
  auto taut =
      RunBoth("SELECT COUNT(*) AS n FROM t WHERE v <= 10000 AND p >= 0");
  EXPECT_EQ(taut.rows.rows[0][0].AsInt64(), 2000);
  EXPECT_GE(taut.exec_stats.runtime_param_skips, 1u);

  // Contradiction: provably empty at Open — zero pages on both engines.
  auto contra = RunBoth("SELECT * FROM t WHERE v > 10000 AND p >= 0");
  EXPECT_EQ(contra.rows.NumRows(), 0u);
  EXPECT_EQ(contra.exec_stats.pages_read, 0u);
  EXPECT_EQ(contra.exec_stats.rows_scanned, 0u);
}

TEST_F(BatchExecTest, IndexRangeScanMatchesRowEngine) {
  ASSERT_TRUE(
      db_.Execute("CREATE TABLE ix (a BIGINT NOT NULL, b VARCHAR)").ok());
  for (int i = 0; i < 1500; ++i) {
    ASSERT_TRUE(db_.InsertRow("ix", {Value::Int64(i % 300),
                                     Value::String(i % 2 ? "x" : "y")})
                    .ok());
  }
  ASSERT_TRUE(db_.Execute("CREATE INDEX ixa ON ix (a)").ok());
  ASSERT_TRUE(db_.Execute("ANALYZE ix").ok());

  auto r = RunBoth("SELECT a, b FROM ix WHERE a >= 10 AND a <= 12 "
                   "AND b = 'x'");
  EXPECT_GT(r.exec_stats.index_lookups, 0u);
  EXPECT_GT(r.rows.NumRows(), 0u);
}

TEST_F(BatchExecTest, HashJoinResultLargerThanOneBatch) {
  // One probe row matches 3000 build rows: the batch join must carry its
  // match cursor across NextBatch calls (3000 > batch capacity 1024).
  ASSERT_TRUE(
      db_.Execute("CREATE TABLE l (lk BIGINT NOT NULL, ln BIGINT)").ok());
  ASSERT_TRUE(
      db_.Execute("CREATE TABLE r (rk BIGINT NOT NULL, rn BIGINT)").ok());
  ASSERT_TRUE(
      db_.InsertRow("l", {Value::Int64(7), Value::Int64(-1)}).ok());
  ASSERT_TRUE(
      db_.InsertRow("l", {Value::Int64(8), Value::Int64(-2)}).ok());
  for (int i = 0; i < 3000; ++i) {
    ASSERT_TRUE(
        db_.InsertRow("r", {Value::Int64(7), Value::Int64(i)}).ok());
  }
  ASSERT_TRUE(db_.Analyze().ok());

  auto all = RunBoth("SELECT lk, ln, rn FROM l JOIN r ON lk = rk");
  EXPECT_EQ(all.rows.NumRows(), 3000u);
  EXPECT_EQ(all.exec_stats.rows_joined, 3000u);

  // Residual predicate applied after the equi-match, same on both engines.
  auto filtered =
      RunBoth("SELECT lk, rn FROM l JOIN r ON lk = rk WHERE ln + rn < 500");
  EXPECT_EQ(filtered.rows.NumRows(), 501u);
  EXPECT_EQ(filtered.exec_stats.rows_joined, 3000u);
}

TEST_F(BatchExecTest, ExplainAnnotatesVectorizedExecution) {
  ASSERT_TRUE(db_.Execute("CREATE TABLE e (x BIGINT)").ok());
  db_.options().use_vectorized = true;
  auto on = db_.Explain("SELECT * FROM e WHERE x > 0");
  ASSERT_TRUE(on.ok());
  EXPECT_NE(on->find("vectorized"), std::string::npos);

  db_.options().use_vectorized = false;
  db_.plan_cache().Clear();
  auto off = db_.Explain("SELECT * FROM e WHERE x > 0");
  ASSERT_TRUE(off.ok());
  EXPECT_EQ(off->find("vectorized"), std::string::npos);
}

TEST(ColumnBatchTest, OwnedColumnsRoundTripValues) {
  Schema schema;
  schema.AddColumn({"i", TypeId::kInt64, true, ""});
  schema.AddColumn({"d", TypeId::kDouble, true, ""});
  schema.AddColumn({"s", TypeId::kString, true, ""});
  ColumnBatch batch;
  batch.Reset(schema);

  const std::string hello = "hello";
  batch.column(0).AppendRawInt64(42, false);
  batch.column(0).AppendRawInt64(0, true);
  batch.column(1).AppendRawDouble(2.5, false);
  batch.column(1).AppendRawDouble(0, true);
  batch.column(2).AppendRawString(&hello, false);
  batch.column(2).AppendRawString(nullptr, true);
  batch.SelectAll(2);

  EXPECT_EQ(batch.column(0).GetValue(0).AsInt64(), 42);
  EXPECT_TRUE(batch.column(0).GetValue(1).is_null());
  EXPECT_EQ(batch.column(0).GetValue(1).type(), TypeId::kInt64);
  EXPECT_EQ(batch.column(1).GetValue(0).AsDouble(), 2.5);
  EXPECT_EQ(batch.column(2).GetValue(0).AsString(), "hello");
  EXPECT_TRUE(batch.column(2).GetValue(1).is_null());

  const std::vector<Value> row = batch.MaterializeRow(0);
  ASSERT_EQ(row.size(), 3u);
  EXPECT_EQ(row[0].AsInt64(), 42);
  EXPECT_EQ(row[1].AsDouble(), 2.5);
  EXPECT_EQ(row[2].AsString(), "hello");
}

}  // namespace
}  // namespace softdb
