// Block zone maps as a skippable SC class (DESIGN.md §10): mining, the
// plan-time skip sets, incremental widen-only DML folding, the epoch
// protocol on out-of-envelope updates, and detection + repair of corrupted
// maps through the standard VerifyAll / RepairFull machinery.

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "constraints/zone_map_sc.h"
#include "engine/softdb.h"
#include "storage/table.h"

namespace softdb {
namespace {

// Four full 1024-row blocks of clustered data: v = row id (so block b's
// envelope is exactly [1024b, 1024b + 1023]), w is NULL throughout block 0
// and non-NULL elsewhere, s is a string column (never zone-mapped).
class ZoneMapTest : public ::testing::Test {
 protected:
  static constexpr std::size_t kRows = 4 * kZoneMapBlockRows;

  void SetUp() override {
    ASSERT_TRUE(
        db_.Execute("CREATE TABLE m (v BIGINT NOT NULL, w DOUBLE, s VARCHAR)")
            .ok());
    for (std::size_t i = 0; i < kRows; ++i) {
      std::vector<Value> row;
      row.push_back(Value::Int64(static_cast<std::int64_t>(i)));
      row.push_back(i < kZoneMapBlockRows
                        ? Value::Null()
                        : Value::Double(static_cast<double>(i) * 0.5));
      row.push_back(Value::String(i % 2 == 0 ? "even" : "odd"));
      ASSERT_TRUE(db_.InsertRow("m", row).ok());
    }
    ASSERT_TRUE(db_.Execute("ANALYZE m").ok());
    ASSERT_TRUE(db_.MineZoneMaps("m").ok());
  }

  ZoneMapSc* Map(const std::string& name) {
    SoftConstraint* sc = db_.scs().Find(name);
    EXPECT_NE(sc, nullptr) << name;
    EXPECT_EQ(sc->kind(), ScKind::kBlockZoneMap) << name;
    return static_cast<ZoneMapSc*>(sc);
  }

  QueryResult Run(const std::string& sql) {
    db_.plan_cache().Clear();
    auto result = db_.Execute(sql);
    EXPECT_TRUE(result.ok()) << sql << " -> " << result.status().ToString();
    return result.ok() ? std::move(*result) : QueryResult{};
  }

  SoftDb db_;
};

TEST_F(ZoneMapTest, MiningBuildsTightPerBlockEnvelopes) {
  ZoneMapSc* v = Map("zm_m_v");
  ASSERT_NE(v, nullptr);
  EXPECT_TRUE(v->IsAbsolute());
  const auto blocks = v->SnapshotBlocks();
  ASSERT_EQ(blocks.size(), 4u);
  for (std::size_t b = 0; b < blocks.size(); ++b) {
    EXPECT_TRUE(blocks[b].has_value);
    EXPECT_EQ(blocks[b].min, static_cast<double>(b * kZoneMapBlockRows));
    EXPECT_EQ(blocks[b].max,
              static_cast<double>(b * kZoneMapBlockRows +
                                  kZoneMapBlockRows - 1));
    EXPECT_EQ(blocks[b].null_count, 0u);
  }

  const auto w_blocks = Map("zm_m_w")->SnapshotBlocks();
  ASSERT_EQ(w_blocks.size(), 4u);
  EXPECT_FALSE(w_blocks[0].has_value);  // Block 0 of w is all NULL.
  EXPECT_EQ(w_blocks[0].null_count, kZoneMapBlockRows);
  for (std::size_t b = 1; b < 4; ++b) {
    EXPECT_TRUE(w_blocks[b].has_value);
    EXPECT_EQ(w_blocks[b].null_count, 0u);
  }

  // VARCHAR columns are never zone-mapped.
  EXPECT_EQ(db_.scs().Find("zm_m_s"), nullptr);
}

TEST_F(ZoneMapTest, SelectiveScanSkipsNonMatchingBlocks) {
  const QueryResult r = Run("SELECT * FROM m WHERE v BETWEEN 2048 AND 2100");
  EXPECT_EQ(r.rows.NumRows(), 53u);
  EXPECT_EQ(r.exec_stats.blocks_total, 4u);
  EXPECT_EQ(r.exec_stats.blocks_skipped, 3u);  // Only block 2 overlaps.
  // Skipped blocks are never touched: the scan reads one block's rows.
  EXPECT_EQ(r.exec_stats.rows_scanned, kZoneMapBlockRows);

  // Identical answer with zone maps off, at full scan cost.
  db_.options().enable_zone_maps = false;
  const QueryResult off = Run("SELECT * FROM m WHERE v BETWEEN 2048 AND 2100");
  EXPECT_EQ(off.rows.NumRows(), 53u);
  EXPECT_EQ(off.exec_stats.blocks_total, 0u);
  EXPECT_EQ(off.exec_stats.blocks_skipped, 0u);
  EXPECT_EQ(off.exec_stats.rows_scanned, kRows);
  db_.options().enable_zone_maps = true;

  // A contradiction with every envelope skips the whole table.
  const QueryResult none = Run("SELECT * FROM m WHERE v > 99999999");
  EXPECT_EQ(none.rows.NumRows(), 0u);
  EXPECT_EQ(none.exec_stats.blocks_skipped, 4u);
  EXPECT_EQ(none.exec_stats.rows_scanned, 0u);
}

TEST_F(ZoneMapTest, NullCountAndHasValuePruning) {
  // Blocks 1..3 carry null_count == 0, so `w IS NULL` only reads block 0.
  const QueryResult nulls = Run("SELECT * FROM m WHERE w IS NULL");
  EXPECT_EQ(nulls.rows.NumRows(), kZoneMapBlockRows);
  EXPECT_EQ(nulls.exec_stats.blocks_skipped, 3u);

  // Block 0 of w has no value at all, so any comparison on w prunes it.
  const QueryResult cmp = Run("SELECT * FROM m WHERE w >= 0");
  EXPECT_EQ(cmp.rows.NumRows(), kRows - kZoneMapBlockRows);
  EXPECT_EQ(cmp.exec_stats.blocks_skipped, 1u);

  // ... and so does IS NOT NULL.
  const QueryResult notnull = Run("SELECT * FROM m WHERE w IS NOT NULL");
  EXPECT_EQ(notnull.rows.NumRows(), kRows - kZoneMapBlockRows);
  EXPECT_EQ(notnull.exec_stats.blocks_skipped, 1u);
}

TEST_F(ZoneMapTest, ErrorReachablePredicateDisablesSkippingForTheScan) {
  // The arithmetic conjunct could (in general) raise, so no block of this
  // scan may be skipped even though `v > 99999999` alone prunes them all:
  // a skipped block would silently swallow the error the row engine
  // raises. The scan falls back to reading everything.
  const QueryResult r =
      Run("SELECT * FROM m WHERE v > 99999999 AND v + 1 > 0");
  EXPECT_EQ(r.rows.NumRows(), 0u);
  EXPECT_EQ(r.exec_stats.blocks_total, 0u);
  EXPECT_EQ(r.exec_stats.blocks_skipped, 0u);
  EXPECT_EQ(r.exec_stats.rows_scanned, kRows);
}

TEST_F(ZoneMapTest, SkipsAreAttributedThroughRecordScUse) {
  const std::uint64_t before = db_.scs().UseCount("zm_m_v");
  const double benefit_before = db_.scs().TotalBenefit("zm_m_v");
  Run("SELECT * FROM m WHERE v < 100");
  EXPECT_EQ(db_.scs().UseCount("zm_m_v"), before + 1);
  EXPECT_GT(db_.scs().TotalBenefit("zm_m_v"), benefit_before);
  // A scan the map cannot help is not billed as a use.
  Run("SELECT * FROM m WHERE s = 'even'");
  EXPECT_EQ(db_.scs().UseCount("zm_m_v"), before + 1);
}

TEST_F(ZoneMapTest, AppendsWidenIncrementallyWithoutEpochBump) {
  ZoneMapSc* v = Map("zm_m_v");
  const std::uint64_t epoch0 = v->epoch();

  // Appending starts block 4; the envelope grows, the epoch does not (a
  // loosened envelope cannot invalidate an in-flight skip decision).
  ASSERT_TRUE(db_.Execute("INSERT INTO m VALUES (999999, 1.5, 'big')").ok());
  ASSERT_TRUE(db_.Execute("INSERT INTO m VALUES (-7, NULL, 'neg')").ok());
  EXPECT_EQ(v->epoch(), epoch0);
  EXPECT_TRUE(v->IsAbsolute());

  const auto blocks = v->SnapshotBlocks();
  ASSERT_EQ(blocks.size(), 5u);
  EXPECT_EQ(blocks[4].min, -7.0);
  EXPECT_EQ(blocks[4].max, 999999.0);
  EXPECT_EQ(blocks[4].null_count, 0u);
  EXPECT_EQ(Map("zm_m_w")->SnapshotBlocks()[4].null_count, 1u);

  // The freshly appended rows are found; old blocks still prune.
  const QueryResult r = Run("SELECT * FROM m WHERE v > 100000");
  EXPECT_EQ(r.rows.NumRows(), 1u);
  EXPECT_EQ(r.exec_stats.blocks_total, 5u);
  EXPECT_EQ(r.exec_stats.blocks_skipped, 4u);
}

TEST_F(ZoneMapTest, OutOfEnvelopeUpdateWidensAndBumpsEpoch) {
  ZoneMapSc* v = Map("zm_m_v");
  const std::uint64_t epoch0 = v->epoch();

  // Out-of-envelope update: widen + epoch bump (in-flight skip sets that
  // consumed this map are now stale; RunPlan degrades them once).
  ASSERT_TRUE(db_.Execute("UPDATE m SET v = 500000 WHERE v = 10").ok());
  EXPECT_GT(v->epoch(), epoch0);
  EXPECT_TRUE(v->IsAbsolute());  // Still sound: widen-only.
  const auto blocks = v->SnapshotBlocks();
  EXPECT_EQ(blocks[0].max, 500000.0);
  const QueryResult r = Run("SELECT * FROM m WHERE v = 500000");
  EXPECT_EQ(r.rows.NumRows(), 1u);
  EXPECT_EQ(r.exec_stats.blocks_skipped, 3u);  // Blocks 1..3 still prune.

  // In-envelope update: no widening, no epoch bump.
  const std::uint64_t epoch1 = v->epoch();
  ASSERT_TRUE(db_.Execute("UPDATE m SET v = 11 WHERE v = 500000").ok());
  EXPECT_EQ(v->epoch(), epoch1);

  // NULL transition on w raises the block's null bound and bumps w's map.
  ZoneMapSc* w = Map("zm_m_w");
  const std::uint64_t w_epoch = w->epoch();
  const std::uint64_t nulls1 = w->SnapshotBlocks()[1].null_count;
  ASSERT_TRUE(db_.Execute("UPDATE m SET w = NULL WHERE v = 1500").ok());
  EXPECT_GT(w->epoch(), w_epoch);
  EXPECT_EQ(w->SnapshotBlocks()[1].null_count, nulls1 + 1);
  const QueryResult nr = Run("SELECT * FROM m WHERE w IS NULL");
  EXPECT_EQ(nr.rows.NumRows(), kZoneMapBlockRows + 1);
}

TEST_F(ZoneMapTest, DeletesLeaveTheEnvelopeLoose) {
  ZoneMapSc* v = Map("zm_m_v");
  const std::uint64_t epoch0 = v->epoch();
  ASSERT_TRUE(db_.Execute("DELETE FROM m WHERE v >= 1024 AND v < 2048").ok());
  // The envelope just stays loose: no epoch bump, still absolute, and the
  // (now row-free) block is simply scanned to no effect.
  EXPECT_EQ(v->epoch(), epoch0);
  EXPECT_TRUE(v->IsAbsolute());
  const QueryResult r = Run("SELECT * FROM m WHERE v BETWEEN 1024 AND 2047");
  EXPECT_EQ(r.rows.NumRows(), 0u);
  EXPECT_EQ(r.exec_stats.blocks_skipped, 3u);
}

TEST_F(ZoneMapTest, CorruptedMapIsCaughtByVerifyAndRepairedExactly) {
  ZoneMapSc* v = Map("zm_m_v");
  // Seed a lying envelope for block 0 (claims [5000, 6000], excludes every
  // actual value 0..1023). The map still *claims* to be absolute.
  v->CorruptBlockForTest(0, 5000.0, 6000.0, 0);
  EXPECT_TRUE(v->IsAbsolute());

  // Verification recounts the invariant against the data and demotes.
  ASSERT_TRUE(db_.scs().VerifyAll(db_.catalog()).ok());
  EXPECT_FALSE(v->IsAbsolute());
  EXPECT_LT(v->confidence(), 1.0);

  // A demoted map is no longer consulted: the scan reads everything and
  // the answer is right despite the corrupt envelope.
  const QueryResult r = Run("SELECT * FROM m WHERE v < 100");
  EXPECT_EQ(r.rows.NumRows(), 100u);
  EXPECT_EQ(r.exec_stats.blocks_total, 0u);

  // Exact repair re-mines the aggregates and re-arms the map.
  ASSERT_TRUE(v->RepairFull(db_.catalog()).ok());
  EXPECT_TRUE(v->IsAbsolute());
  const auto blocks = v->SnapshotBlocks();
  EXPECT_EQ(blocks[0].min, 0.0);
  EXPECT_EQ(blocks[0].max, static_cast<double>(kZoneMapBlockRows - 1));
  const QueryResult fixed = Run("SELECT * FROM m WHERE v < 100");
  EXPECT_EQ(fixed.rows.NumRows(), 100u);
  EXPECT_EQ(fixed.exec_stats.blocks_skipped, 3u);
}

TEST_F(ZoneMapTest, AllEnginesAgreeOnSkipsIncludingStraddlingMorsels) {
  const std::string sql = "SELECT * FROM m WHERE v BETWEEN 1000 AND 1100";

  db_.options().use_vectorized = false;
  const QueryResult row = Run(sql);
  db_.options().use_vectorized = true;
  const QueryResult batch = Run(sql);

  // Morsels of 500 slots straddle 1024-row block boundaries, exercising
  // the per-row drop path in BatchSeqScanOp (a straddling batch keeps its
  // non-skipped rows only).
  db_.options().num_threads = 8;
  db_.options().parallel_morsel_rows = 500;
  const QueryResult parallel = Run(sql);
  db_.options().num_threads = 1;
  db_.options().parallel_morsel_rows = 4096;

  for (const QueryResult* r : {&row, &batch, &parallel}) {
    EXPECT_EQ(r->rows.NumRows(), 101u);
    EXPECT_EQ(r->exec_stats.blocks_total, 4u);
    EXPECT_EQ(r->exec_stats.blocks_skipped, 2u);  // Blocks 2 and 3.
    EXPECT_EQ(r->exec_stats.rows_scanned, 2 * kZoneMapBlockRows);
    EXPECT_EQ(r->exec_stats.rows_emitted, 101u);
  }
  for (std::size_t i = 0; i < row.rows.NumRows(); ++i) {
    ASSERT_EQ(row.rows.rows[i][0].ToString(), batch.rows.rows[i][0].ToString());
    ASSERT_EQ(row.rows.rows[i][0].ToString(),
              parallel.rows.rows[i][0].ToString());
  }
}

TEST_F(ZoneMapTest, MineZoneMapsIsIdempotentAndDescribes) {
  ASSERT_TRUE(db_.MineZoneMaps("m").ok());  // Existing maps left alone.
  ZoneMapSc* v = Map("zm_m_v");
  ASSERT_EQ(v->SnapshotBlocks().size(), 4u);
  const std::string desc = v->Describe();
  EXPECT_NE(desc.find("BLOCK ZONE MAP"), std::string::npos) << desc;
  EXPECT_NE(desc.find("4 blocks"), std::string::npos) << desc;
}

}  // namespace
}  // namespace softdb
