#include <gtest/gtest.h>

#include <cmath>

#include "stats/analyzer.h"
#include "stats/histogram.h"
#include "storage/table.h"

namespace softdb {
namespace {

// -------------------------------------------------------------- Histogram

TEST(HistogramTest, EmptyIsSafe) {
  EquiDepthHistogram h;
  EXPECT_TRUE(h.empty());
  EXPECT_EQ(h.SelectivityLessEq(5.0), 0.0);
  EXPECT_EQ(h.SelectivityEq(5.0), 0.0);
}

TEST(HistogramTest, UniformSelectivity) {
  std::vector<double> values;
  for (int i = 0; i < 1000; ++i) values.push_back(static_cast<double>(i));
  auto h = EquiDepthHistogram::Build(std::move(values), 32);
  EXPECT_NEAR(h.SelectivityLessEq(499.0), 0.5, 0.05);
  EXPECT_NEAR(h.SelectivityLessEq(99.0), 0.1, 0.05);
}

TEST(HistogramTest, RangeSelectivity) {
  std::vector<double> values;
  for (int i = 0; i < 1000; ++i) values.push_back(static_cast<double>(i));
  auto h = EquiDepthHistogram::Build(std::move(values), 32);
  EXPECT_NEAR(h.SelectivityRange(100.0, true, 199.0, true), 0.1, 0.05);
  EXPECT_NEAR(h.SelectivityRange(NAN, true, 499.0, true), 0.5, 0.05);
  EXPECT_NEAR(h.SelectivityRange(500.0, true, NAN, true), 0.5, 0.05);
  EXPECT_EQ(h.SelectivityRange(2000.0, true, 3000.0, true), 0.0);
}

TEST(HistogramTest, EqUsesPerBucketDensity) {
  // 900 copies of 1 and 100 distinct values: eq(1) should be ~0.9, not the
  // global 1/101.
  std::vector<double> values(900, 1.0);
  for (int i = 0; i < 100; ++i) values.push_back(1000.0 + i);
  auto h = EquiDepthHistogram::Build(std::move(values), 16);
  EXPECT_GT(h.SelectivityEq(1.0), 0.5);
  EXPECT_LT(h.SelectivityEq(1050.0), 0.05);
  EXPECT_EQ(h.SelectivityEq(5000.0), 0.0);
}

TEST(HistogramTest, SkewedDataStillEquiDepth) {
  std::vector<double> values;
  for (int i = 0; i < 1000; ++i) values.push_back(i < 990 ? 1.0 : 100.0);
  auto h = EquiDepthHistogram::Build(std::move(values), 8);
  // Buckets never split one value.
  EXPECT_NEAR(h.SelectivityLessEq(1.0), 0.99, 0.01);
  EXPECT_NEAR(h.SelectivityLessEq(100.0), 1.0, 1e-9);
}

// Parameterized sweep: CDF is monotone for any bucket count.
class HistogramMonotone : public ::testing::TestWithParam<std::size_t> {};

TEST_P(HistogramMonotone, CdfIsMonotone) {
  std::vector<double> values;
  for (int i = 0; i < 500; ++i) {
    values.push_back(static_cast<double>((i * 37) % 100));
  }
  auto h = EquiDepthHistogram::Build(std::move(values), GetParam());
  double prev = 0.0;
  for (double x = -5.0; x <= 105.0; x += 1.0) {
    const double s = h.SelectivityLessEq(x);
    EXPECT_GE(s, prev - 1e-12);
    EXPECT_GE(s, 0.0);
    EXPECT_LE(s, 1.0);
    prev = s;
  }
}

INSTANTIATE_TEST_SUITE_P(BucketCounts, HistogramMonotone,
                         ::testing::Values(1, 2, 8, 32, 128));

// --------------------------------------------------------------- Analyzer

class AnalyzerTest : public ::testing::Test {
 protected:
  AnalyzerTest() : table_("t", MakeSchema()) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_TRUE(table_
                      .Append({Value::Int64(i % 50),
                               i % 10 == 0 ? Value::Null()
                                           : Value::Double(i * 1.5),
                               Value::String(i % 2 ? "odd" : "even")})
                      .ok());
    }
  }

  static Schema MakeSchema() {
    Schema s;
    s.AddColumn({"k", TypeId::kInt64, false, "t"});
    s.AddColumn({"v", TypeId::kDouble, true, "t"});
    s.AddColumn({"tag", TypeId::kString, false, "t"});
    return s;
  }

  Table table_;
};

TEST_F(AnalyzerTest, RowAndDistinctCounts) {
  TableStats stats = AnalyzeTable(table_);
  EXPECT_EQ(stats.row_count, 200u);
  EXPECT_EQ(stats.columns[0].distinct_count, 50u);
  EXPECT_EQ(stats.columns[2].distinct_count, 2u);
}

TEST_F(AnalyzerTest, NullCounts) {
  TableStats stats = AnalyzeTable(table_);
  EXPECT_EQ(stats.columns[1].null_count, 20u);
  EXPECT_NEAR(stats.columns[1].NonNullFraction(), 0.9, 1e-9);
}

TEST_F(AnalyzerTest, MinMax) {
  TableStats stats = AnalyzeTable(table_);
  EXPECT_EQ(stats.columns[0].min->AsInt64(), 0);
  EXPECT_EQ(stats.columns[0].max->AsInt64(), 49);
  EXPECT_EQ(stats.columns[2].min->AsString(), "even");
  EXPECT_EQ(stats.columns[2].max->AsString(), "odd");
}

TEST_F(AnalyzerTest, McvsOrderedByFrequency) {
  TableStats stats = AnalyzeTable(table_);
  const auto& mcvs = stats.columns[2].mcvs;
  ASSERT_EQ(mcvs.size(), 2u);
  EXPECT_GE(mcvs[0].count, mcvs[1].count);
  EXPECT_EQ(mcvs[0].count + mcvs[1].count, 200u);
}

TEST_F(AnalyzerTest, StringColumnsGetNoHistogram) {
  TableStats stats = AnalyzeTable(table_);
  EXPECT_TRUE(stats.columns[2].histogram.empty());
  EXPECT_FALSE(stats.columns[0].histogram.empty());
}

TEST_F(AnalyzerTest, DeletedRowsExcluded) {
  ASSERT_TRUE(table_.Delete(0).ok());
  TableStats stats = AnalyzeTable(table_);
  EXPECT_EQ(stats.row_count, 199u);
}

TEST_F(AnalyzerTest, StatsCatalogStaleness) {
  StatsCatalog catalog;
  catalog.Analyze(table_);
  EXPECT_EQ(catalog.StalenessOf(table_), 0u);
  ASSERT_TRUE(table_.Append({Value::Int64(1), Value::Null(),
                             Value::String("x")})
                  .ok());
  EXPECT_EQ(catalog.StalenessOf(table_), 1u);
  EXPECT_NE(catalog.Get("t"), nullptr);
  EXPECT_EQ(catalog.Get("unknown"), nullptr);
}

}  // namespace
}  // namespace softdb
