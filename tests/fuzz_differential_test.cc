// Differential property test: random predicates executed through the full
// parse → bind → rewrite → plan → execute pipeline must return exactly the
// rows that direct expression evaluation over the table returns — under
// every combination of optimizer rules, with soft constraints registered
// (twins must never change answers; absolute-SC rewrites must be
// semantics-preserving).

#include <gtest/gtest.h>
#include <unistd.h>

#include <algorithm>
#include <filesystem>
#include <map>
#include <memory>
#include <set>
#include <string>

#include "analysis/impact.h"
#include "common/failpoint.h"
#include "common/rng.h"
#include "common/str_util.h"
#include "constraints/column_offset_sc.h"
#include "constraints/domain_sc.h"
#include "constraints/fd_sc.h"
#include "constraints/inclusion_sc.h"
#include "constraints/linear_correlation_sc.h"
#include "constraints/predicate_sc.h"
#include "engine/softdb.h"
#include "sql/parser.h"

namespace softdb {
namespace {

class FuzzDifferential : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  void SetUp() override {
    rng_ = Rng(GetParam());
    // `a` is NOT NULL (so b-predicates may legally introduce predicates on
    // a); `b` is nullable (so introduction onto b must be suppressed — the
    // soundness restriction this fuzzer once caught being violated).
    ASSERT_TRUE(db_.Execute("CREATE TABLE t (a BIGINT NOT NULL, b BIGINT, "
                            "c DOUBLE, d DATE, e VARCHAR)")
                    .ok());
    // 2500 rows = 3 zone-map blocks. `d` is clustered on the row id so the
    // per-block envelopes are tight and the fixed date constant below
    // actually prunes blocks on some queries; `a`..`c` stay uniform, so
    // their zone maps are consulted but rarely prune — both paths must be
    // bit-identical across engines either way.
    for (int i = 0; i < 2500; ++i) {
      const std::int64_t a = rng_.Uniform(0, 100);
      // b correlated with a: b - a in [0, 10] mostly, sometimes NULL.
      std::vector<Value> row;
      row.push_back(Value::Int64(a));
      row.push_back(rng_.NextBool(0.05)
                        ? Value::Null()
                        : Value::Int64(a + rng_.Uniform(0, 10)));
      row.push_back(Value::Double(rng_.NextDouble() * 1000.0));
      row.push_back(Value::Date(10000 + i / 10));
      row.push_back(Value::String(rng_.NextBool(0.5) ? "red" : "blue"));
      ASSERT_TRUE(db_.InsertRow("t", row).ok());
    }
    ASSERT_TRUE(db_.Execute("CREATE INDEX ia ON t (a)").ok());
    ASSERT_TRUE(db_.Execute("ANALYZE t").ok());
    ASSERT_TRUE(db_.MineZoneMaps("t").ok());

    // Every fuzzed plan runs through PlanVerifier at all four phases
    // (bind, rewrite, join-elimination, physical-planning) before it
    // executes; a structurally unsound plan fails the query outright
    // instead of silently producing a differential mismatch.
    db_.options().verify_plans = true;

    // One statistical offset SC (feeds twinning) and one wide absolute one
    // (feeds predicate introduction), plus a domain SC.
    auto ssc = std::make_unique<ColumnOffsetSc>("ssc", "t", 0, 1, 0, 8);
    ssc->set_policy(ScMaintenancePolicy::kTolerate);
    ASSERT_TRUE(db_.scs().Add(std::move(ssc), db_.catalog()).ok());
    auto asc = std::make_unique<ColumnOffsetSc>("asc", "t", 0, 1, 0, 10);
    ASSERT_TRUE(db_.scs().Add(std::move(asc), db_.catalog()).ok());
    ASSERT_TRUE(db_.scs().Find("asc")->IsAbsolute());
    ASSERT_TRUE(db_.scs().Add(
        std::make_unique<DomainSc>("dom", "t", 0, Value::Int64(0),
                                   Value::Int64(100)),
        db_.catalog()).ok());
  }

  std::string RandomComparison() {
    static const char* kCols[] = {"a", "b", "c", "d"};
    static const char* kOps[] = {"=", "<>", "<", "<=", ">", ">="};
    const char* col = kCols[rng_.Uniform(0, 3)];
    const char* op = kOps[rng_.Uniform(0, 5)];
    std::string constant;
    if (col[0] == 'c') {
      constant = StrFormat("%.1f", rng_.NextDouble() * 1000.0);
    } else if (col[0] == 'd') {
      constant = StrFormat("DATE '1997-05-19'");  // 10000 days ~ mid-range.
    } else {
      constant = std::to_string(rng_.Uniform(-10, 110));
    }
    return std::string(col) + " " + op + " " + constant;
  }

  std::string RandomTerm() {
    switch (rng_.Uniform(0, 5)) {
      case 0:
        return StrFormat("a BETWEEN %lld AND %lld",
                         static_cast<long long>(rng_.Uniform(0, 50)),
                         static_cast<long long>(rng_.Uniform(50, 110)));
      case 1:
        return rng_.NextBool(0.5) ? "b IS NULL" : "b IS NOT NULL";
      case 2:
        return StrFormat("e = '%s'", rng_.NextBool(0.5) ? "red" : "blue");
      case 3:
        return StrFormat("b - a <= %lld",
                         static_cast<long long>(rng_.Uniform(0, 12)));
      default:
        return RandomComparison();
    }
  }

  std::string RandomPredicate() {
    std::string out = RandomTerm();
    const int extra = static_cast<int>(rng_.Uniform(0, 2));
    for (int i = 0; i < extra; ++i) {
      out += rng_.NextBool(0.7) ? " AND " : " OR ";
      out += RandomTerm();
    }
    return out;
  }

  // Ground truth: evaluate the bound predicate over every live row.
  std::size_t ReferenceCount(const std::string& predicate) {
    auto expr = ParseExpression(predicate);
    EXPECT_TRUE(expr.ok()) << predicate;
    Table* t = *db_.catalog().GetTable("t");
    EXPECT_TRUE((*expr)->Bind(t->schema()).ok()) << predicate;
    std::size_t count = 0;
    for (RowId r = 0; r < t->NumSlots(); ++r) {
      if (!t->IsLive(r)) continue;
      auto v = (*expr)->Eval(t->GetRow(r));
      EXPECT_TRUE(v.ok());
      if (!v->is_null() && v->AsBool()) ++count;
    }
    return count;
  }

  // Asserts `got` is bit-identical to `want`: same cardinality, and every
  // value matches in type, nullness and exact textual rendering.
  static void AssertRowsIdentical(const RowSet& want, const RowSet& got,
                                  const std::string& sql,
                                  const std::string& label) {
    ASSERT_EQ(want.NumRows(), got.NumRows()) << sql << " [" << label << "]";
    for (std::size_t i = 0; i < want.NumRows(); ++i) {
      ASSERT_EQ(want.rows[i].size(), got.rows[i].size())
          << sql << " [" << label << "] row " << i;
      for (std::size_t c = 0; c < want.rows[i].size(); ++c) {
        const Value& wv = want.rows[i][c];
        const Value& gv = got.rows[i][c];
        ASSERT_EQ(wv.type(), gv.type())
            << sql << " [" << label << "] row " << i << " col " << c;
        ASSERT_EQ(wv.is_null(), gv.is_null())
            << sql << " [" << label << "] row " << i << " col " << c;
        ASSERT_EQ(wv.ToString(), gv.ToString())
            << sql << " [" << label << "] row " << i << " col " << c;
      }
    }
  }

  // Re-runs `sql` on the morsel-driven parallel engine at 2 and 8 worker
  // threads (with a small morsel size so every scan splits into many
  // morsels) and asserts the output is bit-identical to the serial result:
  // same rows in the same order, the same ExecStats counters (`morsels`
  // excluded — it is an execution-strategy detail), and the same
  // RecordScUse attributions.
  void ExpectParallelAgrees(const std::string& sql,
                            const QueryResult& serial) {
    const bool vectorized_before = db_.options().use_vectorized;
    db_.options().use_vectorized = true;
    db_.options().parallel_morsel_rows = 128;
    for (const std::size_t threads : {std::size_t{2}, std::size_t{8}}) {
      db_.options().num_threads = threads;
      db_.plan_cache().Clear();
      auto par = db_.Execute(sql);
      ASSERT_TRUE(par.ok()) << sql << " @" << threads << " threads -> "
                            << par.status().ToString();
      const std::string label = std::to_string(threads) + " threads";
      AssertRowsIdentical(serial.rows, par->rows, sql, label);
      const ExecStats& ss = serial.exec_stats;
      const ExecStats& ps = par->exec_stats;
      EXPECT_EQ(ss.rows_scanned, ps.rows_scanned) << sql << " " << label;
      EXPECT_EQ(ss.rows_emitted, ps.rows_emitted) << sql << " " << label;
      EXPECT_EQ(ss.pages_read, ps.pages_read) << sql << " " << label;
      EXPECT_EQ(ss.rows_output, ps.rows_output) << sql << " " << label;
      EXPECT_EQ(ss.rows_sorted, ps.rows_sorted) << sql << " " << label;
      EXPECT_EQ(ss.index_lookups, ps.index_lookups) << sql << " " << label;
      EXPECT_EQ(ss.rows_joined, ps.rows_joined) << sql << " " << label;
      EXPECT_EQ(ss.runtime_param_skips, ps.runtime_param_skips)
          << sql << " " << label;
      EXPECT_EQ(ss.blocks_skipped, ps.blocks_skipped) << sql << " " << label;
      EXPECT_EQ(ss.blocks_total, ps.blocks_total) << sql << " " << label;
      // Certificates are emitted and checked at plan time, so the count is
      // engine-independent — and every plan's certificates must prove.
      EXPECT_EQ(ss.certificates_checked, ps.certificates_checked)
          << sql << " " << label;
      EXPECT_EQ(ps.certificates_failed, 0u) << sql << " " << label;
      EXPECT_EQ(serial.used_scs, par->used_scs) << sql << " " << label;
    }
    db_.options().num_threads = 1;
    db_.options().parallel_morsel_rows = 4096;
    db_.options().use_vectorized = vectorized_before;
  }

  // Asserts the row engine and the vectorized batch engine produce
  // byte-identical answers AND identical ExecStats for `sql` under the
  // currently configured optimizer rules.
  // Sum of RecordScUse attributions across the zone maps: planning is
  // engine-independent, so every engine must bill the maps identically.
  std::uint64_t ZoneMapUses() {
    std::uint64_t total = 0;
    for (const SoftConstraint* sc : db_.scs().All()) {
      if (sc->kind() == ScKind::kBlockZoneMap) {
        total += db_.scs().UseCount(sc->name());
      }
    }
    return total;
  }

  void ExpectEnginesAgree(const std::string& sql, std::size_t expected,
                          int config) {
    db_.options().use_vectorized = false;
    db_.plan_cache().Clear();
    const std::uint64_t zm_before_row = ZoneMapUses();
    auto row_result = db_.Execute(sql);
    ASSERT_TRUE(row_result.ok())
        << sql << " -> " << row_result.status().ToString();
    EXPECT_EQ(row_result->rows.NumRows(), expected)
        << sql << " (config " << config << ")";
    const std::uint64_t zm_row = ZoneMapUses() - zm_before_row;

    db_.options().use_vectorized = true;
    db_.plan_cache().Clear();
    const std::uint64_t zm_before_batch = ZoneMapUses();
    auto batch_result = db_.Execute(sql);
    ASSERT_TRUE(batch_result.ok())
        << sql << " -> " << batch_result.status().ToString();
    EXPECT_EQ(ZoneMapUses() - zm_before_batch, zm_row) << sql;

    const RowSet& r = row_result->rows;
    const RowSet& b = batch_result->rows;
    ASSERT_EQ(r.NumRows(), b.NumRows()) << sql << " (config " << config << ")";
    for (std::size_t i = 0; i < r.NumRows(); ++i) {
      ASSERT_EQ(r.rows[i].size(), b.rows[i].size()) << sql << " row " << i;
      for (std::size_t c = 0; c < r.rows[i].size(); ++c) {
        const Value& rv = r.rows[i][c];
        const Value& bv = b.rows[i][c];
        ASSERT_EQ(rv.type(), bv.type())
            << sql << " row " << i << " col " << c;
        ASSERT_EQ(rv.is_null(), bv.is_null())
            << sql << " row " << i << " col " << c;
        ASSERT_EQ(rv.ToString(), bv.ToString())
            << sql << " row " << i << " col " << c;
      }
    }

    const ExecStats& rs = row_result->exec_stats;
    const ExecStats& bs = batch_result->exec_stats;
    EXPECT_EQ(rs.rows_scanned, bs.rows_scanned) << sql;
    EXPECT_EQ(rs.rows_emitted, bs.rows_emitted) << sql;
    EXPECT_EQ(rs.pages_read, bs.pages_read) << sql;
    EXPECT_EQ(rs.rows_output, bs.rows_output) << sql;
    EXPECT_EQ(rs.rows_sorted, bs.rows_sorted) << sql;
    EXPECT_EQ(rs.index_lookups, bs.index_lookups) << sql;
    EXPECT_EQ(rs.rows_joined, bs.rows_joined) << sql;
    EXPECT_EQ(rs.runtime_param_skips, bs.runtime_param_skips) << sql;
    EXPECT_EQ(rs.blocks_skipped, bs.blocks_skipped) << sql;
    EXPECT_EQ(rs.blocks_total, bs.blocks_total) << sql;
    // Plan-time certificate verdicts: identical counts across engines, and
    // no fuzzed plan may carry a certificate that fails to prove itself.
    EXPECT_EQ(rs.certificates_checked, bs.certificates_checked) << sql;
    EXPECT_EQ(rs.certificates_failed, 0u) << sql;
    EXPECT_EQ(bs.certificates_failed, 0u) << sql;

    // The same query on the parallel engine must reproduce the serial
    // batch result bit for bit at every thread count.
    ExpectParallelAgrees(sql, *batch_result);
  }

  Rng rng_{0};
  SoftDb db_;
};

TEST_P(FuzzDifferential, PipelineMatchesDirectEvaluation) {
  for (int q = 0; q < 40; ++q) {
    const std::string predicate = RandomPredicate();
    const std::string sql = "SELECT * FROM t WHERE " + predicate;
    const std::size_t expected = ReferenceCount(predicate);

    // Sweep rule configurations; answers must be invariant, and within each
    // configuration the row and vectorized engines must agree exactly —
    // both on the rows returned and on every ExecStats counter.
    for (int config = 0; config < 4; ++config) {
      db_.options().enable_predicate_introduction = (config & 1) != 0;
      db_.options().enable_twinning = (config & 2) != 0;
      db_.options().use_twins_in_estimation = (config & 2) != 0;
      db_.options().prefer_sort_merge_join = (config & 1) != 0;
      ExpectEnginesAgree(sql, expected, config);
    }
  }
}

// Joins, projections with expressions, ORDER BY and LIMIT must also agree
// between engines (joins/projections vectorize; ORDER BY falls back at the
// Sort; LIMIT forces the whole subtree onto the row engine).
TEST_P(FuzzDifferential, JoinsAndProjectionsMatchAcrossEngines) {
  ASSERT_TRUE(db_.Execute("CREATE TABLE s (k BIGINT NOT NULL, w DOUBLE, "
                          "tag VARCHAR)")
                  .ok());
  for (int i = 0; i < 200; ++i) {
    std::vector<Value> row;
    row.push_back(Value::Int64(rng_.Uniform(0, 100)));
    row.push_back(rng_.NextBool(0.1) ? Value::Null()
                                     : Value::Double(rng_.NextDouble() * 50));
    row.push_back(Value::String(rng_.NextBool(0.5) ? "hot" : "cold"));
    ASSERT_TRUE(db_.InsertRow("s", row).ok());
  }
  ASSERT_TRUE(db_.Execute("ANALYZE s").ok());

  const std::string queries[] = {
      "SELECT a, b, k, w FROM t JOIN s ON a = k WHERE " + RandomPredicate(),
      "SELECT b - a, c + w FROM t JOIN s ON a = k WHERE " + RandomPredicate(),
      "SELECT a + 1, b * 2, e FROM t WHERE " + RandomPredicate(),
      "SELECT a, w FROM t JOIN s ON b = k",
      "SELECT a, b FROM t WHERE " + RandomPredicate() + " ORDER BY a",
      "SELECT a FROM t WHERE " + RandomPredicate() + " LIMIT 7",
  };
  for (const std::string& sql : queries) {
    for (int config = 0; config < 2; ++config) {
      db_.options().enable_predicate_introduction = config != 0;
      db_.options().prefer_sort_merge_join = config != 0;

      db_.options().use_vectorized = false;
      db_.plan_cache().Clear();
      auto row_result = db_.Execute(sql);
      ASSERT_TRUE(row_result.ok())
          << sql << " -> " << row_result.status().ToString();

      db_.options().use_vectorized = true;
      db_.plan_cache().Clear();
      auto batch_result = db_.Execute(sql);
      ASSERT_TRUE(batch_result.ok())
          << sql << " -> " << batch_result.status().ToString();

      ASSERT_EQ(row_result->rows.NumRows(), batch_result->rows.NumRows())
          << sql;
      for (std::size_t i = 0; i < row_result->rows.NumRows(); ++i) {
        const auto& rr = row_result->rows.rows[i];
        const auto& br = batch_result->rows.rows[i];
        ASSERT_EQ(rr.size(), br.size()) << sql << " row " << i;
        for (std::size_t c = 0; c < rr.size(); ++c) {
          ASSERT_EQ(rr[c].type(), br[c].type())
              << sql << " row " << i << " col " << c;
          ASSERT_EQ(rr[c].is_null(), br[c].is_null())
              << sql << " row " << i << " col " << c;
          ASSERT_EQ(rr[c].ToString(), br[c].ToString())
              << sql << " row " << i << " col " << c;
        }
      }
      const ExecStats& rs = row_result->exec_stats;
      const ExecStats& bs = batch_result->exec_stats;
      EXPECT_EQ(rs.rows_scanned, bs.rows_scanned) << sql;
      EXPECT_EQ(rs.rows_emitted, bs.rows_emitted) << sql;
      EXPECT_EQ(rs.pages_read, bs.pages_read) << sql;
      EXPECT_EQ(rs.rows_output, bs.rows_output) << sql;
      EXPECT_EQ(rs.rows_sorted, bs.rows_sorted) << sql;
      EXPECT_EQ(rs.index_lookups, bs.index_lookups) << sql;
      EXPECT_EQ(rs.rows_joined, bs.rows_joined) << sql;
      EXPECT_EQ(rs.runtime_param_skips, bs.runtime_param_skips) << sql;
      EXPECT_EQ(rs.blocks_skipped, bs.blocks_skipped) << sql;
      EXPECT_EQ(rs.blocks_total, bs.blocks_total) << sql;
      EXPECT_EQ(rs.certificates_checked, bs.certificates_checked) << sql;
      EXPECT_EQ(rs.certificates_failed, 0u) << sql;
      EXPECT_EQ(bs.certificates_failed, 0u) << sql;

      // Joins, projections, ORDER BY over a parallel child, and LIMIT
      // (which must force the subtree serial) all have to reproduce the
      // serial result exactly at 2 and 8 threads.
      ExpectParallelAgrees(sql, *batch_result);
    }
  }
}

// Soundness fuzz for the static DML impact analyzer: across random
// INSERT/UPDATE/DELETE statements, every SC whose actual violation count
// increases must be inside the predicted impact set, and the predicted set
// must be strictly smaller than the full catalog most of the time (the
// whole point of impact scoping). 8 seeds x 125 statements = 1000 total.
TEST_P(FuzzDifferential, DmlImpactSetIsSoundAndUsuallyNarrow) {
  SoftDb db;
  ASSERT_TRUE(db.Execute("CREATE TABLE u1 (a BIGINT NOT NULL, b BIGINT, "
                         "c DOUBLE, CHECK (a >= -1000))")
                  .ok());
  ASSERT_TRUE(
      db.Execute("CREATE TABLE u2 (x BIGINT NOT NULL, y BIGINT)").ok());
  for (int i = 0; i < 60; ++i) {
    // Unique `a` keeps the FD clean at registration; b - a in [0, 10];
    // c tracks 2a inside the +-500 band.
    std::vector<Value> row;
    row.push_back(Value::Int64(i));
    row.push_back(rng_.NextBool(0.1)
                      ? Value::Null()
                      : Value::Int64(i + rng_.Uniform(0, 10)));
    row.push_back(Value::Double(2.0 * i + rng_.Uniform(-100, 100)));
    ASSERT_TRUE(db.InsertRow("u1", row).ok());
    ASSERT_TRUE(db.InsertRow("u2", {Value::Int64(rng_.Uniform(0, 59)),
                                    Value::Int64(rng_.Uniform(0, 50))})
                    .ok());
  }

  auto add = [&](ScPtr sc) {
    sc->set_policy(ScMaintenancePolicy::kTolerate);
    ASSERT_TRUE(db.scs().Add(std::move(sc), db.catalog()).ok());
  };
  add(std::make_unique<DomainSc>("dom_a", "u1", 0, Value::Int64(0),
                                 Value::Int64(100)));
  add(std::make_unique<ColumnOffsetSc>("off_ab", "u1", 0, 1, 0, 10));
  add(std::make_unique<LinearCorrelationSc>("lin_ca", "u1", 2, 0, 2.0, 0.0,
                                            500.0));
  auto pred = ParseExpression("b < 500");
  ASSERT_TRUE(pred.ok());
  ASSERT_TRUE(
      (*pred)->Bind((*db.catalog().GetTable("u1"))->schema()).ok());
  add(std::make_unique<PredicateSc>("pred_b", "u1", std::move(*pred)));
  add(std::make_unique<FunctionalDependencySc>(
      "fd_ab", "u1", std::vector<ColumnIdx>{0}, std::vector<ColumnIdx>{1}));
  add(std::make_unique<InclusionSc>("incl", "u2", std::vector<ColumnIdx>{0},
                                    "u1", std::vector<ColumnIdx>{0}));
  add(std::make_unique<DomainSc>("dom_y", "u2", 1, Value::Int64(0),
                                 Value::Int64(50)));

  auto num = [&](std::int64_t lo, std::int64_t hi) {
    return std::to_string(rng_.Uniform(lo, hi));
  };
  auto where_u1 = [&]() -> std::string {
    static const char* kOps[] = {"=", "<>", "<", "<=", ">", ">="};
    switch (rng_.Uniform(0, 3)) {
      case 0:
        return "";
      case 1:
        return StrFormat(" WHERE a %s %s", kOps[rng_.Uniform(0, 5)],
                         num(-20, 120).c_str());
      case 2:
        return StrFormat(" WHERE b %s %s", kOps[rng_.Uniform(0, 5)],
                         num(-20, 120).c_str());
      default:
        return " WHERE a BETWEEN " + num(0, 50) + " AND " + num(50, 120);
    }
  };
  auto random_dml = [&]() -> std::string {
    switch (rng_.Uniform(0, 5)) {
      case 0: {
        const std::string b =
            rng_.NextBool(0.15) ? "NULL" : num(-20, 130);
        return "INSERT INTO u1 VALUES (" + num(-20, 120) + ", " + b +
               ", " + num(-900, 900) + ")";
      }
      case 1:
        return "INSERT INTO u2 VALUES (" + num(-5, 70) + ", " +
               num(-10, 60) + ")";
      case 2: {
        static const char* kCols[] = {"a", "b", "c"};
        const int first = static_cast<int>(rng_.Uniform(0, 2));
        const int count = rng_.NextBool(0.3) ? 2 : 1;
        std::string sets;
        for (int k = 0; k < count; ++k) {
          const char* col =
              kCols[(first + k * (1 + rng_.Uniform(0, 1))) % 3];
          if (!sets.empty()) sets += ", ";
          if (col[0] == 'b' && rng_.NextBool(0.1)) {
            sets += StrFormat("%s = NULL", col);
          } else if (rng_.NextBool(0.4)) {
            sets += StrFormat("%s = %s %s %s", col, col,
                              rng_.NextBool(0.5) ? "+" : "-",
                              num(0, 30).c_str());
          } else {
            sets += StrFormat("%s = %s", col, num(-20, 130).c_str());
          }
        }
        return "UPDATE u1 SET " + sets + where_u1();
      }
      case 3:
        return "UPDATE u2 SET y = " + num(-10, 60) +
               (rng_.NextBool(0.5) ? " WHERE x > " + num(0, 60) : "");
      case 4:
        return "DELETE FROM u1" + where_u1();
      default:
        return "DELETE FROM u2" +
               (rng_.NextBool(0.7) ? " WHERE x < " + num(0, 60)
                                   : std::string());
    }
  };

  ImpactAnalyzer analyzer(&db.catalog(), &db.ics(), &db.scs());
  const int kStatements = 125;
  int narrowed = 0;
  for (int iter = 0; iter < kStatements; ++iter) {
    const std::string sql = random_dml();
    auto stmt = ParseStatement(sql);
    ASSERT_TRUE(stmt.ok()) << sql << ": " << stmt.status().ToString();

    std::map<std::string, std::uint64_t> pre;
    for (SoftConstraint* sc : db.scs().All()) {
      auto audit = sc->AuditViolations(db.catalog());
      ASSERT_TRUE(audit.ok()) << sc->name();
      pre[sc->name()] = audit->violations;
    }

    auto impact = analyzer.Analyze(*stmt);
    ASSERT_TRUE(impact.ok()) << sql << ": " << impact.status().ToString();
    if (impact->Narrowed()) ++narrowed;

    // Execution may legitimately fail (enforced CHECK, NOT NULL); any
    // partial writes are a subset of the modeled statement, so the
    // soundness assertion below still applies.
    (void)db.Execute(sql);

    for (SoftConstraint* sc : db.scs().All()) {
      auto audit = sc->AuditViolations(db.catalog());
      ASSERT_TRUE(audit.ok()) << sc->name();
      if (audit->violations > pre[sc->name()]) {
        EXPECT_TRUE(impact->Contains(sc->name()))
            << sql << " raised violations of " << sc->name()
            << " outside the predicted impact set "
            << "(impact: " << Join(impact->impacted, ", ") << ")";
      }
    }
  }
  // The analyzer must actually narrow maintenance on at least half the
  // statements, or scoping buys nothing.
  EXPECT_GE(narrowed * 2, kStatements) << narrowed << "/" << kStatements;
}

// Recover-replay differential mode: a WAL-backed engine runs a random
// single-row DML workload and is crashed at a random wal.append, then
// recovered from its log and driven to the end of the workload (retrying
// the statement the crash interrupted). The final state — rows, SC use
// attributions, certificate verdicts — must be bit-identical to a live
// engine that ran the same workload without ever crashing.
TEST_P(FuzzDifferential, CrashRecoveryMatchesLiveExecution) {
  namespace fs = std::filesystem;
  char tmpl[] = "/tmp/softdb_fuzzwal_XXXXXX";
  const char* made = ::mkdtemp(tmpl);
  ASSERT_NE(made, nullptr);
  const std::string dir = made;
  Failpoints& fp = Failpoints::Instance();
  fp.DisableAll();

  SoftDb control;
  EngineOptions wal_options;
  wal_options.wal_dir = dir;
  wal_options.wal_sync_every_n = 1;
  auto crashy = std::make_unique<SoftDb>(wal_options);

  auto setup = [&](SoftDb* db) {
    ASSERT_TRUE(
        db->Execute("CREATE TABLE r (id BIGINT NOT NULL, v BIGINT, "
                    "tag VARCHAR)")
            .ok());
    auto dom = std::make_unique<DomainSc>("dom_rv", "r", 1, Value::Int64(0),
                                          Value::Int64(1000));
    dom->set_policy(ScMaintenancePolicy::kTolerate);
    ASSERT_TRUE(db->scs().Add(std::move(dom), db->catalog()).ok());
  };
  setup(&control);
  setup(crashy.get());

  // Random single-row statements only: a mid-statement crash inside
  // multi-row DML legitimately diverges from the uncrashed control, so the
  // workload pins every UPDATE/DELETE to one id.
  std::int64_t next_id = 0;
  auto random_stmt = [&]() -> std::string {
    switch (rng_.Uniform(0, 4)) {
      case 0:
      case 1: {
        const std::string v =
            rng_.NextBool(0.1) ? "NULL" : std::to_string(rng_.Uniform(0, 999));
        const std::string tag = rng_.NextBool(0.5) ? "hot" : "cold";
        return "INSERT INTO r VALUES (" + std::to_string(next_id++) + ", " +
               v + ", '" + tag + "')";
      }
      case 2:
        return "UPDATE r SET v = " + std::to_string(rng_.Uniform(0, 999)) +
               " WHERE id = " +
               std::to_string(rng_.Uniform(0, std::max<std::int64_t>(
                                                  next_id - 1, 0)));
      default:
        return "DELETE FROM r WHERE id = " +
               std::to_string(rng_.Uniform(0, std::max<std::int64_t>(
                                                  next_id - 1, 0)));
    }
  };
  const int kStatements = 48;
  std::vector<std::string> workload;
  workload.reserve(kStatements);
  for (int i = 0; i < kStatements; ++i) workload.push_back(random_stmt());

  // Arm the crash: the Nth WAL append from here dies with IOError. Each
  // single-row statement is exactly one append, so this lands the crash at
  // a seed-dependent statement inside the workload.
  Failpoints::Policy nth;
  nth.trigger = Failpoints::Trigger::kEveryNth;
  nth.n = rng_.Uniform(2, kStatements / 2);
  fp.Enable("wal.append", nth);

  bool crashed = false;
  for (const std::string& sql : workload) {
    ASSERT_TRUE(control.Execute(sql).ok()) << sql;
    Result<QueryResult> got = crashy->Execute(sql);
    if (!got.ok()) {
      ASSERT_FALSE(crashed) << "second crash after failpoints were disarmed";
      EXPECT_EQ(got.status().code(), StatusCode::kIOError) << sql;
      crashed = true;
      fp.DisableAll();
      crashy.reset();  // Discard the crashed engine; the log is the truth.
      Result<std::unique_ptr<SoftDb>> rec = SoftDb::Recover(dir);
      ASSERT_TRUE(rec.ok()) << rec.status().ToString();
      crashy = std::move(*rec);
      // The interrupted statement was never acked, so recovery must land
      // strictly before it: retry gives exactly-once.
      ASSERT_TRUE(crashy->Execute(sql).ok()) << sql;
    }
  }
  ASSERT_TRUE(crashed);

  ASSERT_TRUE(control.Execute("ANALYZE r").ok());
  ASSERT_TRUE(crashy->Execute("ANALYZE r").ok());

  auto render_sorted = [](SoftDb* db, const std::string& sql) {
    Result<QueryResult> r = db->Execute(sql);
    EXPECT_TRUE(r.ok()) << sql << ": " << r.status().ToString();
    std::vector<std::string> out;
    if (!r.ok()) return out;
    for (const std::vector<Value>& row : r->rows.rows) {
      std::string s;
      for (const Value& v : row) {
        s += v.ToString();
        s += "|";
      }
      out.push_back(std::move(s));
    }
    std::sort(out.begin(), out.end());
    return out;
  };
  EXPECT_EQ(render_sorted(&control, "SELECT * FROM r"),
            render_sorted(crashy.get(), "SELECT * FROM r"));

  // Planning-visible state must also have survived: the same queries make
  // the same SC use attributions and certificate verdicts on both engines.
  const std::string probes[] = {
      "SELECT * FROM r WHERE v >= 0 AND v <= 1000",
      "SELECT id, v FROM r WHERE v < 500",
      "SELECT * FROM r WHERE id = 3",
  };
  for (const std::string& sql : probes) {
    Result<QueryResult> live = control.Execute(sql);
    Result<QueryResult> rec = crashy->Execute(sql);
    ASSERT_TRUE(live.ok()) << sql;
    ASSERT_TRUE(rec.ok()) << sql;
    EXPECT_EQ(render_sorted(&control, sql), render_sorted(crashy.get(), sql))
        << sql;
    EXPECT_EQ(live->used_scs, rec->used_scs) << sql;
    EXPECT_EQ(live->exec_stats.certificates_checked,
              rec->exec_stats.certificates_checked)
        << sql;
    EXPECT_EQ(rec->exec_stats.certificates_failed, 0u) << sql;
  }

  crashy.reset();
  std::error_code ec;
  fs::remove_all(dir, ec);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzDifferential,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

}  // namespace
}  // namespace softdb
