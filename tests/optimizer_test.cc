#include <gtest/gtest.h>

#include <cmath>

#include "common/date.h"
#include "constraints/column_offset_sc.h"
#include "constraints/domain_sc.h"
#include "constraints/fd_sc.h"
#include "constraints/inclusion_sc.h"
#include "constraints/join_hole_sc.h"
#include "constraints/linear_correlation_sc.h"
#include "engine/softdb.h"
#include "optimizer/plan_cache.h"
#include "optimizer/range_analysis.h"
#include "workload/generator.h"
#include "workload/sc_kit.h"

namespace softdb {
namespace {

// ---------------------------------------------------------- Range analysis

TEST(ColumnRangeTest, ApplyNarrows) {
  ColumnRange r;
  r.Apply({0, CompareOp::kGe, Value::Int64(5)});
  r.Apply({0, CompareOp::kLe, Value::Int64(10)});
  EXPECT_EQ(r.lo, 5.0);
  EXPECT_EQ(r.hi, 10.0);
  EXPECT_FALSE(r.empty);
  r.Apply({0, CompareOp::kGt, Value::Int64(10)});
  EXPECT_TRUE(r.empty);
}

TEST(ColumnRangeTest, EqualityPins) {
  ColumnRange r;
  r.Apply({0, CompareOp::kEq, Value::Int64(7)});
  EXPECT_EQ(r.lo, 7.0);
  EXPECT_EQ(r.hi, 7.0);
  r.Apply({0, CompareOp::kEq, Value::Int64(8)});
  EXPECT_TRUE(r.empty);
}

TEST(ColumnRangeTest, NeConflictsWithEq) {
  ColumnRange r;
  r.Apply({0, CompareOp::kEq, Value::Int64(7)});
  r.Apply({0, CompareOp::kNe, Value::Int64(7)});
  EXPECT_TRUE(r.empty);
}

TEST(ColumnRangeTest, NullComparisonIsEmpty) {
  ColumnRange r;
  r.Apply({0, CompareOp::kGe, Value::Null()});
  EXPECT_TRUE(r.empty);
}

TEST(ColumnRangeTest, ImpliedBy) {
  ColumnRange wide;
  wide.Apply({0, CompareOp::kGe, Value::Int64(0)});
  wide.Apply({0, CompareOp::kLe, Value::Int64(100)});
  ColumnRange narrow;
  narrow.Apply({0, CompareOp::kGe, Value::Int64(10)});
  narrow.Apply({0, CompareOp::kLe, Value::Int64(20)});
  EXPECT_TRUE(wide.ImpliedBy(narrow));   // narrow ⊆ wide ⇒ wide implied.
  EXPECT_FALSE(narrow.ImpliedBy(wide));
}

TEST(RangeMapTest, BuildsFromPredicates) {
  std::vector<Predicate> preds;
  preds.push_back(Predicate(MakeCompare(
      CompareOp::kGe,
      std::make_unique<ColumnRefExpr>("a", 0, TypeId::kInt64),
      MakeLiteral(Value::Int64(5)))));
  preds.push_back(Predicate(MakeBetween(
      std::make_unique<ColumnRefExpr>("b", 1, TypeId::kInt64),
      MakeLiteral(Value::Int64(0)), MakeLiteral(Value::Int64(9)))));
  RangeMap map = BuildRangeMap(preds, false);
  EXPECT_EQ(map.ranges.size(), 2u);
  EXPECT_EQ(map.ranges[0].lo, 5.0);
  EXPECT_EQ(map.ranges[1].hi, 9.0);
  EXPECT_FALSE(map.unsatisfiable);
}

TEST(RangeMapTest, LiteralFalseIsUnsat) {
  std::vector<Predicate> preds;
  preds.push_back(Predicate(MakeLiteral(Value::Bool(false))));
  EXPECT_TRUE(IsUnsatisfiable(preds));
}

TEST(RangeMapTest, EstimationOnlySkippedByDefault) {
  std::vector<Predicate> preds;
  Predicate twin(MakeCompare(
                     CompareOp::kLt,
                     std::make_unique<ColumnRefExpr>("a", 0, TypeId::kInt64),
                     MakeLiteral(Value::Int64(0))),
                 true, 0.9, "sc:x");
  preds.push_back(std::move(twin));
  preds.push_back(Predicate(MakeCompare(
      CompareOp::kGt,
      std::make_unique<ColumnRefExpr>("a", 0, TypeId::kInt64),
      MakeLiteral(Value::Int64(10)))));
  EXPECT_FALSE(IsUnsatisfiable(preds));  // Twin ignored.
  RangeMap with = BuildRangeMap(preds, true);
  EXPECT_TRUE(with.unsatisfiable);  // Twin included: contradiction.
}

// ------------------------------------------------------- Engine-level rig

class OptimizerFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    WorkloadOptions options;
    options.customers = 200;
    options.orders = 2000;
    options.purchases = 4000;
    options.parts = 500;
    options.projects = 1000;
    options.sales_per_month = 100;
    ASSERT_TRUE(GenerateWorkload(&db_, options).ok());
  }

  QueryResult Run(const std::string& sql) {
    auto result = db_.Execute(sql);
    EXPECT_TRUE(result.ok()) << sql << " -> " << result.status().ToString();
    return result.ok() ? *std::move(result) : QueryResult{};
  }

  bool RuleApplied(const QueryResult& r, const std::string& needle) {
    for (const std::string& rule : r.applied_rules) {
      if (rule.find(needle) != std::string::npos) return true;
    }
    return false;
  }

  SoftDb db_;
};

// --------------------------------------------------- Predicate introduction

TEST_F(OptimizerFixture, AbsoluteOffsetScIntroducesRealPredicate) {
  // Make the SC absolute by widening it over the data's worst case.
  auto sc = std::make_unique<ColumnOffsetSc>(
      "abs_ship", "purchase", WorkloadColumns::kPurchaseOrderDate,
      WorkloadColumns::kPurchaseShipDate, 0, 60);
  ASSERT_TRUE(db_.scs().Add(std::move(sc), db_.catalog()).ok());
  ASSERT_TRUE(db_.scs().Find("abs_ship")->IsAbsolute());

  const std::string query =
      "SELECT * FROM purchase WHERE ship_date = DATE '1999-12-15'";
  auto with = Run(query);
  EXPECT_TRUE(RuleApplied(with, "predicate-introduction"));
  // The introduced predicate unlocked the order_date index: far fewer
  // pages than a full scan.
  db_.options().enable_predicate_introduction = false;
  db_.plan_cache().Clear();
  auto without = Run(query);
  EXPECT_EQ(with.rows.NumRows(), without.rows.NumRows());  // Same answers.
  EXPECT_LT(with.exec_stats.pages_read, without.exec_stats.pages_read / 2);
}

TEST_F(OptimizerFixture, StatisticalScDoesNotRewrite) {
  ASSERT_TRUE(RegisterShipWindowSc(&db_).ok());  // conf < 1.
  auto r = Run("SELECT * FROM purchase WHERE ship_date = DATE '1999-12-15'");
  EXPECT_FALSE(RuleApplied(r, "predicate-introduction"));
  EXPECT_TRUE(RuleApplied(r, "twinning"));
}

TEST_F(OptimizerFixture, LinearCorrelationIntroduction) {
  ASSERT_TRUE(RegisterPartCorrelationSc(&db_, 3.5).ok());
  ASSERT_TRUE(db_.scs().Find("sc_part_weight")->IsAbsolute());
  // Query on price (no index); weight has the index.
  const std::string query =
      "SELECT * FROM part WHERE p_retailprice BETWEEN 500 AND 510";
  auto with = Run(query);
  EXPECT_TRUE(RuleApplied(with, "predicate-introduction"));
  db_.options().enable_predicate_introduction = false;
  db_.plan_cache().Clear();
  auto without = Run(query);
  EXPECT_EQ(with.rows.NumRows(), without.rows.NumRows());
}

// ----------------------------------------------------------- Twinning (E4)

TEST_F(OptimizerFixture, TwinningImprovesCorrelatedRangeEstimates) {
  ASSERT_TRUE(RegisterProjectWindowSc(&db_).ok());
  // The §5 query: projects active on a given day.
  const std::string query =
      "SELECT * FROM project WHERE start_date <= DATE '1999-10-01' "
      "AND end_date >= DATE '1999-10-01'";
  auto with = Run(query);
  const double actual = static_cast<double>(with.rows.NumRows());
  const double est_with = with.estimated_rows;

  db_.options().use_twins_in_estimation = false;
  db_.plan_cache().Clear();
  auto baseline = Run(query);
  const double est_without = baseline.estimated_rows;

  // Baseline independence overestimates wildly; twinning lands close.
  const double err_with = std::abs(std::log(est_with / actual));
  const double err_without = std::abs(std::log(est_without / actual));
  EXPECT_LT(err_with, err_without);
  EXPECT_GT(est_without / actual, 3.0);  // Independence is way off.
  EXPECT_LT(est_with / actual, 3.0);     // Twinned is in the right ballpark.
}

TEST_F(OptimizerFixture, TwinningNeverWorseThanBaseline) {
  ASSERT_TRUE(RegisterShipWindowSc(&db_).ok());
  // Equality query where the twin image is less selective than the
  // original predicate: the estimator must keep the baseline.
  const std::string query =
      "SELECT * FROM purchase WHERE ship_date = DATE '1999-12-15'";
  auto with = Run(query);
  db_.options().use_twins_in_estimation = false;
  db_.plan_cache().Clear();
  auto without = Run(query);
  EXPECT_LE(with.estimated_rows, without.estimated_rows * 1.001);
}

// --------------------------------------------------- Join elimination (E3)

TEST_F(OptimizerFixture, FkJoinEliminated) {
  const std::string query =
      "SELECT o_orderkey, o_totalprice FROM orders "
      "JOIN customer ON o_custkey = c_custkey WHERE o_totalprice > 15000";
  auto r = Run(query);
  EXPECT_TRUE(RuleApplied(r, "join-elimination"));

  db_.options().enable_join_elimination = false;
  db_.plan_cache().Clear();
  auto baseline = Run(query);
  EXPECT_EQ(r.rows.NumRows(), baseline.rows.NumRows());
  EXPECT_LT(r.exec_stats.pages_read, baseline.exec_stats.pages_read);
  EXPECT_EQ(r.exec_stats.rows_joined, 0u);
  EXPECT_GT(baseline.exec_stats.rows_joined, 0u);
}

TEST_F(OptimizerFixture, JoinKeptWhenParentColumnsUsed) {
  auto r = Run(
      "SELECT o_orderkey, c_acctbal FROM orders "
      "JOIN customer ON o_custkey = c_custkey WHERE o_totalprice > 15000");
  EXPECT_FALSE(RuleApplied(r, "join-elimination"));
}

TEST_F(OptimizerFixture, JoinKeptWhenParentFiltered) {
  auto r = Run(
      "SELECT o_orderkey FROM orders JOIN customer ON o_custkey = c_custkey "
      "WHERE c_acctbal > 5000");
  EXPECT_FALSE(RuleApplied(r, "join-elimination"));
}

TEST_F(OptimizerFixture, InclusionScEnablesEliminationWithoutFk) {
  // Fresh engine without declared FKs.
  SoftDb db2;
  WorkloadOptions options;
  options.customers = 100;
  options.orders = 500;
  options.purchases = 100;
  options.parts = 50;
  options.projects = 50;
  options.sales_per_month = 10;
  options.with_constraints = false;
  ASSERT_TRUE(GenerateWorkload(&db2, options).ok());
  // Parent key uniqueness still required — declare just the PK.
  ASSERT_TRUE(db2.ics().Add(
      std::make_unique<UniqueConstraint>(
          "pk_customer", "customer",
          std::vector<ColumnIdx>{WorkloadColumns::kCustomerKey}, true,
          ConstraintMode::kEnforced),
      db2.catalog()).ok());
  // The orders.o_custkey column is nullable=false in the generator even
  // without constraints.
  const std::string query =
      "SELECT o_orderkey FROM orders JOIN customer ON o_custkey = c_custkey";

  auto before = db2.Execute(query);
  ASSERT_TRUE(before.ok());
  bool eliminated_before = false;
  for (const auto& rule : before->applied_rules) {
    eliminated_before |= rule.find("join-elimination") != std::string::npos;
  }
  EXPECT_FALSE(eliminated_before);  // No FK, no inclusion SC yet.

  ASSERT_TRUE(RegisterOrdersInclusionSc(&db2).ok());
  ASSERT_TRUE(db2.scs().Find("sc_orders_customer_inclusion")->IsAbsolute());
  db2.plan_cache().Clear();
  auto after = db2.Execute(query);
  ASSERT_TRUE(after.ok());
  bool eliminated_after = false;
  for (const auto& rule : after->applied_rules) {
    eliminated_after |= rule.find("join-elimination") != std::string::npos;
  }
  EXPECT_TRUE(eliminated_after);
  EXPECT_EQ(after->rows.NumRows(), before->rows.NumRows());
}

// --------------------------------------------------------- FD pruning (E6)

TEST_F(OptimizerFixture, FdPrunesGroupByKey) {
  ASSERT_TRUE(RegisterCustomerRegionFd(&db_).ok());
  const std::string query =
      "SELECT c_nationkey, c_regionkey, COUNT(*) AS n FROM customer "
      "GROUP BY c_nationkey, c_regionkey ORDER BY c_nationkey";
  auto with = Run(query);
  EXPECT_TRUE(RuleApplied(with, "fd-groupby-prune"));

  db_.options().enable_fd_pruning = false;
  db_.plan_cache().Clear();
  auto without = Run(query);
  ASSERT_EQ(with.rows.NumRows(), without.rows.NumRows());
  for (std::size_t i = 0; i < with.rows.NumRows(); ++i) {
    EXPECT_TRUE(with.rows.rows[i][0].GroupEquals(without.rows.rows[i][0]));
    EXPECT_TRUE(with.rows.rows[i][1].GroupEquals(without.rows.rows[i][1]));
    EXPECT_TRUE(with.rows.rows[i][2].GroupEquals(without.rows.rows[i][2]));
  }
}

TEST_F(OptimizerFixture, FdPrunesOrderByKeys) {
  ASSERT_TRUE(RegisterCustomerRegionFd(&db_).ok());
  const std::string query =
      "SELECT c_custkey, c_nationkey, c_regionkey FROM customer "
      "ORDER BY c_nationkey, c_regionkey, c_custkey";
  auto with = Run(query);
  EXPECT_TRUE(RuleApplied(with, "fd-orderby-prune"));

  db_.options().enable_fd_pruning = false;
  db_.plan_cache().Clear();
  auto without = Run(query);
  ASSERT_EQ(with.rows.NumRows(), without.rows.NumRows());
  // Order must be identical: the pruned key was redundant.
  for (std::size_t i = 0; i < with.rows.NumRows(); ++i) {
    EXPECT_TRUE(with.rows.rows[i][0].GroupEquals(without.rows.rows[i][0]));
  }
  EXPECT_LT(with.exec_stats.rows_sorted, without.exec_stats.rows_sorted + 1);
}

TEST_F(OptimizerFixture, StatisticalFdDoesNotPrune) {
  // Dirty one customer row so the FD is approximate.
  ASSERT_TRUE(db_.Execute("UPDATE customer SET c_regionkey = 99 "
                          "WHERE c_custkey = 0")
                  .ok());
  ASSERT_TRUE(RegisterCustomerRegionFd(&db_).ok());
  ASSERT_LT(db_.scs().Find("sc_customer_region_fd")->confidence(), 1.0);
  auto r = Run(
      "SELECT c_nationkey, c_regionkey, COUNT(*) AS n FROM customer "
      "GROUP BY c_nationkey, c_regionkey");
  EXPECT_FALSE(RuleApplied(r, "fd-groupby-prune"));
}

// --------------------------------------------------------- Join holes (E2)

TEST_F(OptimizerFixture, HoleCoversQueryPrunesJoin) {
  ASSERT_TRUE(RegisterOrdersHoleSc(&db_).ok());
  ASSERT_TRUE(db_.scs().Find("sc_orders_hole")->IsAbsolute());
  const std::string query =
      "SELECT o_orderkey FROM orders JOIN customer ON o_custkey = c_custkey "
      "WHERE o_totalprice BETWEEN 8500 AND 9500 "
      "AND c_acctbal BETWEEN 500 AND 1500";
  auto r = Run(query);
  EXPECT_TRUE(RuleApplied(r, "join-hole-prune"));
  EXPECT_EQ(r.rows.NumRows(), 0u);
  EXPECT_LE(r.exec_stats.pages_read, 6u);  // Nothing scanned on one side.
}

TEST_F(OptimizerFixture, HoleTrimsRange) {
  ASSERT_TRUE(RegisterOrdersHoleSc(&db_).ok());
  // A-range extends past the hole on one side: the in-hole part [8000,
  // 10000] is trimmed off for B inside [0,2000].
  const std::string query =
      "SELECT o_orderkey FROM orders JOIN customer ON o_custkey = c_custkey "
      "WHERE o_totalprice BETWEEN 9000 AND 12000 "
      "AND c_acctbal BETWEEN 500 AND 1500";
  auto with = Run(query);
  EXPECT_TRUE(RuleApplied(with, "join-hole-trim"));
  db_.options().enable_hole_trimming = false;
  db_.plan_cache().Clear();
  auto without = Run(query);
  EXPECT_EQ(with.rows.NumRows(), without.rows.NumRows());  // Same answers.
  EXPECT_LE(with.exec_stats.pages_read, without.exec_stats.pages_read);
}

// ------------------------------------------------- Union-all knockoff (E10)

TEST_F(OptimizerFixture, BranchesKnockedOffByInformationalChecks) {
  std::string query = "SELECT sale_id, amount FROM sales_m1 WHERE "
                      "sale_date BETWEEN DATE '1999-01-15' AND DATE "
                      "'1999-03-15'";
  for (int m = 2; m <= 12; ++m) {
    query += " UNION ALL SELECT sale_id, amount FROM sales_m" +
             std::to_string(m) +
             " WHERE sale_date BETWEEN DATE '1999-01-15' AND DATE "
             "'1999-03-15'";
  }
  auto with = Run(query);
  EXPECT_TRUE(RuleApplied(with, "unionall-knockoff"));

  db_.options().enable_unionall_pruning = false;
  db_.plan_cache().Clear();
  auto without = Run(query);
  EXPECT_EQ(with.rows.NumRows(), without.rows.NumRows());
  // Only 3 of 12 months can contain qualifying rows.
  EXPECT_LT(with.exec_stats.pages_read,
            without.exec_stats.pages_read / 2);
}

// ------------------------------------------------------------ Domain rules

TEST_F(OptimizerFixture, DomainTautologyDropped) {
  ASSERT_TRUE(RegisterOrderPriceDomainSc(&db_).ok());
  auto r = Run("SELECT COUNT(*) AS n FROM orders WHERE o_totalprice <= "
               "1000000");
  EXPECT_TRUE(RuleApplied(r, "domain-drop"));
  EXPECT_EQ(r.rows.rows[0][0].AsInt64(), 2000);
}

TEST_F(OptimizerFixture, DomainContradictionEmptiesScan) {
  ASSERT_TRUE(RegisterOrderPriceDomainSc(&db_).ok());
  auto r = Run("SELECT * FROM orders WHERE o_totalprice > 1000000");
  EXPECT_TRUE(RuleApplied(r, "domain-contradiction"));
  EXPECT_EQ(r.rows.NumRows(), 0u);
  EXPECT_LE(r.exec_stats.pages_read, 1u);  // EmptyOp: no scan at all.
}

// ---------------------------------------------------------- Plan cache

TEST_F(OptimizerFixture, PlanCacheHitsAndInvalidation) {
  auto sc = std::make_unique<ColumnOffsetSc>(
      "abs_ship", "purchase", WorkloadColumns::kPurchaseOrderDate,
      WorkloadColumns::kPurchaseShipDate, 0, 60);
  sc->set_policy(ScMaintenancePolicy::kDropOnViolation);
  ASSERT_TRUE(db_.scs().Add(std::move(sc), db_.catalog()).ok());

  const std::string query =
      "SELECT * FROM purchase WHERE ship_date = DATE '1999-12-15'";
  auto first = Run(query);
  EXPECT_FALSE(first.from_plan_cache);
  EXPECT_EQ(first.used_scs.size(), 1u);

  auto second = Run(query);
  EXPECT_TRUE(second.from_plan_cache);
  EXPECT_FALSE(second.used_backup_plan);

  // Violate the ASC: a shipment 100 days late.
  const std::int64_t d = *Date::Parse("1999-06-01");
  ASSERT_TRUE(db_.InsertRow("purchase",
                            {Value::Int64(999999), Value::Int64(1),
                             Value::Int64(1), Value::Date(d),
                             Value::Date(d + 100), Value::Date(d + 101),
                             Value::Int64(1), Value::Double(10.0),
                             Value::Double(0.0)})
                  .ok());
  EXPECT_EQ(db_.scs().Find("abs_ship")->state(), ScState::kViolated);

  auto third = Run(query);
  EXPECT_TRUE(third.from_plan_cache);
  EXPECT_TRUE(third.used_backup_plan);  // §4.1 backup-plan flip.
  // Backup plan still returns correct (now larger) answers.
  EXPECT_EQ(third.rows.NumRows(), first.rows.NumRows());
  EXPECT_GE(db_.plan_cache().invalidations(), 1u);
}

TEST(PlanCacheTest, RearmAfterRepair) {
  PlanCache cache;
  Schema s;
  auto plan = std::make_unique<ScanNode>("t", s);
  auto backup = std::make_unique<ScanNode>("t", s);
  cache.Put("q", std::move(plan), std::move(backup), {"sc_a"});
  EXPECT_EQ(cache.OnScViolated("sc_a"), 1u);
  EXPECT_TRUE(cache.Get("q")->using_backup);
  EXPECT_EQ(cache.Rearm({"sc_a"}), 1u);
  EXPECT_FALSE(cache.Get("q")->using_backup);
  // Unrelated SC violations touch nothing.
  EXPECT_EQ(cache.OnScViolated("sc_b"), 0u);
}

// ----------------------------------------------------- Estimator behaviour

TEST_F(OptimizerFixture, HistogramEstimatesCloseOnSingleColumn) {
  auto r = Run("SELECT * FROM orders WHERE o_totalprice <= 5000");
  const double actual = static_cast<double>(r.rows.NumRows());
  EXPECT_GT(actual, 0);
  EXPECT_LT(std::abs(r.estimated_rows - actual) / actual, 0.25);
}

TEST_F(OptimizerFixture, JoinEstimateUsesNdv) {
  db_.options().enable_join_elimination = false;
  auto r = Run(
      "SELECT o_orderkey, c_acctbal FROM orders JOIN customer "
      "ON o_custkey = c_custkey");
  // |orders ⋈ customer| = |orders| = 2000 (every order has one customer).
  EXPECT_NEAR(r.estimated_rows, 2000.0, 600.0);
  EXPECT_EQ(r.rows.NumRows(), 2000u);
}

// --------------------------------------------------------------- EXPLAIN

TEST_F(OptimizerFixture, ExplainShowsRulesAndPlan) {
  ASSERT_TRUE(RegisterShipWindowSc(&db_).ok());
  auto text = db_.Explain(
      "SELECT * FROM purchase WHERE ship_date = DATE '1999-12-15'");
  ASSERT_TRUE(text.ok());
  EXPECT_NE(text->find("Scan purchase"), std::string::npos);
  EXPECT_NE(text->find("twinning"), std::string::npos);
  EXPECT_NE(text->find("estimated rows"), std::string::npos);
}

}  // namespace
}  // namespace softdb
