#include <gtest/gtest.h>

#include "constraints/column_offset_sc.h"
#include "constraints/fd_sc.h"
#include "engine/softdb.h"
#include "mv/materialized_view.h"
#include "sql/parser.h"

namespace softdb {
namespace {

class MvFixture : public ::testing::Test {
 protected:
  MvFixture() {
    Schema s;
    s.AddColumn({"id", TypeId::kInt64, false, "t"});
    s.AddColumn({"v", TypeId::kInt64, false, "t"});
    table_ = *catalog_.CreateTable("t", s);
    for (int i = 0; i < 100; ++i) {
      EXPECT_TRUE(table_->Append({Value::Int64(i), Value::Int64(i % 10)}).ok());
    }
  }

  ExprPtr BoundPredicate(const std::string& text) {
    auto expr = ParseExpression(text);
    EXPECT_TRUE(expr.ok());
    EXPECT_TRUE((*expr)->Bind(table_->schema()).ok());
    return std::move(*expr);
  }

  Catalog catalog_;
  Table* table_;
};

TEST_F(MvFixture, DefinePopulates) {
  MvRegistry mvs;
  auto view = mvs.Define("big_v", "t", BoundPredicate("v >= 8"), catalog_);
  ASSERT_TRUE(view.ok());
  EXPECT_EQ((*view)->NumRows(), 20u);  // v in {8, 9}: 20 rows.
  EXPECT_NE((*view)->table(), nullptr);
  EXPECT_FALSE(mvs.Define("big_v", "t", BoundPredicate("v >= 8"), catalog_)
                   .ok());  // Duplicate.
}

TEST_F(MvFixture, InformationAstKeepsStatsOnly) {
  MvRegistry mvs;
  auto view = mvs.Define("info_v", "t", BoundPredicate("v >= 8"), catalog_,
                         /*information_only=*/true);
  ASSERT_TRUE(view.ok());
  EXPECT_EQ((*view)->table(), nullptr);  // Not materialized, not routable.
  EXPECT_EQ((*view)->NumRows(), 20u);    // But runstats know the count.
  EXPECT_EQ((*view)->stats().row_count, 20u);
  EXPECT_EQ((*view)->stats().columns[1].min->AsInt64(), 8);
}

TEST_F(MvFixture, IncrementalInsertMaintenance) {
  MvRegistry mvs;
  auto view = mvs.Define("big_v", "t", BoundPredicate("v >= 8"), catalog_);
  ASSERT_TRUE(view.ok());
  ASSERT_TRUE(
      mvs.OnBaseInsert("t", {Value::Int64(500), Value::Int64(9)}).ok());
  EXPECT_EQ((*view)->NumRows(), 21u);
  // Non-qualifying rows are ignored.
  ASSERT_TRUE(
      mvs.OnBaseInsert("t", {Value::Int64(501), Value::Int64(1)}).ok());
  EXPECT_EQ((*view)->NumRows(), 21u);
}

TEST_F(MvFixture, IncrementalDeleteMaintenance) {
  MvRegistry mvs;
  auto view = mvs.Define("big_v", "t", BoundPredicate("v >= 8"), catalog_);
  ASSERT_TRUE(view.ok());
  ASSERT_TRUE(
      mvs.OnBaseDelete("t", {Value::Int64(8), Value::Int64(8)}).ok());
  EXPECT_EQ((*view)->NumRows(), 19u);
  // Deleting a non-qualifying row changes nothing.
  ASSERT_TRUE(
      mvs.OnBaseDelete("t", {Value::Int64(1), Value::Int64(1)}).ok());
  EXPECT_EQ((*view)->NumRows(), 19u);
}

TEST_F(MvFixture, RefreshRebuildsFromBase) {
  MvRegistry mvs;
  auto view = mvs.Define("big_v", "t", BoundPredicate("v >= 8"), catalog_);
  ASSERT_TRUE(view.ok());
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(
        table_->Append({Value::Int64(1000 + i), Value::Int64(9)}).ok());
  }
  ASSERT_TRUE(mvs.RefreshAll(catalog_).ok());
  EXPECT_EQ((*view)->NumRows(), 25u);
}

TEST_F(MvFixture, LookupAndDrop) {
  MvRegistry mvs;
  ASSERT_TRUE(mvs.Define("a", "t", BoundPredicate("v = 1"), catalog_).ok());
  ASSERT_TRUE(mvs.Define("b", "t", BoundPredicate("v = 2"), catalog_).ok());
  EXPECT_NE(mvs.Find("a"), nullptr);
  EXPECT_EQ(mvs.OnBase("t").size(), 2u);
  EXPECT_EQ(mvs.All().size(), 2u);
  ASSERT_TRUE(mvs.DropView("a").ok());
  EXPECT_EQ(mvs.Find("a"), nullptr);
  EXPECT_FALSE(mvs.DropView("a").ok());
}

// ----------------------------------------------- Engine exception AST path

TEST(ExceptionAstTest, EngineWiresScToView) {
  SoftDb db;
  ASSERT_TRUE(db.Execute("CREATE TABLE t (x BIGINT NOT NULL, "
                         "y BIGINT NOT NULL)")
                  .ok());
  for (int i = 0; i < 50; ++i) {
    // 10% of rows violate y <= x + 5.
    const int y = i % 10 == 0 ? i + 50 : i + 3;
    ASSERT_TRUE(db.InsertRow("t", {Value::Int64(i), Value::Int64(y)}).ok());
  }
  auto sc = std::make_unique<ColumnOffsetSc>("win", "t", 0, 1, 0, 5);
  ASSERT_TRUE(db.scs().Add(std::move(sc), db.catalog()).ok());
  EXPECT_NEAR(db.scs().Find("win")->confidence(), 0.9, 1e-9);

  auto view = db.CreateExceptionAst("win");
  ASSERT_TRUE(view.ok()) << view.status().ToString();
  EXPECT_EQ((*view)->NumRows(), 5u);  // Exactly the violators.

  // Exception AST stays in sync with subsequent inserts.
  ASSERT_TRUE(db.InsertRow("t", {Value::Int64(100), Value::Int64(400)}).ok());
  EXPECT_EQ((*view)->NumRows(), 6u);
  ASSERT_TRUE(db.InsertRow("t", {Value::Int64(101), Value::Int64(102)}).ok());
  EXPECT_EQ((*view)->NumRows(), 6u);
}

TEST(ExceptionAstTest, RejectsUnsupportedScKinds) {
  SoftDb db;
  ASSERT_TRUE(db.Execute("CREATE TABLE t (x BIGINT, y BIGINT)").ok());
  ASSERT_TRUE(db.InsertRow("t", {Value::Int64(1), Value::Int64(1)}).ok());
  auto fd = std::make_unique<FunctionalDependencySc>(
      "fd", "t", std::vector<ColumnIdx>{0}, std::vector<ColumnIdx>{1});
  ASSERT_TRUE(db.scs().Add(std::move(fd), db.catalog()).ok());
  EXPECT_FALSE(db.CreateExceptionAst("fd").ok());
  EXPECT_FALSE(db.CreateExceptionAst("nonexistent").ok());
}

}  // namespace
}  // namespace softdb
