// Robustness battery: the fault-injection framework itself, cooperative
// cancellation/deadlines, typed fault surfacing from armed failpoints,
// epoch-guarded degraded retries when an SC is overturned mid-query, repair
// retry/backoff/quarantine semantics, the background repair worker, and a
// differential round proving a disarmed framework is bit-identical to the
// seed engine.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/failpoint.h"
#include "common/query_context.h"
#include "constraints/column_offset_sc.h"
#include "engine/softdb.h"

namespace softdb {
namespace {

Failpoints& FP() { return Failpoints::Instance(); }

Failpoints::Policy Always() {
  Failpoints::Policy p;
  p.trigger = Failpoints::Trigger::kAlways;
  return p;
}

Failpoints::Policy EveryNth(std::uint64_t n) {
  Failpoints::Policy p;
  p.trigger = Failpoints::Trigger::kEveryNth;
  p.n = n;
  return p;
}

Failpoints::Policy Prob(double probability, std::uint64_t seed) {
  Failpoints::Policy p;
  p.trigger = Failpoints::Trigger::kProbability;
  p.probability = probability;
  p.seed = seed;
  return p;
}

// Every fixture disarms the framework on both sides so no profile leaks
// between cases (or out of a failed one).
class FailpointTest : public ::testing::Test {
 protected:
  void SetUp() override { FP().DisableAll(); }
  void TearDown() override { FP().DisableAll(); }
};

// ------------------------------------------------------- framework basics

TEST_F(FailpointTest, DisarmedSiteNeverFiresAndCostsNothing) {
  EXPECT_FALSE(FP().AnyArmed());
  EXPECT_FALSE(SOFTDB_FAILPOINT_FIRED("nosuch.site"));
  EXPECT_EQ(FP().Evaluations("nosuch.site"), 0u);
  EXPECT_EQ(FP().Fires("nosuch.site"), 0u);
}

TEST_F(FailpointTest, AlwaysPolicyFiresEveryEvaluation) {
  FP().Enable("t.site", Always());
  EXPECT_TRUE(FP().AnyArmed());
  for (int i = 0; i < 3; ++i) EXPECT_TRUE(FP().ShouldFail("t.site"));
  EXPECT_EQ(FP().Evaluations("t.site"), 3u);
  EXPECT_EQ(FP().Fires("t.site"), 3u);

  // Disable keeps counters but stops fires.
  FP().Disable("t.site");
  EXPECT_FALSE(FP().ShouldFail("t.site"));
  EXPECT_EQ(FP().Evaluations("t.site"), 4u);
  EXPECT_EQ(FP().Fires("t.site"), 3u);
}

TEST_F(FailpointTest, EveryNthFiresOnMultiplesOnly) {
  FP().Enable("t.site", EveryNth(3));
  std::vector<bool> fired;
  for (int i = 0; i < 9; ++i) fired.push_back(FP().ShouldFail("t.site"));
  const std::vector<bool> expected = {false, false, true, false, false,
                                      true,  false, false, true};
  EXPECT_EQ(fired, expected);
  EXPECT_EQ(FP().Fires("t.site"), 3u);
}

TEST_F(FailpointTest, ProbabilityEdgesAndSeedDeterminism) {
  FP().Enable("t.one", Prob(1.0, 7));
  FP().Enable("t.zero", Prob(0.0, 7));
  for (int i = 0; i < 50; ++i) {
    EXPECT_TRUE(FP().ShouldFail("t.one"));
    EXPECT_FALSE(FP().ShouldFail("t.zero"));
  }

  // Two sites with the same seed produce the same fire sequence.
  FP().Enable("t.a", Prob(0.5, 42));
  FP().Enable("t.b", Prob(0.5, 42));
  for (int i = 0; i < 200; ++i) {
    EXPECT_EQ(FP().ShouldFail("t.a"), FP().ShouldFail("t.b")) << "at " << i;
  }
  EXPECT_EQ(FP().Fires("t.a"), FP().Fires("t.b"));
  EXPECT_GT(FP().Fires("t.a"), 0u);
  EXPECT_LT(FP().Fires("t.a"), 200u);
}

TEST_F(FailpointTest, EnableResetsCounters) {
  FP().Enable("t.site", Always());
  FP().ShouldFail("t.site");
  FP().Enable("t.site", Always());
  EXPECT_EQ(FP().Evaluations("t.site"), 0u);
  EXPECT_EQ(FP().Fires("t.site"), 0u);
}

TEST_F(FailpointTest, ParseProfileArmsEachEntry) {
  ASSERT_TRUE(
      FP().ParseProfile("a.x=always; b.y=every(2);c.z=prob(0.25,7)").ok());
  EXPECT_TRUE(FP().ShouldFail("a.x"));
  EXPECT_FALSE(FP().ShouldFail("b.y"));
  EXPECT_TRUE(FP().ShouldFail("b.y"));
  EXPECT_EQ(FP().Evaluations("c.z"), 0u);  // Armed, not yet evaluated.
}

TEST_F(FailpointTest, ParseProfileRejectsMalformedEntries) {
  EXPECT_FALSE(FP().ParseProfile("noequals").ok());
  EXPECT_FALSE(FP().ParseProfile("=always").ok());
  EXPECT_FALSE(FP().ParseProfile("a=bogus").ok());
  EXPECT_FALSE(FP().ParseProfile("a=every(0)").ok());
  EXPECT_FALSE(FP().ParseProfile("a=every(x)").ok());
  EXPECT_FALSE(FP().ParseProfile("a=prob(1.5)").ok());
  EXPECT_FALSE(FP().ParseProfile("a=prob(0.5,zz)").ok());
  // Entries before the bad one stay armed.
  EXPECT_FALSE(FP().ParseProfile("good=always;bad=every(0)").ok());
  EXPECT_TRUE(FP().ShouldFail("good"));
}

TEST_F(FailpointTest, ActionRunsOnFireAndMayDisarmItsOwnSite) {
  FP().Enable("t.site", Always());
  int hits = 0;
  FP().SetAction("t.site", [&hits] {
    ++hits;
    FP().Disable("t.site");  // Fire-once: actions may re-enter the framework.
  });
  EXPECT_TRUE(FP().ShouldFail("t.site"));
  EXPECT_FALSE(FP().ShouldFail("t.site"));
  EXPECT_EQ(hits, 1);
}

// ------------------------------------------------ cancellation & deadlines

class RobustnessTest : public ::testing::Test {
 protected:
  void SetUp() override { FP().DisableAll(); }
  void TearDown() override { FP().DisableAll(); }

  // t(x, y) with y = x + 2, `rows` rows.
  void MakeTable(SoftDb& db, int rows) {
    ASSERT_TRUE(
        db.Execute("CREATE TABLE t (x BIGINT NOT NULL, y BIGINT NOT NULL)")
            .ok());
    for (int i = 0; i < rows; ++i) {
      ASSERT_TRUE(
          db.InsertRow("t", {Value::Int64(i), Value::Int64(i + 2)}).ok());
    }
  }

  // Registers the offset SC y = x + [0, 5] used by degraded-retry cases.
  void AddOffsetSc(SoftDb& db, ScMaintenancePolicy policy) {
    auto sc = std::make_unique<ColumnOffsetSc>("win", "t", 0, 1, 0, 5);
    sc->set_policy(policy);
    ASSERT_TRUE(db.scs().Add(std::move(sc), db.catalog()).ok());
  }

  QueryResult Run(SoftDb& db, const std::string& sql) {
    auto result = db.Execute(sql);
    EXPECT_TRUE(result.ok()) << sql << " -> " << result.status().ToString();
    return result.ok() ? *std::move(result) : QueryResult{};
  }
};

TEST_F(RobustnessTest, PreCancelledQueryReturnsCancelled) {
  SoftDb db;
  MakeTable(db, 10);
  QueryContext query;
  query.cancel = std::make_shared<CancellationToken>();
  query.cancel->Cancel();
  auto r = db.Execute("SELECT * FROM t", &query);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kCancelled);
}

TEST_F(RobustnessTest, ExpiredDeadlineReturnsDeadlineExceeded) {
  SoftDb db;
  MakeTable(db, 10);
  QueryContext query;
  query.SetDeadlineAfter(std::chrono::milliseconds(0));
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  auto r = db.Execute("SELECT * FROM t", &query);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kDeadlineExceeded);
  // The default fail-fast path rejects before dispatch and reports how
  // late the statement arrived (PR 10 admission rule, engine-side copy).
  EXPECT_TRUE(StatusDetail(r.status(), "deadline_lag_ms").has_value());
}

TEST_F(RobustnessTest, ExpiredDeadlineFailFastCanBeDisabled) {
  // With reject_expired_deadlines off, the statement is dispatched and the
  // in-flight deadline check catches it instead — no lag detail, and the
  // query really ran (distinguishes admission fail-fast from enforcement).
  EngineOptions options;
  options.reject_expired_deadlines = false;
  SoftDb db(options);
  MakeTable(db, 10);
  QueryContext query;
  query.SetDeadlineAfter(std::chrono::milliseconds(0));
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  auto r = db.Execute("SELECT * FROM t", &query);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_FALSE(StatusDetail(r.status(), "deadline_lag_ms").has_value());
}

TEST_F(RobustnessTest, NullQueryContextAndGenerousDeadlineSucceed) {
  SoftDb db;
  MakeTable(db, 10);
  EXPECT_TRUE(db.Execute("SELECT * FROM t", nullptr).ok());
  QueryContext query;
  query.cancel = std::make_shared<CancellationToken>();
  query.SetDeadlineAfter(std::chrono::minutes(5));
  auto r = db.Execute("SELECT * FROM t", &query);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->rows.NumRows(), 10u);
}

TEST_F(RobustnessTest, MidQueryCancellationSurfacesBetweenRows) {
  SoftDb db;
  MakeTable(db, 500);
  QueryContext query;
  auto token = std::make_shared<CancellationToken>();
  query.cancel = token;
  // Cancel from inside the drain loop, a few rows in.
  FP().Enable("exec.drain", EveryNth(5));
  FP().SetAction("exec.drain", [token] { token->Cancel(); });
  auto r = db.Execute("SELECT * FROM t", &query);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kCancelled);
}

TEST_F(RobustnessTest, MidQueryDeadlineSurfacesOnRowEngine) {
  SoftDb db;
  db.options().use_vectorized = false;
  MakeTable(db, 4000);  // Enough rows to cross the interrupt stride.
  db.options().default_deadline_ms = 5;
  // Burn past the 5ms budget partway through the drain; the strided clock
  // check notices within one stride.
  FP().Enable("exec.drain", EveryNth(100));
  FP().SetAction("exec.drain", [] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    FP().Disable("exec.drain");
  });
  auto r = db.Execute("SELECT * FROM t");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kDeadlineExceeded);
}

// ----------------------------------------------------- typed fault surfacing

TEST_F(RobustnessTest, HashJoinBuildFaultSurfacesResourceExhausted) {
  SoftDb db;
  MakeTable(db, 50);
  ASSERT_TRUE(db.Execute("CREATE TABLE u (x BIGINT NOT NULL)").ok());
  ASSERT_TRUE(db.Execute("INSERT INTO u VALUES (1), (2), (3)").ok());
  FP().Enable("exec.hash_join_build", Always());
  auto r = db.Execute("SELECT * FROM t, u WHERE t.x = u.x");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kResourceExhausted);
  FP().DisableAll();
  EXPECT_TRUE(db.Execute("SELECT * FROM t, u WHERE t.x = u.x").ok());
}

TEST_F(RobustnessTest, BatchScanFaultSurfacesInternal) {
  SoftDb db;
  MakeTable(db, 50);
  FP().Enable("exec.batch_scan", Always());
  auto r = db.Execute("SELECT * FROM t WHERE y > 10");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInternal);
}

TEST_F(RobustnessTest, ParallelSchedulerFaultSurfacesResourceExhausted) {
  SoftDb db;
  db.options().num_threads = 4;
  db.options().parallel_morsel_rows = 64;
  MakeTable(db, 2000);
  FP().Enable("scheduler.task", Always());
  auto r = db.Execute("SELECT * FROM t WHERE y > 10");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kResourceExhausted);
  // Disarmed, the same pool runs the query clean.
  FP().DisableAll();
  auto clean = db.Execute("SELECT * FROM t WHERE y > 10");
  ASSERT_TRUE(clean.ok()) << clean.status().ToString();
  EXPECT_EQ(clean->rows.NumRows(), 1991u);
}

TEST_F(RobustnessTest, PlanCacheInsertFaultDegradesToUncachedSuccess) {
  SoftDb db;
  MakeTable(db, 20);
  FP().Enable("plan_cache.insert", Always());
  auto first = Run(db, "SELECT * FROM t WHERE y > 10");
  EXPECT_FALSE(first.from_plan_cache);
  auto second = Run(db, "SELECT * FROM t WHERE y > 10");
  EXPECT_FALSE(second.from_plan_cache);  // Nothing was cached.
  FP().DisableAll();
  Run(db, "SELECT * FROM t WHERE y > 10");
  auto cached = Run(db, "SELECT * FROM t WHERE y > 10");
  EXPECT_TRUE(cached.from_plan_cache);
}

// -------------------------------------------------------- degraded retries

TEST_F(RobustnessTest, MidQueryAscOverturnRetriesOnceOnBackup) {
  // Baseline: identical data, no SC.
  SoftDb plain;
  MakeTable(plain, 50);
  const std::string query = "SELECT * FROM t WHERE y = 30";
  const std::string expected = Run(plain, query).rows.ToString();

  SoftDb db;
  MakeTable(db, 50);
  AddOffsetSc(db, ScMaintenancePolicy::kTolerate);
  // Overturn the consumed ASC between two output rows of the first (fresh
  // path) execution: the completion-time epoch check must notice and re-run
  // the SC-free backup exactly once, transparently.
  FP().Enable("exec.drain", Always());
  FP().SetAction("exec.drain", [&db] {
    db.scs().Find("win")->set_state(ScState::kViolated);
    FP().Disable("exec.drain");
  });
  auto r = db.Execute(query);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_GE(r->used_scs.size(), 1u);  // The rewrite really consumed the SC.
  EXPECT_EQ(r->exec_stats.degraded_retries, 1u);
  EXPECT_TRUE(r->used_backup_plan);
  EXPECT_EQ(r->rows.ToString(), expected);

  // Subsequent hits see the violated SC at hit time and go straight to the
  // backup with no further retries.
  auto later = Run(db, query);
  EXPECT_TRUE(later.used_backup_plan);
  EXPECT_EQ(later.exec_stats.degraded_retries, 0u);
  EXPECT_EQ(later.rows.ToString(), expected);
}

TEST_F(RobustnessTest, MidQueryOverturnOnCachedPlanAlsoRetriesOnce) {
  SoftDb db;
  MakeTable(db, 50);
  AddOffsetSc(db, ScMaintenancePolicy::kTolerate);
  const std::string query = "SELECT * FROM t WHERE y = 30";
  const std::string expected = Run(db, query).rows.ToString();

  FP().Enable("exec.drain", Always());
  FP().SetAction("exec.drain", [&db] {
    db.scs().Find("win")->set_state(ScState::kViolated);
    FP().Disable("exec.drain");
  });
  auto r = db.Execute(query);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_TRUE(r->from_plan_cache);
  EXPECT_EQ(r->exec_stats.degraded_retries, 1u);
  EXPECT_TRUE(r->used_backup_plan);
  EXPECT_EQ(r->rows.ToString(), expected);
}

TEST_F(RobustnessTest, EstimationOnlyTwinNeverRetries) {
  SoftDb db;
  MakeTable(db, 50);
  AddOffsetSc(db, ScMaintenancePolicy::kTolerate);
  // Demote to SSC: confidence < 1 keeps the SC out of rewrite (twinning /
  // estimation only), so a mid-query epoch bump must NOT trigger a retry —
  // estimates don't affect correctness.
  db.scs().Find("win")->set_confidence(0.8);
  FP().Enable("exec.drain", Always());
  FP().SetAction("exec.drain", [&db] {
    db.scs().Find("win")->BumpEpoch();
    FP().Disable("exec.drain");
  });
  auto r = db.Execute("SELECT * FROM t WHERE y = 30");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->exec_stats.degraded_retries, 0u);
  EXPECT_FALSE(r->used_backup_plan);
}

// ------------------------------------------- repair retries and quarantine

TEST_F(RobustnessTest, RepairFailureRequeuesWithBackoffThenQuarantines) {
  SoftDb db;
  MakeTable(db, 50);
  AddOffsetSc(db, ScMaintenancePolicy::kAsyncRepair);
  RepairPolicy policy;
  policy.max_attempts = 3;
  policy.base_backoff = std::chrono::milliseconds(200);
  policy.max_backoff = std::chrono::milliseconds(400);
  db.scs().SetRepairPolicy(policy);
  FP().Enable("sc.repair_full", Always());

  // Violating insert queues the (doomed) repair.
  ASSERT_TRUE(db.InsertRow("t", {Value::Int64(100), Value::Int64(500)}).ok());
  ASSERT_EQ(db.scs().Find("win")->state(), ScState::kRepairQueued);
  ASSERT_EQ(db.scs().repair_queue_size(), 1u);

  // Attempt 1 fails and re-queues with backoff; a backoff-respecting step
  // right after finds nothing due.
  ASSERT_TRUE(db.RunMaintenance().ok());
  EXPECT_EQ(db.scs().Find("win")->state(), ScState::kRepairQueued);
  EXPECT_EQ(db.scs().stats().repair_failures.load(), 1u);
  ASSERT_TRUE(db.scs().NextRepairDue().has_value());
  EXPECT_EQ(db.scs().RepairStep(db.catalog(), /*respect_backoff=*/true),
            RepairStepResult::kIdle);

  // Attempts 2 and 3 (RunMaintenance ignores backoff); the third exhausts
  // the budget and quarantines.
  ASSERT_TRUE(db.RunMaintenance().ok());
  EXPECT_EQ(db.scs().Find("win")->state(), ScState::kRepairQueued);
  ASSERT_TRUE(db.RunMaintenance().ok());
  EXPECT_EQ(db.scs().Find("win")->state(), ScState::kQuarantined);
  EXPECT_EQ(db.scs().repair_queue_size(), 0u);
  EXPECT_EQ(db.scs().stats().repair_failures.load(), 3u);
  EXPECT_EQ(db.scs().stats().quarantined.load(), 1u);

  // The audit trail records the whole arc in order.
  const auto audit = db.scs().repair_audit();
  ASSERT_EQ(audit.size(), 3u);
  EXPECT_EQ(audit[0].action, "requeued");
  EXPECT_EQ(audit[0].attempts, 1u);
  EXPECT_FALSE(audit[0].last_error.empty());
  EXPECT_EQ(audit[1].action, "requeued");
  EXPECT_EQ(audit[1].attempts, 2u);
  EXPECT_EQ(audit[2].action, "quarantined");
  EXPECT_EQ(audit[2].attempts, 3u);
  EXPECT_EQ(audit[2].sc_name, "win");

  // Quarantine is sticky: periodic verification does not resurrect, and
  // the optimizer no longer consumes the SC.
  ASSERT_TRUE(db.scs().VerifyAll(db.catalog()).ok());
  EXPECT_EQ(db.scs().Find("win")->state(), ScState::kQuarantined);
  FP().DisableAll();
  auto r = Run(db, "SELECT * FROM t WHERE y = 31");
  EXPECT_TRUE(r.used_scs.empty());
}

TEST_F(RobustnessTest, ResurrectedScReusesTicketWithoutDoubleCount) {
  SoftDb db;
  MakeTable(db, 50);
  AddOffsetSc(db, ScMaintenancePolicy::kAsyncRepair);

  // First violation queues one ticket.
  ASSERT_TRUE(db.InsertRow("t", {Value::Int64(100), Value::Int64(500)}).ok());
  EXPECT_EQ(db.scs().stats().async_enqueued.load(), 1u);
  EXPECT_EQ(db.scs().repair_queue_size(), 1u);

  // Delete the violator and re-verify: the SC resurrects while its ticket
  // is still queued.
  ASSERT_TRUE(db.Execute("DELETE FROM t WHERE x = 100").ok());
  ASSERT_TRUE(db.scs().VerifyAll(db.catalog()).ok());
  ASSERT_EQ(db.scs().Find("win")->state(), ScState::kActive);
  EXPECT_EQ(db.scs().repair_queue_size(), 1u);

  // A second violation must not enqueue a duplicate ticket (the seed's
  // double-enqueue bug counted and queued this twice).
  ASSERT_TRUE(db.InsertRow("t", {Value::Int64(200), Value::Int64(900)}).ok());
  EXPECT_EQ(db.scs().Find("win")->state(), ScState::kRepairQueued);
  EXPECT_EQ(db.scs().stats().async_enqueued.load(), 1u);
  EXPECT_EQ(db.scs().repair_queue_size(), 1u);

  // One drain repairs it once.
  ASSERT_TRUE(db.RunMaintenance().ok());
  EXPECT_EQ(db.scs().Find("win")->state(), ScState::kActive);
  EXPECT_EQ(db.scs().repair_queue_size(), 0u);
  EXPECT_EQ(db.scs().stats().async_repairs.load(), 1u);
}

TEST_F(RobustnessTest, StaleTicketForDroppedScIsDiscarded) {
  SoftDb db;
  MakeTable(db, 50);
  AddOffsetSc(db, ScMaintenancePolicy::kAsyncRepair);
  ASSERT_TRUE(db.InsertRow("t", {Value::Int64(100), Value::Int64(500)}).ok());
  ASSERT_EQ(db.scs().repair_queue_size(), 1u);
  ASSERT_TRUE(db.scs().Drop("win").ok());
  ASSERT_TRUE(db.RunMaintenance().ok());
  EXPECT_EQ(db.scs().repair_queue_size(), 0u);
  EXPECT_EQ(db.scs().stats().async_repairs.load(), 0u);
}

// ------------------------------------------------- background repair worker

TEST_F(RobustnessTest, WorkerRepairsViolatedScAndRearmsCachedPlans) {
  EngineOptions options;
  options.enable_repair_worker = true;
  SoftDb db(options);
  ASSERT_NE(db.repair_worker(), nullptr);
  ASSERT_TRUE(db.repair_worker()->running());

  MakeTable(db, 50);
  AddOffsetSc(db, ScMaintenancePolicy::kAsyncRepair);
  const std::string query = "SELECT * FROM t WHERE y = 30";
  auto first = Run(db, query);
  ASSERT_EQ(first.used_scs.size(), 1u);

  // The violating insert queues a repair; the worker heals it in the
  // background within its poll cadence.
  ASSERT_TRUE(db.InsertRow("t", {Value::Int64(100), Value::Int64(500)}).ok());
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (db.scs().Find("win")->state() != ScState::kActive &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  ASSERT_EQ(db.scs().Find("win")->state(), ScState::kActive);
  EXPECT_GE(db.repair_worker()->steps(), 1u);

  // The worker's re-arm callback restored the cached package's primary.
  auto healed = Run(db, query);
  EXPECT_TRUE(healed.from_plan_cache);
  EXPECT_FALSE(healed.used_backup_plan);
  db.StopRepairWorker();
  EXPECT_FALSE(db.repair_worker()->running());
}

TEST_F(RobustnessTest, WorkerQuarantinesPoisonScWithinBudget) {
  SoftDb db;
  MakeTable(db, 50);
  AddOffsetSc(db, ScMaintenancePolicy::kAsyncRepair);
  RepairPolicy policy;
  policy.max_attempts = 3;
  policy.base_backoff = std::chrono::milliseconds(1);
  policy.max_backoff = std::chrono::milliseconds(2);
  db.scs().SetRepairPolicy(policy);
  FP().Enable("sc.repair_full", Always());

  ASSERT_TRUE(db.InsertRow("t", {Value::Int64(100), Value::Int64(500)}).ok());
  RepairWorker::Options worker_options;
  worker_options.poll_interval = std::chrono::milliseconds(1);
  db.StartRepairWorker(worker_options);

  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (db.scs().Find("win")->state() != ScState::kQuarantined &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  db.StopRepairWorker();
  EXPECT_EQ(db.scs().Find("win")->state(), ScState::kQuarantined);
  EXPECT_EQ(db.scs().stats().quarantined.load(), 1u);
  EXPECT_EQ(db.scs().stats().repair_failures.load(), 3u);
  EXPECT_EQ(db.scs().repair_queue_size(), 0u);
  const auto audit = db.scs().repair_audit();
  ASSERT_FALSE(audit.empty());
  EXPECT_EQ(audit.back().action, "quarantined");
}

// ------------------------------------------------------ differential round

TEST_F(RobustnessTest, DisarmedFrameworkIsBitIdenticalToSeedBehavior) {
  // Two engines, same data and SCs; one session armed and then disarmed
  // failpoints, the other never touched them. Every query must render
  // bit-identical rows with identical plan provenance.
  const std::vector<std::string> queries = {
      "SELECT * FROM t WHERE y = 30",
      "SELECT * FROM t WHERE y BETWEEN 10 AND 20",
      "SELECT x FROM t WHERE y > 40 ORDER BY x",
      "SELECT COUNT(*) FROM t",
      "SELECT * FROM t WHERE x = 7",
  };
  SoftDb touched;
  MakeTable(touched, 60);
  AddOffsetSc(touched, ScMaintenancePolicy::kAsyncRepair);
  FP().Enable("exec.batch_scan", Always());
  FP().DisableAll();  // Armed and disarmed: must leave zero residue.

  SoftDb pristine;
  MakeTable(pristine, 60);
  AddOffsetSc(pristine, ScMaintenancePolicy::kAsyncRepair);

  for (const std::string& sql : queries) {
    auto a = Run(touched, sql);
    auto b = Run(pristine, sql);
    EXPECT_EQ(a.rows.ToString(), b.rows.ToString()) << sql;
    EXPECT_EQ(a.used_scs, b.used_scs) << sql;
    EXPECT_EQ(a.used_backup_plan, b.used_backup_plan) << sql;
    EXPECT_EQ(a.exec_stats.degraded_retries, 0u) << sql;
    EXPECT_EQ(b.exec_stats.degraded_retries, 0u) << sql;
  }
}

}  // namespace
}  // namespace softdb
