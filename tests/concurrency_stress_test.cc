// Concurrency stress battery for the shared engine state (DESIGN.md §8):
// N reader threads run SC-rewritten (and morsel-parallel) queries against a
// static table while one writer thread hammers the maintenance path —
// ScRegistry::OnInsert violations firing the plan-cache listener, repair
// queue drains, full re-verification, and CREATE/DROP TABLE churn that
// evicts cached packages. Readers must never see a wrong answer, a torn SC
// lifecycle, or a freed plan (evicted entries are held via shared_ptr).
//
// The tables the readers scan are never mutated, so every SC "violation"
// the writer injects is synthetic: both the SC-rewritten primary plan and
// the ASC-free backup plan remain correct answers at every instant, which
// is what makes exact-count assertions valid mid-flip.

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "constraints/column_offset_sc.h"
#include "constraints/domain_sc.h"
#include "constraints/zone_map_sc.h"
#include "engine/softdb.h"
#include "server/session.h"

namespace softdb {
namespace {

class ConcurrencyStressTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Static read table: a in [0, 97), b = a + delta with delta in [0, 10].
    ASSERT_TRUE(
        db_.Execute("CREATE TABLE r (a BIGINT NOT NULL, b BIGINT)").ok());
    for (int i = 0; i < 600; ++i) {
      ASSERT_TRUE(db_.InsertRow("r", {Value::Int64(i % 97),
                                      Value::Int64(i % 97 + i % 11)})
                      .ok());
    }
    // Writer-owned table (per-table single-writer contract: only the
    // writer thread touches w's data).
    ASSERT_TRUE(
        db_.Execute("CREATE TABLE w (x BIGINT NOT NULL, y BIGINT)").ok());
    ASSERT_TRUE(db_.Execute("ANALYZE r").ok());

    // SCs the optimizer uses on r, one per maintenance policy the writer
    // exercises. All are true of r's (immutable) data.
    auto drop_sc = std::make_unique<ColumnOffsetSc>("r_off", "r", 0, 1, 0, 10);
    drop_sc->set_policy(ScMaintenancePolicy::kDropOnViolation);
    ASSERT_TRUE(db_.scs().Add(std::move(drop_sc), db_.catalog()).ok());
    auto async_sc =
        std::make_unique<DomainSc>("r_dom", "r", 0, Value::Int64(0),
                                   Value::Int64(100));
    async_sc->set_policy(ScMaintenancePolicy::kAsyncRepair);
    ASSERT_TRUE(db_.scs().Add(std::move(async_sc), db_.catalog()).ok());
    auto tol_sc = std::make_unique<ColumnOffsetSc>("r_tol", "r", 0, 1, 0, 11);
    tol_sc->set_policy(ScMaintenancePolicy::kTolerate);
    ASSERT_TRUE(db_.scs().Add(std::move(tol_sc), db_.catalog()).ok());

    db_.options().enable_predicate_introduction = true;
    db_.options().use_vectorized = true;
  }

  SoftDb db_;
};

TEST_F(ConcurrencyStressTest, ReadersSurviveMaintenanceAndCacheChurn) {
  // Fixed thread count for the whole test: resizing the pool mid-query is
  // out of contract.
  db_.options().num_threads = 2;
  db_.options().parallel_morsel_rows = 64;

  struct Probe {
    std::string sql;
    std::size_t expected;
  };
  std::vector<Probe> probes;
  for (const char* sql :
       {"SELECT a, b FROM r WHERE b - a <= 5",
        "SELECT a FROM r WHERE a BETWEEN 10 AND 40",
        "SELECT a, b FROM r WHERE b - a <= 8 ORDER BY a",
        "SELECT a FROM r WHERE a < 50 AND b IS NOT NULL"}) {
    auto baseline = db_.Execute(sql);
    ASSERT_TRUE(baseline.ok()) << sql;
    probes.push_back(Probe{sql, baseline->rows.NumRows()});
  }

  std::atomic<bool> done{false};
  std::atomic<int> reader_errors{0};
  std::atomic<std::uint64_t> reads{0};

  auto reader = [&](int id) {
    // Each reader sweeps the probe set; one of them also re-Gets cached
    // packages for the writer's scratch tables and renders the plan after
    // eviction, which would be a use-after-free without shared_ptr pins.
    std::vector<std::shared_ptr<CachedPlan>> pinned;
    for (int iter = 0; !done.load(std::memory_order_acquire); ++iter) {
      const Probe& probe = probes[(id + iter) % probes.size()];
      auto result = db_.Execute(probe.sql);
      if (!result.ok() || result->rows.NumRows() != probe.expected) {
        reader_errors.fetch_add(1);
        ADD_FAILURE() << probe.sql << " -> "
                      << (result.ok()
                              ? "wrong count " +
                                    std::to_string(result->rows.NumRows()) +
                                    " (want " +
                                    std::to_string(probe.expected) + ")"
                              : result.status().ToString());
        break;
      }
      reads.fetch_add(1);
      if (id == 0) {
        std::shared_ptr<CachedPlan> entry =
            db_.plan_cache().Get("SELECT x, y FROM scratch WHERE x >= 0");
        if (entry != nullptr) pinned.push_back(std::move(entry));
        if (pinned.size() > 8) pinned.erase(pinned.begin());
      }
      // SC lifecycle must never tear, whatever the writer is doing.
      for (const SoftConstraint* sc : db_.scs().All()) {
        const double conf = sc->confidence();
        if (conf < 0.0 || conf > 1.0) {
          reader_errors.fetch_add(1);
          ADD_FAILURE() << sc->name() << " confidence " << conf;
        }
        const ScState state = sc->state();
        if (state != ScState::kActive && state != ScState::kViolated &&
            state != ScState::kRepairQueued && state != ScState::kDropped) {
          reader_errors.fetch_add(1);
          ADD_FAILURE() << sc->name() << " torn state "
                        << static_cast<int>(state);
        }
      }
    }
    // Evicted-but-pinned packages must still render: the plan tree is
    // alive for as long as any session holds the entry.
    for (const auto& entry : pinned) {
      EXPECT_FALSE(entry->ActivePlan().ToString().empty());
    }
  };

  auto writer = [&]() {
    const std::vector<Value> violating_offset{Value::Int64(50),
                                              Value::Int64(90)};
    const std::vector<Value> violating_domain{Value::Int64(500),
                                              Value::Int64(505)};
    const std::vector<Value> complying{Value::Int64(5), Value::Int64(9)};
    for (int iter = 0; iter < 120; ++iter) {
      // DML on the writer's own table (full engine path: impact analysis,
      // IC checks, SC hooks).
      ASSERT_TRUE(db_.InsertRow("w", {Value::Int64(iter),
                                      Value::Int64(iter * 2)})
                      .ok());
      // Synthetic violations against r's SCs: kDropOnViolation flips
      // dependent packages, kAsyncRepair queues work, kTolerate decays
      // confidence. r's data never changes, so readers stay correct.
      ASSERT_TRUE(db_.scs()
                      .OnInsert(db_.catalog(), "r",
                                iter % 2 ? violating_offset
                                         : violating_domain)
                      .ok());
      ASSERT_TRUE(db_.scs().OnInsert(db_.catalog(), "r", complying).ok());
      if (iter % 3 == 0) {
        // Drain repairs and re-arm flipped packages.
        ASSERT_TRUE(db_.RunMaintenance().ok());
      }
      if (iter % 5 == 0) {
        // Re-baseline every SC against the (compliant) data: they all
        // return to kActive with confidence 1.0.
        ASSERT_TRUE(db_.scs().VerifyAll(db_.catalog()).ok());
      }
      // Catalog + plan-cache churn: a scratch table is created, queried
      // (caching a package readers pin), then dropped (evicting it).
      ASSERT_TRUE(
          db_.Execute("CREATE TABLE scratch (x BIGINT NOT NULL, y BIGINT)")
              .ok());
      ASSERT_TRUE(db_.InsertRow("scratch", {Value::Int64(iter),
                                            Value::Int64(iter)})
                      .ok());
      auto scratch_read =
          db_.Execute("SELECT x, y FROM scratch WHERE x >= 0");
      ASSERT_TRUE(scratch_read.ok());
      EXPECT_EQ(scratch_read->rows.NumRows(), 1u);
      ASSERT_TRUE(db_.Execute("DROP TABLE scratch").ok());
    }
    done.store(true, std::memory_order_release);
  };

  std::vector<std::thread> threads;
  for (int i = 0; i < 4; ++i) threads.emplace_back(reader, i);
  std::thread writer_thread(writer);
  writer_thread.join();
  for (auto& t : threads) t.join();

  EXPECT_EQ(reader_errors.load(), 0);
  EXPECT_GT(reads.load(), 0u);

  // Final maintenance pass returns the world to a clean state: every SC
  // re-verifies absolute against the untouched data.
  ASSERT_TRUE(db_.scs().VerifyAll(db_.catalog()).ok());
  ASSERT_TRUE(db_.RunMaintenance().ok());
  for (const SoftConstraint* sc : db_.scs().All()) {
    EXPECT_TRUE(sc->active()) << sc->name();
    EXPECT_EQ(sc->confidence(), 1.0) << sc->name();
  }

  // Counter sanity: the writer's synthetic violations were observed and
  // scoped invalidation did real work.
  const ScMaintenanceStats& stats = db_.scs().stats();
  EXPECT_GT(stats.row_checks.load(), 0u);
  EXPECT_GT(stats.violations.load(), 0u);
  EXPECT_GT(stats.async_enqueued.load(), 0u);
  EXPECT_GT(db_.plan_cache().invalidations(), 0u);
  EXPECT_GT(db_.plan_cache().hits() + db_.plan_cache().misses(), 0u);
}

// Zone-map skip sets under concurrent lifecycle churn: readers hammer
// block-skipping scans of a static clustered table while the writer (a)
// loosens the maps' envelopes and bumps their epochs — answer-preserving
// churn that forces in-flight queries through RunPlan's zone-map
// degraded-retry path — (b) re-verifies and exactly re-mines them, and
// (c) grows its own zone-mapped table from empty via the incremental
// append folds, checking exact counts after every insert. Readers must
// see exact counts at every instant; the maps must end absolute + tight.
TEST_F(ConcurrencyStressTest, ZoneMapSkipsStayExactUnderLifecycleChurn) {
  ASSERT_TRUE(db_.Execute("CREATE TABLE zr (v BIGINT)").ok());
  const std::size_t kRows = 3 * kZoneMapBlockRows;  // 3 full blocks.
  for (std::size_t i = 0; i < kRows; ++i) {
    ASSERT_TRUE(
        db_.InsertRow("zr", {Value::Int64(static_cast<std::int64_t>(i))})
            .ok());
  }
  ASSERT_TRUE(db_.Execute("ANALYZE zr").ok());
  ASSERT_TRUE(db_.MineZoneMaps("zr").ok());
  auto* zr_map = static_cast<ZoneMapSc*>(db_.scs().Find("zm_zr_v"));
  ASSERT_NE(zr_map, nullptr);
  ASSERT_TRUE(zr_map->IsAbsolute());

  // Writer-owned zone-mapped table, grown from empty through the
  // incremental append folds.
  ASSERT_TRUE(db_.Execute("CREATE TABLE z (v BIGINT NOT NULL)").ok());
  ASSERT_TRUE(db_.MineZoneMaps("z").ok());

  db_.options().num_threads = 2;
  db_.options().parallel_morsel_rows = 500;  // Morsels straddle blocks.

  struct Probe {
    const char* sql;
    std::size_t expected;
  };
  const Probe probes[] = {
      {"SELECT v FROM zr WHERE v BETWEEN 1024 AND 2047", kZoneMapBlockRows},
      {"SELECT v FROM zr WHERE v < 0", 0},
      {"SELECT v FROM zr WHERE v >= 3000", kRows - 3000},
      {"SELECT v FROM zr WHERE v IS NULL", 0},
  };

  std::atomic<bool> done{false};
  std::atomic<int> errors{0};
  std::atomic<std::uint64_t> reads{0};
  std::atomic<std::uint64_t> reads_with_skips{0};

  auto reader = [&](int id) {
    for (int iter = 0; !done.load(std::memory_order_acquire); ++iter) {
      const Probe& probe = probes[(id + iter) % std::size(probes)];
      auto result = db_.Execute(probe.sql);
      if (!result.ok() || result->rows.NumRows() != probe.expected) {
        errors.fetch_add(1);
        ADD_FAILURE() << probe.sql << " -> "
                      << (result.ok()
                              ? "wrong count " +
                                    std::to_string(result->rows.NumRows())
                              : result.status().ToString());
        break;
      }
      reads.fetch_add(1);
      if (result->exec_stats.blocks_skipped > 0) reads_with_skips.fetch_add(1);
    }
  };

  auto writer = [&]() {
    for (int iter = 0; iter < 120; ++iter) {
      // Incremental growth of z's map: every append folds, and the count
      // is exact immediately (the pruning query never reads stale data).
      ASSERT_TRUE(db_.InsertRow("z", {Value::Int64(iter * 3)}).ok());
      auto all = db_.Execute("SELECT v FROM z WHERE v >= 0");
      ASSERT_TRUE(all.ok());
      EXPECT_EQ(all->rows.NumRows(), static_cast<std::size_t>(iter + 1));
      auto none = db_.Execute("SELECT v FROM z WHERE v < 0");
      ASSERT_TRUE(none.ok());
      EXPECT_EQ(none->rows.NumRows(), 0u);

      // Answer-preserving churn on the readers' map: loosen one block's
      // envelope (still a sound over-approximation of the static data)
      // and bump the epoch, so racing queries that consumed the map take
      // RunPlan's zone-map-free retry. Every 5th round re-verify (stays
      // absolute: the loose envelope has no violations) and re-mine the
      // exact bounds back.
      const auto blocks = zr_map->SnapshotBlocks();
      const std::size_t b = static_cast<std::size_t>(iter) % blocks.size();
      zr_map->CorruptBlockForTest(b, blocks[b].min - 50.0,
                                  blocks[b].max + 50.0,
                                  blocks[b].null_count + 3);
      zr_map->BumpEpoch();
      if (iter % 5 == 0) {
        ASSERT_TRUE(db_.scs().VerifyAll(db_.catalog()).ok());
        EXPECT_TRUE(zr_map->IsAbsolute());
        ASSERT_TRUE(zr_map->RepairFull(db_.catalog()).ok());
      }
    }
    done.store(true, std::memory_order_release);
  };

  std::vector<std::thread> threads;
  for (int i = 0; i < 4; ++i) threads.emplace_back(reader, i);
  std::thread writer_thread(writer);
  writer_thread.join();
  for (auto& t : threads) t.join();

  EXPECT_EQ(errors.load(), 0);
  EXPECT_GT(reads.load(), 0u);
  EXPECT_GT(reads_with_skips.load(), 0u);

  // The world settles exact: re-mined tight envelopes, absolute, and the
  // skip accounting agrees with the block math on a final serial scan.
  ASSERT_TRUE(zr_map->RepairFull(db_.catalog()).ok());
  EXPECT_TRUE(zr_map->IsAbsolute());
  db_.options().num_threads = 1;
  db_.plan_cache().Clear();
  auto final_probe = db_.Execute(probes[0].sql);
  ASSERT_TRUE(final_probe.ok());
  EXPECT_EQ(final_probe->rows.NumRows(), probes[0].expected);
  EXPECT_EQ(final_probe->exec_stats.blocks_total, 3u);
  EXPECT_EQ(final_probe->exec_stats.blocks_skipped, 2u);
}

TEST_F(ConcurrencyStressTest, ParallelReadersShareOneScheduler) {
  // Many threads running morsel-parallel queries against one pool: the
  // scheduler's Run barrier must keep concurrent groups isolated.
  db_.options().num_threads = 4;
  db_.options().parallel_morsel_rows = 32;
  auto baseline = db_.Execute("SELECT a, b FROM r WHERE a < 80");
  ASSERT_TRUE(baseline.ok());
  const std::size_t expected = baseline->rows.NumRows();

  std::atomic<int> errors{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 6; ++t) {
    threads.emplace_back([&]() {
      for (int i = 0; i < 40; ++i) {
        auto result = db_.Execute("SELECT a, b FROM r WHERE a < 80");
        if (!result.ok() || result->rows.NumRows() != expected) {
          errors.fetch_add(1);
          return;
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(errors.load(), 0);
}

// Serving-layer stress (DESIGN.md §15): N client sessions drive one shared
// engine through the SessionManager/Dispatcher — readers sweep SC-rewritten
// probes with exact-count assertions, writer sessions append to their own
// tables through the full served-DML path, and a maintenance thread injects
// synthetic SC violations plus repair drains underneath them all. The
// admission queue is sized so transient rejections (if any) heal inside the
// session retry loop; every statement must ultimately succeed.
TEST_F(ConcurrencyStressTest, SessionsRaceWritersAndRepairChurn) {
  db_.options().num_threads = 2;
  db_.options().parallel_morsel_rows = 64;
  ASSERT_TRUE(
      db_.Execute("CREATE TABLE w1 (x BIGINT NOT NULL, y BIGINT)").ok());
  ASSERT_TRUE(
      db_.Execute("CREATE TABLE w2 (x BIGINT NOT NULL, y BIGINT)").ok());

  struct Probe {
    std::string sql;
    std::size_t expected;
  };
  std::vector<Probe> probes;
  for (const char* sql :
       {"SELECT a, b FROM r WHERE b - a <= 5",
        "SELECT a FROM r WHERE a BETWEEN 10 AND 40",
        "SELECT a FROM r WHERE a < 50 AND b IS NOT NULL"}) {
    auto baseline = db_.Execute(sql);
    ASSERT_TRUE(baseline.ok()) << sql;
    probes.push_back(Probe{sql, baseline->rows.NumRows()});
  }

  ServerOptions options;
  options.worker_threads = 4;
  options.max_queue_depth = 256;
  options.high_water_depth = 240;
  options.retry.base_backoff = std::chrono::milliseconds(1);
  SessionManager server(&db_, options);

  constexpr int kWriterRounds = 60;
  std::atomic<bool> done{false};
  std::atomic<int> errors{0};
  std::atomic<std::uint64_t> served_reads{0};

  // Per-table single-writer contract holds: each writer session owns its
  // table, and a session's client issues statements sequentially.
  auto served_writer = [&](const std::string& table) {
    auto session = server.OpenSession("writer-" + table);
    ASSERT_TRUE(session.ok());
    for (int i = 0; i < kWriterRounds; ++i) {
      auto r = (*session)->Execute("INSERT INTO " + table + " VALUES (" +
                                   std::to_string(i) + ", " +
                                   std::to_string(i * 2) + ")");
      if (!r.ok()) {
        errors.fetch_add(1);
        ADD_FAILURE() << table << ": " << r.status().ToString();
        break;
      }
    }
  };

  auto served_reader = [&](int id) {
    auto session = server.OpenSession("reader-" + std::to_string(id));
    ASSERT_TRUE(session.ok());
    for (int iter = 0; !done.load(std::memory_order_acquire); ++iter) {
      const Probe& probe = probes[(id + iter) % probes.size()];
      auto result = (*session)->Execute(probe.sql);
      if (!result.ok() || result->rows.NumRows() != probe.expected) {
        errors.fetch_add(1);
        ADD_FAILURE() << probe.sql << " -> "
                      << (result.ok()
                              ? "wrong count " +
                                    std::to_string(result->rows.NumRows())
                              : result.status().ToString());
        break;
      }
      served_reads.fetch_add(1);
    }
  };

  // Maintenance churn runs beside the server, not through it: synthetic
  // violations flip/queue/decay r's SCs while served statements race.
  auto maintenance = [&]() {
    const std::vector<Value> violating{Value::Int64(50), Value::Int64(90)};
    const std::vector<Value> complying{Value::Int64(5), Value::Int64(9)};
    for (int iter = 0; iter < kWriterRounds; ++iter) {
      ASSERT_TRUE(db_.scs().OnInsert(db_.catalog(), "r", violating).ok());
      ASSERT_TRUE(db_.scs().OnInsert(db_.catalog(), "r", complying).ok());
      if (iter % 3 == 0) ASSERT_TRUE(db_.RunMaintenance().ok());
      if (iter % 5 == 0) {
        ASSERT_TRUE(db_.scs().VerifyAll(db_.catalog()).ok());
      }
    }
  };

  std::vector<std::thread> threads;
  for (int i = 0; i < 3; ++i) threads.emplace_back(served_reader, i);
  std::thread writer1(served_writer, "w1");
  std::thread writer2(served_writer, "w2");
  std::thread churn(maintenance);
  writer1.join();
  writer2.join();
  churn.join();
  done.store(true, std::memory_order_release);
  for (auto& t : threads) t.join();

  EXPECT_EQ(errors.load(), 0);
  EXPECT_GT(served_reads.load(), 0u);

  // Drain is clean even after churn, and the served writes all landed.
  ASSERT_TRUE(server.Drain().ok());
  for (const char* table : {"w1", "w2"}) {
    auto rows = db_.Execute(std::string("SELECT x FROM ") + table);
    ASSERT_TRUE(rows.ok());
    EXPECT_EQ(rows->rows.NumRows(), static_cast<std::size_t>(kWriterRounds))
        << table;
  }
  EXPECT_EQ(server.stats().failed.load(), 0u);
  EXPECT_GE(server.stats().succeeded.load(),
            static_cast<std::uint64_t>(2 * kWriterRounds));
  // The world settles: every SC re-verifies absolute.
  ASSERT_TRUE(db_.scs().VerifyAll(db_.catalog()).ok());
  ASSERT_TRUE(db_.RunMaintenance().ok());
  for (const SoftConstraint* sc : db_.scs().All()) {
    EXPECT_TRUE(sc->active()) << sc->name();
  }
}

}  // namespace
}  // namespace softdb
