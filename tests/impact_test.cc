// Unit tests for the static DML impact analyzer and its engine wiring:
// footprint and implication exclusions per statement kind, the soundness
// carve-outs (FDs under DELETE, parent-side inclusions), scoped SC
// maintenance, and table-scoped plan-cache invalidation.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "analysis/impact.h"
#include "constraints/column_offset_sc.h"
#include "constraints/domain_sc.h"
#include "constraints/fd_sc.h"
#include "constraints/inclusion_sc.h"
#include "constraints/predicate_sc.h"
#include "engine/softdb.h"
#include "sql/parser.h"

namespace softdb {
namespace {

class ImpactAnalysis : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(db_.Execute("CREATE TABLE t1 (a BIGINT NOT NULL, b BIGINT, "
                            "c DOUBLE, CHECK (a >= 0))")
                    .ok());
    ASSERT_TRUE(
        db_.Execute("CREATE TABLE t2 (x BIGINT NOT NULL, y BIGINT)").ok());
    for (int i = 0; i < 20; ++i) {
      ASSERT_TRUE(db_.InsertRow("t1", {Value::Int64(i * 5),
                                       Value::Int64(i * 5 + 3),
                                       Value::Double(i * 1.5)})
                      .ok());
      ASSERT_TRUE(
          db_.InsertRow("t2", {Value::Int64(i * 5), Value::Int64(i)}).ok());
    }

    AddSc(std::make_unique<DomainSc>("dom_a", "t1", 0, Value::Int64(0),
                                     Value::Int64(100)));
    AddSc(std::make_unique<ColumnOffsetSc>("off_ab", "t1", 0, 1, 0, 10));
    auto pred = ParseExpression("b < 1000");
    ASSERT_TRUE(pred.ok());
    Table* t1 = *db_.catalog().GetTable("t1");
    ASSERT_TRUE((*pred)->Bind(t1->schema()).ok());
    AddSc(std::make_unique<PredicateSc>("pred_b", "t1", std::move(*pred)));
    AddSc(std::make_unique<FunctionalDependencySc>(
        "fd_ab", "t1", std::vector<ColumnIdx>{0}, std::vector<ColumnIdx>{1}));
    AddSc(std::make_unique<DomainSc>("dom_x", "t2", 0, Value::Int64(0),
                                     Value::Int64(100)));
    AddSc(std::make_unique<InclusionSc>("incl", "t2",
                                        std::vector<ColumnIdx>{0}, "t1",
                                        std::vector<ColumnIdx>{0}));
  }

  void AddSc(ScPtr sc) {
    sc->set_policy(ScMaintenancePolicy::kTolerate);
    ASSERT_TRUE(db_.scs().Add(std::move(sc), db_.catalog()).ok());
  }

  DmlImpact Analyze(const std::string& sql) {
    auto stmt = ParseStatement(sql);
    EXPECT_TRUE(stmt.ok()) << sql << ": " << stmt.status().ToString();
    ImpactAnalyzer analyzer(&db_.catalog(), &db_.ics(), &db_.scs());
    auto impact = analyzer.Analyze(*stmt);
    EXPECT_TRUE(impact.ok()) << sql << ": " << impact.status().ToString();
    return *impact;
  }

  SoftDb db_;
};

TEST_F(ImpactAnalysis, CompliantInsertImpactsNothing) {
  const DmlImpact impact = Analyze("INSERT INTO t2 VALUES (5, 1)");
  EXPECT_EQ(impact.candidates, 6u);
  EXPECT_TRUE(impact.impacted.empty());
  EXPECT_TRUE(impact.Narrowed());
  // t1-only SCs fall to the footprint check; t2's own SCs need the row
  // probe (dom_x in range, 5 present in the parent column).
  EXPECT_GE(impact.footprint_excluded, 4u);
  EXPECT_GE(impact.implication_excluded, 2u);
}

TEST_F(ImpactAnalysis, ViolatingInsertIsImpacted) {
  const DmlImpact impact = Analyze("INSERT INTO t2 VALUES (999, 1)");
  // 999 breaks the domain and is absent from the inclusion parent.
  EXPECT_TRUE(impact.Contains("dom_x"));
  EXPECT_TRUE(impact.Contains("incl"));
  EXPECT_FALSE(impact.Contains("dom_a"));
}

TEST_F(ImpactAnalysis, UpdateOutsideFootprintImpactsNothing) {
  const DmlImpact impact = Analyze("UPDATE t1 SET c = 3.5");
  EXPECT_TRUE(impact.impacted.empty());
  EXPECT_EQ(impact.footprint_excluded, 6u);
}

TEST_F(ImpactAnalysis, ShiftAssignmentPreservesOffsetSc) {
  const DmlImpact impact = Analyze("UPDATE t1 SET b = a + 3");
  // post[b] - post[a] is exactly 3 (a is unassigned), inside [0, 10].
  EXPECT_FALSE(impact.Contains("off_ab"));
  // a untouched: the domain and the parent-side inclusion never move.
  EXPECT_FALSE(impact.Contains("dom_a"));
  EXPECT_FALSE(impact.Contains("incl"));
  // b's new value is only bounded below (a >= 0), so the predicate SC and
  // the FD stay conservatively impacted.
  EXPECT_EQ(impact.impacted, (std::vector<std::string>{"fd_ab", "pred_b"}));
}

TEST_F(ImpactAnalysis, ConstantAssignmentInsideDomainIsExcluded) {
  const DmlImpact impact = Analyze("UPDATE t1 SET a = 50");
  EXPECT_FALSE(impact.Contains("dom_a"));
  // The (b - a) relationship is destroyed by rewriting a alone.
  EXPECT_TRUE(impact.Contains("off_ab"));
}

TEST_F(ImpactAnalysis, UnsatisfiableWhereMeansNoWrites) {
  // The enforced CHECK (a >= 0) refutes the WHERE: no stored row matches.
  const DmlImpact update = Analyze("UPDATE t1 SET a = -5 WHERE a < 0");
  EXPECT_TRUE(update.where_unsatisfiable);
  EXPECT_TRUE(update.impacted.empty());

  const DmlImpact del = Analyze("DELETE FROM t1 WHERE a < 0");
  EXPECT_TRUE(del.where_unsatisfiable);
  EXPECT_TRUE(del.impacted.empty());
}

TEST_F(ImpactAnalysis, DeleteImpactsOnlyNonMonotoneKinds) {
  // Deleting rows can orphan children (parent-side inclusion) and can
  // re-key an FD's first-image reference row; every row-local kind only
  // loses potential violators.
  const DmlImpact from_parent = Analyze("DELETE FROM t1 WHERE a = 5");
  EXPECT_EQ(from_parent.impacted,
            (std::vector<std::string>{"fd_ab", "incl"}));

  const DmlImpact from_child = Analyze("DELETE FROM t2 WHERE x = 5");
  EXPECT_TRUE(from_child.impacted.empty());
}

TEST_F(ImpactAnalysis, EngineScopesSyncMaintenance) {
  const std::uint64_t skips_before = db_.scs().stats().scoped_skips;
  const std::uint64_t checks_before = db_.scs().stats().row_checks;
  ASSERT_TRUE(db_.Execute("INSERT INTO t1 VALUES (7, 9, 0.5)").ok());
  // The compliant row excludes every row-local SC statically, so the
  // registry skips their synchronous checks entirely.
  EXPECT_GT(db_.scs().stats().scoped_skips, skips_before);
  EXPECT_EQ(db_.scs().stats().row_checks, checks_before);
  EXPECT_GE(db_.impact_stats().statements, 1u);
  EXPECT_GE(db_.impact_stats().narrowed, 1u);

  // A violating insert stays in the impact set and is still caught.
  const std::uint64_t violations_before = db_.scs().stats().violations;
  ASSERT_TRUE(db_.Execute("INSERT INTO t1 VALUES (7, 999, 0.5)").ok());
  EXPECT_GT(db_.scs().stats().violations, violations_before);
}

TEST_F(ImpactAnalysis, DisablingImpactAnalysisRestoresFullChecks) {
  db_.options().enable_impact_analysis = false;
  const std::uint64_t skips_before = db_.scs().stats().scoped_skips;
  const std::uint64_t checks_before = db_.scs().stats().row_checks;
  ASSERT_TRUE(db_.Execute("INSERT INTO t1 VALUES (8, 10, 0.5)").ok());
  EXPECT_EQ(db_.scs().stats().scoped_skips, skips_before);
  EXPECT_GT(db_.scs().stats().row_checks, checks_before);
}

TEST_F(ImpactAnalysis, DropTableEvictsOnlyPlansReadingIt) {
  db_.plan_cache().Clear();
  ASSERT_TRUE(db_.Execute("SELECT * FROM t1 WHERE a > 1").ok());
  ASSERT_TRUE(db_.Execute("SELECT * FROM t2 WHERE x > 1").ok());
  ASSERT_EQ(db_.plan_cache().size(), 2u);

  const std::uint64_t avoided_before = db_.plan_cache().invalidations_avoided();
  ASSERT_TRUE(db_.Execute("DROP TABLE t2").ok());
  // The t1 plan survives the drop — a global flush would have paid one
  // more invalidation.
  EXPECT_EQ(db_.plan_cache().size(), 1u);
  EXPECT_GT(db_.plan_cache().invalidations_avoided(), avoided_before);
  ASSERT_TRUE(db_.Execute("SELECT * FROM t1 WHERE a > 1").ok());
  EXPECT_GE(db_.plan_cache().hits(), 1u);
}

}  // namespace
}  // namespace softdb
