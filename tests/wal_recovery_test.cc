// WAL + recovery battery (DESIGN.md §14): crash-at-every-failpoint-site
// recovery drills against an uncrashed control engine, checkpoint
// round-trips of every registry, SC lifecycle/epoch semantics across
// recovery (the resurrection regression), and torn-write/corruption fuzz
// over the log tail.

#include <gtest/gtest.h>
#include <unistd.h>

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "common/failpoint.h"
#include "constraints/domain_sc.h"
#include "constraints/predicate_sc.h"
#include "constraints/zone_map_sc.h"
#include "engine/softdb.h"
#include "sql/parser.h"
#include "storage/recovery.h"
#include "storage/wal.h"

namespace softdb {
namespace {

namespace fs = std::filesystem;

Failpoints& FP() { return Failpoints::Instance(); }

Failpoints::Policy Always() {
  Failpoints::Policy p;
  p.trigger = Failpoints::Trigger::kAlways;
  return p;
}

Failpoints::Policy EveryNth(std::uint64_t n) {
  Failpoints::Policy p;
  p.trigger = Failpoints::Trigger::kEveryNth;
  p.n = n;
  return p;
}

/// Unique log directory per test, removed on scope exit.
struct TempDir {
  TempDir() {
    char tmpl[] = "/tmp/softdb_wal_XXXXXX";
    const char* d = ::mkdtemp(tmpl);
    EXPECT_NE(d, nullptr);
    path = d == nullptr ? "/tmp/softdb_wal_fallback" : d;
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path, ec);
  }
  std::string path;
};

EngineOptions WalOptions(const std::string& dir, std::size_t sync_every_n = 1) {
  EngineOptions options;
  options.wal_dir = dir;
  options.wal_sync_every_n = sync_every_n;
  return options;
}

/// Rows of `sql`, rendered and sorted — materialized-view maintenance can
/// reorder physically-equal states, so every cross-engine comparison is
/// order-insensitive.
std::vector<std::string> SortedRows(SoftDb* db, const std::string& sql) {
  Result<QueryResult> r = db->Execute(sql);
  EXPECT_TRUE(r.ok()) << sql << ": " << r.status().ToString();
  std::vector<std::string> out;
  if (!r.ok()) return out;
  for (const std::vector<Value>& row : r->rows.rows) {
    std::string s;
    for (const Value& v : row) {
      s += v.ToString();
      s += "|";
    }
    out.push_back(std::move(s));
  }
  std::sort(out.begin(), out.end());
  return out;
}

void Exec(SoftDb* db, const std::string& sql) {
  Result<QueryResult> r = db->Execute(sql);
  ASSERT_TRUE(r.ok()) << sql << ": " << r.status().ToString();
}

/// The standard workload both sides of every drill run: DDL, inserts,
/// single-row updates/deletes (multi-row DML would diverge under a
/// mid-statement crash), ANALYZE, an index.
void RunWorkload(SoftDb* db) {
  Exec(db, "CREATE TABLE t (id INT PRIMARY KEY, v INT, s VARCHAR)");
  for (int i = 0; i < 20; ++i) {
    Exec(db, "INSERT INTO t VALUES (" + std::to_string(i) + ", " +
                 std::to_string(i * 10) + ", 'row" + std::to_string(i) + "')");
  }
  Exec(db, "UPDATE t SET v = 999 WHERE id = 3");
  Exec(db, "DELETE FROM t WHERE id = 7");
  Exec(db, "CREATE INDEX t_v ON t (v)");
  Exec(db, "ANALYZE t");
}

class WalRecoveryTest : public ::testing::Test {
 protected:
  void SetUp() override { FP().DisableAll(); }
  void TearDown() override { FP().DisableAll(); }
};

// --------------------------------------------------------------- round trips

TEST_F(WalRecoveryTest, ReplayReproducesWorkloadBitIdentically) {
  TempDir dir;
  SoftDb control;
  RunWorkload(&control);
  {
    SoftDb db(WalOptions(dir.path));
    RunWorkload(&db);
  }
  Result<std::unique_ptr<SoftDb>> recovered = SoftDb::Recover(dir.path);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_EQ(SortedRows(recovered->get(), "SELECT * FROM t"),
            SortedRows(&control, "SELECT * FROM t"));
  EXPECT_EQ(SortedRows(recovered->get(), "SELECT s FROM t WHERE v > 50"),
            SortedRows(&control, "SELECT s FROM t WHERE v > 50"));
}

TEST_F(WalRecoveryTest, RecoverOnEmptyDirectoryIsNotFound) {
  TempDir dir;
  Result<std::unique_ptr<SoftDb>> recovered = SoftDb::Recover(dir.path);
  ASSERT_FALSE(recovered.ok());
  EXPECT_EQ(recovered.status().code(), StatusCode::kNotFound);
}

TEST_F(WalRecoveryTest, FreshEngineRefusesDirectoryWithExistingLog) {
  TempDir dir;
  {
    SoftDb db(WalOptions(dir.path));
    RunWorkload(&db);
  }
  SoftDb second(WalOptions(dir.path));
  Result<QueryResult> r = second.Execute("CREATE TABLE u (id INT)");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  // The refused engine must not have clobbered the durable state.
  Result<std::unique_ptr<SoftDb>> recovered = SoftDb::Recover(dir.path);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_EQ(SortedRows(recovered->get(), "SELECT * FROM t").size(), 19u);
}

TEST_F(WalRecoveryTest, CheckpointThenTailReplay) {
  TempDir dir;
  SoftDb control;
  RunWorkload(&control);
  Exec(&control, "INSERT INTO t VALUES (100, 1000, 'after')");
  Exec(&control, "DELETE FROM t WHERE id = 2");
  {
    SoftDb db(WalOptions(dir.path));
    RunWorkload(&db);
    ASSERT_TRUE(db.Checkpoint().ok());
    Exec(&db, "INSERT INTO t VALUES (100, 1000, 'after')");
    Exec(&db, "DELETE FROM t WHERE id = 2");
  }
  Result<std::unique_ptr<SoftDb>> recovered = SoftDb::Recover(dir.path);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_EQ(SortedRows(recovered->get(), "SELECT * FROM t"),
            SortedRows(&control, "SELECT * FROM t"));
  const WalStats ws = (*recovered)->wal()->stats();
  EXPECT_EQ(ws.recovery_checkpoint_loaded, 1u);
}

TEST_F(WalRecoveryTest, CheckpointPreservesStatsCatalog) {
  TempDir dir;
  {
    SoftDb db(WalOptions(dir.path));
    RunWorkload(&db);
    ASSERT_TRUE(db.Checkpoint().ok());
  }
  Result<std::unique_ptr<SoftDb>> recovered = SoftDb::Recover(dir.path);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  const TableStats* ts = (*recovered)->stats().Get("t");
  ASSERT_NE(ts, nullptr);
  EXPECT_EQ(ts->row_count, 19u);
  ASSERT_EQ(ts->columns.size(), 3u);
  EXPECT_GT(ts->columns[1].distinct_count, 0u);
}

TEST_F(WalRecoveryTest, RecoveredIntegrityConstraintsStillEnforce) {
  TempDir dir;
  {
    SoftDb db(WalOptions(dir.path));
    RunWorkload(&db);
    ASSERT_TRUE(db.Checkpoint().ok());
  }
  Result<std::unique_ptr<SoftDb>> recovered = SoftDb::Recover(dir.path);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  // id=3 survived the workload, so the recovered PK must reject it.
  Result<QueryResult> dup =
      (*recovered)->Execute("INSERT INTO t VALUES (3, 0, 'dup')");
  EXPECT_FALSE(dup.ok());
  EXPECT_EQ((*recovered)->ics().size(), 1u);
}

TEST_F(WalRecoveryTest, DdlOnlyLogRecoversWithoutCheckpoint) {
  TempDir dir;
  {
    SoftDb db(WalOptions(dir.path));
    Exec(&db, "CREATE TABLE a (x INT)");
    Exec(&db, "CREATE TABLE b (y INT)");
    Exec(&db, "DROP TABLE a");
  }
  Result<std::unique_ptr<SoftDb>> recovered = SoftDb::Recover(dir.path);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_FALSE((*recovered)->catalog().HasTable("a"));
  EXPECT_TRUE((*recovered)->catalog().HasTable("b"));
}

TEST_F(WalRecoveryTest, RecoverIsRepeatable) {
  TempDir dir;
  {
    SoftDb db(WalOptions(dir.path));
    RunWorkload(&db);
  }
  Result<std::unique_ptr<SoftDb>> first = SoftDb::Recover(dir.path);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  const std::vector<std::string> rows1 =
      SortedRows(first->get(), "SELECT * FROM t");
  Exec(first->get(), "INSERT INTO t VALUES (200, 2000, 'second-gen')");
  first->reset();  // Release the log before recovering it again.
  Result<std::unique_ptr<SoftDb>> second = SoftDb::Recover(dir.path);
  ASSERT_TRUE(second.ok()) << second.status().ToString();
  std::vector<std::string> rows2 = SortedRows(second->get(), "SELECT * FROM t");
  EXPECT_EQ(rows2.size(), rows1.size() + 1);
}

// ------------------------------------------------------------ SC durability

TEST_F(WalRecoveryTest, ScRegistrationReplays) {
  TempDir dir;
  {
    SoftDb db(WalOptions(dir.path));
    RunWorkload(&db);
    auto dom = std::make_unique<DomainSc>("dom_v", "t", 1, Value::Int64(0),
                                          Value::Int64(999));
    ASSERT_TRUE(db.scs().Add(std::move(dom), db.catalog()).ok());
  }
  Result<std::unique_ptr<SoftDb>> recovered = SoftDb::Recover(dir.path);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  SoftConstraint* sc = (*recovered)->scs().Find("dom_v");
  ASSERT_NE(sc, nullptr);
  EXPECT_EQ(sc->state(), ScState::kActive);
  EXPECT_EQ(sc->kind(), ScKind::kDomain);
  auto* dom = static_cast<DomainSc*>(sc);
  EXPECT_EQ(dom->min_value().AsInt64(), 0);
  EXPECT_EQ(dom->max_value().AsInt64(), 999);
}

TEST_F(WalRecoveryTest, ScDropReplays) {
  TempDir dir;
  {
    SoftDb db(WalOptions(dir.path));
    RunWorkload(&db);
    auto dom = std::make_unique<DomainSc>("dom_v", "t", 1, Value::Int64(0),
                                          Value::Int64(999));
    ASSERT_TRUE(db.scs().Add(std::move(dom), db.catalog()).ok());
    ASSERT_TRUE(db.scs().Drop("dom_v").ok());
  }
  Result<std::unique_ptr<SoftDb>> recovered = SoftDb::Recover(dir.path);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  SoftConstraint* sc = (*recovered)->scs().Find("dom_v");
  // Find only returns live SCs; a dropped one must not resurrect.
  EXPECT_TRUE(sc == nullptr || sc->state() == ScState::kDropped);
}

TEST_F(WalRecoveryTest, DmlDrivenScTransitionsRecomputeOnReplay) {
  TempDir dir;
  SoftDb control;
  RunWorkload(&control);
  auto mk = [] {
    return std::make_unique<DomainSc>("dom_v", "t", 1, Value::Int64(0),
                                      Value::Int64(999));
  };
  ASSERT_TRUE(control.scs().Add(mk(), control.catalog()).ok());
  Exec(&control, "INSERT INTO t VALUES (300, 5000, 'violator')");
  {
    SoftDb db(WalOptions(dir.path));
    RunWorkload(&db);
    ASSERT_TRUE(db.scs().Add(mk(), db.catalog()).ok());
    // kDropOnViolation: the out-of-domain insert overturns the SC. The
    // transition is NOT logged — replaying the row image re-derives it.
    Exec(&db, "INSERT INTO t VALUES (300, 5000, 'violator')");
    ASSERT_NE(db.scs().Find("dom_v"), nullptr);
    ASSERT_EQ(db.scs().Find("dom_v")->state(),
              control.scs().Find("dom_v")->state());
  }
  Result<std::unique_ptr<SoftDb>> recovered = SoftDb::Recover(dir.path);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  SoftConstraint* got = (*recovered)->scs().Find("dom_v");
  SoftConstraint* want = control.scs().Find("dom_v");
  ASSERT_NE(got, nullptr);
  ASSERT_NE(want, nullptr);
  EXPECT_EQ(got->state(), want->state());
}

TEST_F(WalRecoveryTest, RecoveredEpochStrictlyDominatesPreCrash) {
  TempDir dir;
  std::uint64_t live_epoch = 0;
  {
    SoftDb db(WalOptions(dir.path));
    RunWorkload(&db);
    auto dom = std::make_unique<DomainSc>("dom_v", "t", 1, Value::Int64(0),
                                          Value::Int64(999));
    ASSERT_TRUE(db.scs().Add(std::move(dom), db.catalog()).ok());
    live_epoch = db.scs().Find("dom_v")->epoch();
  }
  Result<std::unique_ptr<SoftDb>> recovered = SoftDb::Recover(dir.path);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  SoftConstraint* sc = (*recovered)->scs().Find("dom_v");
  ASSERT_NE(sc, nullptr);
  // Any pre-crash cached-plan stamp is <= live_epoch; recovery must land
  // strictly above it so the PR 8 certificate epoch fast path can never
  // validate a stale plan against recovered state.
  EXPECT_GT(sc->epoch(), live_epoch);
}

TEST_F(WalRecoveryTest, RepairArmCommitReplaysAndRearms) {
  TempDir dir;
  {
    SoftDb db(WalOptions(dir.path));
    RunWorkload(&db);
    auto dom = std::make_unique<DomainSc>("dom_v", "t", 1, Value::Int64(0),
                                          Value::Int64(999));
    dom->set_policy(ScMaintenancePolicy::kAsyncRepair);
    ASSERT_TRUE(db.scs().Add(std::move(dom), db.catalog()).ok());
    Exec(&db, "INSERT INTO t VALUES (301, 5001, 'violator')");
    ASSERT_EQ(db.scs().Find("dom_v")->state(), ScState::kRepairQueued);
    // The repair refits the domain to the data and logs the durable
    // transition + commit pair.
    ASSERT_TRUE(db.RunMaintenance().ok());
    ASSERT_EQ(db.scs().Find("dom_v")->state(), ScState::kActive);
  }
  Result<std::unique_ptr<SoftDb>> recovered = SoftDb::Recover(dir.path);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  SoftConstraint* sc = (*recovered)->scs().Find("dom_v");
  ASSERT_NE(sc, nullptr);
  EXPECT_EQ(sc->state(), ScState::kActive);
  auto* dom = static_cast<DomainSc*>(sc);
  EXPECT_GE(dom->max_value().AsInt64(), 5001);  // Refit domain survived.
  EXPECT_EQ((*recovered)->scs().repair_queue_size(), 0u);
}

TEST_F(WalRecoveryTest, DanglingArmRecoversDisarmedNeverActive) {
  TempDir dir;
  {
    SoftDb db(WalOptions(dir.path));
    RunWorkload(&db);
    auto dom = std::make_unique<DomainSc>("dom_v", "t", 1, Value::Int64(0),
                                          Value::Int64(999));
    dom->set_policy(ScMaintenancePolicy::kAsyncRepair);
    ASSERT_TRUE(db.scs().Add(std::move(dom), db.catalog()).ok());
    Exec(&db, "INSERT INTO t VALUES (302, 5002, 'violator')");
    ASSERT_EQ(db.scs().Find("dom_v")->state(), ScState::kRepairQueued);
    // Crash between the arm transition and its commit: the first append
    // (LogTransition ->kActive) lands, the second (LogArmCommit) fails.
    FP().Enable("wal.append", EveryNth(2));
    Status st = db.RunMaintenance();
    FP().DisableAll();
    // The live engine reverted the arm when the commit failed to log.
    (void)st;
    ASSERT_NE(db.scs().Find("dom_v")->state(), ScState::kActive);
  }
  // THE resurrection regression: the log holds a ->active transition with
  // no commit. The overturned SC must recover disarmed and queued for
  // revalidation — never armed.
  Result<std::unique_ptr<SoftDb>> recovered = SoftDb::Recover(dir.path);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  SoftConstraint* sc = (*recovered)->scs().Find("dom_v");
  ASSERT_NE(sc, nullptr);
  EXPECT_NE(sc->state(), ScState::kActive);
  EXPECT_EQ(sc->state(), ScState::kRepairQueued);
  EXPECT_GE((*recovered)->scs().repair_queue_size(), 1u);
  // And the queued revalidation still works post-recovery.
  ASSERT_TRUE((*recovered)->RunMaintenance().ok());
  EXPECT_EQ(sc->state(), ScState::kActive);
}

TEST_F(WalRecoveryTest, ZoneMapBlockStatsSurviveCheckpoint) {
  TempDir dir;
  SoftDb control;
  RunWorkload(&control);
  ASSERT_TRUE(control.MineZoneMaps("t").ok());
  {
    SoftDb db(WalOptions(dir.path));
    RunWorkload(&db);
    ASSERT_TRUE(db.MineZoneMaps("t").ok());
    ASSERT_TRUE(db.Checkpoint().ok());
  }
  Result<std::unique_ptr<SoftDb>> recovered = SoftDb::Recover(dir.path);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  SoftConstraint* got = (*recovered)->scs().Find("zm_t_v");
  SoftConstraint* want = control.scs().Find("zm_t_v");
  ASSERT_NE(got, nullptr);
  ASSERT_NE(want, nullptr);
  const auto got_blocks = static_cast<ZoneMapSc*>(got)->SnapshotBlocks();
  const auto want_blocks = static_cast<ZoneMapSc*>(want)->SnapshotBlocks();
  ASSERT_EQ(got_blocks.size(), want_blocks.size());
  for (std::size_t i = 0; i < got_blocks.size(); ++i) {
    EXPECT_EQ(got_blocks[i].min, want_blocks[i].min);
    EXPECT_EQ(got_blocks[i].max, want_blocks[i].max);
    EXPECT_EQ(got_blocks[i].has_value, want_blocks[i].has_value);
    EXPECT_EQ(got_blocks[i].null_count, want_blocks[i].null_count);
  }
  // The recovered zone map produces the same pruning decisions.
  Result<QueryResult> r = (*recovered)->Execute("SELECT * FROM t WHERE v < 0");
  ASSERT_TRUE(r.ok());
  Result<QueryResult> c = control.Execute("SELECT * FROM t WHERE v < 0");
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(r->exec_stats.blocks_skipped, c->exec_stats.blocks_skipped);
  EXPECT_EQ(r->exec_stats.blocks_total, c->exec_stats.blocks_total);
}

TEST_F(WalRecoveryTest, RepairAuditTrailSurvivesRecovery) {
  TempDir dir;
  {
    SoftDb db(WalOptions(dir.path));
    RunWorkload(&db);
    auto dom = std::make_unique<DomainSc>("dom_v", "t", 1, Value::Int64(0),
                                          Value::Int64(999));
    dom->set_policy(ScMaintenancePolicy::kAsyncRepair);
    ASSERT_TRUE(db.scs().Add(std::move(dom), db.catalog()).ok());
    Exec(&db, "INSERT INTO t VALUES (303, 5003, 'violator')");
    ASSERT_TRUE(db.RunMaintenance().ok());
    ASSERT_FALSE(db.scs().repair_audit().empty());
  }
  Result<std::unique_ptr<SoftDb>> recovered = SoftDb::Recover(dir.path);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  const std::vector<RepairAuditRecord> audit =
      (*recovered)->scs().repair_audit();
  ASSERT_FALSE(audit.empty());
  EXPECT_EQ(audit.back().sc_name, "dom_v");
  EXPECT_EQ(audit.back().action, "repaired");
}

TEST_F(WalRecoveryTest, ExceptionAstSurvivesRecovery) {
  TempDir dir;
  SoftDb control;
  auto build = [](SoftDb* db) {
    Exec(db, "CREATE TABLE p (id INT, age INT)");
    for (int i = 0; i < 10; ++i) {
      Exec(db, "INSERT INTO p VALUES (" + std::to_string(i) + ", " +
                   std::to_string(15 + i) + ")");
    }
    Result<ExprPtr> expr = ParseExpression("age >= 18");
    ASSERT_TRUE(expr.ok());
    Result<Table*> table = db->catalog().GetTable("p");
    ASSERT_TRUE(table.ok());
    ASSERT_TRUE((*expr)->Bind((*table)->schema()).ok());
    auto pred =
        std::make_unique<PredicateSc>("adult", "p", std::move(*expr));
    pred->set_policy(ScMaintenancePolicy::kTolerate);
    ASSERT_TRUE(db->scs().Add(std::move(pred), db->catalog()).ok());
    ASSERT_TRUE(db->CreateExceptionAst("adult").ok());
  };
  build(&control);
  {
    SoftDb db(WalOptions(dir.path));
    build(&db);
    Exec(&db, "INSERT INTO p VALUES (100, 12)");
  }
  Exec(&control, "INSERT INTO p VALUES (100, 12)");
  Result<std::unique_ptr<SoftDb>> recovered = SoftDb::Recover(dir.path);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  // The exception AST was re-registered and re-materialized: the violating
  // rows (ages 15..17 from the seed plus the post-AST insert of 12) are in
  // the view on both engines.
  MaterializedView* got = (*recovered)->mvs().Find("exc_adult");
  MaterializedView* want = control.mvs().Find("exc_adult");
  ASSERT_NE(got, nullptr);
  ASSERT_NE(want, nullptr);
  EXPECT_EQ(got->NumRows(), want->NumRows());
  EXPECT_EQ(got->NumRows(), 4u);
}

TEST_F(WalRecoveryTest, UseAccountingSurvivesCheckpoint) {
  TempDir dir;
  {
    SoftDb db(WalOptions(dir.path));
    RunWorkload(&db);
    db.scs().RecordUse("some_sc", 12.5);
    db.scs().RecordUse("some_sc", 2.5);
    ASSERT_TRUE(db.Checkpoint().ok());
  }
  Result<std::unique_ptr<SoftDb>> recovered = SoftDb::Recover(dir.path);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_EQ((*recovered)->scs().UseCount("some_sc"), 2u);
  EXPECT_DOUBLE_EQ((*recovered)->scs().TotalBenefit("some_sc"), 15.0);
}

// --------------------------------------------------- crash-at-site drills

TEST_F(WalRecoveryTest, CrashAtAppendMeansStatementNeverHappened) {
  TempDir dir;
  SoftDb control;
  RunWorkload(&control);
  {
    SoftDb db(WalOptions(dir.path));
    RunWorkload(&db);
    FP().Enable("wal.append", Always());
    Result<QueryResult> r =
        db.Execute("INSERT INTO t VALUES (400, 4000, 'lost')");
    FP().DisableAll();
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.status().code(), StatusCode::kIOError);
  }
  Result<std::unique_ptr<SoftDb>> recovered = SoftDb::Recover(dir.path);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  // The failed statement was applied in memory but never became durable:
  // the recovered image equals the control that never ran it.
  EXPECT_EQ(SortedRows(recovered->get(), "SELECT * FROM t"),
            SortedRows(&control, "SELECT * FROM t"));
}

TEST_F(WalRecoveryTest, CrashAtFsyncLeavesPrefixOrFullStatement) {
  TempDir dir;
  SoftDb control;
  RunWorkload(&control);
  {
    SoftDb db(WalOptions(dir.path));
    RunWorkload(&db);
    FP().Enable("wal.fsync", Always());
    Result<QueryResult> r =
        db.Execute("INSERT INTO t VALUES (401, 4010, 'maybe')");
    FP().DisableAll();
    ASSERT_FALSE(r.ok());  // Unsynced tail: the ack never went out.
  }
  Result<std::unique_ptr<SoftDb>> recovered = SoftDb::Recover(dir.path);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  // The record was written but not fsynced: recovery may legitimately see
  // it (the OS flushed anyway) or not (torn tail). Both images are valid —
  // what is forbidden is anything else.
  const std::vector<std::string> got =
      SortedRows(recovered->get(), "SELECT * FROM t");
  const std::vector<std::string> without =
      SortedRows(&control, "SELECT * FROM t");
  Exec(&control, "INSERT INTO t VALUES (401, 4010, 'maybe')");
  const std::vector<std::string> with =
      SortedRows(&control, "SELECT * FROM t");
  EXPECT_TRUE(got == without || got == with);
}

TEST_F(WalRecoveryTest, CrashAtCheckpointBeginKeepsLogAuthoritative) {
  TempDir dir;
  SoftDb control;
  RunWorkload(&control);
  {
    SoftDb db(WalOptions(dir.path));
    RunWorkload(&db);
    FP().Enable("wal.checkpoint_begin", Always());
    EXPECT_FALSE(db.Checkpoint().ok());
    FP().DisableAll();
  }
  Result<std::unique_ptr<SoftDb>> recovered = SoftDb::Recover(dir.path);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_EQ((*recovered)->wal()->stats().recovery_checkpoint_loaded, 0u);
  EXPECT_EQ(SortedRows(recovered->get(), "SELECT * FROM t"),
            SortedRows(&control, "SELECT * FROM t"));
}

TEST_F(WalRecoveryTest, CrashAtCheckpointEndDiscardsUnpublishedSnapshot) {
  TempDir dir;
  SoftDb control;
  RunWorkload(&control);
  {
    SoftDb db(WalOptions(dir.path));
    RunWorkload(&db);
    FP().Enable("wal.checkpoint_end", Always());
    EXPECT_FALSE(db.Checkpoint().ok());
    FP().DisableAll();
    // checkpoint.tmp was written but never published.
    EXPECT_TRUE(fs::exists(CheckpointTmpPath(dir.path)));
    EXPECT_FALSE(fs::exists(CheckpointPath(dir.path)));
  }
  Result<std::unique_ptr<SoftDb>> recovered = SoftDb::Recover(dir.path);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_EQ((*recovered)->wal()->stats().recovery_checkpoint_loaded, 0u);
  EXPECT_EQ(SortedRows(recovered->get(), "SELECT * FROM t"),
            SortedRows(&control, "SELECT * FROM t"));
}

TEST_F(WalRecoveryTest, CrashAtTruncateReplaysFullLog) {
  TempDir dir;
  SoftDb control;
  RunWorkload(&control);
  {
    SoftDb db(WalOptions(dir.path));
    RunWorkload(&db);
    FP().Enable("wal.truncate", Always());
    EXPECT_FALSE(db.Checkpoint().ok());
    FP().DisableAll();
    EXPECT_FALSE(fs::exists(CheckpointPath(dir.path)));  // Never renamed.
  }
  Result<std::unique_ptr<SoftDb>> recovered = SoftDb::Recover(dir.path);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_EQ(SortedRows(recovered->get(), "SELECT * FROM t"),
            SortedRows(&control, "SELECT * FROM t"));
}

TEST_F(WalRecoveryTest, WorkResumesAfterEveryCheckpointCrashSite) {
  for (const char* site : {"wal.checkpoint_begin", "wal.checkpoint_end",
                           "wal.truncate"}) {
    TempDir dir;
    {
      SoftDb db(WalOptions(dir.path));
      RunWorkload(&db);
      FP().Enable(site, Always());
      EXPECT_FALSE(db.Checkpoint().ok()) << site;
      FP().DisableAll();
      // The engine keeps serving statements after the failed checkpoint.
      Exec(&db, "INSERT INTO t VALUES (500, 5000, 'post-crash')");
    }
    Result<std::unique_ptr<SoftDb>> recovered = SoftDb::Recover(dir.path);
    ASSERT_TRUE(recovered.ok()) << site << ": "
                                << recovered.status().ToString();
    const std::vector<std::string> rows =
        SortedRows(recovered->get(), "SELECT s FROM t WHERE id = 500");
    EXPECT_EQ(rows.size(), 1u) << site;
  }
}

// ----------------------------------------------------- WAL stats surfacing

TEST_F(WalRecoveryTest, WalActivityAttributedToStatements) {
  TempDir dir;
  SoftDb db(WalOptions(dir.path));
  Exec(&db, "CREATE TABLE t (id INT, v INT)");
  Result<QueryResult> ins = db.Execute("INSERT INTO t VALUES (1, 10)");
  ASSERT_TRUE(ins.ok());
  EXPECT_EQ(ins->exec_stats.wal_records, 1u);
  EXPECT_GT(ins->exec_stats.wal_bytes, 0u);
  EXPECT_EQ(ins->exec_stats.wal_fsyncs, 1u);  // sync_every_n = 1.
  Result<QueryResult> sel = db.Execute("SELECT * FROM t");
  ASSERT_TRUE(sel.ok());
  EXPECT_EQ(sel->exec_stats.wal_records, 0u);
  EXPECT_EQ(sel->exec_stats.wal_fsyncs, 0u);
}

TEST_F(WalRecoveryTest, GroupCommitBatchesFsyncs) {
  TempDir dir;
  SoftDb db(WalOptions(dir.path, /*sync_every_n=*/8));
  Exec(&db, "CREATE TABLE t (id INT, v INT)");
  std::uint64_t fsyncs = 0;
  for (int i = 0; i < 16; ++i) {
    Result<QueryResult> r = db.Execute(
        "INSERT INTO t VALUES (" + std::to_string(i) + ", 1)");
    ASSERT_TRUE(r.ok());
    fsyncs += r->exec_stats.wal_fsyncs;
  }
  // 17 records (DDL + 16 inserts) at one fsync per 8: strictly fewer
  // fsyncs than records.
  EXPECT_LT(fsyncs, 16u);
  EXPECT_GE(db.wal()->stats().max_commit_batch, 8u);
}

TEST_F(WalRecoveryTest, ExplainSurfacesWalCounters) {
  TempDir dir;
  SoftDb db(WalOptions(dir.path));
  Exec(&db, "CREATE TABLE t (id INT, v INT)");
  Exec(&db, "INSERT INTO t VALUES (1, 10)");
  Result<std::string> plan = db.Explain("SELECT * FROM t");
  ASSERT_TRUE(plan.ok());
  EXPECT_NE(plan->find("wal: records="), std::string::npos);
  SoftDb plain;
  Exec(&plain, "CREATE TABLE t (id INT, v INT)");
  Result<std::string> plain_plan = plain.Explain("SELECT * FROM t");
  ASSERT_TRUE(plain_plan.ok());
  EXPECT_EQ(plain_plan->find("wal:"), std::string::npos);
}

// --------------------------------------------- torn-write/corruption fuzz

/// Copies a recorded log directory, mutates the last segment with `mutate`,
/// and recovers. Returns the recovery status (never crashes).
template <typename Mutator>
Status RecoverMutated(const std::string& src, Mutator mutate) {
  TempDir work;
  std::error_code ec;
  fs::copy(src, work.path, fs::copy_options::overwrite_existing |
                               fs::copy_options::recursive, ec);
  if (ec) return Status::Internal("copy failed: " + ec.message());
  Result<std::vector<std::uint64_t>> seqs = ListWalSegments(work.path);
  if (!seqs.ok() || seqs->empty()) return Status::Internal("no segments");
  const std::string last = WalSegmentPath(work.path, seqs->back());
  std::ifstream in(last, std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  in.close();
  mutate(&bytes);
  std::ofstream out(last, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  out.close();
  return SoftDb::Recover(work.path).status();
}

TEST_F(WalRecoveryTest, TruncatedTailAtEveryOffsetRecoversOrFailsTyped) {
  TempDir dir;
  {
    SoftDb db(WalOptions(dir.path));
    Exec(&db, "CREATE TABLE t (id INT, v INT)");
    for (int i = 0; i < 4; ++i) {
      Exec(&db, "INSERT INTO t VALUES (" + std::to_string(i) + ", 1)");
    }
  }
  Result<std::vector<std::uint64_t>> seqs = ListWalSegments(dir.path);
  ASSERT_TRUE(seqs.ok());
  const std::string last = WalSegmentPath(dir.path, seqs->back());
  const std::uint64_t size = fs::file_size(last);
  // Every truncation point from just-past-the-header to full length: a
  // torn tail must be dropped cleanly (or, mid-record damage that cannot
  // be told apart from a short final record, also dropped). Never UB.
  for (std::uint64_t cut = 16; cut <= size; ++cut) {
    const Status st = RecoverMutated(
        dir.path, [&](std::string* b) { b->resize(cut); });
    EXPECT_TRUE(st.ok() || st.code() == StatusCode::kDataLoss ||
                st.code() == StatusCode::kNotFound)
        << "cut=" << cut << ": " << st.ToString();
  }
  // Truncating into the last segment's 16-byte header leaves a husk whose
  // bytes are still a prefix of the magic: that is exactly what a crash
  // during segment roll produces, so recovery tolerates it (the husk holds
  // no records). It must not crash or return a wild status either way.
  for (std::uint64_t cut = 0; cut < 16; ++cut) {
    const Status st = RecoverMutated(
        dir.path, [&](std::string* b) { b->resize(cut); });
    EXPECT_TRUE(st.ok()) << "cut=" << cut << ": " << st.ToString();
  }
  // A short header whose bytes do NOT match the magic is not a roll husk —
  // it is typed data loss.
  {
    const Status st = RecoverMutated(dir.path, [&](std::string* b) {
      b->resize(8);
      (*b)[0] = static_cast<char>((*b)[0] ^ 0xFF);
    });
    EXPECT_EQ(st.code(), StatusCode::kDataLoss) << st.ToString();
  }
}

TEST_F(WalRecoveryTest, BitFlippedTailRecoversOrFailsTyped) {
  TempDir dir;
  {
    SoftDb db(WalOptions(dir.path));
    Exec(&db, "CREATE TABLE t (id INT, v INT)");
    for (int i = 0; i < 4; ++i) {
      Exec(&db, "INSERT INTO t VALUES (" + std::to_string(i) + ", 1)");
    }
  }
  Result<std::vector<std::uint64_t>> seqs = ListWalSegments(dir.path);
  ASSERT_TRUE(seqs.ok());
  const std::string last = WalSegmentPath(dir.path, seqs->back());
  const std::uint64_t size = fs::file_size(last);
  for (std::uint64_t off = 0; off < size; ++off) {
    const Status st = RecoverMutated(dir.path, [&](std::string* b) {
      (*b)[off] = static_cast<char>((*b)[off] ^ 0x40);
    });
    // A flip in the final record's frame is a clean torn-tail drop; a flip
    // anywhere earlier is hard DataLoss. Flips the CRC cannot see (e.g. in
    // already-dropped tail bytes) may still recover. All are fine; a crash
    // or wild status is not.
    EXPECT_TRUE(st.ok() || st.code() == StatusCode::kDataLoss ||
                st.code() == StatusCode::kNotFound ||
                st.code() == StatusCode::kIOError)
        << "off=" << off << ": " << st.ToString();
  }
}

TEST_F(WalRecoveryTest, CorruptCheckpointIsTypedDataLoss) {
  TempDir dir;
  {
    SoftDb db(WalOptions(dir.path));
    RunWorkload(&db);
    ASSERT_TRUE(db.Checkpoint().ok());
  }
  const std::string ckpt = CheckpointPath(dir.path);
  std::ifstream in(ckpt, std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  in.close();
  bytes[bytes.size() / 2] = static_cast<char>(bytes[bytes.size() / 2] ^ 0xFF);
  std::ofstream out(ckpt, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  out.close();
  Result<std::unique_ptr<SoftDb>> recovered = SoftDb::Recover(dir.path);
  ASSERT_FALSE(recovered.ok());
  EXPECT_EQ(recovered.status().code(), StatusCode::kDataLoss);
}

}  // namespace
}  // namespace softdb
