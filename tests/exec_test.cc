// End-to-end execution tests: SQL in, rows out, through the full
// parse/bind/rewrite/plan/execute pipeline of a small fixture database.

#include <gtest/gtest.h>

#include "engine/softdb.h"

namespace softdb {
namespace {

class ExecTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Run("CREATE TABLE dept (d_id BIGINT NOT NULL PRIMARY KEY, "
        "d_name VARCHAR)");
    Run("CREATE TABLE emp (e_id BIGINT NOT NULL PRIMARY KEY, "
        "e_dept BIGINT NOT NULL, e_salary DOUBLE, e_name VARCHAR, "
        "FOREIGN KEY (e_dept) REFERENCES dept (d_id))");
    Run("INSERT INTO dept VALUES (1, 'eng'), (2, 'sales'), (3, 'empty')");
    Run("INSERT INTO emp VALUES "
        "(10, 1, 100.0, 'ann'), (11, 1, 200.0, 'bob'), "
        "(12, 2, 150.0, 'cat'), (13, 2, NULL, 'dan'), "
        "(14, 1, 50.0, 'eve')");
    ASSERT_TRUE(db_.Analyze().ok());
  }

  QueryResult Run(const std::string& sql) {
    auto result = db_.Execute(sql);
    EXPECT_TRUE(result.ok()) << sql << " -> " << result.status().ToString();
    return result.ok() ? *std::move(result) : QueryResult{};
  }

  SoftDb db_;
};

TEST_F(ExecTest, SelectStar) {
  auto r = Run("SELECT * FROM emp");
  EXPECT_EQ(r.rows.NumRows(), 5u);
  EXPECT_EQ(r.rows.schema.NumColumns(), 4u);
}

TEST_F(ExecTest, FilterComparisons) {
  EXPECT_EQ(Run("SELECT * FROM emp WHERE e_salary > 100").rows.NumRows(), 2u);
  EXPECT_EQ(Run("SELECT * FROM emp WHERE e_salary >= 100").rows.NumRows(),
            3u);
  EXPECT_EQ(Run("SELECT * FROM emp WHERE e_salary = 150").rows.NumRows(), 1u);
  EXPECT_EQ(Run("SELECT * FROM emp WHERE e_salary <> 150").rows.NumRows(),
            3u);  // NULL salary row excluded by 3VL.
  EXPECT_EQ(Run("SELECT * FROM emp WHERE e_name = 'ann'").rows.NumRows(), 1u);
}

TEST_F(ExecTest, NullSemantics) {
  EXPECT_EQ(Run("SELECT * FROM emp WHERE e_salary IS NULL").rows.NumRows(),
            1u);
  EXPECT_EQ(
      Run("SELECT * FROM emp WHERE e_salary IS NOT NULL").rows.NumRows(),
      4u);
  // Comparison with NULL is unknown, not true.
  EXPECT_EQ(Run("SELECT * FROM emp WHERE e_salary = e_salary").rows.NumRows(),
            4u);
}

TEST_F(ExecTest, BetweenAndIn) {
  EXPECT_EQ(
      Run("SELECT * FROM emp WHERE e_salary BETWEEN 100 AND 150").rows
          .NumRows(),
      2u);
  EXPECT_EQ(Run("SELECT * FROM emp WHERE e_id IN (10, 12, 99)").rows
                .NumRows(),
            2u);
  EXPECT_EQ(Run("SELECT * FROM emp WHERE e_id NOT IN (10, 12)").rows
                .NumRows(),
            3u);
}

TEST_F(ExecTest, Projection) {
  auto r = Run("SELECT e_name, e_salary * 2 AS double_pay FROM emp "
               "WHERE e_id = 10");
  ASSERT_EQ(r.rows.NumRows(), 1u);
  EXPECT_EQ(r.rows.rows[0][0].AsString(), "ann");
  EXPECT_EQ(r.rows.rows[0][1].AsDouble(), 200.0);
  EXPECT_EQ(r.rows.schema.Column(1).name, "double_pay");
}

TEST_F(ExecTest, JoinOnClause) {
  auto r = Run(
      "SELECT e_name, d_name FROM emp JOIN dept ON e_dept = d_id "
      "WHERE d_name = 'eng'");
  EXPECT_EQ(r.rows.NumRows(), 3u);
}

TEST_F(ExecTest, CommaJoinWithWhere) {
  auto r = Run("SELECT e_name, d_name FROM emp, dept WHERE e_dept = d_id");
  EXPECT_EQ(r.rows.NumRows(), 5u);
}

TEST_F(ExecTest, NonEquiJoinFallsBackToNestedLoop) {
  auto r = Run("SELECT e_name, d_name FROM emp, dept WHERE e_dept < d_id");
  // dept 2: e_dept=1 (3 rows); dept 3: e_dept in {1,2} (5 rows).
  EXPECT_EQ(r.rows.NumRows(), 8u);
}

TEST_F(ExecTest, ThreeWayJoin) {
  Run("CREATE TABLE loc (l_dept BIGINT NOT NULL, l_city VARCHAR)");
  Run("INSERT INTO loc VALUES (1, 'nyc'), (2, 'sfo')");
  auto r = Run(
      "SELECT e_name, d_name, l_city FROM emp "
      "JOIN dept ON e_dept = d_id JOIN loc ON d_id = l_dept");
  EXPECT_EQ(r.rows.NumRows(), 5u);
}

TEST_F(ExecTest, GlobalAggregates) {
  auto r = Run(
      "SELECT COUNT(*) AS n, COUNT(e_salary) AS ns, SUM(e_salary) AS s, "
      "AVG(e_salary) AS a, MIN(e_salary) AS lo, MAX(e_salary) AS hi "
      "FROM emp");
  ASSERT_EQ(r.rows.NumRows(), 1u);
  const auto& row = r.rows.rows[0];
  EXPECT_EQ(row[0].AsInt64(), 5);   // COUNT(*) counts NULL rows.
  EXPECT_EQ(row[1].AsInt64(), 4);   // COUNT(col) does not.
  EXPECT_EQ(row[2].AsDouble(), 500.0);
  EXPECT_EQ(row[3].AsDouble(), 125.0);
  EXPECT_EQ(row[4].AsDouble(), 50.0);
  EXPECT_EQ(row[5].AsDouble(), 200.0);
}

TEST_F(ExecTest, GroupBy) {
  auto r = Run(
      "SELECT e_dept, COUNT(*) AS n, SUM(e_salary) AS total FROM emp "
      "GROUP BY e_dept ORDER BY e_dept");
  ASSERT_EQ(r.rows.NumRows(), 2u);
  EXPECT_EQ(r.rows.rows[0][0].AsInt64(), 1);
  EXPECT_EQ(r.rows.rows[0][1].AsInt64(), 3);
  EXPECT_EQ(r.rows.rows[0][2].AsDouble(), 350.0);
  EXPECT_EQ(r.rows.rows[1][1].AsInt64(), 2);
}

TEST_F(ExecTest, AggregatesOnEmptyInput) {
  auto r = Run("SELECT COUNT(*) AS n, SUM(e_salary) AS s FROM emp "
               "WHERE e_id > 1000");
  ASSERT_EQ(r.rows.NumRows(), 1u);  // Global aggregate: one row.
  EXPECT_EQ(r.rows.rows[0][0].AsInt64(), 0);
  EXPECT_TRUE(r.rows.rows[0][1].is_null());

  auto grouped = Run("SELECT e_dept, COUNT(*) FROM emp WHERE e_id > 1000 "
                     "GROUP BY e_dept");
  EXPECT_EQ(grouped.rows.NumRows(), 0u);  // Grouped: no rows.
}

TEST_F(ExecTest, OrderByAscDesc) {
  auto asc = Run("SELECT e_name FROM emp WHERE e_salary IS NOT NULL "
                 "ORDER BY e_salary");
  ASSERT_EQ(asc.rows.NumRows(), 4u);
  EXPECT_EQ(asc.rows.rows[0][0].AsString(), "eve");
  EXPECT_EQ(asc.rows.rows[3][0].AsString(), "bob");

  auto desc = Run("SELECT e_name FROM emp WHERE e_salary IS NOT NULL "
                  "ORDER BY e_salary DESC");
  EXPECT_EQ(desc.rows.rows[0][0].AsString(), "bob");
}

TEST_F(ExecTest, OrderByMultipleKeys) {
  auto r = Run("SELECT e_dept, e_name FROM emp ORDER BY e_dept, e_name DESC");
  ASSERT_EQ(r.rows.NumRows(), 5u);
  EXPECT_EQ(r.rows.rows[0][1].AsString(), "eve");  // Dept 1 desc by name.
  EXPECT_EQ(r.rows.rows[2][1].AsString(), "ann");
}

TEST_F(ExecTest, Limit) {
  EXPECT_EQ(Run("SELECT * FROM emp LIMIT 2").rows.NumRows(), 2u);
  EXPECT_EQ(Run("SELECT * FROM emp LIMIT 0").rows.NumRows(), 0u);
  EXPECT_EQ(Run("SELECT * FROM emp LIMIT 100").rows.NumRows(), 5u);
}

TEST_F(ExecTest, UnionAll) {
  auto r = Run("SELECT e_name FROM emp WHERE e_dept = 1 "
               "UNION ALL SELECT e_name FROM emp WHERE e_dept = 2");
  EXPECT_EQ(r.rows.NumRows(), 5u);
}

TEST_F(ExecTest, UpdateThenRead) {
  Run("UPDATE emp SET e_salary = 999 WHERE e_name = 'eve'");
  auto r = Run("SELECT e_salary FROM emp WHERE e_name = 'eve'");
  EXPECT_EQ(r.rows.rows[0][0].AsDouble(), 999.0);
}

TEST_F(ExecTest, UpdateWithExpression) {
  Run("UPDATE emp SET e_salary = e_salary + 10 WHERE e_dept = 1");
  auto r = Run("SELECT SUM(e_salary) AS s FROM emp WHERE e_dept = 1");
  EXPECT_EQ(r.rows.rows[0][0].AsDouble(), 380.0);
}

TEST_F(ExecTest, DeleteThenCount) {
  Run("DELETE FROM emp WHERE e_dept = 2");
  auto r = Run("SELECT COUNT(*) AS n FROM emp");
  EXPECT_EQ(r.rows.rows[0][0].AsInt64(), 3);
}

TEST_F(ExecTest, DateArithmeticInQueries) {
  Run("CREATE TABLE evt (e_start DATE, e_end DATE)");
  Run("INSERT INTO evt VALUES (DATE '1999-01-01', DATE '1999-01-05'), "
      "(DATE '1999-02-01', DATE '1999-03-01')");
  EXPECT_EQ(Run("SELECT * FROM evt WHERE e_end - e_start <= 5").rows
                .NumRows(),
            1u);
  EXPECT_EQ(Run("SELECT * FROM evt WHERE e_end <= e_start + 10").rows
                .NumRows(),
            1u);
}

TEST_F(ExecTest, ScanStatsAccounted) {
  auto r = Run("SELECT * FROM emp");
  EXPECT_EQ(r.exec_stats.rows_scanned, 5u);
  EXPECT_GE(r.exec_stats.pages_read, 1u);
  EXPECT_EQ(r.exec_stats.rows_output, 5u);
}

TEST_F(ExecTest, ConstraintViolationsAbortInserts) {
  // Duplicate PK.
  EXPECT_FALSE(db_.Execute("INSERT INTO emp VALUES (10, 1, 1.0, 'dup')")
                   .ok());
  // FK to missing dept.
  EXPECT_FALSE(db_.Execute("INSERT INTO emp VALUES (99, 42, 1.0, 'orphan')")
                   .ok());
  // NULL in NOT NULL column.
  EXPECT_FALSE(db_.Execute("INSERT INTO emp VALUES (NULL, 1, 1.0, 'x')")
                   .ok());
  // Table unchanged.
  EXPECT_EQ(Run("SELECT COUNT(*) AS n FROM emp").rows.rows[0][0].AsInt64(),
            5);
}

TEST_F(ExecTest, CheckConstraintEnforced) {
  Run("CREATE TABLE pos (v BIGINT, CHECK (v > 0))");
  EXPECT_TRUE(db_.Execute("INSERT INTO pos VALUES (5)").ok());
  EXPECT_FALSE(db_.Execute("INSERT INTO pos VALUES (0)").ok());
  EXPECT_TRUE(db_.Execute("INSERT INTO pos VALUES (NULL)").ok());  // Unknown.
}

TEST_F(ExecTest, UniqueAllowsNulls) {
  Run("CREATE TABLE u (a BIGINT, UNIQUE (a))");
  EXPECT_TRUE(db_.Execute("INSERT INTO u VALUES (NULL)").ok());
  EXPECT_TRUE(db_.Execute("INSERT INTO u VALUES (NULL)").ok());
  EXPECT_TRUE(db_.Execute("INSERT INTO u VALUES (1)").ok());
  EXPECT_FALSE(db_.Execute("INSERT INTO u VALUES (1)").ok());
}

TEST_F(ExecTest, BindErrors) {
  EXPECT_FALSE(db_.Execute("SELECT nosuch FROM emp").ok());
  EXPECT_FALSE(db_.Execute("SELECT * FROM nosuch").ok());
  EXPECT_FALSE(db_.Execute("SELECT e_name FROM emp, dept, emp").ok());
}

TEST_F(ExecTest, IndexScanMatchesSeqScan) {
  Run("CREATE INDEX idx_salary ON emp (e_salary)");
  auto r = Run("SELECT e_name FROM emp WHERE e_salary >= 100 "
               "AND e_salary <= 160 ORDER BY e_name");
  ASSERT_EQ(r.rows.NumRows(), 2u);
  EXPECT_EQ(r.rows.rows[0][0].AsString(), "ann");
  EXPECT_EQ(r.rows.rows[1][0].AsString(), "cat");
}

}  // namespace
}  // namespace softdb
