// Tests for the paper's secondary mechanisms: informational-constraint DDL
// (`NOT ENFORCED`, §1) and virtual-column statistics on offset SCs (§5.1's
// second suggested mechanism), used for duration predicates such as §5's
// "projects completed in 5 days".

#include <gtest/gtest.h>

#include "constraints/column_offset_sc.h"
#include "engine/softdb.h"
#include "sql/parser.h"
#include "workload/generator.h"
#include "workload/sc_kit.h"

namespace softdb {
namespace {

// ------------------------------------------------------------ NOT ENFORCED

TEST(NotEnforcedTest, ParserMarksInformational) {
  auto stmt = ParseStatement(
      "CREATE TABLE t (a BIGINT NOT NULL, "
      "CONSTRAINT u UNIQUE (a) NOT ENFORCED, "
      "CHECK (a > 0))");
  ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
  ASSERT_EQ(stmt->create_table->constraints.size(), 2u);
  EXPECT_TRUE(stmt->create_table->constraints[0].informational);
  EXPECT_FALSE(stmt->create_table->constraints[1].informational);
}

TEST(NotEnforcedTest, EngineSkipsChecking) {
  SoftDb db;
  ASSERT_TRUE(db.Execute("CREATE TABLE t (a BIGINT NOT NULL, "
                         "UNIQUE (a) NOT ENFORCED)")
                  .ok());
  // Duplicates are accepted: the constraint is a promise, not a check.
  EXPECT_TRUE(db.Execute("INSERT INTO t VALUES (1)").ok());
  EXPECT_TRUE(db.Execute("INSERT INTO t VALUES (1)").ok());
  EXPECT_EQ(db.ics().checks_performed(), 0u);
}

TEST(NotEnforcedTest, InformationalCheckStillDrivesKnockoff) {
  SoftDb db;
  ASSERT_TRUE(db.Execute("CREATE TABLE part1 (v BIGINT NOT NULL, "
                         "CHECK (v < 100) NOT ENFORCED)")
                  .ok());
  ASSERT_TRUE(db.Execute("CREATE TABLE part2 (v BIGINT NOT NULL, "
                         "CHECK (v >= 100) NOT ENFORCED)")
                  .ok());
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(db.InsertRow("part1", {Value::Int64(i)}).ok());
    ASSERT_TRUE(db.InsertRow("part2", {Value::Int64(100 + i)}).ok());
  }
  auto r = db.Execute(
      "SELECT v FROM part1 WHERE v < 50 "
      "UNION ALL SELECT v FROM part2 WHERE v < 50");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->rows.NumRows(), 50u);
  bool knocked = false;
  for (const auto& rule : r->applied_rules) {
    knocked = knocked || rule.find("unionall-knockoff") != std::string::npos;
  }
  EXPECT_TRUE(knocked);
}

TEST(NotEnforcedTest, InformationalFkDrivesJoinElimination) {
  SoftDb db;
  ASSERT_TRUE(db.Execute("CREATE TABLE p (k BIGINT NOT NULL PRIMARY KEY)")
                  .ok());
  ASSERT_TRUE(db.Execute("CREATE TABLE c (k BIGINT NOT NULL, v BIGINT, "
                         "FOREIGN KEY (k) REFERENCES p (k) NOT ENFORCED)")
                  .ok());
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(db.InsertRow("p", {Value::Int64(i)}).ok());
    ASSERT_TRUE(
        db.InsertRow("c", {Value::Int64(i), Value::Int64(i * 2)}).ok());
  }
  auto r = db.Execute("SELECT v FROM c JOIN p ON c.k = p.k");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->rows.NumRows(), 20u);
  bool eliminated = false;
  for (const auto& rule : r->applied_rules) {
    eliminated = eliminated || rule.find("join-elimination") != std::string::npos;
  }
  EXPECT_TRUE(eliminated);
}

// ------------------------------------------------- Column-diff predicates

TEST(ColumnDiffTest, MatcherRecognizesShapes) {
  Schema s;
  s.AddColumn({"x", TypeId::kInt64, false, "t"});
  s.AddColumn({"y", TypeId::kInt64, false, "t"});
  auto expr = ParseExpression("y - x <= 5");
  ASSERT_TRUE(expr.ok());
  ASSERT_TRUE((*expr)->Bind(s).ok());
  ColumnDiffPredicate diff;
  ASSERT_TRUE(MatchColumnDiffPredicate(**expr, &diff));
  EXPECT_EQ(diff.minuend, 1u);
  EXPECT_EQ(diff.subtrahend, 0u);
  EXPECT_EQ(diff.op, CompareOp::kLe);
  EXPECT_EQ(diff.constant.AsInt64(), 5);

  // Flipped: const op (diff).
  auto flipped = ParseExpression("5 >= y - x");
  ASSERT_TRUE(flipped.ok());
  ASSERT_TRUE((*flipped)->Bind(s).ok());
  ASSERT_TRUE(MatchColumnDiffPredicate(**flipped, &diff));
  EXPECT_EQ(diff.op, CompareOp::kLe);

  // Non-matching shapes.
  auto plain = ParseExpression("y <= 5");
  ASSERT_TRUE((*plain)->Bind(s).ok());
  EXPECT_FALSE(MatchColumnDiffPredicate(**plain, &diff));
  auto sum = ParseExpression("y + x <= 5");
  ASSERT_TRUE((*sum)->Bind(s).ok());
  EXPECT_FALSE(MatchColumnDiffPredicate(**sum, &diff));
}

// ------------------------------- §4.2 runtime plan parameterization

class RuntimeParamFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(db_.Execute("CREATE TABLE t (v BIGINT NOT NULL, p BIGINT)")
                    .ok());
    // v is physically unclustered (a permutation) so the index on it never
    // beats a sequential scan for wide ranges — the case §4.2's runtime
    // parameterization serves.
    for (int i = 0; i < 2000; ++i) {
      const std::int64_t v = (i * 7919) % 2000;
      ASSERT_TRUE(
          db_.InsertRow("t", {Value::Int64(v), Value::Int64(i)}).ok());
    }
    ASSERT_TRUE(db_.Execute("CREATE INDEX iv ON t (v)").ok());
    ASSERT_TRUE(db_.Execute("ANALYZE t").ok());
  }
  SoftDb db_;
};

TEST_F(RuntimeParamFixture, TautologySkippedAtRuntime) {
  // v <= 10000 holds for the whole current domain [0, 199]: the predicate
  // is skipped at Open (no per-row evaluation), answers unchanged.
  auto r = db_.Execute("SELECT COUNT(*) AS n FROM t WHERE v <= 10000 "
                       "AND p >= 0");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->rows.rows[0][0].AsInt64(), 2000);
  EXPECT_GE(r->exec_stats.runtime_param_skips, 1u);
}

TEST_F(RuntimeParamFixture, ContradictionShortCircuits) {
  auto r = db_.Execute("SELECT * FROM t WHERE v > 10000 AND p >= 0");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->rows.NumRows(), 0u);
  EXPECT_EQ(r->exec_stats.pages_read, 0u);  // No page touched at all.
}

TEST_F(RuntimeParamFixture, SamePlanAdaptsAcrossUpdates) {
  // Unselective predicate: planner picks the sequential path and tags the
  // v-predicate for runtime domain checks. At compile time v <= 1500 is
  // undecided (domain [0,1999]) so it is evaluated per row.
  const std::string query =
      "SELECT COUNT(*) AS n FROM t WHERE v <= 1500 AND p >= 0";
  auto before = db_.Execute(query);
  ASSERT_TRUE(before.ok());
  EXPECT_EQ(before->rows.rows[0][0].AsInt64(), 1501);
  EXPECT_EQ(before->exec_stats.runtime_param_skips, 0u);

  // Shrink the domain: the CACHED plan (no re-optimization, no
  // invalidation) now sees v <= 1500 as a tautology and skips it — §4.2's
  // point: the parameter is fetched at runtime, so the plan stays valid
  // and even improves as the data changes.
  ASSERT_TRUE(db_.Execute("DELETE FROM t WHERE v > 1000").ok());
  auto after = db_.Execute(query);
  ASSERT_TRUE(after.ok());
  EXPECT_TRUE(after->from_plan_cache);
  EXPECT_FALSE(after->used_backup_plan);  // Nothing was invalidated.
  EXPECT_EQ(after->rows.rows[0][0].AsInt64(), 1001);
  EXPECT_GE(after->exec_stats.runtime_param_skips, 1u);

  // And growing the domain again re-engages the predicate, same plan.
  ASSERT_TRUE(db_.InsertRow("t", {Value::Int64(1800), Value::Int64(0)}).ok());
  auto regrown = db_.Execute(query);
  ASSERT_TRUE(regrown.ok());
  EXPECT_TRUE(regrown->from_plan_cache);
  EXPECT_EQ(regrown->rows.rows[0][0].AsInt64(), 1001);
  EXPECT_EQ(regrown->exec_stats.runtime_param_skips, 0u);
}

TEST_F(RuntimeParamFixture, DisabledFlagFallsBack) {
  db_.options().enable_runtime_parameterization = false;
  // Force the sequential path by also filtering the unindexed column with
  // a selective predicate the optimizer cannot fold.
  auto r = db_.Execute("SELECT * FROM t WHERE v > 10000 AND p + 0 >= 0");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->rows.NumRows(), 0u);
  EXPECT_EQ(r->exec_stats.runtime_param_skips, 0u);
  // Either access path may be picked, but without runtime parameters the
  // operator must actually run (scan rows or probe the index).
  EXPECT_GT(r->exec_stats.rows_scanned + r->exec_stats.index_lookups, 0u);
}

// ------------------------------------- NULL-safety of rewrite rules

TEST(NullSafetyTest, IntroductionSuppressedOnNullableTarget) {
  SoftDb db;
  ASSERT_TRUE(db.Execute("CREATE TABLE t (x BIGINT NOT NULL, y BIGINT)")
                  .ok());
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(db.InsertRow(
                      "t", {Value::Int64(i),
                            i % 10 == 0 ? Value::Null()
                                        : Value::Int64(i + 3)})
                    .ok());
  }
  // Absolute over non-null rows (NULLs comply vacuously).
  auto sc = std::make_unique<ColumnOffsetSc>("win", "t", 0, 1, 0, 5);
  ASSERT_TRUE(db.scs().Add(std::move(sc), db.catalog()).ok());
  ASSERT_TRUE(db.scs().Find("win")->IsAbsolute());

  // Query on x would derive a predicate on the NULLABLE y — which would
  // wrongly drop the y-IS-NULL rows. The rule must not fire.
  auto r = db.Execute("SELECT * FROM t WHERE x BETWEEN 10 AND 20");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->rows.NumRows(), 11u);  // Including x=10 and x=20 (y NULL).
  for (const auto& rule : r->applied_rules) {
    EXPECT_EQ(rule.find("predicate-introduction"), std::string::npos) << rule;
  }

  // The reverse direction (predicate on y deriving onto NOT NULL x) is
  // sound and fires.
  auto r2 = db.Execute("SELECT * FROM t WHERE y BETWEEN 10 AND 20");
  ASSERT_TRUE(r2.ok());
  bool fired = false;
  for (const auto& rule : r2->applied_rules) {
    fired = fired || rule.find("predicate-introduction") != std::string::npos;
  }
  EXPECT_TRUE(fired);
  EXPECT_EQ(r2->rows.NumRows(), 10u);
}

// -------------------------------------------- Virtual-column statistics

class DurationStatsFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    WorkloadOptions options;
    options.customers = 100;
    options.orders = 500;
    options.purchases = 500;
    options.parts = 100;
    options.projects = 4000;
    options.sales_per_month = 10;
    ASSERT_TRUE(GenerateWorkload(&db_, options).ok());
    ASSERT_TRUE(RegisterProjectWindowSc(&db_).ok());
  }
  SoftDb db_;
};

TEST_F(DurationStatsFixture, VerifyBuildsHistogram) {
  auto* sc = static_cast<ColumnOffsetSc*>(db_.scs().Find("sc_project_window"));
  ASSERT_NE(sc, nullptr);
  EXPECT_FALSE(sc->duration_histogram().empty());
  // ~90% of durations are <= 30.
  auto sel = sc->DurationSelectivity(CompareOp::kLe, 30.0);
  ASSERT_TRUE(sel.has_value());
  EXPECT_NEAR(*sel, 0.9, 0.05);
  // All durations are >= 0.
  EXPECT_NEAR(*sc->DurationSelectivity(CompareOp::kGe, 0.0), 1.0, 0.01);
}

TEST_F(DurationStatsFixture, DurationQueryEstimatesFromHistogram) {
  const std::string query =
      "SELECT * FROM project WHERE end_date - start_date <= 5";
  auto with = db_.Execute(query);
  ASSERT_TRUE(with.ok());
  const double actual = static_cast<double>(with->rows.NumRows());
  // With virtual-column stats the estimate tracks the distribution; the
  // default opaque factor (1/3 of 4000 = 1333) is far off.
  EXPECT_LT(std::abs(with->estimated_rows - actual) / actual, 0.3);

  db_.options().use_twins_in_estimation = false;  // Disables SC stats too.
  db_.plan_cache().Clear();
  auto without = db_.Execute(query);
  ASSERT_TRUE(without.ok());
  const double err_with = std::abs(with->estimated_rows - actual);
  const double err_without = std::abs(without->estimated_rows - actual);
  EXPECT_LT(err_with, err_without);
}

TEST_F(DurationStatsFixture, ReversedDifferenceAlsoEstimated) {
  // (start - end) >= -5  <=>  (end - start) <= 5.
  const std::string query =
      "SELECT * FROM project WHERE start_date - end_date >= 0 - 5";
  auto r = db_.Execute(query);
  ASSERT_TRUE(r.ok());
  const double actual = static_cast<double>(r->rows.NumRows());
  EXPECT_GT(actual, 0);
  EXPECT_LT(std::abs(r->estimated_rows - actual) / actual, 0.3);
}

}  // namespace
}  // namespace softdb
