#include <gtest/gtest.h>

#include "mining/correlation_miner.h"
#include "mining/fd_miner.h"
#include "mining/hole_miner.h"
#include "mining/offset_miner.h"
#include "workload/generator.h"
#include "workload/sc_kit.h"

namespace softdb {
namespace {

class WorkloadFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    db_ = new SoftDb();
    WorkloadOptions options;
    options.customers = 500;
    options.orders = 5000;
    options.purchases = 8000;
    options.parts = 1000;
    options.projects = 2000;
    options.sales_per_month = 200;
    ASSERT_TRUE(GenerateWorkload(db_, options).ok());
  }
  static void TearDownTestSuite() {
    delete db_;
    db_ = nullptr;
  }
  static SoftDb* db_;
};

SoftDb* WorkloadFixture::db_ = nullptr;

TEST_F(WorkloadFixture, AllTablesPresent) {
  for (const char* name :
       {"region", "nation", "customer", "part", "orders", "purchase",
        "project", "sales_m1", "sales_m12"}) {
    EXPECT_TRUE(db_->catalog().HasTable(name)) << name;
  }
  EXPECT_EQ((*db_->catalog().GetTable("purchase"))->NumRows(), 8000u);
}

TEST_F(WorkloadFixture, ShipWindowConfidenceAsPlanted) {
  auto name = RegisterShipWindowSc(db_);
  ASSERT_TRUE(name.ok());
  const double conf = db_->scs().Find(*name)->confidence();
  EXPECT_GT(conf, 0.975);
  EXPECT_LT(conf, 1.0);
  ASSERT_TRUE(db_->scs().Drop(*name).ok());
}

TEST_F(WorkloadFixture, ProjectWindowConfidenceAsPlanted) {
  auto name = RegisterProjectWindowSc(db_);
  ASSERT_TRUE(name.ok());
  const double conf = db_->scs().Find(*name)->confidence();
  EXPECT_GT(conf, 0.85);
  EXPECT_LT(conf, 0.95);
  ASSERT_TRUE(db_->scs().Drop(*name).ok());
}

TEST_F(WorkloadFixture, PartCorrelationIsAbsolute) {
  auto name = RegisterPartCorrelationSc(db_);
  ASSERT_TRUE(name.ok());
  EXPECT_TRUE(db_->scs().Find(*name)->IsAbsolute());
  ASSERT_TRUE(db_->scs().Drop(*name).ok());
}

TEST_F(WorkloadFixture, CustomerRegionFdIsExact) {
  auto name = RegisterCustomerRegionFd(db_);
  ASSERT_TRUE(name.ok());
  EXPECT_TRUE(db_->scs().Find(*name)->IsAbsolute());
  ASSERT_TRUE(db_->scs().Drop(*name).ok());
}

TEST_F(WorkloadFixture, PlantedJoinHoleIsEmpty) {
  auto name = RegisterOrdersHoleSc(db_);
  ASSERT_TRUE(name.ok());
  EXPECT_TRUE(db_->scs().Find(*name)->IsAbsolute());
  ASSERT_TRUE(db_->scs().Drop(*name).ok());
}

TEST_F(WorkloadFixture, InclusionHolds) {
  auto name = RegisterOrdersInclusionSc(db_);
  ASSERT_TRUE(name.ok());
  EXPECT_TRUE(db_->scs().Find(*name)->IsAbsolute());
  ASSERT_TRUE(db_->scs().Drop(*name).ok());
}

TEST_F(WorkloadFixture, SalesPartitionsRespectMonths) {
  auto r = db_->Execute(
      "SELECT COUNT(*) AS n FROM sales_m3 WHERE "
      "sale_date < DATE '1999-03-01'");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->rows.rows[0][0].AsInt64(), 0);
  auto r2 = db_->Execute(
      "SELECT COUNT(*) AS n FROM sales_m3 WHERE "
      "sale_date > DATE '1999-03-31'");
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(r2->rows.rows[0][0].AsInt64(), 0);
}

TEST_F(WorkloadFixture, PurchaseClusteredByOrderDate) {
  Index* idx = db_->catalog().FindIndex("purchase", "order_date");
  ASSERT_NE(idx, nullptr);
  EXPECT_LT(idx->PageSwitchDensity(), 0.1);
}

TEST_F(WorkloadFixture, StatsAnalyzedAfterLoad) {
  const TableStats* stats = db_->stats().Get("orders");
  ASSERT_NE(stats, nullptr);
  EXPECT_EQ(stats->row_count, 5000u);
  EXPECT_FALSE(
      stats->columns[WorkloadColumns::kOrderPrice].histogram.empty());
}

TEST_F(WorkloadFixture, DeterministicAcrossRuns) {
  SoftDb db2;
  WorkloadOptions options;
  options.customers = 50;
  options.orders = 100;
  options.purchases = 100;
  options.parts = 50;
  options.projects = 50;
  options.sales_per_month = 10;
  ASSERT_TRUE(GenerateWorkload(&db2, options).ok());
  SoftDb db3;
  ASSERT_TRUE(GenerateWorkload(&db3, options).ok());
  auto a = db2.Execute("SELECT SUM(o_totalprice) AS s FROM orders");
  auto b = db3.Execute("SELECT SUM(o_totalprice) AS s FROM orders");
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a->rows.rows[0][0].AsDouble(), b->rows.rows[0][0].AsDouble());
}

// ----------------------------- Miners recover what the generator planted

TEST_F(WorkloadFixture, MinersRecoverPlantedShipWindow) {
  Table* purchase = *db_->catalog().GetTable("purchase");
  auto candidates = MineColumnOffsets(*purchase);
  bool found = false;
  for (const OffsetCandidate& c : candidates) {
    if (c.col_x == WorkloadColumns::kPurchaseOrderDate &&
        c.col_y == WorkloadColumns::kPurchaseShipDate) {
      found = true;
      EXPECT_GE(c.min_partial, 0);
      EXPECT_LE(c.max_partial, 23);
    }
  }
  EXPECT_TRUE(found);
}

TEST_F(WorkloadFixture, MinersRecoverPlantedCorrelation) {
  Table* part = *db_->catalog().GetTable("part");
  auto cand = FitCorrelation(*part, WorkloadColumns::kPartWeight,
                             WorkloadColumns::kPartPrice);
  ASSERT_TRUE(cand.ok());
  EXPECT_NEAR(cand->k, 0.05, 0.005);
  EXPECT_NEAR(cand->c, 2.0, 0.5);
  EXPECT_LE(cand->epsilon_full, 3.05);
}

TEST_F(WorkloadFixture, MinersRecoverPlantedFd) {
  Table* customer = *db_->catalog().GetTable("customer");
  auto fds = MineFunctionalDependencies(*customer);
  bool found = false;
  for (const FdCandidate& fd : fds) {
    if (fd.determinants ==
            std::vector<ColumnIdx>{WorkloadColumns::kCustomerNation} &&
        fd.dependent == WorkloadColumns::kCustomerRegion) {
      found = true;
      EXPECT_DOUBLE_EQ(fd.confidence, 1.0);
    }
  }
  EXPECT_TRUE(found);
}

TEST_F(WorkloadFixture, MinersRecoverPlantedHole) {
  Table* orders = *db_->catalog().GetTable("orders");
  Table* customer = *db_->catalog().GetTable("customer");
  auto result = MineJoinHoles(*orders, WorkloadColumns::kOrderCustomer,
                              WorkloadColumns::kOrderPrice, *customer,
                              WorkloadColumns::kCustomerKey,
                              WorkloadColumns::kCustomerBalance);
  ASSERT_TRUE(result.ok());
  bool covers_center = false;
  for (const HoleRect& h : result->holes) {
    covers_center =
        covers_center || (h.ContainsA(9000.0) && h.ContainsB(1000.0));
  }
  EXPECT_TRUE(covers_center);
}

}  // namespace
}  // namespace softdb
