// Serving-layer battery (DESIGN.md §15): SessionManager + Dispatcher
// admission control (bounded queue, typed rejections with structured
// details), load shedding and overload backpressure, deadline-aware
// queueing (doomed work never executes), the session retry/backoff arc
// with deterministic jitter, graceful drain with in-flight cancellation
// and WAL checkpoint, and crash-during-serve recovery against an
// uncrashed control.

#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <filesystem>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/failpoint.h"
#include "common/query_context.h"
#include "engine/softdb.h"
#include "server/session.h"

namespace softdb {
namespace {

namespace fs = std::filesystem;

Failpoints& FP() { return Failpoints::Instance(); }

Failpoints::Policy Always() {
  Failpoints::Policy p;
  p.trigger = Failpoints::Trigger::kAlways;
  return p;
}

Failpoints::Policy EveryNth(std::uint64_t n) {
  Failpoints::Policy p;
  p.trigger = Failpoints::Trigger::kEveryNth;
  p.n = n;
  return p;
}

struct TempDir {
  TempDir() {
    char tmpl[] = "/tmp/softdb_server_XXXXXX";
    const char* d = ::mkdtemp(tmpl);
    EXPECT_NE(d, nullptr);
    path = d == nullptr ? "/tmp/softdb_server_fallback" : d;
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path, ec);
  }
  std::string path;
};

/// Rendered + sorted rows for order-insensitive state comparison.
std::vector<std::string> SortedRows(SoftDb* db, const std::string& sql) {
  Result<QueryResult> r = db->Execute(sql);
  EXPECT_TRUE(r.ok()) << sql << ": " << r.status().ToString();
  std::vector<std::string> out;
  if (!r.ok()) return out;
  for (const std::vector<Value>& row : r->rows.rows) {
    std::string s;
    for (const Value& v : row) {
      s += v.ToString();
      s += "|";
    }
    out.push_back(std::move(s));
  }
  std::sort(out.begin(), out.end());
  return out;
}

/// Spins until `pred` holds (bounded); serving-layer state transitions are
/// asynchronous but fast.
template <typename Pred>
bool WaitFor(Pred pred, int timeout_ms = 5000) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  while (!pred()) {
    if (std::chrono::steady_clock::now() >= deadline) return false;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return true;
}

class ServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    FP().DisableAll();
    ASSERT_TRUE(
        db_.Execute("CREATE TABLE t (id INT PRIMARY KEY, v INT)").ok());
    for (int i = 0; i < 50; ++i) {
      ASSERT_TRUE(db_.Execute("INSERT INTO t VALUES (" + std::to_string(i) +
                              ", " + std::to_string(i * 2) + ")")
                      .ok());
    }
  }
  void TearDown() override { FP().DisableAll(); }

  SoftDb db_;
};

// ------------------------------------------------------------ basic serving

TEST_F(ServerTest, SessionExecuteMatchesDirectExecution) {
  const std::string sql = "SELECT id, v FROM t WHERE id < 10";
  const std::vector<std::string> direct = SortedRows(&db_, sql);

  SessionManager server(&db_);
  auto session = server.OpenSession("client-a");
  ASSERT_TRUE(session.ok());
  Result<QueryResult> r = (*session)->Execute(sql);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  std::vector<std::string> served;
  for (const std::vector<Value>& row : r->rows.rows) {
    std::string s;
    for (const Value& v : row) s += v.ToString() + "|";
    served.push_back(s);
  }
  std::sort(served.begin(), served.end());
  EXPECT_EQ(served, direct);
  EXPECT_EQ(server.stats().executed.load(), 1u);
  EXPECT_EQ(server.stats().succeeded.load(), 1u);
  EXPECT_EQ((*session)->stats().succeeded.load(), 1u);
}

TEST_F(ServerTest, SessionsGetDistinctIdsAndDefaultNames) {
  SessionManager server(&db_);
  auto a = server.OpenSession();
  auto b = server.OpenSession("named", /*priority=*/3);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_NE((*a)->id(), (*b)->id());
  EXPECT_EQ((*a)->name(), "session-" + std::to_string((*a)->id()));
  EXPECT_EQ((*b)->name(), "named");
  EXPECT_EQ((*b)->priority(), 3);
  EXPECT_EQ(server.session_count(), 2u);
  EXPECT_TRUE(server.CloseSession((*a)->id()).ok());
  EXPECT_EQ(server.session_count(), 1u);
  EXPECT_EQ(server.CloseSession(12345).code(), StatusCode::kNotFound);
}

TEST_F(ServerTest, ConcurrentSessionsAllComplete) {
  ServerOptions options;
  options.worker_threads = 4;
  SessionManager server(&db_, options);
  constexpr int kSessions = 8;
  constexpr int kStatements = 20;
  std::vector<std::thread> clients;
  std::atomic<int> failures{0};
  for (int s = 0; s < kSessions; ++s) {
    clients.emplace_back([&server, &failures, s] {
      auto session = server.OpenSession("c" + std::to_string(s));
      if (!session.ok()) {
        ++failures;
        return;
      }
      for (int i = 0; i < kStatements; ++i) {
        auto r = (*session)->Execute("SELECT id FROM t WHERE id = " +
                                     std::to_string((s * 7 + i) % 50));
        if (!r.ok() || r->rows.NumRows() != 1) ++failures;
      }
    });
  }
  for (auto& t : clients) t.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(server.stats().succeeded.load(),
            static_cast<std::uint64_t>(kSessions * kStatements));
  EXPECT_EQ(server.stats().rejected_queue_full.load(), 0u);
}

// ------------------------------------------------------- admission control

TEST_F(ServerTest, QueueFullRejectionIsTypedWithDetails) {
  ServerOptions options;
  options.worker_threads = 1;
  options.max_queue_depth = 3;
  options.high_water_depth = 3;
  options.retry.max_attempts = 1;  // Surface the rejection, don't heal it.
  SessionManager server(&db_, options);
  auto session = server.OpenSession();
  ASSERT_TRUE(session.ok());

  server.dispatcher().PauseWorkers();
  std::vector<std::future<Result<QueryResult>>> pending;
  for (int i = 0; i < 3; ++i) {
    pending.push_back(std::async(std::launch::async, [&session] {
      return (*session)->Execute("SELECT * FROM t");
    }));
  }
  ASSERT_TRUE(WaitFor([&server] {
    return server.dispatcher().queue_depth() == 3;
  }));

  Result<QueryResult> rejected = (*session)->Execute("SELECT * FROM t");
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(StatusDetail(rejected.status(), "queue_depth"), 3);
  EXPECT_TRUE(StatusDetail(rejected.status(), "retry_after_ms").has_value());
  EXPECT_EQ(server.stats().rejected_queue_full.load(), 1u);
  EXPECT_EQ(server.stats().queue_depth_high_water.load(), 3u);

  server.dispatcher().ResumeWorkers();
  for (auto& f : pending) EXPECT_TRUE(f.get().ok());
}

TEST_F(ServerTest, ShedsLowestPriorityNewestFirstUnderOverload) {
  ServerOptions options;
  options.worker_threads = 1;
  options.max_queue_depth = 8;
  options.high_water_depth = 2;
  options.retry.max_attempts = 1;
  SessionManager server(&db_, options);
  auto low = server.OpenSession("low", /*priority=*/0);
  auto high = server.OpenSession("high", /*priority=*/5);
  ASSERT_TRUE(low.ok());
  ASSERT_TRUE(high.ok());

  server.dispatcher().PauseWorkers();
  std::vector<std::future<Result<QueryResult>>> lows;
  for (int i = 0; i < 2; ++i) {
    lows.push_back(std::async(std::launch::async, [&low] {
      return (*low)->Execute("SELECT * FROM t");
    }));
  }
  ASSERT_TRUE(WaitFor([&server] {
    return server.dispatcher().queue_depth() == 2;
  }));

  // Queue is at the high-water mark: admitting high-priority work sheds
  // the newest lowest-priority request.
  std::future<Result<QueryResult>> high_f =
      std::async(std::launch::async, [&high] {
        return (*high)->Execute("SELECT id FROM t WHERE id = 1");
      });
  ASSERT_TRUE(WaitFor([&server] {
    return server.stats().shed.load() == 1;
  }));
  EXPECT_EQ(server.dispatcher().queue_depth(), 2u);

  // Exactly one low-priority request was evicted with a typed, detailed
  // status; the high-priority one is queued, not rejected.
  int shed_count = 0;
  server.dispatcher().ResumeWorkers();
  for (auto& f : lows) {
    Result<QueryResult> r = f.get();
    if (r.ok()) continue;
    ++shed_count;
    EXPECT_EQ(r.status().code(), StatusCode::kResourceExhausted);
    EXPECT_EQ(StatusDetail(r.status(), "shed"), 1);
    EXPECT_TRUE(IsRetryableStatus(r.status()));
  }
  EXPECT_EQ(shed_count, 1);
  EXPECT_TRUE(high_f.get().ok());
}

TEST_F(ServerTest, HighPrioritySessionDispatchedFirst) {
  ServerOptions options;
  options.worker_threads = 1;
  SessionManager server(&db_, options);
  auto low = server.OpenSession("low", 0);
  auto high = server.OpenSession("high", 9);
  ASSERT_TRUE(low.ok());
  ASSERT_TRUE(high.ok());

  server.dispatcher().PauseWorkers();
  std::vector<int> order;
  std::mutex order_mu;
  auto submit = [&](Session* s, int tag) {
    return std::async(std::launch::async, [&, s, tag] {
      auto r = s->Execute("SELECT id FROM t WHERE id = " +
                          std::to_string(tag));
      std::lock_guard<std::mutex> lk(order_mu);
      order.push_back(tag);
      return r.ok();
    });
  };
  auto f1 = submit(*low, 1);
  ASSERT_TRUE(WaitFor([&server] {
    return server.dispatcher().queue_depth() == 1;
  }));
  auto f2 = submit(*low, 2);
  auto f3 = submit(*high, 3);
  ASSERT_TRUE(WaitFor([&server] {
    return server.dispatcher().queue_depth() == 3;
  }));
  server.dispatcher().ResumeWorkers();
  EXPECT_TRUE(f1.get());
  EXPECT_TRUE(f2.get());
  EXPECT_TRUE(f3.get());
  // The high-priority statement (tag 3) completes before the same-aged
  // low-priority one (tag 2); tag 1 vs 3 order depends on dequeue timing.
  std::lock_guard<std::mutex> lk(order_mu);
  auto pos = [&](int tag) {
    return std::find(order.begin(), order.end(), tag) - order.begin();
  };
  EXPECT_LT(pos(3), pos(2));
}

// --------------------------------------------------- deadline-aware queueing

TEST_F(ServerTest, ExpiredDeadlineRejectedAtAdmission) {
  SessionManager server(&db_);
  auto session = server.OpenSession();
  ASSERT_TRUE(session.ok());

  QueryContext ctx;
  ctx.has_deadline = true;
  ctx.deadline = std::chrono::steady_clock::now() -
                 std::chrono::milliseconds(50);
  Result<QueryResult> r = (*session)->Execute("SELECT * FROM t", &ctx);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_GE(StatusDetail(r.status(), "deadline_lag_ms").value_or(-1), 0);
  EXPECT_EQ(server.stats().rejected_expired_deadline.load(), 1u);
  EXPECT_EQ(server.stats().executed.load(), 0u);
  EXPECT_FALSE(IsRetryableStatus(r.status()));
}

TEST_F(ServerTest, EngineRejectsExpiredDeadlineBeforeDispatch) {
  QueryContext ctx;
  ctx.has_deadline = true;
  ctx.deadline = std::chrono::steady_clock::now() -
                 std::chrono::milliseconds(10);
  // Defensive engine-side copy of the admission rule: no parse, no
  // dispatch, and crucially no side effects for DML.
  Result<QueryResult> r =
      db_.Execute("INSERT INTO t VALUES (999, 999)", &ctx);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_TRUE(StatusDetail(r.status(), "deadline_lag_ms").has_value());
  auto count = db_.Execute("SELECT * FROM t WHERE id = 999");
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(count->rows.NumRows(), 0u);
}

TEST_F(ServerTest, DoomedQueuedStatementNeverExecutes) {
  ServerOptions options;
  options.worker_threads = 1;
  SessionManager server(&db_, options);
  auto session = server.OpenSession();
  ASSERT_TRUE(session.ok());

  server.dispatcher().PauseWorkers();
  QueryContext ctx;
  ctx.SetDeadlineAfter(std::chrono::milliseconds(30));
  std::future<Result<QueryResult>> doomed =
      std::async(std::launch::async, [&session, &ctx] {
        return (*session)->Execute("SELECT * FROM t", &ctx);
      });
  ASSERT_TRUE(WaitFor([&server] {
    return server.dispatcher().queue_depth() == 1;
  }));
  std::this_thread::sleep_for(std::chrono::milliseconds(60));
  server.dispatcher().ResumeWorkers();

  Result<QueryResult> r = doomed.get();
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_GT(StatusDetail(r.status(), "queued_ms").value_or(0), 0);
  EXPECT_EQ(server.stats().expired_in_queue.load(), 1u);
  // The defining property: the statement never reached the engine.
  EXPECT_EQ(server.stats().executed.load(), 0u);
}

TEST_F(ServerTest, OverloadTightensEffectiveDeadline) {
  ServerOptions options;
  options.worker_threads = 1;
  options.max_queue_depth = 8;
  options.high_water_depth = 1;
  options.overload_deadline_ms = 20;
  options.retry.max_attempts = 1;
  SessionManager server(&db_, options);
  auto session = server.OpenSession();
  ASSERT_TRUE(session.ok());

  server.dispatcher().PauseWorkers();
  // First statement fills the queue to the high-water mark; the second is
  // admitted under backpressure with a 20ms effective deadline even
  // though the client asked for none.
  auto first = std::async(std::launch::async, [&session] {
    return (*session)->Execute("SELECT * FROM t");
  });
  ASSERT_TRUE(WaitFor([&server] {
    return server.dispatcher().queue_depth() == 1;
  }));
  auto capped = std::async(std::launch::async, [&session] {
    return (*session)->Execute("SELECT * FROM t");
  });
  ASSERT_TRUE(WaitFor([&server] {
    return server.stats().deadline_tightened.load() == 1;
  }));
  // Let the capped deadline lapse in queue, then serve.
  std::this_thread::sleep_for(std::chrono::milliseconds(40));
  server.dispatcher().ResumeWorkers();
  EXPECT_TRUE(first.get().ok());
  Result<QueryResult> r = capped.get();
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(server.stats().expired_in_queue.load(), 1u);
}

// --------------------------------------------------------- retry / backoff

TEST_F(ServerTest, RetryHealsTransientExecutionFault) {
  ServerOptions options;
  options.retry.max_attempts = 3;
  options.retry.base_backoff = std::chrono::milliseconds(1);
  SessionManager server(&db_, options);
  auto session = server.OpenSession();
  ASSERT_TRUE(session.ok());

  // One-shot fault: fires on the first execution, then disarms itself.
  FP().Enable("server.session_execute", Always());
  FP().SetAction("server.session_execute",
                 [] { FP().Disable("server.session_execute"); });

  Result<QueryResult> r = (*session)->Execute("SELECT id FROM t WHERE id = 7");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->rows.NumRows(), 1u);
  EXPECT_EQ((*session)->stats().retries.load(), 1u);
  EXPECT_EQ(server.stats().retries.load(), 1u);
  EXPECT_EQ((*session)->stats().statements.load(), 1u);
  EXPECT_EQ((*session)->stats().succeeded.load(), 1u);
}

TEST_F(ServerTest, BackoffScheduleIsDeterministicFromSeed) {
  ServerOptions options;
  options.retry.max_attempts = 4;
  options.retry.base_backoff = std::chrono::milliseconds(2);
  options.retry.max_backoff = std::chrono::milliseconds(40);
  options.retry.jitter_seed = 0xFEEDULL;
  SessionManager server(&db_, options);
  auto session = server.OpenSession();
  ASSERT_TRUE(session.ok());

  FP().Enable("server.session_execute", Always());
  Result<QueryResult> r = (*session)->Execute("SELECT * FROM t");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kResourceExhausted);
  EXPECT_EQ((*session)->stats().retries.load(), 3u);

  // Mirror the session's jitter stream: policy seed xor session id, and
  // the injected status's retry_after_ms hint (= base backoff) floors
  // each wait.
  Rng rng(options.retry.jitter_seed ^
          ((*session)->id() * 0x9E3779B97F4A7C15ULL));
  std::uint64_t expected_total = 0;
  for (std::size_t attempt = 1; attempt <= 3; ++attempt) {
    auto backoff = ComputeBackoff(options.retry, attempt, &rng);
    backoff = std::max(backoff, options.retry.base_backoff);
    expected_total += static_cast<std::uint64_t>(backoff.count());
  }
  EXPECT_EQ((*session)->stats().backoff_ms_total.load(), expected_total);
  EXPECT_EQ(server.stats().backoff_ms_total.load(), expected_total);
}

TEST_F(ServerTest, SemanticErrorsAreNeverRetried) {
  SessionManager server(&db_);
  auto session = server.OpenSession();
  ASSERT_TRUE(session.ok());
  Result<QueryResult> r = (*session)->Execute("SELECT zap FROM nowhere");
  ASSERT_FALSE(r.ok());
  EXPECT_FALSE(IsRetryableStatus(r.status()));
  EXPECT_EQ((*session)->stats().retries.load(), 0u);
  EXPECT_EQ((*session)->stats().failed.load(), 1u);
}

TEST_F(ServerTest, BackoffNeverSleepsPastCallerDeadline) {
  ServerOptions options;
  options.retry.max_attempts = 10;
  options.retry.base_backoff = std::chrono::milliseconds(50);
  options.retry.max_backoff = std::chrono::milliseconds(50);
  SessionManager server(&db_, options);
  auto session = server.OpenSession();
  ASSERT_TRUE(session.ok());

  FP().Enable("server.session_execute", Always());
  QueryContext ctx;
  ctx.SetDeadlineAfter(std::chrono::milliseconds(25));
  const auto t0 = std::chrono::steady_clock::now();
  Result<QueryResult> r = (*session)->Execute("SELECT * FROM t", &ctx);
  const auto elapsed = std::chrono::steady_clock::now() - t0;
  ASSERT_FALSE(r.ok());
  // The transient error returns once the remaining budget cannot cover
  // the next 50ms wait — long before ten 50ms backoffs.
  EXPECT_EQ(r.status().code(), StatusCode::kResourceExhausted);
  EXPECT_LT(std::chrono::duration_cast<std::chrono::milliseconds>(elapsed)
                .count(),
            200);
  EXPECT_EQ((*session)->stats().retries.load(), 0u);
}

// ------------------------------------------------------------------- drain

TEST_F(ServerTest, DrainRejectsQueuedAndFinishesInFlight) {
  ServerOptions options;
  options.worker_threads = 1;
  options.retry.max_attempts = 1;
  SessionManager server(&db_, options);
  auto session = server.OpenSession();
  ASSERT_TRUE(session.ok());

  // Block the worker mid-statement at the row-engine chaos site.
  std::mutex gate_mu;
  std::condition_variable gate_cv;
  bool gate_open = false;
  std::atomic<bool> blocked{false};
  FP().Enable("exec.drain", EveryNth(1));
  FP().SetAction("exec.drain", [&] {
    blocked.store(true);
    std::unique_lock<std::mutex> lk(gate_mu);
    gate_cv.wait(lk, [&] { return gate_open; });
  });

  auto in_flight = std::async(std::launch::async, [&session] {
    return (*session)->Execute("SELECT id FROM t WHERE id = 3");
  });
  ASSERT_TRUE(WaitFor([&blocked] { return blocked.load(); }));

  auto queued = std::async(std::launch::async, [&session] {
    return (*session)->Execute("SELECT id FROM t WHERE id = 4");
  });
  ASSERT_TRUE(WaitFor([&server] {
    return server.dispatcher().queue_depth() == 1;
  }));

  auto drain = std::async(std::launch::async,
                          [&server] { return server.Drain(); });
  // Queued work is rejected promptly; the in-flight statement keeps
  // running until we open the gate.
  Result<QueryResult> rq = queued.get();
  ASSERT_FALSE(rq.ok());
  EXPECT_EQ(rq.status().code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(StatusDetail(rq.status(), "draining"), 1);
  EXPECT_EQ(server.stats().drain_rejected.load(), 1u);

  {
    std::lock_guard<std::mutex> lk(gate_mu);
    gate_open = true;
  }
  gate_cv.notify_all();
  FP().DisableAll();

  EXPECT_TRUE(drain.get().ok());
  Result<QueryResult> rf = in_flight.get();
  ASSERT_TRUE(rf.ok()) << rf.status().ToString();
  EXPECT_EQ(rf->rows.NumRows(), 1u);
  EXPECT_EQ(server.stats().drain_cancelled.load(), 0u);
  EXPECT_EQ(server.stats().drains.load(), 1u);

  // Post-drain: admissions and new sessions are closed, typed.
  Result<QueryResult> post = (*session)->Execute("SELECT * FROM t");
  ASSERT_FALSE(post.ok());
  EXPECT_EQ(post.status().code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(StatusDetail(post.status(), "draining"), 1);
  EXPECT_FALSE(server.OpenSession().ok());
}

TEST_F(ServerTest, DrainCancelsStragglersAtDeadline) {
  ServerOptions options;
  options.worker_threads = 1;
  options.drain_deadline_ms = 10;
  options.retry.max_attempts = 1;
  SessionManager server(&db_, options);
  auto session = server.OpenSession();
  ASSERT_TRUE(session.ok());

  std::mutex gate_mu;
  std::condition_variable gate_cv;
  bool gate_open = false;
  std::atomic<bool> blocked{false};
  FP().Enable("exec.drain", EveryNth(1));
  FP().SetAction("exec.drain", [&] {
    blocked.store(true);
    std::unique_lock<std::mutex> lk(gate_mu);
    gate_cv.wait(lk, [&] { return gate_open; });
  });

  auto straggler = std::async(std::launch::async, [&session] {
    return (*session)->Execute("SELECT * FROM t");
  });
  ASSERT_TRUE(WaitFor([&blocked] { return blocked.load(); }));

  auto drain = std::async(std::launch::async,
                          [&server] { return server.Drain(); });
  // The drain grace (10ms) lapses against a blocked statement; the
  // dispatcher cancels it through its token.
  ASSERT_TRUE(WaitFor([&server] {
    return server.stats().drain_cancelled.load() == 1;
  }));
  {
    std::lock_guard<std::mutex> lk(gate_mu);
    gate_open = true;
  }
  gate_cv.notify_all();
  FP().DisableAll();

  EXPECT_TRUE(drain.get().ok());
  Result<QueryResult> r = straggler.get();
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kCancelled);
}

TEST_F(ServerTest, DrainIsIdempotentAndConcurrent) {
  SessionManager server(&db_);
  std::vector<std::future<Status>> drains;
  for (int i = 0; i < 4; ++i) {
    drains.push_back(std::async(std::launch::async,
                                [&server] { return server.Drain(); }));
  }
  for (auto& f : drains) EXPECT_TRUE(f.get().ok());
  EXPECT_EQ(server.stats().drains.load(), 1u);
}

// ---------------------------------------------------------- failpoint sites

TEST_F(ServerTest, AdmitFailpointRejectsTyped) {
  ServerOptions options;
  options.retry.max_attempts = 1;
  SessionManager server(&db_, options);
  auto session = server.OpenSession();
  ASSERT_TRUE(session.ok());
  FP().Enable("server.admit", Always());
  Result<QueryResult> r = (*session)->Execute("SELECT * FROM t");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kResourceExhausted);
  EXPECT_TRUE(IsRetryableStatus(r.status()));
  EXPECT_EQ(server.stats().rejected_injected.load(), 1u);
  EXPECT_EQ(server.stats().admitted.load(), 0u);
}

TEST_F(ServerTest, DequeueFailpointIsRetryableTransient) {
  ServerOptions options;
  options.retry.max_attempts = 2;
  options.retry.base_backoff = std::chrono::milliseconds(1);
  SessionManager server(&db_, options);
  auto session = server.OpenSession();
  ASSERT_TRUE(session.ok());
  // Fires once (first dequeue), self-disarms; the session's retry heals.
  FP().Enable("server.dequeue", Always());
  FP().SetAction("server.dequeue", [] { FP().Disable("server.dequeue"); });
  Result<QueryResult> r = (*session)->Execute("SELECT id FROM t WHERE id = 2");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ((*session)->stats().retries.load(), 1u);
  // The faulted dequeue never reached the engine.
  EXPECT_EQ(server.stats().executed.load(), 1u);
}

TEST_F(ServerTest, DrainFailpointSiteFires) {
  SessionManager server(&db_);
  std::atomic<int> drain_hits{0};
  FP().Enable("server.drain", Always());
  FP().SetAction("server.drain", [&drain_hits] { ++drain_hits; });
  EXPECT_TRUE(server.Drain().ok());
  EXPECT_EQ(drain_hits.load(), 1);
  EXPECT_GE(FP().Fires("server.drain"), 1u);
}

// ------------------------------------------------------ stats & cancellation

TEST_F(ServerTest, SessionCancelAbortsOutstandingAndFutureWork) {
  ServerOptions options;
  options.worker_threads = 1;
  SessionManager server(&db_, options);
  auto session = server.OpenSession();
  ASSERT_TRUE(session.ok());

  server.dispatcher().PauseWorkers();
  auto pending = std::async(std::launch::async, [&session] {
    return (*session)->Execute("SELECT * FROM t");
  });
  ASSERT_TRUE(WaitFor([&server] {
    return server.dispatcher().queue_depth() == 1;
  }));
  (*session)->Cancel();
  server.dispatcher().ResumeWorkers();
  Result<QueryResult> r = pending.get();
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kCancelled);
  // Future statements fail fast on the sticky token.
  Result<QueryResult> next = (*session)->Execute("SELECT * FROM t");
  ASSERT_FALSE(next.ok());
  EXPECT_EQ(next.status().code(), StatusCode::kCancelled);
}

TEST_F(ServerTest, WalActivityRollsUpPerSessionAndServer) {
  TempDir dir;
  EngineOptions engine_options;
  engine_options.wal_dir = dir.path;
  SoftDb db(engine_options);
  ASSERT_TRUE(db.Execute("CREATE TABLE w (id INT, v INT)").ok());

  SessionManager server(&db);
  auto a = server.OpenSession("a");
  auto b = server.OpenSession("b");
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE((*a)->Execute("INSERT INTO w VALUES (" + std::to_string(i) +
                              ", 1)")
                    .ok());
  }
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE((*b)->Execute("INSERT INTO w VALUES (" +
                              std::to_string(100 + i) + ", 2)")
                    .ok());
  }
  EXPECT_GT((*a)->stats().wal_records.load(), 0u);
  EXPECT_GT((*b)->stats().wal_records.load(), 0u);
  EXPECT_EQ(server.stats().wal_records.load(),
            (*a)->stats().wal_records.load() +
                (*b)->stats().wal_records.load());
  EXPECT_EQ(server.stats().rows_output.load(), 0u);  // DML outputs no rows.
}

// ------------------------------------------------- drain + WAL + recovery

TEST_F(ServerTest, DrainCheckpointsWalAndStateRecoversBitIdentical) {
  TempDir dir;
  std::vector<std::string> control_rows;
  {
    SoftDb control;
    ASSERT_TRUE(
        control.Execute("CREATE TABLE s (id INT PRIMARY KEY, v INT)").ok());
    for (int i = 0; i < 30; ++i) {
      ASSERT_TRUE(control
                      .Execute("INSERT INTO s VALUES (" + std::to_string(i) +
                               ", " + std::to_string(i * 3) + ")")
                      .ok());
    }
    ASSERT_TRUE(control.Execute("UPDATE s SET v = 0 WHERE id = 5").ok());
    control_rows = SortedRows(&control, "SELECT * FROM s");
  }

  {
    EngineOptions engine_options;
    engine_options.wal_dir = dir.path;
    SoftDb db(engine_options);
    ASSERT_TRUE(
        db.Execute("CREATE TABLE s (id INT PRIMARY KEY, v INT)").ok());
    ServerOptions options;
    options.worker_threads = 4;
    SessionManager server(&db, options);
    // Four sessions insert disjoint key ranges concurrently, then one
    // runs the update; the end state is order-independent.
    std::vector<std::thread> clients;
    for (int s = 0; s < 4; ++s) {
      clients.emplace_back([&server, s] {
        auto session = server.OpenSession();
        ASSERT_TRUE(session.ok());
        for (int i = s; i < 30; i += 4) {
          auto r = (*session)->Execute("INSERT INTO s VALUES (" +
                                       std::to_string(i) + ", " +
                                       std::to_string(i * 3) + ")");
          EXPECT_TRUE(r.ok()) << r.status().ToString();
        }
      });
    }
    for (auto& t : clients) t.join();
    auto session = server.OpenSession();
    ASSERT_TRUE(session.ok());
    ASSERT_TRUE((*session)->Execute("UPDATE s SET v = 0 WHERE id = 5").ok());

    // Drain checkpoints: the log is truncated into checkpoint.bin.
    ASSERT_TRUE(server.Drain().ok());
    EXPECT_TRUE(fs::exists(fs::path(dir.path) / "checkpoint.bin"));
  }

  auto recovered = SoftDb::Recover(dir.path);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_EQ(SortedRows(recovered->get(), "SELECT * FROM s"), control_rows);
}

TEST_F(ServerTest, CrashMidServeRecoversServedStateExactly) {
  TempDir dir;
  std::vector<std::string> control_rows;
  {
    SoftDb control;
    ASSERT_TRUE(
        control.Execute("CREATE TABLE c (id INT PRIMARY KEY, v INT)").ok());
    for (int i = 0; i < 24; ++i) {
      ASSERT_TRUE(control
                      .Execute("INSERT INTO c VALUES (" + std::to_string(i) +
                               ", " + std::to_string(i) + ")")
                      .ok());
    }
    control_rows = SortedRows(&control, "SELECT * FROM c");
  }

  {
    EngineOptions engine_options;
    engine_options.wal_dir = dir.path;
    SoftDb db(engine_options);
    ASSERT_TRUE(
        db.Execute("CREATE TABLE c (id INT PRIMARY KEY, v INT)").ok());
    ServerOptions options;
    options.worker_threads = 3;
    SessionManager server(&db, options);
    std::vector<std::thread> clients;
    for (int s = 0; s < 3; ++s) {
      clients.emplace_back([&server, s] {
        auto session = server.OpenSession();
        ASSERT_TRUE(session.ok());
        for (int i = s; i < 24; i += 3) {
          auto r = (*session)->Execute("INSERT INTO c VALUES (" +
                                       std::to_string(i) + ", " +
                                       std::to_string(i) + ")");
          EXPECT_TRUE(r.ok()) << r.status().ToString();
        }
      });
    }
    for (auto& t : clients) t.join();
    // "Crash": the server dies without Drain — no checkpoint, the WAL
    // tail is all there is. (Destruction cancels, it does not flush
    // state beyond what each acked statement already logged.)
  }

  auto recovered = SoftDb::Recover(dir.path);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_EQ(SortedRows(recovered->get(), "SELECT * FROM c"), control_rows);
}

// --------------------------------------------------------- overload drill

TEST_F(ServerTest, OverloadDrillTypedRejectionsAndExactRecovery) {
  TempDir dir;
  EngineOptions engine_options;
  engine_options.wal_dir = dir.path;
  SoftDb db(engine_options);
  ASSERT_TRUE(
      db.Execute("CREATE TABLE o (id INT PRIMARY KEY, v INT)").ok());

  ServerOptions options;
  options.worker_threads = 2;
  options.max_queue_depth = 4;
  options.high_water_depth = 3;
  options.retry.max_attempts = 1;  // Rejections must surface, not heal.
  SessionManager server(&db, options);

  // 8 clients hammer a 4-deep queue with single-row inserts (unique keys
  // per client). Every failure must be a typed admission rejection —
  // never a partial write — so the acked set fully determines state.
  std::mutex acked_mu;
  std::vector<int> acked;
  std::atomic<int> bad_status{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < 8; ++c) {
    clients.emplace_back([&, c] {
      auto session = server.OpenSession("load-" + std::to_string(c));
      ASSERT_TRUE(session.ok());
      for (int i = 0; i < 40; ++i) {
        const int key = c * 1000 + i;
        auto r = (*session)->Execute("INSERT INTO o VALUES (" +
                                     std::to_string(key) + ", 1)");
        if (r.ok()) {
          std::lock_guard<std::mutex> lk(acked_mu);
          acked.push_back(key);
        } else if (r.status().code() != StatusCode::kResourceExhausted) {
          ++bad_status;
        }
      }
    });
  }
  for (auto& t : clients) t.join();
  EXPECT_EQ(bad_status.load(), 0);
  EXPECT_GT(server.stats().succeeded.load(), 0u);
  ASSERT_TRUE(server.Drain().ok());

  // Recovery reproduces exactly the acked set.
  std::vector<std::string> expected;
  {
    SoftDb control;
    ASSERT_TRUE(
        control.Execute("CREATE TABLE o (id INT PRIMARY KEY, v INT)").ok());
    std::vector<int> keys;
    {
      std::lock_guard<std::mutex> lk(acked_mu);
      keys = acked;
    }
    std::sort(keys.begin(), keys.end());
    for (int key : keys) {
      ASSERT_TRUE(control
                      .Execute("INSERT INTO o VALUES (" +
                               std::to_string(key) + ", 1)")
                      .ok());
    }
    expected = SortedRows(&control, "SELECT * FROM o");
  }
  auto recovered = SoftDb::Recover(dir.path);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_EQ(SortedRows(recovered->get(), "SELECT * FROM o"), expected);
}

}  // namespace
}  // namespace softdb
