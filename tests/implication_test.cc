// Golden verdicts and a brute-force soundness property for the symbolic
// predicate-implication engine. The property is one-sided, matching the
// engine's contract: kImplies / kContradicts are proofs that must hold on
// every sampled row; kUnknown is never wrong.

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "analysis/implication.h"
#include "common/rng.h"
#include "common/str_util.h"
#include "constraints/column_offset_sc.h"
#include "constraints/domain_sc.h"
#include "sql/parser.h"

namespace softdb {
namespace {

using Verdict = ImplicationVerdict;

Schema TestSchema() {
  Schema schema;
  ColumnDef a;
  a.name = "a";
  a.type = TypeId::kInt64;
  a.nullable = false;
  a.table = "t";
  schema.AddColumn(a);
  ColumnDef b;
  b.name = "b";
  b.type = TypeId::kInt64;
  b.nullable = true;
  b.table = "t";
  schema.AddColumn(b);
  ColumnDef c;
  c.name = "c";
  c.type = TypeId::kDouble;
  c.nullable = true;
  c.table = "t";
  schema.AddColumn(c);
  ColumnDef e;
  e.name = "e";
  e.type = TypeId::kString;
  e.nullable = true;
  e.table = "t";
  schema.AddColumn(e);
  return schema;
}

ExprPtr Parse(const Schema& schema, const std::string& text) {
  auto expr = ParseExpression(text);
  EXPECT_TRUE(expr.ok()) << text << ": " << expr.status().ToString();
  if (!expr.ok()) return nullptr;
  auto bound = (*expr)->Bind(schema);
  EXPECT_TRUE(bound.ok()) << text << ": " << bound.ToString();
  if (!bound.ok()) return nullptr;
  return std::move(*expr);
}

class ImplicationGolden : public ::testing::Test {
 protected:
  Verdict Ask(const std::string& p, const std::string& q) {
    ExprPtr pe = Parse(schema_, p);
    ExprPtr qe = Parse(schema_, q);
    if (pe == nullptr || qe == nullptr) return Verdict::kUnknown;
    ImplicationEngine engine(&schema_, ImplicationFacts{});
    return engine.Check(*pe, *qe);
  }

  Schema schema_ = TestSchema();
};

TEST(IntervalAlgebra, ContainmentRespectsStrictness) {
  EXPECT_TRUE(Interval::AtLeast(5, true).Contains(Interval::Range(6, 10)));
  EXPECT_FALSE(Interval::AtLeast(5, true).Contains(Interval::Range(5, 10)));
  EXPECT_TRUE(Interval::AtLeast(5, false).Contains(Interval::Range(5, 10)));
  EXPECT_TRUE(Interval::Range(0, 10).Contains(Interval::Empty()));
  EXPECT_FALSE(Interval::Range(0, 10).Contains(Interval::Top()));
  EXPECT_TRUE(Interval::Top().Contains(Interval::Top()));
  EXPECT_TRUE(Interval::AtMost(3, true).ContainsPoint(2.999));
  EXPECT_FALSE(Interval::AtMost(3, true).ContainsPoint(3));
}

TEST(IntervalAlgebra, IntersectionDetectsVoid) {
  Interval i = Interval::Range(0, 10);
  i.Intersect(Interval::AtLeast(20, false));
  EXPECT_TRUE(i.empty);

  // Touching endpoints with one strict side: (5, inf) ∩ (-inf, 5] = ∅.
  Interval j = Interval::AtLeast(5, true);
  j.Intersect(Interval::AtMost(5, false));
  EXPECT_TRUE(j.empty);

  // Without strictness the single point 5 survives.
  Interval k = Interval::AtLeast(5, false);
  k.Intersect(Interval::AtMost(5, false));
  EXPECT_FALSE(k.empty);
  double point = 0.0;
  EXPECT_TRUE(k.IsPoint(&point));
  EXPECT_EQ(point, 5.0);
}

TEST(IntervalAlgebra, ArithmeticIsMinkowski) {
  const Interval sum = Interval::Range(0, 10).Plus(Interval::Point(5));
  EXPECT_EQ(sum.lo, 5.0);
  EXPECT_EQ(sum.hi, 15.0);
  const Interval diff = Interval::Range(0, 10).Minus(Interval::Range(2, 3));
  EXPECT_EQ(diff.lo, -3.0);
  EXPECT_EQ(diff.hi, 8.0);
  const Interval neg = Interval::AtLeast(4, true).Negated();
  EXPECT_EQ(neg.hi, -4.0);
  EXPECT_TRUE(neg.hi_strict);
  const Interval scaled = Interval::Range(1, 2).ScaledBy(-3.0, 1.0);
  EXPECT_EQ(scaled.lo, -5.0);
  EXPECT_EQ(scaled.hi, -2.0);
}

TEST(IntervalAlgebra, DomainFactsHandleHalfOpenAndStringPins) {
  // MAX 'open' (a non-numeric sentinel) leaves the upper side unbounded.
  DomainSc half("half", "t", 0, Value::Int64(250), Value::String("open"));
  auto fact = DomainIntervalFact(half);
  ASSERT_TRUE(fact.has_value());
  EXPECT_EQ(fact->interval.lo, 250.0);
  EXPECT_TRUE(fact->interval.hi ==
              std::numeric_limits<double>::infinity());

  DomainSc pin("pin", "t", 3, Value::String("EUR"), Value::String("EUR"));
  auto pinned = DomainIntervalFact(pin);
  ASSERT_TRUE(pinned.has_value());
  ASSERT_TRUE(pinned->interval.str_equal.has_value());

  // A non-degenerate string domain carries no usable fact.
  DomainSc range("range", "t", 3, Value::String("A"), Value::String("Z"));
  EXPECT_FALSE(DomainIntervalFact(range).has_value());
}

TEST_F(ImplicationGolden, SimpleBoundsImply) {
  EXPECT_EQ(Ask("a > 5", "a > 3"), Verdict::kImplies);
  EXPECT_EQ(Ask("a >= 5", "a > 4"), Verdict::kImplies);
  EXPECT_EQ(Ask("a = 5", "a BETWEEN 0 AND 10"), Verdict::kImplies);
  EXPECT_EQ(Ask("a = 5", "a <> 3"), Verdict::kImplies);
  EXPECT_EQ(Ask("a > 5 AND a < 9", "a BETWEEN 5 AND 9"), Verdict::kImplies);
}

TEST_F(ImplicationGolden, DisjointBoundsContradict) {
  EXPECT_EQ(Ask("a > 5", "a < 3"), Verdict::kContradicts);
  EXPECT_EQ(Ask("a = 5", "a = 6"), Verdict::kContradicts);
  EXPECT_EQ(Ask("a >= 5", "a < 5"), Verdict::kContradicts);
  EXPECT_EQ(Ask("e = 'red'", "e = 'blue'"), Verdict::kContradicts);
}

TEST_F(ImplicationGolden, WeakerEvidenceStaysUnknown) {
  EXPECT_EQ(Ask("a > 5", "a > 10"), Verdict::kUnknown);
  EXPECT_EQ(Ask("a > 5", "b > 0"), Verdict::kUnknown);
  EXPECT_EQ(Ask("c > 0.5", "e = 'red'"), Verdict::kUnknown);
}

TEST_F(ImplicationGolden, NullablePremiseForcesNonNull) {
  // P TRUE requires b non-NULL, so the entailment is sound even though b
  // is nullable in the schema.
  EXPECT_EQ(Ask("b > 5", "b > 3"), Verdict::kImplies);
  EXPECT_EQ(Ask("b > 5", "b IS NOT NULL"), Verdict::kImplies);
  EXPECT_EQ(Ask("b IS NULL", "b > 3"), Verdict::kContradicts);
}

TEST_F(ImplicationGolden, DisjunctionsEntailPerBranch) {
  EXPECT_EQ(Ask("a > 5", "a > 3 OR a < 0"), Verdict::kImplies);
  EXPECT_EQ(Ask("a > 5 OR a > 7", "a > 3"), Verdict::kUnknown);
}

TEST_F(ImplicationGolden, DifferenceChainsPropagate) {
  EXPECT_EQ(Ask("a > 10 AND b - a >= 0", "b > 10"), Verdict::kImplies);
  EXPECT_EQ(Ask("b - a >= 0 AND b - a <= 5", "b - a <= 9"),
            Verdict::kImplies);
  EXPECT_EQ(Ask("a > 10 AND b - a >= 0", "b < 5"), Verdict::kContradicts);
}

TEST_F(ImplicationGolden, FactsFeedEntailmentAndContradiction) {
  Schema schema = TestSchema();
  ImplicationFacts facts;
  facts.intervals.push_back({0, Interval::Range(0, 100), "sc:dom"});
  facts.diffs.push_back({0, 1, Interval::Range(0, 10), "sc:asc"});
  ImplicationEngine engine(&schema, facts);

  std::set<std::string> used;
  ExprPtr q = Parse(schema, "a >= 0");
  ASSERT_NE(q, nullptr);
  EXPECT_TRUE(engine.FactsImply(*q, &used));
  EXPECT_EQ(used.count("sc:dom"), 1u);

  // b is nullable and the fact base is null-compliant: no entailment.
  ExprPtr qb = Parse(schema, "b >= 0");
  ASSERT_NE(qb, nullptr);
  EXPECT_FALSE(engine.FactsImply(*qb));

  // But a premise that forces b non-NULL unlocks the offset chain:
  // b ≥ a ≥ 0 (facts) once b is known non-NULL.
  ExprPtr p = Parse(schema, "b IS NOT NULL");
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(engine.Check(*p, *qb), Verdict::kImplies);

  ExprPtr over = Parse(schema, "a > 200");
  ASSERT_NE(over, nullptr);
  std::vector<const Expr*> conjuncts;
  ImplicationEngine::CollectConjuncts(*over, &conjuncts);
  used.clear();
  EXPECT_TRUE(engine.Unsatisfiable(conjuncts, &used));
  EXPECT_EQ(used.count("sc:dom"), 1u);
}

TEST_F(ImplicationGolden, AssumeNonNullEnablesChainContradiction) {
  // early/lag/late: a ∈ [0,100], (b - a) ∈ [0,10], b ∈ [200,300]. Without
  // assume_non_null a NULL b complies vacuously; with it the closure is
  // void.
  Schema schema = TestSchema();
  ImplicationFacts facts;
  facts.intervals.push_back({0, Interval::Range(0, 100), "sc:early"});
  facts.diffs.push_back({0, 1, Interval::Range(0, 10), "sc:lag"});
  facts.intervals.push_back({1, Interval::Range(200, 300), "sc:late"});

  ImplicationEngine plain(&schema, facts);
  EXPECT_FALSE(plain.FactsUnsatisfiable());

  ImplicationOptions lint_mode;
  lint_mode.assume_non_null = true;
  ImplicationEngine lint(&schema, facts, lint_mode);
  std::set<std::string> used;
  EXPECT_TRUE(lint.FactsUnsatisfiable(&used));
  EXPECT_TRUE(used.count("sc:lag") == 1 || used.count("sc:late") == 1);
}

// --- Brute-force soundness property ------------------------------------

class ImplicationProperty : public ::testing::Test {
 protected:
  void SetUp() override {
    schema_ = TestSchema();
    // A spread of rows wide enough to refute most wrong proofs: every
    // combination the generators can mention, plus NULLs in b/c/e.
    for (int a = -25; a <= 125; a += 5) {
      for (int spread = -6; spread <= 14; spread += 5) {
        std::vector<Value> row;
        row.push_back(Value::Int64(a));
        row.push_back(spread == -6 ? Value::Null()
                                   : Value::Int64(a + spread));
        row.push_back(spread == 9 ? Value::Null()
                                  : Value::Double(a * 7.5 + spread));
        row.push_back(spread < 4
                          ? Value::String(spread < -1 ? "red" : "blue")
                          : Value::Null());
        rows_.push_back(std::move(row));
      }
    }
  }

  std::string RandomTerm(Rng* rng) {
    static const char* kCols[] = {"a", "b", "c"};
    static const char* kOps[] = {"=", "<>", "<", "<=", ">", ">="};
    switch (rng->Uniform(0, 6)) {
      case 0:
        return StrFormat("a BETWEEN %lld AND %lld",
                         static_cast<long long>(rng->Uniform(-10, 60)),
                         static_cast<long long>(rng->Uniform(40, 130)));
      case 1:
        return rng->NextBool(0.5) ? "b IS NULL" : "b IS NOT NULL";
      case 2:
        return StrFormat("e %s '%s'", rng->NextBool(0.8) ? "=" : "<>",
                         rng->NextBool(0.5) ? "red" : "blue");
      case 3:
        return StrFormat("b - a %s %lld", kOps[rng->Uniform(0, 5)],
                         static_cast<long long>(rng->Uniform(-8, 16)));
      default: {
        const char* col = kCols[rng->Uniform(0, 2)];
        return StrFormat("%s %s %lld", col, kOps[rng->Uniform(0, 5)],
                         static_cast<long long>(rng->Uniform(-30, 130)));
      }
    }
  }

  std::string RandomPredicate(Rng* rng) {
    std::string out = RandomTerm(rng);
    const int extra = static_cast<int>(rng->Uniform(0, 2));
    for (int i = 0; i < extra; ++i) {
      out += rng->NextBool(0.7) ? " AND " : " OR ";
      out += RandomTerm(rng);
    }
    return out;
  }

  // SQL 3VL: TRUE only.
  bool EvalTrue(const Expr& expr, const std::vector<Value>& row) {
    auto v = expr.Eval(row);
    EXPECT_TRUE(v.ok());
    return v.ok() && !v->is_null() && v->AsBool();
  }

  Schema schema_;
  std::vector<std::vector<Value>> rows_;
};

TEST_F(ImplicationProperty, VerdictsNeverContradictDirectEvaluation) {
  ImplicationEngine engine(&schema_, ImplicationFacts{});
  std::size_t implies = 0;
  std::size_t contradicts = 0;
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    Rng rng(seed);
    for (int iter = 0; iter < 300; ++iter) {
      const std::string p_text = RandomPredicate(&rng);
      const std::string q_text = RandomPredicate(&rng);
      ExprPtr p = Parse(schema_, p_text);
      ExprPtr q = Parse(schema_, q_text);
      ASSERT_NE(p, nullptr);
      ASSERT_NE(q, nullptr);
      const Verdict verdict = engine.Check(*p, *q);
      if (verdict == Verdict::kUnknown) continue;
      if (verdict == Verdict::kImplies) ++implies;
      if (verdict == Verdict::kContradicts) ++contradicts;
      for (const std::vector<Value>& row : rows_) {
        const bool pt = EvalTrue(*p, row);
        const bool qt = EvalTrue(*q, row);
        if (verdict == Verdict::kImplies) {
          ASSERT_TRUE(!pt || qt)
              << "(" << p_text << ") claimed to imply (" << q_text << ")";
        } else {
          ASSERT_FALSE(pt && qt)
              << "(" << p_text << ") claimed to contradict (" << q_text
              << ")";
        }
      }
    }
  }
  // The engine must actually decide a healthy share of the pairs; an
  // always-kUnknown implementation would pass the soundness check above.
  EXPECT_GT(implies, 50u);
  EXPECT_GT(contradicts, 50u);
}

TEST_F(ImplicationProperty, FactVerdictsHoldOnCompliantRows) {
  // Facts: a ∈ [0, 100] and (b - a) ∈ [0, 10], exactly how the rows are
  // generated below (b occasionally NULL — facts are null-compliant).
  ImplicationFacts facts;
  facts.intervals.push_back({0, Interval::Range(0, 100), "sc:dom"});
  facts.diffs.push_back({0, 1, Interval::Range(0, 10), "sc:asc"});
  ImplicationEngine engine(&schema_, facts);

  std::vector<std::vector<Value>> compliant;
  Rng data_rng(99);
  for (int i = 0; i < 400; ++i) {
    const std::int64_t a = data_rng.Uniform(0, 100);
    std::vector<Value> row;
    row.push_back(Value::Int64(a));
    row.push_back(data_rng.NextBool(0.1)
                      ? Value::Null()
                      : Value::Int64(a + data_rng.Uniform(0, 10)));
    row.push_back(Value::Double(data_rng.NextDouble() * 100.0));
    row.push_back(Value::String(data_rng.NextBool(0.5) ? "red" : "blue"));
    compliant.push_back(std::move(row));
  }

  std::size_t decided = 0;
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    Rng rng(seed * 31);
    for (int iter = 0; iter < 300; ++iter) {
      const std::string q_text = RandomPredicate(&rng);
      ExprPtr q = Parse(schema_, q_text);
      ASSERT_NE(q, nullptr);
      if (engine.FactsImply(*q)) {
        ++decided;
        for (const std::vector<Value>& row : compliant) {
          ASSERT_TRUE(EvalTrue(*q, row))
              << "facts claimed to imply (" << q_text << ")";
        }
      }
      std::vector<const Expr*> conjuncts;
      ImplicationEngine::CollectConjuncts(*q, &conjuncts);
      if (engine.Unsatisfiable(conjuncts)) {
        ++decided;
        for (const std::vector<Value>& row : compliant) {
          ASSERT_FALSE(EvalTrue(*q, row))
              << "facts claimed to exclude (" << q_text << ")";
        }
      }
    }
  }
  EXPECT_GT(decided, 30u);
}

}  // namespace
}  // namespace softdb
