#include <gtest/gtest.h>

#include "common/date.h"
#include "constraints/column_offset_sc.h"
#include "engine/softdb.h"

namespace softdb {
namespace {

class EngineTest : public ::testing::Test {
 protected:
  QueryResult Run(const std::string& sql) {
    auto result = db_.Execute(sql);
    EXPECT_TRUE(result.ok()) << sql << " -> " << result.status().ToString();
    return result.ok() ? *std::move(result) : QueryResult{};
  }
  SoftDb db_;
};

TEST_F(EngineTest, CreateInsertSelectRoundTrip) {
  Run("CREATE TABLE t (a BIGINT NOT NULL, b VARCHAR, c DATE)");
  Run("INSERT INTO t VALUES (1, 'x', DATE '1999-01-01')");
  Run("INSERT INTO t VALUES (2, NULL, NULL)");
  auto r = Run("SELECT * FROM t ORDER BY a");
  ASSERT_EQ(r.rows.NumRows(), 2u);
  EXPECT_EQ(r.rows.rows[0][1].AsString(), "x");
  EXPECT_TRUE(r.rows.rows[1][1].is_null());
}

TEST_F(EngineTest, InsertCoercesNumericTypes) {
  Run("CREATE TABLE t (d DOUBLE, i BIGINT)");
  Run("INSERT INTO t VALUES (3, 4.6)");  // Int into double, double into int.
  auto r = Run("SELECT * FROM t");
  EXPECT_EQ(r.rows.rows[0][0].type(), TypeId::kDouble);
  EXPECT_EQ(r.rows.rows[0][0].AsDouble(), 3.0);
  EXPECT_EQ(r.rows.rows[0][1].AsInt64(), 5);
}

TEST_F(EngineTest, InsertArityMismatchRejected) {
  Run("CREATE TABLE t (a BIGINT, b BIGINT)");
  EXPECT_FALSE(db_.Execute("INSERT INTO t VALUES (1)").ok());
  EXPECT_FALSE(db_.Execute("INSERT INTO t VALUES (1, 2, 3)").ok());
}

TEST_F(EngineTest, DdlErrors) {
  Run("CREATE TABLE t (a BIGINT)");
  EXPECT_FALSE(db_.Execute("CREATE TABLE t (a BIGINT)").ok());
  EXPECT_FALSE(db_.Execute("DROP TABLE nosuch").ok());
  EXPECT_TRUE(db_.Execute("DROP TABLE t").ok());
  EXPECT_FALSE(db_.Execute("SELECT * FROM t").ok());
}

TEST_F(EngineTest, CreateIndexViaSql) {
  Run("CREATE TABLE t (a BIGINT)");
  Run("INSERT INTO t VALUES (3), (1), (2)");
  Run("CREATE INDEX ia ON t (a)");
  EXPECT_NE(db_.catalog().FindIndex("t", "a"), nullptr);
  EXPECT_FALSE(db_.Execute("CREATE INDEX ia ON t (a)").ok());
}

TEST_F(EngineTest, AnalyzeViaSql) {
  Run("CREATE TABLE t (a BIGINT)");
  Run("INSERT INTO t VALUES (1), (2), (3)");
  Run("ANALYZE t");
  const TableStats* stats = db_.stats().Get("t");
  ASSERT_NE(stats, nullptr);
  EXPECT_EQ(stats->row_count, 3u);
  Run("ANALYZE");  // All tables.
}

TEST_F(EngineTest, PlanCacheLifecycle) {
  Run("CREATE TABLE t (a BIGINT)");
  Run("INSERT INTO t VALUES (1), (2)");
  auto first = Run("SELECT * FROM t");
  EXPECT_FALSE(first.from_plan_cache);
  auto second = Run("SELECT * FROM t");
  EXPECT_TRUE(second.from_plan_cache);
  EXPECT_EQ(second.rows.NumRows(), 2u);
  EXPECT_EQ(db_.plan_cache().hits(), 1u);

  // Disable cache: re-planned every time.
  db_.options().use_plan_cache = false;
  auto third = Run("SELECT * FROM t");
  EXPECT_FALSE(third.from_plan_cache);
}

TEST_F(EngineTest, CachedPlanSeesNewData) {
  Run("CREATE TABLE t (a BIGINT)");
  Run("INSERT INTO t VALUES (1)");
  Run("SELECT * FROM t");
  Run("INSERT INTO t VALUES (2)");
  auto r = Run("SELECT * FROM t");
  EXPECT_TRUE(r.from_plan_cache);
  EXPECT_EQ(r.rows.NumRows(), 2u);  // Plans are compiled, data is live.
}

TEST_F(EngineTest, RunMaintenanceDrainsRepairsAndRearms) {
  Run("CREATE TABLE t (x BIGINT NOT NULL, y BIGINT NOT NULL)");
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(
        db_.InsertRow("t", {Value::Int64(i), Value::Int64(i + 2)}).ok());
  }
  auto sc = std::make_unique<ColumnOffsetSc>("win", "t", 0, 1, 0, 5);
  sc->set_policy(ScMaintenancePolicy::kAsyncRepair);
  ASSERT_TRUE(db_.scs().Add(std::move(sc), db_.catalog()).ok());

  const std::string query = "SELECT * FROM t WHERE y = 30";
  auto first = Run(query);
  ASSERT_EQ(first.used_scs.size(), 1u);

  // Violating insert queues a repair and flips the package.
  ASSERT_TRUE(db_.InsertRow("t", {Value::Int64(100), Value::Int64(500)}).ok());
  EXPECT_EQ(db_.scs().Find("win")->state(), ScState::kRepairQueued);
  auto flipped = Run(query);
  EXPECT_TRUE(flipped.used_backup_plan);

  // Maintenance repairs the SC and re-arms the package.
  ASSERT_TRUE(db_.RunMaintenance().ok());
  EXPECT_EQ(db_.scs().Find("win")->state(), ScState::kActive);
  auto rearmed = Run(query);
  EXPECT_FALSE(rearmed.used_backup_plan);
}

TEST_F(EngineTest, ExceptionAstRewriteReturnsExactAnswers) {
  Run("CREATE TABLE t (x BIGINT NOT NULL, y BIGINT NOT NULL)");
  // y = x + 3 for most rows; every 20th row y = x + 50 (violator).
  for (int i = 0; i < 200; ++i) {
    const std::int64_t y = (i % 20 == 0) ? i + 50 : i + 3;
    ASSERT_TRUE(db_.InsertRow("t", {Value::Int64(i), Value::Int64(y)}).ok());
  }
  Run("CREATE INDEX ix ON t (x)");
  Run("ANALYZE t");
  auto sc = std::make_unique<ColumnOffsetSc>("win", "t", 0, 1, 0, 5);
  ASSERT_TRUE(db_.scs().Add(std::move(sc), db_.catalog()).ok());
  ASSERT_TRUE(db_.CreateExceptionAst("win").ok());

  // Rows with y in [100, 120]: compliant ones have x in [95, 120]; one
  // violator (i=60 -> y=110) has x=60, outside the introduced range. The
  // union with the exception AST must still find it.
  auto with = Run("SELECT * FROM t WHERE y BETWEEN 100 AND 120");
  db_.options().enable_exception_asts = false;
  db_.plan_cache().Clear();
  auto without = Run("SELECT * FROM t WHERE y BETWEEN 100 AND 120");
  EXPECT_EQ(with.rows.NumRows(), without.rows.NumRows());
  EXPECT_GT(with.rows.NumRows(), 0u);
}

TEST_F(EngineTest, UpdateMaintainsUniqueKeys) {
  Run("CREATE TABLE t (a BIGINT NOT NULL PRIMARY KEY, b BIGINT)");
  Run("INSERT INTO t VALUES (1, 0), (2, 0)");
  // Moving a=2 onto a=1 must fail...
  EXPECT_FALSE(db_.Execute("UPDATE t SET a = 1 WHERE a = 2").ok());
  // ...but updating a row to its own key value is fine.
  EXPECT_TRUE(db_.Execute("UPDATE t SET a = 2 WHERE a = 2").ok());
  // And moving to a fresh key is fine, freeing the old one.
  EXPECT_TRUE(db_.Execute("UPDATE t SET a = 5 WHERE a = 2").ok());
  EXPECT_TRUE(db_.Execute("INSERT INTO t VALUES (2, 0)").ok());
}

TEST_F(EngineTest, DeleteFreesUniqueKeys) {
  Run("CREATE TABLE t (a BIGINT NOT NULL PRIMARY KEY)");
  Run("INSERT INTO t VALUES (1)");
  Run("DELETE FROM t WHERE a = 1");
  EXPECT_TRUE(db_.Execute("INSERT INTO t VALUES (1)").ok());
}

TEST_F(EngineTest, UpdateKeepsIndexInSync) {
  Run("CREATE TABLE t (a BIGINT)");
  Run("INSERT INTO t VALUES (1), (2), (3)");
  Run("CREATE INDEX ia ON t (a)");
  Run("UPDATE t SET a = 10 WHERE a = 2");
  auto r = Run("SELECT * FROM t WHERE a >= 3 ORDER BY a");
  ASSERT_EQ(r.rows.NumRows(), 2u);
  EXPECT_EQ(r.rows.rows[1][0].AsInt64(), 10);
}

TEST_F(EngineTest, ExplainDoesNotExecute) {
  Run("CREATE TABLE t (a BIGINT)");
  Run("INSERT INTO t VALUES (1)");
  auto r = Run("EXPLAIN SELECT * FROM t");
  EXPECT_EQ(r.rows.NumRows(), 0u);
  EXPECT_NE(r.plan_text.find("Scan t"), std::string::npos);
  EXPECT_FALSE(db_.Explain("INSERT INTO t VALUES (2)").ok());
}

TEST_F(EngineTest, SoftConstraintNeverBlocksInserts) {
  Run("CREATE TABLE t (x BIGINT NOT NULL, y BIGINT NOT NULL)");
  ASSERT_TRUE(db_.InsertRow("t", {Value::Int64(0), Value::Int64(1)}).ok());
  auto sc = std::make_unique<ColumnOffsetSc>("win", "t", 0, 1, 0, 5);
  sc->set_policy(ScMaintenancePolicy::kDropOnViolation);
  ASSERT_TRUE(db_.scs().Add(std::move(sc), db_.catalog()).ok());
  // Violating insert SUCCEEDS — the SC is overturned instead (§2).
  EXPECT_TRUE(db_.InsertRow("t", {Value::Int64(0), Value::Int64(999)}).ok());
  EXPECT_EQ(db_.scs().Find("win")->state(), ScState::kViolated);
  EXPECT_EQ(Run("SELECT COUNT(*) AS n FROM t").rows.rows[0][0].AsInt64(), 2);
}

}  // namespace
}  // namespace softdb
