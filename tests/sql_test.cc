#include <gtest/gtest.h>

#include "common/date.h"
#include "sql/lexer.h"
#include "sql/parser.h"

namespace softdb {
namespace {

// ------------------------------------------------------------------ Lexer

TEST(LexerTest, KeywordsNormalizedIdentifiersKept) {
  auto tokens = Tokenize("select Foo FROM bar");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].text, "SELECT");
  EXPECT_EQ((*tokens)[0].type, TokenType::kKeyword);
  EXPECT_EQ((*tokens)[1].text, "Foo");
  EXPECT_EQ((*tokens)[1].type, TokenType::kIdentifier);
  EXPECT_EQ((*tokens)[2].text, "FROM");
}

TEST(LexerTest, NumbersAndStrings) {
  auto tokens = Tokenize("42 3.14 1e5 'it''s'");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].type, TokenType::kIntLiteral);
  EXPECT_EQ((*tokens)[1].type, TokenType::kFloatLiteral);
  EXPECT_EQ((*tokens)[2].type, TokenType::kFloatLiteral);
  EXPECT_EQ((*tokens)[3].type, TokenType::kStringLiteral);
  EXPECT_EQ((*tokens)[3].text, "it's");
}

TEST(LexerTest, OperatorsIncludingTwoChar) {
  auto tokens = Tokenize("<= >= <> != = < >");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].text, "<=");
  EXPECT_EQ((*tokens)[1].text, ">=");
  EXPECT_EQ((*tokens)[2].text, "<>");
  EXPECT_EQ((*tokens)[3].text, "<>");  // != normalizes.
}

TEST(LexerTest, CommentsSkipped) {
  auto tokens = Tokenize("SELECT -- comment here\n 1");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[1].type, TokenType::kIntLiteral);
}

TEST(LexerTest, Errors) {
  EXPECT_FALSE(Tokenize("'unterminated").ok());
  EXPECT_FALSE(Tokenize("select @foo").ok());
}

// ------------------------------------------------------------ Expressions

TEST(ParserExprTest, Precedence) {
  auto e = ParseExpression("a + b * 2 = 10");
  ASSERT_TRUE(e.ok());
  EXPECT_EQ((*e)->ToString(), "(a + (b * 2)) = 10");
}

TEST(ParserExprTest, AndOrNesting) {
  auto e = ParseExpression("a = 1 AND b = 2 OR c = 3");
  ASSERT_TRUE(e.ok());
  // AND binds tighter than OR.
  EXPECT_EQ((*e)->kind(), ExprKind::kOr);
}

TEST(ParserExprTest, BetweenInIsNull) {
  EXPECT_TRUE(ParseExpression("x BETWEEN 1 AND 10").ok());
  EXPECT_TRUE(ParseExpression("x IN (1, 2, 3)").ok());
  EXPECT_TRUE(ParseExpression("x NOT IN (1)").ok());
  EXPECT_TRUE(ParseExpression("x IS NULL").ok());
  EXPECT_TRUE(ParseExpression("x IS NOT NULL").ok());
}

TEST(ParserExprTest, DateLiteral) {
  auto e = ParseExpression("d >= DATE '1999-12-15'");
  ASSERT_TRUE(e.ok());
  EXPECT_EQ((*e)->ToString(), "d >= DATE '1999-12-15'");
  EXPECT_FALSE(ParseExpression("DATE 42").ok());
  EXPECT_FALSE(ParseExpression("DATE 'bogus'").ok());
}

TEST(ParserExprTest, UnaryMinusAndParens) {
  auto e = ParseExpression("-(3 + 4)");
  ASSERT_TRUE(e.ok());
  auto v = (*e)->Eval({});
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->AsInt64(), -7);
}

TEST(ParserExprTest, QualifiedColumn) {
  auto e = ParseExpression("t.col = 1");
  ASSERT_TRUE(e.ok());
  EXPECT_EQ((*e)->ToString(), "t.col = 1");
}

TEST(ParserExprTest, TrailingInputRejected) {
  EXPECT_FALSE(ParseExpression("a = 1 garbage junk").ok());
}

// -------------------------------------------------------------- Statements

TEST(ParserTest, SimpleSelect) {
  auto stmt = ParseStatement("SELECT a, b FROM t WHERE a > 5");
  ASSERT_TRUE(stmt.ok());
  EXPECT_EQ(stmt->kind, Statement::Kind::kSelect);
  EXPECT_EQ(stmt->select->items.size(), 2u);
  EXPECT_EQ(stmt->select->from.size(), 1u);
  EXPECT_NE(stmt->select->where, nullptr);
}

TEST(ParserTest, SelectStarWithAlias) {
  auto stmt = ParseStatement("SELECT * FROM orders o");
  ASSERT_TRUE(stmt.ok());
  EXPECT_TRUE(stmt->select->items[0].star);
  EXPECT_EQ(stmt->select->from[0].alias, "o");
  EXPECT_EQ(stmt->select->from[0].EffectiveName(), "o");
}

TEST(ParserTest, Joins) {
  auto stmt = ParseStatement(
      "SELECT o.id FROM orders o JOIN customer c ON o.cid = c.id "
      "INNER JOIN nation n ON c.nid = n.id");
  ASSERT_TRUE(stmt.ok());
  EXPECT_EQ(stmt->select->joins.size(), 2u);
  EXPECT_EQ(stmt->select->joins[0].table.alias, "c");
}

TEST(ParserTest, CommaJoin) {
  auto stmt = ParseStatement("SELECT * FROM a, b WHERE a.x = b.y");
  ASSERT_TRUE(stmt.ok());
  EXPECT_EQ(stmt->select->from.size(), 2u);
}

TEST(ParserTest, GroupByOrderByLimit) {
  auto stmt = ParseStatement(
      "SELECT dept, COUNT(*) AS n, SUM(budget) FROM project "
      "GROUP BY dept ORDER BY dept DESC, n LIMIT 10");
  ASSERT_TRUE(stmt.ok());
  const SelectStmt& s = *stmt->select;
  EXPECT_EQ(s.group_by.size(), 1u);
  ASSERT_EQ(s.order_by.size(), 2u);
  EXPECT_FALSE(s.order_by[0].ascending);
  EXPECT_TRUE(s.order_by[1].ascending);
  EXPECT_EQ(*s.limit, 10u);
  EXPECT_TRUE(s.items[1].agg_fn.has_value());
  EXPECT_EQ(s.items[1].alias, "n");
}

TEST(ParserTest, Aggregates) {
  auto stmt = ParseStatement(
      "SELECT COUNT(*), COUNT(x), SUM(x), AVG(x), MIN(x), MAX(x) FROM t");
  ASSERT_TRUE(stmt.ok());
  EXPECT_EQ(stmt->select->items.size(), 6u);
  for (const auto& item : stmt->select->items) {
    EXPECT_TRUE(item.agg_fn.has_value());
  }
  EXPECT_EQ(stmt->select->items[0].agg_arg, nullptr);  // COUNT(*).
  EXPECT_NE(stmt->select->items[1].agg_arg, nullptr);  // COUNT(x).
}

TEST(ParserTest, UnionAllChains) {
  auto stmt = ParseStatement(
      "SELECT a FROM t1 UNION ALL SELECT a FROM t2 UNION ALL SELECT a FROM "
      "t3");
  ASSERT_TRUE(stmt.ok());
  int branches = 1;
  const SelectStmt* s = stmt->select.get();
  while (s->union_next) {
    ++branches;
    s = s->union_next.get();
  }
  EXPECT_EQ(branches, 3);
}

TEST(ParserTest, Insert) {
  auto stmt = ParseStatement(
      "INSERT INTO t VALUES (1, 'a', DATE '1999-01-01'), (2, 'b', NULL)");
  ASSERT_TRUE(stmt.ok());
  EXPECT_EQ(stmt->kind, Statement::Kind::kInsert);
  EXPECT_EQ(stmt->insert->rows.size(), 2u);
  EXPECT_EQ(stmt->insert->rows[0].size(), 3u);
}

TEST(ParserTest, UpdateDelete) {
  auto up = ParseStatement("UPDATE t SET a = 1, b = b + 1 WHERE c = 2");
  ASSERT_TRUE(up.ok());
  EXPECT_EQ(up->update->assignments.size(), 2u);
  auto del = ParseStatement("DELETE FROM t WHERE a < 0");
  ASSERT_TRUE(del.ok());
  EXPECT_NE(del->del->where, nullptr);
  auto del_all = ParseStatement("DELETE FROM t");
  ASSERT_TRUE(del_all.ok());
  EXPECT_EQ(del_all->del->where, nullptr);
}

TEST(ParserTest, CreateTableWithConstraints) {
  auto stmt = ParseStatement(
      "CREATE TABLE orders ("
      "  o_id BIGINT NOT NULL PRIMARY KEY,"
      "  o_cust BIGINT NOT NULL,"
      "  o_price DOUBLE,"
      "  o_date DATE,"
      "  o_tag VARCHAR(32),"
      "  CONSTRAINT fk_cust FOREIGN KEY (o_cust) REFERENCES customer "
      "(c_id),"
      "  CHECK (o_price > 0),"
      "  UNIQUE (o_date, o_cust)"
      ")");
  ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
  const CreateTableStmt& ct = *stmt->create_table;
  EXPECT_EQ(ct.columns.size(), 5u);
  EXPECT_TRUE(ct.columns[0].not_null);
  EXPECT_EQ(ct.columns[2].type, TypeId::kDouble);
  EXPECT_EQ(ct.columns[3].type, TypeId::kDate);
  EXPECT_EQ(ct.columns[4].type, TypeId::kString);
  ASSERT_EQ(ct.constraints.size(), 4u);  // Inline PK + FK + CHECK + UNIQUE.
  EXPECT_EQ(ct.constraints[0].kind, ConstraintSpec::Kind::kPrimaryKey);
  EXPECT_EQ(ct.constraints[1].name, "fk_cust");
  EXPECT_EQ(ct.constraints[1].ref_table, "customer");
}

TEST(ParserTest, CreateIndex) {
  auto stmt = ParseStatement("CREATE INDEX idx ON t (col)");
  ASSERT_TRUE(stmt.ok());
  EXPECT_EQ(stmt->create_index->index, "idx");
  EXPECT_EQ(stmt->create_index->table, "t");
  EXPECT_EQ(stmt->create_index->column, "col");
}

TEST(ParserTest, AnalyzeExplainDrop) {
  EXPECT_EQ(ParseStatement("ANALYZE")->kind, Statement::Kind::kAnalyze);
  EXPECT_EQ(ParseStatement("ANALYZE t")->analyze->table, "t");
  EXPECT_EQ(ParseStatement("EXPLAIN SELECT a FROM t")->kind,
            Statement::Kind::kExplain);
  EXPECT_EQ(ParseStatement("DROP TABLE t")->kind,
            Statement::Kind::kDropTable);
}

TEST(ParserTest, ErrorsAreReported) {
  EXPECT_FALSE(ParseStatement("SELECT FROM t").ok());
  EXPECT_FALSE(ParseStatement("SELECT a").ok());                 // No FROM.
  EXPECT_FALSE(ParseStatement("SELECT a FROM t WHERE").ok());
  EXPECT_FALSE(ParseStatement("BOGUS STATEMENT").ok());
  EXPECT_FALSE(ParseStatement("SELECT a FROM t extra garbage ,").ok());
  EXPECT_FALSE(ParseStatement("INSERT INTO t VALUES 1").ok());
  EXPECT_FALSE(ParseStatement("CREATE TABLE t (a NOTATYPE)").ok());
  EXPECT_FALSE(ParseStatement("SELECT a FROM t LIMIT abc").ok());
}

TEST(ParserTest, TrailingSemicolonAccepted) {
  EXPECT_TRUE(ParseStatement("SELECT a FROM t;").ok());
}

}  // namespace
}  // namespace softdb
