// Rewrite-certificate tests (DESIGN.md §13). Every SC-driven rewrite the
// optimizer performs must emit a certificate the independent checker
// validates (translation validation); seeded mutations of any certificate
// field — narrowed premise, stale epoch, dropped premise, forged skip set —
// must be rejected; and accepted interval entailments must be witnessed by
// brute-force evaluation over an integer grid (one-sided soundness, like
// the implication-engine property test).

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "analysis/certificate.h"
#include "analysis/implication.h"
#include "common/date.h"
#include "constraints/column_offset_sc.h"
#include "constraints/domain_sc.h"
#include "constraints/zone_map_sc.h"
#include "engine/softdb.h"
#include "optimizer/planner.h"
#include "optimizer/rewriter.h"
#include "sql/binder.h"
#include "sql/parser.h"
#include "workload/generator.h"
#include "workload/sc_kit.h"

namespace softdb {
namespace {

// ------------------------------------------------------------- Harvest rig

class CertificateFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    WorkloadOptions options;
    options.customers = 100;
    options.orders = 1000;
    options.purchases = 2000;
    options.parts = 200;
    options.projects = 200;
    options.sales_per_month = 20;
    ASSERT_TRUE(GenerateWorkload(&db_, options).ok());
  }

  /// Parses, binds and rewrites `sql`, returning the certificates the
  /// rewriter emitted. When `physical` is set the rewritten plan is also
  /// lowered, so zone-map-skip certificates land too.
  std::vector<RewriteCertificate> Harvest(const std::string& sql,
                                          bool physical = false) {
    return HarvestFrom(&db_, sql, physical);
  }

  static std::vector<RewriteCertificate> HarvestFrom(SoftDb* db,
                                                     const std::string& sql,
                                                     bool physical) {
    auto stmt = ParseStatement(sql);
    EXPECT_TRUE(stmt.ok()) << sql;
    if (!stmt.ok()) return {};
    Binder binder(&db->catalog());
    auto bound = binder.BindSelect(*stmt->select);
    EXPECT_TRUE(bound.ok()) << sql << ": " << bound.status().ToString();
    if (!bound.ok()) return {};
    OptimizerContext ctx = db->MakeContext();
    Rewriter rewriter(&ctx);
    auto plan = rewriter.Rewrite(std::move(*bound));
    EXPECT_TRUE(plan.ok()) << sql << ": " << plan.status().ToString();
    if (!plan.ok()) return {};
    if (physical) {
      CardinalityEstimator estimator = db->MakeEstimator();
      PhysicalPlanner planner(&ctx, &estimator);
      auto op = planner.Plan(**plan);
      EXPECT_TRUE(op.ok()) << sql << ": " << op.status().ToString();
    }
    std::vector<RewriteCertificate> out;
    out.reserve(ctx.certificates.size());
    for (RewriteCertificate& cert : ctx.certificates) {
      out.push_back(std::move(cert));
    }
    return out;
  }

  CertificateChecker Checker() {
    return CertificateChecker(&db_.catalog(), &db_.ics(), &db_.scs());
  }

  /// Asserts every harvested certificate proves itself.
  void ExpectAllOk(const std::vector<RewriteCertificate>& certs) {
    const CertificateChecker checker = Checker();
    for (const RewriteCertificate& cert : certs) {
      const CertificateCheckResult res = checker.Check(cert);
      EXPECT_TRUE(res.ok()) << CertificateKindName(cert.kind) << " ["
                            << cert.rule << "]: " << res.message;
    }
  }

  const RewriteCertificate* FindKind(
      const std::vector<RewriteCertificate>& certs, CertificateKind kind) {
    for (const RewriteCertificate& cert : certs) {
      if (cert.kind == kind) return &cert;
    }
    return nullptr;
  }

  void AddAbsoluteShipSc() {
    auto sc = std::make_unique<ColumnOffsetSc>(
        "abs_ship", "purchase", WorkloadColumns::kPurchaseOrderDate,
        WorkloadColumns::kPurchaseShipDate, 0, 60);
    ASSERT_TRUE(db_.scs().Add(std::move(sc), db_.catalog()).ok());
    ASSERT_TRUE(db_.scs().Find("abs_ship")->IsAbsolute());
  }

  SoftDb db_;
};

// ------------------------------------------ Every transformation certifies

TEST_F(CertificateFixture, DomainDropEmitsValidCertificate) {
  ASSERT_TRUE(RegisterOrderPriceDomainSc(&db_).ok());
  auto certs = Harvest(
      "SELECT COUNT(*) AS n FROM orders WHERE o_totalprice <= 1000000");
  const RewriteCertificate* cert =
      FindKind(certs, CertificateKind::kImplicationPrune);
  ASSERT_NE(cert, nullptr);
  EXPECT_NE(cert->rule.find("domain-drop"), std::string::npos);
  EXPECT_EQ(cert->table, "orders");
  ASSERT_NE(cert->conclusion_expr, nullptr);
  EXPECT_FALSE(cert->premises.empty());
  EXPECT_FALSE(cert->ScEpochStrings().empty());
  ExpectAllOk(certs);
}

TEST_F(CertificateFixture, DomainContradictionEmitsValidCertificate) {
  ASSERT_TRUE(RegisterOrderPriceDomainSc(&db_).ok());
  auto certs = Harvest("SELECT * FROM orders WHERE o_totalprice > 1000000");
  const RewriteCertificate* cert =
      FindKind(certs, CertificateKind::kImplicationContradiction);
  ASSERT_NE(cert, nullptr);
  EXPECT_FALSE(cert->premises.empty());
  EXPECT_FALSE(cert->premise_exprs.empty());  // The contradicted conjunct.
  ExpectAllOk(certs);
}

TEST_F(CertificateFixture, OffsetIntroductionEmitsValidCertificate) {
  AddAbsoluteShipSc();
  auto certs = Harvest(
      "SELECT * FROM purchase WHERE ship_date = DATE '1999-12-15'");
  const RewriteCertificate* cert =
      FindKind(certs, CertificateKind::kPredicateIntroduction);
  ASSERT_NE(cert, nullptr);
  EXPECT_FALSE(cert->estimation_only);
  ASSERT_NE(cert->conclusion_expr, nullptr);
  ASSERT_FALSE(cert->premises.empty());
  EXPECT_EQ(cert->premises[0].kind, CertificatePremise::Kind::kDiffFact);
  EXPECT_FALSE(cert->premise_exprs.empty());  // The source predicate.
  ExpectAllOk(certs);
}

TEST_F(CertificateFixture, LinearIntroductionEmitsValidCertificate) {
  ASSERT_TRUE(RegisterPartCorrelationSc(&db_, 3.5).ok());
  ASSERT_TRUE(db_.scs().Find("sc_part_weight")->IsAbsolute());
  auto certs = Harvest(
      "SELECT * FROM part WHERE p_retailprice BETWEEN 500 AND 510");
  const RewriteCertificate* cert =
      FindKind(certs, CertificateKind::kPredicateIntroduction);
  ASSERT_NE(cert, nullptr);
  ASSERT_FALSE(cert->premises.empty());
  EXPECT_EQ(cert->premises[0].kind, CertificatePremise::Kind::kBandFact);
  ExpectAllOk(certs);
}

TEST_F(CertificateFixture, TwinSubstitutionEmitsValidCertificate) {
  ASSERT_TRUE(RegisterShipWindowSc(&db_).ok());  // Statistical: conf < 1.
  auto certs = Harvest(
      "SELECT * FROM purchase WHERE ship_date = DATE '1999-12-15'");
  const RewriteCertificate* cert =
      FindKind(certs, CertificateKind::kTwinSubstitution);
  ASSERT_NE(cert, nullptr);
  EXPECT_TRUE(cert->estimation_only);
  ExpectAllOk(certs);
}

TEST_F(CertificateFixture, ImplicationPruneEmitsValidCertificate) {
  AddAbsoluteShipSc();
  // With introduction off, pruning the redundant order_date conjunct must
  // consume the SC's diff fact directly: ship = order + [0, 60], so
  // ship >= d entails order >= d - 60.
  db_.options().enable_predicate_introduction = false;
  db_.options().enable_twinning = false;
  auto certs = Harvest(
      "SELECT * FROM purchase WHERE ship_date >= DATE '1999-12-01' "
      "AND order_date >= DATE '1999-10-02'");
  const RewriteCertificate* found = nullptr;
  for (const RewriteCertificate& cert : certs) {
    if (cert.kind == CertificateKind::kImplicationPrune &&
        cert.rule.find("implication-prune") != std::string::npos) {
      found = &cert;
    }
  }
  ASSERT_NE(found, nullptr);
  EXPECT_FALSE(found->premises.empty());
  EXPECT_FALSE(found->premise_exprs.empty());
  ExpectAllOk(certs);
}

TEST_F(CertificateFixture, FkJoinEliminationEmitsValidCertificate) {
  auto certs = Harvest(
      "SELECT o_orderkey, o_totalprice FROM orders "
      "JOIN customer ON o_custkey = c_custkey WHERE o_totalprice > 15000");
  const RewriteCertificate* cert =
      FindKind(certs, CertificateKind::kJoinElimination);
  ASSERT_NE(cert, nullptr);
  EXPECT_EQ(cert->table, "orders");
  EXPECT_EQ(cert->parent_table, "customer");
  EXPECT_EQ(cert->inclusion_source.rfind("fk:", 0), 0u);
  ExpectAllOk(certs);
}

TEST_F(CertificateFixture, InclusionScJoinEliminationEmitsValidCertificate) {
  SoftDb db2;
  WorkloadOptions options;
  options.customers = 100;
  options.orders = 500;
  options.purchases = 100;
  options.parts = 50;
  options.projects = 50;
  options.sales_per_month = 10;
  options.with_constraints = false;
  ASSERT_TRUE(GenerateWorkload(&db2, options).ok());
  ASSERT_TRUE(db2.ics()
                  .Add(std::make_unique<UniqueConstraint>(
                           "pk_customer", "customer",
                           std::vector<ColumnIdx>{
                               WorkloadColumns::kCustomerKey},
                           true, ConstraintMode::kEnforced),
                       db2.catalog())
                  .ok());
  ASSERT_TRUE(RegisterOrdersInclusionSc(&db2).ok());
  auto certs = HarvestFrom(
      &db2,
      "SELECT o_orderkey FROM orders JOIN customer ON o_custkey = c_custkey",
      /*physical=*/false);
  const RewriteCertificate* cert = nullptr;
  for (const RewriteCertificate& c : certs) {
    if (c.kind == CertificateKind::kJoinElimination) cert = &c;
  }
  ASSERT_NE(cert, nullptr);
  EXPECT_EQ(cert->inclusion_source.rfind("sc:", 0), 0u);
  const CertificateChecker checker(&db2.catalog(), &db2.ics(), &db2.scs());
  const CertificateCheckResult res = checker.Check(*cert);
  EXPECT_TRUE(res.ok()) << res.message;

  // Epoch bump on the inclusion SC: the same certificate goes stale.
  RewriteCertificate stale = cert->Clone();
  db2.scs().Find("sc_orders_customer_inclusion")->BumpEpoch();
  EXPECT_EQ(checker.Check(stale).verdict, CertificateVerdict::kStale);
}

TEST_F(CertificateFixture, EpochFastPathTracksPremiseScEpochs) {
  // The cache-hit fast path: a fully-validated certificate stays current
  // while every premise SC epoch is unchanged, and drops out of the fast
  // path (forcing a full re-check) the moment one moves.
  AddAbsoluteShipSc();
  auto certs = Harvest(
      "SELECT * FROM purchase WHERE ship_date >= DATE '1999-12-01'");
  const RewriteCertificate* cert =
      FindKind(certs, CertificateKind::kPredicateIntroduction);
  ASSERT_NE(cert, nullptr);
  const CertificateChecker checker = Checker();
  EXPECT_TRUE(checker.EpochsCurrent(*cert));
  db_.scs().Find("abs_ship")->BumpEpoch();
  EXPECT_FALSE(checker.EpochsCurrent(*cert));
}

// -------------------------------------------------------- Zone map skips

constexpr std::size_t kCertZoneRows = 4 * kZoneMapBlockRows;

class ZoneCertificateFixture : public CertificateFixture {
 protected:
  void SetUp() override {
    ASSERT_TRUE(
        db_.Execute("CREATE TABLE m (v BIGINT NOT NULL, w DOUBLE)").ok());
    for (std::size_t i = 0; i < kCertZoneRows; ++i) {
      std::vector<Value> row;
      row.push_back(Value::Int64(static_cast<std::int64_t>(i)));
      row.push_back(Value::Double(static_cast<double>(i) * 0.5));
      ASSERT_TRUE(db_.InsertRow("m", row).ok());
    }
    ASSERT_TRUE(db_.Execute("ANALYZE m").ok());
    ASSERT_TRUE(db_.MineZoneMaps("m").ok());
  }
};

TEST_F(ZoneCertificateFixture, ZoneMapSkipEmitsValidCertificate) {
  auto certs = Harvest("SELECT * FROM m WHERE v >= 3500", /*physical=*/true);
  const RewriteCertificate* cert =
      FindKind(certs, CertificateKind::kZoneMapSkip);
  ASSERT_NE(cert, nullptr);
  EXPECT_EQ(cert->table, "m");
  EXPECT_EQ(cert->zm_column, 0u);
  // v >= 3500 excludes blocks 0..2 (each block b covers [1024b, 1024b+1023]).
  EXPECT_EQ(cert->skipped_blocks.size(), 3u);
  EXPECT_EQ(cert->premises.size(), cert->skipped_blocks.size());
  ExpectAllOk(certs);
}

TEST_F(ZoneCertificateFixture, ForgedSkipSetRejected) {
  auto certs = Harvest("SELECT * FROM m WHERE v >= 3500", /*physical=*/true);
  const RewriteCertificate* cert =
      FindKind(certs, CertificateKind::kZoneMapSkip);
  ASSERT_NE(cert, nullptr);
  const CertificateChecker checker = Checker();

  // A skipped block with no backing premise is a forgery.
  RewriteCertificate unbacked = cert->Clone();
  unbacked.skipped_blocks.push_back(3);
  EXPECT_EQ(checker.Check(unbacked).verdict, CertificateVerdict::kInvalid);

  // Block 3 actually matches v >= 3500: skipping it would drop rows, even
  // with a premise whose recorded envelope honestly matches the block.
  RewriteCertificate wrong_block = cert->Clone();
  wrong_block.skipped_blocks[0] = 3;
  wrong_block.premises[0].block_index = 3;
  wrong_block.premises[0].block_min = 3 * kZoneMapBlockRows;
  wrong_block.premises[0].block_max = 4 * kZoneMapBlockRows - 1;
  EXPECT_EQ(checker.Check(wrong_block).verdict, CertificateVerdict::kInvalid);

  // A recorded envelope outside the live one claims the block held values
  // it never did (live envelopes only widen without an epoch bump, so an
  // honest recording is always inside today's).
  RewriteCertificate widened = cert->Clone();
  widened.premises[0].block_min = widened.premises[0].block_min - 1.0;
  EXPECT_EQ(checker.Check(widened).verdict, CertificateVerdict::kInvalid);

  // An epoch bump on the zone map makes the skip set stale, not invalid.
  RewriteCertificate stale = cert->Clone();
  db_.scs().Find("zm_m_v")->BumpEpoch();
  EXPECT_EQ(checker.Check(stale).verdict, CertificateVerdict::kStale);
}

// ---------------------------------------------- Seeded-mutation soundness

TEST_F(CertificateFixture, MutatedCertificatesAreRejected) {
  AddAbsoluteShipSc();
  auto certs = Harvest(
      "SELECT * FROM purchase WHERE ship_date = DATE '1999-12-15'");
  const RewriteCertificate* intro =
      FindKind(certs, CertificateKind::kPredicateIntroduction);
  ASSERT_NE(intro, nullptr);
  const CertificateChecker checker = Checker();
  ASSERT_TRUE(checker.Check(*intro).ok());

  // Wrong bound: the recorded diff interval is narrower than what the SC
  // provides today, i.e. the derivation assumed a fact nobody grants.
  RewriteCertificate narrowed = intro->Clone();
  ASSERT_FALSE(narrowed.premises.empty());
  narrowed.premises[0].interval = Interval::Range(0, 10);
  EXPECT_EQ(checker.Check(narrowed).verdict, CertificateVerdict::kInvalid);

  // Stale epoch: the premise names an epoch the SC no longer has.
  RewriteCertificate stale = intro->Clone();
  ASSERT_FALSE(stale.premises[0].sc_epochs.empty());
  stale.premises[0].sc_epochs[0].second += 1;
  EXPECT_EQ(checker.Check(stale).verdict, CertificateVerdict::kStale);

  // Dropped fact premise: the conclusion no longer follows.
  RewriteCertificate no_facts = intro->Clone();
  no_facts.premises.clear();
  EXPECT_EQ(checker.Check(no_facts).verdict, CertificateVerdict::kInvalid);

  // Dropped predicate premise: the diff fact alone proves nothing about
  // the introduced bound.
  RewriteCertificate no_preds = intro->Clone();
  no_preds.premise_exprs.clear();
  EXPECT_EQ(checker.Check(no_preds).verdict, CertificateVerdict::kInvalid);

  // A premise naming an unknown source is unverifiable.
  RewriteCertificate unknown = intro->Clone();
  unknown.premises[0].source = "sc:no_such_sc";
  unknown.premises[0].sc_epochs = {{"no_such_sc", 0}};
  EXPECT_NE(checker.Check(unknown).verdict, CertificateVerdict::kOk);
}

TEST_F(CertificateFixture, StrengthenedConclusionRejected) {
  ASSERT_TRUE(RegisterOrderPriceDomainSc(&db_).ok());
  auto certs = Harvest(
      "SELECT COUNT(*) AS n FROM orders WHERE o_totalprice <= 1000000");
  const RewriteCertificate* drop =
      FindKind(certs, CertificateKind::kImplicationPrune);
  ASSERT_NE(drop, nullptr);
  const CertificateChecker checker = Checker();
  ASSERT_TRUE(checker.Check(*drop).ok());

  // Claim the domain entailed a much stronger bound than it does.
  auto parsed = ParseExpression("o_totalprice <= 1");
  ASSERT_TRUE(parsed.ok());
  auto table = db_.catalog().GetTable("orders");
  ASSERT_TRUE(table.ok());
  ASSERT_TRUE((*parsed)->Bind((*table)->schema()).ok());
  RewriteCertificate stronger = drop->Clone();
  stronger.conclusion_expr = std::move(*parsed);
  EXPECT_EQ(checker.Check(stronger).verdict, CertificateVerdict::kInvalid);

  // A twin flag on a filtering rewrite must also be rejected: it would
  // excuse the conclusion from ever being proven.
  RewriteCertificate mislabeled = drop->Clone();
  mislabeled.estimation_only = true;
  EXPECT_EQ(checker.Check(mislabeled).verdict, CertificateVerdict::kInvalid);
}

TEST_F(CertificateFixture, TwinFlagDropRejected) {
  ASSERT_TRUE(RegisterShipWindowSc(&db_).ok());
  auto certs = Harvest(
      "SELECT * FROM purchase WHERE ship_date = DATE '1999-12-15'");
  const RewriteCertificate* twin =
      FindKind(certs, CertificateKind::kTwinSubstitution);
  ASSERT_NE(twin, nullptr);
  const CertificateChecker checker = Checker();
  ASSERT_TRUE(checker.Check(*twin).ok());

  // Stripping estimation_only turns the twin into an unproven filter.
  RewriteCertificate filter = twin->Clone();
  filter.estimation_only = false;
  EXPECT_EQ(checker.Check(filter).verdict, CertificateVerdict::kInvalid);
}

TEST_F(CertificateFixture, JoinEliminationMutationsRejected) {
  auto certs = Harvest(
      "SELECT o_orderkey FROM orders "
      "JOIN customer ON o_custkey = c_custkey");
  const RewriteCertificate* join =
      FindKind(certs, CertificateKind::kJoinElimination);
  ASSERT_NE(join, nullptr);
  const CertificateChecker checker = Checker();
  ASSERT_TRUE(checker.Check(*join).ok());

  // Forged inclusion source.
  RewriteCertificate forged = join->Clone();
  forged.inclusion_source = "fk:no_such_fk";
  for (CertificatePremise& p : forged.premises) {
    if (p.kind == CertificatePremise::Kind::kInclusion) {
      p.source = "fk:no_such_fk";
    }
  }
  EXPECT_NE(checker.Check(forged).verdict, CertificateVerdict::kOk);

  // Dropped uniqueness premise: inclusion alone does not license removal.
  RewriteCertificate no_unique = join->Clone();
  std::vector<CertificatePremise> kept;
  for (CertificatePremise& p : no_unique.premises) {
    if (p.kind != CertificatePremise::Kind::kUniqueKey) {
      kept.push_back(std::move(p));
    }
  }
  no_unique.premises = std::move(kept);
  EXPECT_EQ(checker.Check(no_unique).verdict, CertificateVerdict::kInvalid);

  // Key columns that are not actually unique over the parent.
  RewriteCertificate wrong_cols = join->Clone();
  for (CertificatePremise& p : wrong_cols.premises) {
    if (p.kind == CertificatePremise::Kind::kUniqueKey) {
      p.parent_columns = {WorkloadColumns::kCustomerBalance};
    }
  }
  EXPECT_NE(checker.Check(wrong_cols).verdict, CertificateVerdict::kOk);
}

// ------------------------------------- Brute-force entailment witnessing

/// Accepted interval entailments must be witnessed by evaluation: for
/// every (x, y) on an integer grid satisfying all fact premises and all
/// predicate premises, the conclusion must evaluate TRUE. One-sided, like
/// the implication engine's property test: rejections carry no obligation.
TEST(CertificateProperty, AcceptedEntailmentsWitnessedByEvaluation) {
  SoftDb db;
  ASSERT_TRUE(
      db.Execute("CREATE TABLE g (x BIGINT NOT NULL, y BIGINT NOT NULL)")
          .ok());
  for (std::int64_t x = 0; x <= 20; ++x) {
    ASSERT_TRUE(db.InsertRow("g", {Value::Int64(x),
                                   Value::Int64(x + (x % 11))})
                    .ok());
  }
  ASSERT_TRUE(db.scs()
                  .Add(std::make_unique<DomainSc>("dom_x", "g", 0,
                                                  Value::Int64(0),
                                                  Value::Int64(20)),
                       db.catalog())
                  .ok());
  ASSERT_TRUE(db.scs()
                  .Add(std::make_unique<ColumnOffsetSc>("off_xy", "g", 0, 1,
                                                        0, 10),
                       db.catalog())
                  .ok());
  ASSERT_TRUE(db.scs().Find("dom_x")->IsAbsolute());
  ASSERT_TRUE(db.scs().Find("off_xy")->IsAbsolute());

  auto table = db.catalog().GetTable("g");
  ASSERT_TRUE(table.ok());
  const Schema& schema = (*table)->schema();

  ImplicationFactsOptions fact_opts;
  const ImplicationFacts facts = BuildImplicationFacts(
      "g", db.catalog(), &db.ics(), &db.scs(), nullptr, fact_opts);
  ASSERT_FALSE(facts.Empty());
  std::set<std::string> all_sources;
  for (const auto& f : facts.intervals) all_sources.insert(f.source);
  for (const auto& f : facts.diffs) all_sources.insert(f.source);

  auto bind = [&](const std::string& text) {
    auto expr = ParseExpression(text);
    EXPECT_TRUE(expr.ok()) << text;
    if (!expr.ok()) return ExprPtr();
    EXPECT_TRUE((*expr)->Bind(schema).ok()) << text;
    return std::move(*expr);
  };

  // Grid membership in the abstract premises (NULL-free by schema).
  auto satisfies_facts = [](std::int64_t x, std::int64_t y) {
    return x >= 0 && x <= 20 && (y - x) >= 0 && (y - x) <= 10;
  };

  const CertificateChecker checker(&db.catalog(), &db.ics(), &db.scs());
  const char* ops[] = {"<=", "<", ">=", ">", "="};
  int accepted = 0;
  for (const char* premise_op : ops) {
    for (std::int64_t premise_c = -5; premise_c <= 25; premise_c += 5) {
      for (const char* concl_op : ops) {
        for (std::int64_t concl_c = -20; concl_c <= 40; concl_c += 3) {
          for (const char* concl_col : {"x", "y"}) {
            RewriteCertificate cert;
            cert.kind = CertificateKind::kImplicationPrune;
            cert.rule = "property-sweep";
            cert.table = "g";
            AppendFactPremises(facts, all_sources, &db.scs(),
                               &cert.premises);
            const std::string premise_text =
                std::string("x ") + premise_op + " " +
                std::to_string(premise_c);
            const std::string concl_text =
                std::string(concl_col) + " " + concl_op + " " +
                std::to_string(concl_c);
            cert.premise_exprs.push_back(bind(premise_text));
            cert.conclusion_expr = bind(concl_text);
            ASSERT_NE(cert.premise_exprs[0], nullptr);
            ASSERT_NE(cert.conclusion_expr, nullptr);
            if (!checker.Check(cert).ok()) continue;
            ++accepted;
            for (std::int64_t x = -15; x <= 35; ++x) {
              for (std::int64_t y = -15; y <= 45; ++y) {
                if (!satisfies_facts(x, y)) continue;
                std::vector<Value> row = {Value::Int64(x), Value::Int64(y)};
                auto premise_v = cert.premise_exprs[0]->Eval(row);
                ASSERT_TRUE(premise_v.ok());
                if (premise_v->is_null() || !premise_v->AsBool()) continue;
                auto concl_v = cert.conclusion_expr->Eval(row);
                ASSERT_TRUE(concl_v.ok());
                ASSERT_TRUE(!concl_v->is_null() && concl_v->AsBool())
                    << premise_text << " entails(?) " << concl_text
                    << " but x=" << x << " y=" << y << " refutes it";
              }
            }
          }
        }
      }
    }
  }
  // The sweep must not be vacuous: plenty of entailments really hold
  // (e.g. x >= 0 facts + x <= 5 premise entail y <= 15).
  EXPECT_GT(accepted, 50);
}

// ------------------------------------------------- Engine-level counters

TEST_F(CertificateFixture, EngineCountsCertificatesAndNeverFails) {
  AddAbsoluteShipSc();
  ASSERT_TRUE(RegisterOrderPriceDomainSc(&db_).ok());
  const char* queries[] = {
      "SELECT * FROM purchase WHERE ship_date = DATE '1999-12-15'",
      "SELECT COUNT(*) AS n FROM orders WHERE o_totalprice <= 1000000",
      "SELECT o_orderkey FROM orders JOIN customer "
      "ON o_custkey = c_custkey",
  };
  for (const char* sql : queries) {
    auto fresh = db_.Execute(sql);
    ASSERT_TRUE(fresh.ok()) << sql;
    EXPECT_GT(fresh->exec_stats.certificates_checked, 0u) << sql;
    EXPECT_EQ(fresh->exec_stats.certificates_failed, 0u) << sql;
    // Cache hits re-check the stored certificates: same count.
    auto hit = db_.Execute(sql);
    ASSERT_TRUE(hit.ok()) << sql;
    EXPECT_TRUE(hit->from_plan_cache);
    EXPECT_EQ(hit->exec_stats.certificates_checked,
              fresh->exec_stats.certificates_checked)
        << sql;
    EXPECT_EQ(hit->exec_stats.certificates_failed, 0u) << sql;
  }
}

TEST_F(CertificateFixture, CertifyPlansOffSkipsCheckingInRelease) {
  AddAbsoluteShipSc();
  db_.options().certify_plans = false;
  auto r = db_.Execute(
      "SELECT * FROM purchase WHERE ship_date = DATE '1999-12-15'");
  ASSERT_TRUE(r.ok());
#ifdef NDEBUG
  EXPECT_EQ(r->exec_stats.certificates_checked, 0u);
#else
  // Debug builds certify unconditionally.
  EXPECT_GT(r->exec_stats.certificates_checked, 0u);
#endif
  EXPECT_EQ(r->exec_stats.certificates_failed, 0u);
}

}  // namespace
}  // namespace softdb
