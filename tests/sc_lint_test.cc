// softdb_lint library tests: each planted catalog inconsistency must
// surface as a finding with its stable check id; clean catalogs must come
// back empty; the report's text/JSON renderings and error/warning tallies
// back the CLI's exit-code contract (0 clean / 1 findings).

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "analysis/sc_lint.h"

namespace softdb {
namespace {

bool HasCheck(const LintReport& report, const std::string& check,
              const std::string& subject_fragment = "") {
  return std::any_of(report.findings.begin(), report.findings.end(),
                     [&](const LintFinding& f) {
                       return f.check == check &&
                              f.subject.find(subject_fragment) !=
                                  std::string::npos;
                     });
}

const char kPeopleDdl[] =
    "CREATE TABLE people (id BIGINT PRIMARY KEY, age BIGINT, "
    "height DOUBLE, weight DOUBLE);";

TEST(ScLintTest, CleanCatalogProducesNoFindings) {
  const std::string script = std::string(kPeopleDdl) +
      "SOFT CONSTRAINT adult DOMAIN ON people(age) MIN 18 MAX 120 "
      "CONFIDENCE 0.95;";
  auto report = LintCatalog(script, {});
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(report->findings.empty());
  EXPECT_EQ(report->errors(), 0u);
  EXPECT_EQ(report->warnings(), 0u);
}

TEST(ScLintTest, DomainContradictsCheckConstraint) {
  const std::string script =
      "CREATE TABLE orders (id BIGINT, total DOUBLE, CHECK (total >= 0));"
      "SOFT CONSTRAINT bad DOMAIN ON orders(total) MIN -10 MAX -1;";
  auto report = LintCatalog(script, {});
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(HasCheck(*report, "domain-check-contradiction", "bad"));
  EXPECT_GE(report->errors(), 1u);
}

TEST(ScLintTest, DisjointDomainPairFlagged) {
  const std::string script = std::string(kPeopleDdl) +
      "SOFT CONSTRAINT lo DOMAIN ON people(age) MIN 0 MAX 10;"
      "SOFT CONSTRAINT hi DOMAIN ON people(age) MIN 50 MAX 90;";
  auto report = LintCatalog(script, {});
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(HasCheck(*report, "domain-domain-contradiction", "lo"));
}

TEST(ScLintTest, OverlappingDomainsNotFlagged) {
  const std::string script = std::string(kPeopleDdl) +
      "SOFT CONSTRAINT wide DOMAIN ON people(age) MIN 0 MAX 100;"
      "SOFT CONSTRAINT tight DOMAIN ON people(age) MIN 18 MAX 65;";
  auto report = LintCatalog(script, {});
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_FALSE(HasCheck(*report, "domain-domain-contradiction"));
}

TEST(ScLintTest, InclusionCycleWithForeignKeyFlagged) {
  const std::string script = std::string(kPeopleDdl) +
      "CREATE TABLE orders (id BIGINT, person_id BIGINT, "
      "FOREIGN KEY (person_id) REFERENCES people (id));"
      "SOFT CONSTRAINT cyc INCLUSION ON people(id) "
      "REFERENCES orders(person_id);";
  auto report = LintCatalog(script, {});
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(HasCheck(*report, "inclusion-cycle", "cyc"));
}

TEST(ScLintTest, AcyclicInclusionNotFlagged) {
  const std::string script = std::string(kPeopleDdl) +
      "CREATE TABLE orders (id BIGINT, person_id BIGINT);"
      "SOFT CONSTRAINT incl INCLUSION ON orders(person_id) "
      "REFERENCES people(id);";
  auto report = LintCatalog(script, {});
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_FALSE(HasCheck(*report, "inclusion-cycle"));
}

TEST(ScLintTest, LinearEpsilonChecks) {
  const std::string script = std::string(kPeopleDdl) +
      "SOFT CONSTRAINT neg LINEAR ON people(height, weight) "
      "K 0.9 C -60 EPSILON -2;"
      "SOFT CONSTRAINT flat LINEAR ON people(weight, height) "
      "K 0 C 170 EPSILON 5;"
      "SOFT CONSTRAINT h_dom DOMAIN ON people(height) MIN 150 MAX 200;"
      "SOFT CONSTRAINT vac LINEAR ON people(height, weight) "
      "K 1 C 0 EPSILON 100;";
  auto report = LintCatalog(script, {});
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(HasCheck(*report, "linear-negative-epsilon", "neg"));
  EXPECT_TRUE(HasCheck(*report, "linear-degenerate", "flat"));
  // 2*100 >= domain width 50: the band can never narrow anything.
  EXPECT_TRUE(HasCheck(*report, "linear-vacuous-epsilon", "vac"));
}

TEST(ScLintTest, StaleSscHonorsThreshold) {
  const std::string script = std::string(kPeopleDdl) +
      "SOFT CONSTRAINT shaky DOMAIN ON people(age) MIN 0 MAX 90 "
      "CONFIDENCE 0.3;";
  auto low = LintCatalog(script, {});
  ASSERT_TRUE(low.ok());
  EXPECT_TRUE(HasCheck(*low, "stale-ssc", "shaky"));

  LintOptions lenient;
  lenient.currency_threshold = 0.1;
  auto ok = LintCatalog(script, {}, lenient);
  ASSERT_TRUE(ok.ok());
  EXPECT_FALSE(HasCheck(*ok, "stale-ssc"));
}

TEST(ScLintTest, DeadScDetectedOnlyWithWorkload) {
  const std::string script = std::string(kPeopleDdl) +
      "SOFT CONSTRAINT adult DOMAIN ON people(age) MIN 18 MAX 120;"
      "SOFT CONSTRAINT build LINEAR ON people(height, weight) "
      "K 0.9 C -60 EPSILON 10;";
  // No workload: the dead-sc check is skipped entirely.
  auto no_workload = LintCatalog(script, {});
  ASSERT_TRUE(no_workload.ok());
  EXPECT_FALSE(HasCheck(*no_workload, "dead-sc"));

  // Workload touches age but never height/weight: `build` is dead.
  std::vector<std::string> workload = {
      "SELECT id FROM people WHERE age > 21"};
  auto with = LintCatalog(script, workload);
  ASSERT_TRUE(with.ok()) << with.status().ToString();
  EXPECT_FALSE(HasCheck(*with, "dead-sc", "adult"));
  EXPECT_TRUE(HasCheck(*with, "dead-sc", "build"));
}

TEST(ScLintTest, InclusionScExploitedByJoin) {
  const std::string script = std::string(kPeopleDdl) +
      "CREATE TABLE orders (id BIGINT, person_id BIGINT);"
      "SOFT CONSTRAINT incl INCLUSION ON orders(person_id) "
      "REFERENCES people(id);";
  std::vector<std::string> join_workload = {
      "SELECT o.id FROM orders o JOIN people p ON o.person_id = p.id"};
  auto joined = LintCatalog(script, join_workload);
  ASSERT_TRUE(joined.ok()) << joined.status().ToString();
  EXPECT_FALSE(HasCheck(*joined, "dead-sc"));

  std::vector<std::string> scan_workload = {"SELECT id FROM orders"};
  auto scanned = LintCatalog(script, scan_workload);
  ASSERT_TRUE(scanned.ok());
  EXPECT_TRUE(HasCheck(*scanned, "dead-sc", "incl"));
}

TEST(ScLintTest, MalformedDirectiveIsAnError) {
  const std::string script = std::string(kPeopleDdl) +
      "SOFT CONSTRAINT broken DOMAIN ON people(age) MIN 18;";  // MAX missing.
  auto report = LintCatalog(script, {});
  EXPECT_FALSE(report.ok());
}

TEST(ScLintTest, UnknownTableInDirectiveIsAnError) {
  auto report = LintCatalog(
      "SOFT CONSTRAINT ghost DOMAIN ON nosuch(age) MIN 0 MAX 1;", {});
  EXPECT_FALSE(report.ok());
}

TEST(ScLintTest, SplitStatementsStripsCommentsAndQuotes) {
  auto stmts = SplitStatements(
      "-- a comment; with a semicolon\n"
      "SELECT 'a;b' FROM t;\n"
      "  \n"
      "SELECT 2");
  ASSERT_EQ(stmts.size(), 2u);
  EXPECT_EQ(stmts[0], "SELECT 'a;b' FROM t");
  EXPECT_EQ(stmts[1], "SELECT 2");
}

TEST(ScLintTest, ReportRenderings) {
  const std::string script =
      "CREATE TABLE orders (id BIGINT, total DOUBLE, CHECK (total >= 0));"
      "SOFT CONSTRAINT bad DOMAIN ON orders(total) MIN -10 MAX -1 "
      "CONFIDENCE 0.2;";
  auto report = LintCatalog(script, {});
  ASSERT_TRUE(report.ok());
  ASSERT_GE(report->findings.size(), 2u);  // Contradiction + staleness.
  EXPECT_GE(report->errors(), 1u);
  EXPECT_GE(report->warnings(), 1u);

  const std::string text = report->ToText();
  EXPECT_NE(text.find("domain-check-contradiction"), std::string::npos);
  EXPECT_NE(text.find("error(s)"), std::string::npos);

  const std::string json = report->ToJson();
  EXPECT_NE(json.find("\"tool\": \"softdb_lint\""), std::string::npos);
  EXPECT_NE(json.find("\"errors\""), std::string::npos);
  EXPECT_NE(json.find("\"warnings\""), std::string::npos);
  EXPECT_NE(json.find("\"findings\""), std::string::npos);
  EXPECT_NE(json.find("\"check\": \"domain-check-contradiction\""),
            std::string::npos);
}

TEST(ScLintTest, StateDirectiveSetsLifecycleState) {
  // A clean catalog whose only blemish is the declared lifecycle state.
  const std::string script = std::string(kPeopleDdl) +
      "SOFT CONSTRAINT adult DOMAIN ON people(age) MIN 18 MAX 120 "
      "CONFIDENCE 0.95 STATE ACTIVE;";
  auto report = LintCatalog(script, {});
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(report->findings.empty());

  EXPECT_FALSE(LintCatalog(std::string(kPeopleDdl) +
                               "SOFT CONSTRAINT adult DOMAIN ON people(age) "
                               "MIN 18 MAX 120 STATE BOGUS;",
                           {})
                   .ok());
}

TEST(ScLintTest, StuckRepairQueuedScIsAWarning) {
  const std::string script = std::string(kPeopleDdl) +
      "SOFT CONSTRAINT adult DOMAIN ON people(age) MIN 18 MAX 120 "
      "CONFIDENCE 0.95 STATE REPAIR_QUEUED;";
  auto report = LintCatalog(script, {});
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(HasCheck(*report, "stuck-repair", "adult"));
  EXPECT_GE(report->warnings(), 1u);
  EXPECT_EQ(report->errors(), 0u);
}

TEST(ScLintTest, QuarantinedScIsAnErrorAndRendersEverywhere) {
  const std::string script = std::string(kPeopleDdl) +
      "SOFT CONSTRAINT adult DOMAIN ON people(age) MIN 18 MAX 120 "
      "CONFIDENCE 0.95 STATE QUARANTINED;";
  auto report = LintCatalog(script, {});
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(HasCheck(*report, "quarantined-sc", "adult"));
  EXPECT_GE(report->errors(), 1u);

  // The finding must surface identically in every rendering.
  EXPECT_NE(report->ToText().find("quarantined-sc"), std::string::npos);
  EXPECT_NE(report->ToJson().find("\"check\": \"quarantined-sc\""),
            std::string::npos);
  const std::string sarif = report->ToSarif("catalog.sql");
  EXPECT_NE(sarif.find("quarantined-sc"), std::string::npos);
  EXPECT_NE(sarif.find("catalog.sql"), std::string::npos);
}

TEST(ScLintTest, ZoneMapDirectiveParsesCleanCatalog) {
  // Tight, well-formed per-block envelopes alongside a domain they do NOT
  // span: nothing to report. Exercises value blocks, an EMPTY block, and
  // the NULLS / CONFIDENCE / STATE suffixes.
  const std::string script = std::string(kPeopleDdl) +
      "SOFT CONSTRAINT adult DOMAIN ON people(age) MIN 18 MAX 120;"
      "SOFT CONSTRAINT zm_age ZONEMAP ON people(age) "
      "BLOCK 0 MIN 18 MAX 40 "
      "BLOCK 1 MIN 41 MAX 90 NULLS 3 "
      "BLOCK 2 EMPTY NULLS 7 "
      "CONFIDENCE 1.0 STATE ACTIVE;";
  auto report = LintCatalog(script, {});
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(report->findings.empty()) << report->ToText();
}

TEST(ScLintTest, DegenerateZoneMapBlockIsAnErrorEverywhere) {
  const std::string script = std::string(kPeopleDdl) +
      "SOFT CONSTRAINT zm_bad ZONEMAP ON people(age) "
      "BLOCK 0 MIN 0 MAX 40 "
      "BLOCK 1 MIN 50 MAX 10;";  // Inverted: skips (and hides) block 1.
  auto report = LintCatalog(script, {});
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(HasCheck(*report, "zonemap-degenerate-block", "zm_bad"));
  EXPECT_GE(report->errors(), 1u);

  // The finding must surface identically in every rendering.
  EXPECT_NE(report->ToText().find("zonemap-degenerate-block"),
            std::string::npos);
  EXPECT_NE(report->ToJson().find("\"check\": \"zonemap-degenerate-block\""),
            std::string::npos);
  const std::string sarif = report->ToSarif("catalog.sql");
  EXPECT_NE(sarif.find("zonemap-degenerate-block"), std::string::npos);
  EXPECT_NE(sarif.find("\"level\": \"error\""), std::string::npos);
}

TEST(ScLintTest, ZoneMapRedundantWithDomainWarns) {
  // Every value-bearing block spans the whole declared domain: any range
  // that would skip a block already kills the whole scan via the domain.
  const std::string script = std::string(kPeopleDdl) +
      "SOFT CONSTRAINT adult DOMAIN ON people(age) MIN 18 MAX 120;"
      "SOFT CONSTRAINT zm_flat ZONEMAP ON people(age) "
      "BLOCK 0 MIN 0 MAX 150 "
      "BLOCK 1 MIN 18 MAX 120 "
      "BLOCK 2 EMPTY;";  // EMPTY blocks do not rescue a redundant map.
  auto report = LintCatalog(script, {});
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(HasCheck(*report, "zonemap-redundant-with-domain", "zm_flat"));
  EXPECT_GE(report->warnings(), 1u);
  EXPECT_EQ(report->errors(), 0u);
}

TEST(ScLintTest, SelectiveZoneMapNotRedundant) {
  // One block tighter than the domain is enough: a range inside the domain
  // but outside that block still gets pruned block-wise.
  const std::string script = std::string(kPeopleDdl) +
      "SOFT CONSTRAINT adult DOMAIN ON people(age) MIN 18 MAX 120;"
      "SOFT CONSTRAINT zm_tight ZONEMAP ON people(age) "
      "BLOCK 0 MIN 18 MAX 60 "
      "BLOCK 1 MIN 61 MAX 120;";
  auto report = LintCatalog(script, {});
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_FALSE(HasCheck(*report, "zonemap-redundant-with-domain"));
}

TEST(ScLintTest, ZoneMapDeadScFollowsPredicateColumns) {
  const std::string script = std::string(kPeopleDdl) +
      "SOFT CONSTRAINT zm_age ZONEMAP ON people(age) BLOCK 0 MIN 18 MAX 40;"
      "SOFT CONSTRAINT zm_h ZONEMAP ON people(height) BLOCK 0 MIN 150 MAX 200;";
  std::vector<std::string> workload = {"SELECT id FROM people WHERE age > 21"};
  auto report = LintCatalog(script, workload);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_FALSE(HasCheck(*report, "dead-sc", "zm_age"));
  EXPECT_TRUE(HasCheck(*report, "dead-sc", "zm_h"));
}

TEST(ScLintTest, MalformedZoneMapDirectiveIsAnError) {
  // No BLOCK clause at all.
  EXPECT_FALSE(LintCatalog(std::string(kPeopleDdl) +
                               "SOFT CONSTRAINT zm ZONEMAP ON people(age);",
                           {})
                   .ok());
  // MAX missing.
  EXPECT_FALSE(LintCatalog(std::string(kPeopleDdl) +
                               "SOFT CONSTRAINT zm ZONEMAP ON people(age) "
                               "BLOCK 0 MIN 1;",
                           {})
                   .ok());
  // Negative block index.
  EXPECT_FALSE(LintCatalog(std::string(kPeopleDdl) +
                               "SOFT CONSTRAINT zm ZONEMAP ON people(age) "
                               "BLOCK -1 MIN 1 MAX 2;",
                           {})
                   .ok());
}

TEST(ScLintTest, StateDirectiveWorksOnPredicateScs) {
  const std::string script = std::string(kPeopleDdl) +
      "SOFT CONSTRAINT tall PREDICATE ON people CHECK (height > 100) "
      "CONFIDENCE 0.9 STATE QUARANTINED;";
  auto report = LintCatalog(script, {});
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(HasCheck(*report, "quarantined-sc", "tall"));
}

}  // namespace
}  // namespace softdb
