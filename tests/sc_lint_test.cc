// softdb_lint library tests: each planted catalog inconsistency must
// surface as a finding with its stable check id; clean catalogs must come
// back empty; the report's text/JSON renderings and error/warning tallies
// back the CLI's exit-code contract (0 clean / 1 findings).

#include <gtest/gtest.h>
#include <unistd.h>

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "analysis/sc_lint.h"
#include "constraints/sc_registry.h"
#include "constraints/soft_constraint.h"
#include "storage/wal.h"

namespace softdb {
namespace {

bool HasCheck(const LintReport& report, const std::string& check,
              const std::string& subject_fragment = "") {
  return std::any_of(report.findings.begin(), report.findings.end(),
                     [&](const LintFinding& f) {
                       return f.check == check &&
                              f.subject.find(subject_fragment) !=
                                  std::string::npos;
                     });
}

const char kPeopleDdl[] =
    "CREATE TABLE people (id BIGINT PRIMARY KEY, age BIGINT, "
    "height DOUBLE, weight DOUBLE);";

TEST(ScLintTest, CleanCatalogProducesNoFindings) {
  const std::string script = std::string(kPeopleDdl) +
      "SOFT CONSTRAINT adult DOMAIN ON people(age) MIN 18 MAX 120 "
      "CONFIDENCE 0.95;";
  auto report = LintCatalog(script, {});
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(report->findings.empty());
  EXPECT_EQ(report->errors(), 0u);
  EXPECT_EQ(report->warnings(), 0u);
}

TEST(ScLintTest, DomainContradictsCheckConstraint) {
  const std::string script =
      "CREATE TABLE orders (id BIGINT, total DOUBLE, CHECK (total >= 0));"
      "SOFT CONSTRAINT bad DOMAIN ON orders(total) MIN -10 MAX -1;";
  auto report = LintCatalog(script, {});
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(HasCheck(*report, "domain-check-contradiction", "bad"));
  EXPECT_GE(report->errors(), 1u);
}

TEST(ScLintTest, DisjointDomainPairFlagged) {
  const std::string script = std::string(kPeopleDdl) +
      "SOFT CONSTRAINT lo DOMAIN ON people(age) MIN 0 MAX 10;"
      "SOFT CONSTRAINT hi DOMAIN ON people(age) MIN 50 MAX 90;";
  auto report = LintCatalog(script, {});
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(HasCheck(*report, "domain-domain-contradiction", "lo"));
}

TEST(ScLintTest, OverlappingDomainsNotFlagged) {
  const std::string script = std::string(kPeopleDdl) +
      "SOFT CONSTRAINT wide DOMAIN ON people(age) MIN 0 MAX 100;"
      "SOFT CONSTRAINT tight DOMAIN ON people(age) MIN 18 MAX 65;";
  auto report = LintCatalog(script, {});
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_FALSE(HasCheck(*report, "domain-domain-contradiction"));
}

TEST(ScLintTest, InclusionCycleWithForeignKeyFlagged) {
  const std::string script = std::string(kPeopleDdl) +
      "CREATE TABLE orders (id BIGINT, person_id BIGINT, "
      "FOREIGN KEY (person_id) REFERENCES people (id));"
      "SOFT CONSTRAINT cyc INCLUSION ON people(id) "
      "REFERENCES orders(person_id);";
  auto report = LintCatalog(script, {});
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(HasCheck(*report, "inclusion-cycle", "cyc"));
}

TEST(ScLintTest, AcyclicInclusionNotFlagged) {
  const std::string script = std::string(kPeopleDdl) +
      "CREATE TABLE orders (id BIGINT, person_id BIGINT);"
      "SOFT CONSTRAINT incl INCLUSION ON orders(person_id) "
      "REFERENCES people(id);";
  auto report = LintCatalog(script, {});
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_FALSE(HasCheck(*report, "inclusion-cycle"));
}

TEST(ScLintTest, LinearEpsilonChecks) {
  const std::string script = std::string(kPeopleDdl) +
      "SOFT CONSTRAINT neg LINEAR ON people(height, weight) "
      "K 0.9 C -60 EPSILON -2;"
      "SOFT CONSTRAINT flat LINEAR ON people(weight, height) "
      "K 0 C 170 EPSILON 5;"
      "SOFT CONSTRAINT h_dom DOMAIN ON people(height) MIN 150 MAX 200;"
      "SOFT CONSTRAINT vac LINEAR ON people(height, weight) "
      "K 1 C 0 EPSILON 100;";
  auto report = LintCatalog(script, {});
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(HasCheck(*report, "linear-negative-epsilon", "neg"));
  EXPECT_TRUE(HasCheck(*report, "linear-degenerate", "flat"));
  // 2*100 >= domain width 50: the band can never narrow anything.
  EXPECT_TRUE(HasCheck(*report, "linear-vacuous-epsilon", "vac"));
}

TEST(ScLintTest, StaleSscHonorsThreshold) {
  const std::string script = std::string(kPeopleDdl) +
      "SOFT CONSTRAINT shaky DOMAIN ON people(age) MIN 0 MAX 90 "
      "CONFIDENCE 0.3;";
  auto low = LintCatalog(script, {});
  ASSERT_TRUE(low.ok());
  EXPECT_TRUE(HasCheck(*low, "stale-ssc", "shaky"));

  LintOptions lenient;
  lenient.currency_threshold = 0.1;
  auto ok = LintCatalog(script, {}, lenient);
  ASSERT_TRUE(ok.ok());
  EXPECT_FALSE(HasCheck(*ok, "stale-ssc"));
}

TEST(ScLintTest, DeadScDetectedOnlyWithWorkload) {
  const std::string script = std::string(kPeopleDdl) +
      "SOFT CONSTRAINT adult DOMAIN ON people(age) MIN 18 MAX 120;"
      "SOFT CONSTRAINT build LINEAR ON people(height, weight) "
      "K 0.9 C -60 EPSILON 10;";
  // No workload: the dead-sc check is skipped entirely.
  auto no_workload = LintCatalog(script, {});
  ASSERT_TRUE(no_workload.ok());
  EXPECT_FALSE(HasCheck(*no_workload, "dead-sc"));

  // Workload touches age but never height/weight: `build` is dead.
  std::vector<std::string> workload = {
      "SELECT id FROM people WHERE age > 21"};
  auto with = LintCatalog(script, workload);
  ASSERT_TRUE(with.ok()) << with.status().ToString();
  EXPECT_FALSE(HasCheck(*with, "dead-sc", "adult"));
  EXPECT_TRUE(HasCheck(*with, "dead-sc", "build"));
}

TEST(ScLintTest, InclusionScExploitedByJoin) {
  const std::string script = std::string(kPeopleDdl) +
      "CREATE TABLE orders (id BIGINT, person_id BIGINT);"
      "SOFT CONSTRAINT incl INCLUSION ON orders(person_id) "
      "REFERENCES people(id);";
  std::vector<std::string> join_workload = {
      "SELECT o.id FROM orders o JOIN people p ON o.person_id = p.id"};
  auto joined = LintCatalog(script, join_workload);
  ASSERT_TRUE(joined.ok()) << joined.status().ToString();
  EXPECT_FALSE(HasCheck(*joined, "dead-sc"));

  std::vector<std::string> scan_workload = {"SELECT id FROM orders"};
  auto scanned = LintCatalog(script, scan_workload);
  ASSERT_TRUE(scanned.ok());
  EXPECT_TRUE(HasCheck(*scanned, "dead-sc", "incl"));
}

TEST(ScLintTest, MalformedDirectiveIsAnError) {
  const std::string script = std::string(kPeopleDdl) +
      "SOFT CONSTRAINT broken DOMAIN ON people(age) MIN 18;";  // MAX missing.
  auto report = LintCatalog(script, {});
  EXPECT_FALSE(report.ok());
}

TEST(ScLintTest, UnknownTableInDirectiveIsAnError) {
  auto report = LintCatalog(
      "SOFT CONSTRAINT ghost DOMAIN ON nosuch(age) MIN 0 MAX 1;", {});
  EXPECT_FALSE(report.ok());
}

TEST(ScLintTest, SplitStatementsStripsCommentsAndQuotes) {
  auto stmts = SplitStatements(
      "-- a comment; with a semicolon\n"
      "SELECT 'a;b' FROM t;\n"
      "  \n"
      "SELECT 2");
  ASSERT_EQ(stmts.size(), 2u);
  EXPECT_EQ(stmts[0], "SELECT 'a;b' FROM t");
  EXPECT_EQ(stmts[1], "SELECT 2");
}

TEST(ScLintTest, ReportRenderings) {
  const std::string script =
      "CREATE TABLE orders (id BIGINT, total DOUBLE, CHECK (total >= 0));"
      "SOFT CONSTRAINT bad DOMAIN ON orders(total) MIN -10 MAX -1 "
      "CONFIDENCE 0.2;";
  auto report = LintCatalog(script, {});
  ASSERT_TRUE(report.ok());
  ASSERT_GE(report->findings.size(), 2u);  // Contradiction + staleness.
  EXPECT_GE(report->errors(), 1u);
  EXPECT_GE(report->warnings(), 1u);

  const std::string text = report->ToText();
  EXPECT_NE(text.find("domain-check-contradiction"), std::string::npos);
  EXPECT_NE(text.find("error(s)"), std::string::npos);

  const std::string json = report->ToJson();
  EXPECT_NE(json.find("\"tool\": \"softdb_lint\""), std::string::npos);
  EXPECT_NE(json.find("\"errors\""), std::string::npos);
  EXPECT_NE(json.find("\"warnings\""), std::string::npos);
  EXPECT_NE(json.find("\"findings\""), std::string::npos);
  EXPECT_NE(json.find("\"check\": \"domain-check-contradiction\""),
            std::string::npos);
}

TEST(ScLintTest, StateDirectiveSetsLifecycleState) {
  // A clean catalog whose only blemish is the declared lifecycle state.
  const std::string script = std::string(kPeopleDdl) +
      "SOFT CONSTRAINT adult DOMAIN ON people(age) MIN 18 MAX 120 "
      "CONFIDENCE 0.95 STATE ACTIVE;";
  auto report = LintCatalog(script, {});
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(report->findings.empty());

  EXPECT_FALSE(LintCatalog(std::string(kPeopleDdl) +
                               "SOFT CONSTRAINT adult DOMAIN ON people(age) "
                               "MIN 18 MAX 120 STATE BOGUS;",
                           {})
                   .ok());
}

TEST(ScLintTest, StuckRepairQueuedScIsAWarning) {
  const std::string script = std::string(kPeopleDdl) +
      "SOFT CONSTRAINT adult DOMAIN ON people(age) MIN 18 MAX 120 "
      "CONFIDENCE 0.95 STATE REPAIR_QUEUED;";
  auto report = LintCatalog(script, {});
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(HasCheck(*report, "stuck-repair", "adult"));
  EXPECT_GE(report->warnings(), 1u);
  EXPECT_EQ(report->errors(), 0u);
}

TEST(ScLintTest, QuarantinedScIsAnErrorAndRendersEverywhere) {
  const std::string script = std::string(kPeopleDdl) +
      "SOFT CONSTRAINT adult DOMAIN ON people(age) MIN 18 MAX 120 "
      "CONFIDENCE 0.95 STATE QUARANTINED;";
  auto report = LintCatalog(script, {});
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(HasCheck(*report, "quarantined-sc", "adult"));
  EXPECT_GE(report->errors(), 1u);

  // The finding must surface identically in every rendering.
  EXPECT_NE(report->ToText().find("quarantined-sc"), std::string::npos);
  EXPECT_NE(report->ToJson().find("\"check\": \"quarantined-sc\""),
            std::string::npos);
  const std::string sarif = report->ToSarif("catalog.sql");
  EXPECT_NE(sarif.find("quarantined-sc"), std::string::npos);
  EXPECT_NE(sarif.find("catalog.sql"), std::string::npos);
}

TEST(ScLintTest, ZoneMapDirectiveParsesCleanCatalog) {
  // Tight, well-formed per-block envelopes alongside a domain they do NOT
  // span: nothing to report. Exercises value blocks, an EMPTY block, and
  // the NULLS / CONFIDENCE / STATE suffixes.
  const std::string script = std::string(kPeopleDdl) +
      "SOFT CONSTRAINT adult DOMAIN ON people(age) MIN 18 MAX 120;"
      "SOFT CONSTRAINT zm_age ZONEMAP ON people(age) "
      "BLOCK 0 MIN 18 MAX 40 "
      "BLOCK 1 MIN 41 MAX 90 NULLS 3 "
      "BLOCK 2 EMPTY NULLS 7 "
      "CONFIDENCE 1.0 STATE ACTIVE;";
  auto report = LintCatalog(script, {});
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(report->findings.empty()) << report->ToText();
}

TEST(ScLintTest, DegenerateZoneMapBlockIsAnErrorEverywhere) {
  const std::string script = std::string(kPeopleDdl) +
      "SOFT CONSTRAINT zm_bad ZONEMAP ON people(age) "
      "BLOCK 0 MIN 0 MAX 40 "
      "BLOCK 1 MIN 50 MAX 10;";  // Inverted: skips (and hides) block 1.
  auto report = LintCatalog(script, {});
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(HasCheck(*report, "zonemap-degenerate-block", "zm_bad"));
  EXPECT_GE(report->errors(), 1u);

  // The finding must surface identically in every rendering.
  EXPECT_NE(report->ToText().find("zonemap-degenerate-block"),
            std::string::npos);
  EXPECT_NE(report->ToJson().find("\"check\": \"zonemap-degenerate-block\""),
            std::string::npos);
  const std::string sarif = report->ToSarif("catalog.sql");
  EXPECT_NE(sarif.find("zonemap-degenerate-block"), std::string::npos);
  EXPECT_NE(sarif.find("\"level\": \"error\""), std::string::npos);
}

TEST(ScLintTest, ZoneMapRedundantWithDomainWarns) {
  // Every value-bearing block spans the whole declared domain: any range
  // that would skip a block already kills the whole scan via the domain.
  const std::string script = std::string(kPeopleDdl) +
      "SOFT CONSTRAINT adult DOMAIN ON people(age) MIN 18 MAX 120;"
      "SOFT CONSTRAINT zm_flat ZONEMAP ON people(age) "
      "BLOCK 0 MIN 0 MAX 150 "
      "BLOCK 1 MIN 18 MAX 120 "
      "BLOCK 2 EMPTY;";  // EMPTY blocks do not rescue a redundant map.
  auto report = LintCatalog(script, {});
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(HasCheck(*report, "zonemap-redundant-with-domain", "zm_flat"));
  EXPECT_GE(report->warnings(), 1u);
  EXPECT_EQ(report->errors(), 0u);
}

TEST(ScLintTest, SelectiveZoneMapNotRedundant) {
  // One block tighter than the domain is enough: a range inside the domain
  // but outside that block still gets pruned block-wise.
  const std::string script = std::string(kPeopleDdl) +
      "SOFT CONSTRAINT adult DOMAIN ON people(age) MIN 18 MAX 120;"
      "SOFT CONSTRAINT zm_tight ZONEMAP ON people(age) "
      "BLOCK 0 MIN 18 MAX 60 "
      "BLOCK 1 MIN 61 MAX 120;";
  auto report = LintCatalog(script, {});
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_FALSE(HasCheck(*report, "zonemap-redundant-with-domain"));
}

TEST(ScLintTest, ZoneMapDeadScFollowsPredicateColumns) {
  const std::string script = std::string(kPeopleDdl) +
      "SOFT CONSTRAINT zm_age ZONEMAP ON people(age) BLOCK 0 MIN 18 MAX 40;"
      "SOFT CONSTRAINT zm_h ZONEMAP ON people(height) BLOCK 0 MIN 150 MAX 200;";
  std::vector<std::string> workload = {"SELECT id FROM people WHERE age > 21"};
  auto report = LintCatalog(script, workload);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_FALSE(HasCheck(*report, "dead-sc", "zm_age"));
  EXPECT_TRUE(HasCheck(*report, "dead-sc", "zm_h"));
}

TEST(ScLintTest, MalformedZoneMapDirectiveIsAnError) {
  // No BLOCK clause at all.
  EXPECT_FALSE(LintCatalog(std::string(kPeopleDdl) +
                               "SOFT CONSTRAINT zm ZONEMAP ON people(age);",
                           {})
                   .ok());
  // MAX missing.
  EXPECT_FALSE(LintCatalog(std::string(kPeopleDdl) +
                               "SOFT CONSTRAINT zm ZONEMAP ON people(age) "
                               "BLOCK 0 MIN 1;",
                           {})
                   .ok());
  // Negative block index.
  EXPECT_FALSE(LintCatalog(std::string(kPeopleDdl) +
                               "SOFT CONSTRAINT zm ZONEMAP ON people(age) "
                               "BLOCK -1 MIN 1 MAX 2;",
                           {})
                   .ok());
}

TEST(ScLintTest, StateDirectiveWorksOnPredicateScs) {
  const std::string script = std::string(kPeopleDdl) +
      "SOFT CONSTRAINT tall PREDICATE ON people CHECK (height > 100) "
      "CONFIDENCE 0.9 STATE QUARANTINED;";
  auto report = LintCatalog(script, {});
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(HasCheck(*report, "quarantined-sc", "tall"));
}

TEST(ScLintTest, UnparseableWorkloadStatementDowngradesToWarning) {
  const std::string script = std::string(kPeopleDdl) +
      "SOFT CONSTRAINT adult DOMAIN ON people(age) MIN 18 MAX 120;";
  // A typo'd statement and one referencing a missing table: each becomes a
  // warning finding and is excluded from the dead-entry check, while the
  // remaining valid statement still keeps the SC alive.
  std::vector<std::string> workload = {
      "SELEC id FROM people",
      "SELECT id FROM nosuchtable WHERE x > 1",
      "SELECT id FROM people WHERE age > 21",
  };
  auto report = LintCatalog(script, workload);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(HasCheck(*report, "workload-unparseable-statement", "stmt#1"));
  EXPECT_TRUE(HasCheck(*report, "workload-unparseable-statement", "stmt#2"));
  EXPECT_FALSE(HasCheck(*report, "dead-sc"));
  EXPECT_EQ(report->errors(), 0u);
  EXPECT_EQ(report->warnings(), 2u);

  // A workload that is *only* garbage leaves no bound statement: the
  // dead-entry check must not mass-condemn the catalog on that basis.
  auto all_bad = LintCatalog(script, {"SELEC id FROM people"});
  ASSERT_TRUE(all_bad.ok()) << all_bad.status().ToString();
  EXPECT_TRUE(HasCheck(*all_bad, "workload-unparseable-statement"));
}

// ------------------------------------------------------------ WAL auditing

/// Scratch WAL directory for the dangling-transition checks, removed on
/// scope exit.
struct TempWalDir {
  TempWalDir() {
    char tmpl[] = "/tmp/softdb_lintwal_XXXXXX";
    const char* d = ::mkdtemp(tmpl);
    EXPECT_NE(d, nullptr);
    path = d == nullptr ? "/tmp/softdb_lintwal_fallback" : d;
  }
  ~TempWalDir() {
    std::error_code ec;
    std::filesystem::remove_all(path, ec);
  }
  std::string path;
};

void AppendTransition(WalWriter* w, const std::string& name, ScState from,
                      ScState to, std::uint64_t epoch, ScArmMode mode) {
  BinWriter p;
  p.PutString(name);
  p.PutU8(static_cast<std::uint8_t>(from));
  p.PutU8(static_cast<std::uint8_t>(to));
  p.PutU64(epoch);
  p.PutU8(static_cast<std::uint8_t>(mode));
  ASSERT_TRUE(w->Append(WalRecordKind::kScTransition, p.data()).ok());
}

void AppendArmCommit(WalWriter* w, const std::string& name,
                     std::uint64_t epoch) {
  BinWriter p;
  p.PutString(name);
  p.PutU64(epoch);
  ASSERT_TRUE(w->Append(WalRecordKind::kScArmCommit, p.data()).ok());
}

TEST(ScLintTest, WalDanglingTransitionIsErrorInEveryRendering) {
  TempWalDir dir;
  {
    auto writer = WalWriter::Open(dir.path, 1, 1);
    ASSERT_TRUE(writer.ok()) << writer.status().ToString();
    AppendTransition(writer->get(), "lonely", ScState::kRepairQueued,
                     ScState::kActive, 7, ScArmMode::kRepairFull);
    ASSERT_TRUE((*writer)->Sync().ok());
  }
  auto report = LintWal(dir.path);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  ASSERT_EQ(report->findings.size(), 1u);
  EXPECT_TRUE(HasCheck(*report, "wal-dangling-transition", "lonely"));
  EXPECT_EQ(report->findings[0].severity, "error");
  EXPECT_EQ(report->errors(), 1u);
  EXPECT_NE(report->findings[0].message.find("no commit record"),
            std::string::npos);
  // Text / JSON / SARIF all carry the same stable check id and severity.
  EXPECT_NE(report->ToText().find("error: [wal-dangling-transition] lonely"),
            std::string::npos);
  EXPECT_NE(report->ToJson().find("\"wal-dangling-transition\""),
            std::string::npos);
  const std::string sarif = report->ToSarif(dir.path);
  EXPECT_NE(sarif.find("\"ruleId\": \"wal-dangling-transition\""),
            std::string::npos);
  EXPECT_NE(sarif.find("\"level\": \"error\""), std::string::npos);
}

TEST(ScLintTest, WalCommittedArmsAndDisarmsAreClean) {
  TempWalDir dir;
  {
    auto writer = WalWriter::Open(dir.path, 1, 1);
    ASSERT_TRUE(writer.ok()) << writer.status().ToString();
    // A completed arm: transition into ACTIVE plus its commit record.
    AppendTransition(writer->get(), "healed", ScState::kRepairQueued,
                     ScState::kActive, 3, ScArmMode::kVerify);
    AppendArmCommit(writer->get(), "healed", 3);
    // A transition *away* from ACTIVE never needs a commit.
    AppendTransition(writer->get(), "parked", ScState::kActive,
                     ScState::kQuarantined, 9, ScArmMode::kNone);
    ASSERT_TRUE((*writer)->Sync().ok());
  }
  auto report = LintWal(dir.path);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(report->findings.empty());

  // A directory with no segments at all is an input error, not a clean run.
  auto missing = LintWal(dir.path + "/nope");
  ASSERT_FALSE(missing.ok());
  EXPECT_EQ(missing.status().code(), StatusCode::kNotFound);
}

TEST(ScLintTest, GoldenSarifDocumentIsByteStable) {
  // Byte-for-byte golden: the SARIF rendering is a public contract (GitHub
  // code scanning keys alert identity off rule ids and driver shape).
  // Registry order is append-only, so this document only ever grows at the
  // end of the rules table; any other diff here is a breaking change.
  const std::string script =
      "CREATE TABLE people (id BIGINT PRIMARY KEY, age BIGINT);"
      "SOFT CONSTRAINT adult DOMAIN ON people(age) MIN 18 MAX 120 "
      "CONFIDENCE 0.95 STATE QUARANTINED;";
  auto report = LintCatalog(script, {});
  ASSERT_TRUE(report.ok()) << report.status().ToString();

  const char kGolden[] = R"({
  "$schema": "https://json.schemastore.org/sarif-2.1.0.json",
  "version": "2.1.0",
  "runs": [
    {
      "tool": {
        "driver": {
          "name": "softdb_lint",
          "rules": [
            {"id": "domain-check-contradiction", "shortDescription": {"text": "A domain SC excludes every value an enforced CHECK constraint allows: all stored rows violate the SC."}, "defaultConfiguration": {"level": "error"}},
            {"id": "domain-domain-contradiction", "shortDescription": {"text": "Two domain SCs on the same column declare disjoint intervals."}, "defaultConfiguration": {"level": "error"}},
            {"id": "predicate-domain-contradiction", "shortDescription": {"text": "No row satisfying the table's other characterizations can satisfy the predicate SC."}, "defaultConfiguration": {"level": "error"}},
            {"id": "sc-chain-contradiction", "shortDescription": {"text": "The table's constraint characterizations jointly admit no compliant row (transitive chain)."}, "defaultConfiguration": {"level": "error"}},
            {"id": "inclusion-cycle", "shortDescription": {"text": "An inclusion SC closes a reference cycle with the catalog's referential constraints."}, "defaultConfiguration": {"level": "error"}},
            {"id": "linear-negative-epsilon", "shortDescription": {"text": "A linear-correlation SC declares a negative epsilon: no row can ever satisfy the band."}, "defaultConfiguration": {"level": "error"}},
            {"id": "linear-degenerate", "shortDescription": {"text": "A linear-correlation SC with k = 0 degenerates to a domain constraint."}, "defaultConfiguration": {"level": "warning"}},
            {"id": "linear-vacuous-epsilon", "shortDescription": {"text": "The correlation band spans the column's whole declared domain and can never narrow an estimate or a predicate."}, "defaultConfiguration": {"level": "warning"}},
            {"id": "zonemap-degenerate-block", "shortDescription": {"text": "A zone-map block declares an inverted min/max envelope: scans would silently skip its rows."}, "defaultConfiguration": {"level": "error"}},
            {"id": "zonemap-redundant-with-domain", "shortDescription": {"text": "Every zone-map block envelope spans a domain SC's interval; the map can never prune a block the domain does not already prune."}, "defaultConfiguration": {"level": "warning"}},
            {"id": "stuck-repair", "shortDescription": {"text": "An SC is parked in the repair queue; maintenance is not running or keeps failing."}, "defaultConfiguration": {"level": "warning"}},
            {"id": "quarantined-sc", "shortDescription": {"text": "An SC exhausted its repair-attempt budget and was quarantined."}, "defaultConfiguration": {"level": "error"}},
            {"id": "stale-ssc", "shortDescription": {"text": "An SC's declared confidence is below the currency threshold."}, "defaultConfiguration": {"level": "warning"}},
            {"id": "dead-sc", "shortDescription": {"text": "No workload query can statically exploit the SC."}, "defaultConfiguration": {"level": "warning"}},
            {"id": "wal-dangling-transition", "shortDescription": {"text": "The WAL records an SC arm transition with no matching commit: a maintenance pass died mid-arm, and recovery will disarm the SC."}, "defaultConfiguration": {"level": "error"}},
            {"id": "workload-unparseable-statement", "shortDescription": {"text": "A workload statement could not be parsed or bound against the catalog schema and was excluded from the analysis."}, "defaultConfiguration": {"level": "warning"}}
          ]
        }
      },
      "results": [
        {
          "ruleId": "quarantined-sc",
          "level": "error",
          "message": {"text": "adult: domain SC on people exhausted its repair-attempt budget and was quarantined; fix the underlying data or drop it"},
          "locations": [
            {"physicalLocation": {"artifactLocation": {"uri": "catalog.sdl"}, "region": {"startLine": 1}}}
          ]
        }
      ]
    }
  ]
}
)";
  EXPECT_EQ(report->ToSarif("catalog.sdl"), kGolden);
}

TEST(ScLintTest, FailOnPolicyMapsSeveritiesToExitCodes) {
  // Shared CLI contract for softdb_lint and softdb_analyze: kAny fails on
  // anything (including notes), kWarning ignores notes, kError ignores
  // warnings too.
  EXPECT_EQ(ReportExitCode(0, 0, 0, FailOn::kAny), 0);
  EXPECT_EQ(ReportExitCode(0, 0, 1, FailOn::kAny), 1);
  EXPECT_EQ(ReportExitCode(0, 0, 1, FailOn::kWarning), 0);
  EXPECT_EQ(ReportExitCode(0, 1, 0, FailOn::kWarning), 1);
  EXPECT_EQ(ReportExitCode(0, 1, 5, FailOn::kError), 0);
  EXPECT_EQ(ReportExitCode(1, 0, 0, FailOn::kError), 1);
  EXPECT_EQ(ReportExitCode(1, 2, 3, FailOn::kAny), 1);

  FailOn parsed = FailOn::kAny;
  EXPECT_TRUE(ParseFailOn("warning", &parsed));
  EXPECT_EQ(parsed, FailOn::kWarning);
  EXPECT_TRUE(ParseFailOn("error", &parsed));
  EXPECT_EQ(parsed, FailOn::kError);
  EXPECT_FALSE(ParseFailOn("note", &parsed));
  EXPECT_FALSE(ParseFailOn("", &parsed));
}

TEST(ScLintTest, LoadWorkloadFilesNamesTheUnreadablePath) {
  auto missing = LoadWorkloadFiles({"/nonexistent/workload.sql"});
  ASSERT_FALSE(missing.ok());
  EXPECT_NE(missing.status().message().find("/nonexistent/workload.sql"),
            std::string::npos);
  auto none = LoadWorkloadFiles({});
  ASSERT_TRUE(none.ok());
  EXPECT_TRUE(none->empty());
}

TEST(ScLintTest, MalformedCatalogScriptIsStillAHardError) {
  // Unparseable *catalog* directives keep failing loudly — only workload
  // statements downgrade to warnings.
  EXPECT_FALSE(LintCatalog("CREAT TABLE people (id BIGINT);", {}).ok());
  EXPECT_FALSE(LintCatalog(std::string(kPeopleDdl) +
                               "SOFT CONSTRAINT bad DOMAIN ON people(age);",
                           {})
                   .ok());
}

}  // namespace
}  // namespace softdb
