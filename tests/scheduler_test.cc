// Tests for the morsel-driven parallel execution layer: morsel splitting,
// the work-stealing TaskScheduler (group barrier, deterministic failure
// selection, exception capture, observable steals), and the end-to-end
// guarantee that parallel query execution merges morsel results in
// deterministic order — bit-identical to serial execution.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "engine/softdb.h"
#include "exec/morsel.h"
#include "exec/scheduler.h"

namespace softdb {
namespace {

// ---------------------------------------------------------------- morsels

TEST(SplitMorselsTest, EmptyInputYieldsNoMorsels) {
  EXPECT_TRUE(SplitMorsels(0, 64).empty());
}

TEST(SplitMorselsTest, ExactMultiple) {
  const auto morsels = SplitMorsels(128, 64);
  ASSERT_EQ(morsels.size(), 2u);
  EXPECT_EQ(morsels[0].base, 0u);
  EXPECT_EQ(morsels[0].rows, 64u);
  EXPECT_EQ(morsels[0].index, 0u);
  EXPECT_EQ(morsels[1].base, 64u);
  EXPECT_EQ(morsels[1].rows, 64u);
  EXPECT_EQ(morsels[1].index, 1u);
}

TEST(SplitMorselsTest, LastMorselIsShort) {
  const auto morsels = SplitMorsels(100, 33);
  ASSERT_EQ(morsels.size(), 4u);
  std::size_t total = 0;
  for (std::size_t i = 0; i < morsels.size(); ++i) {
    EXPECT_EQ(morsels[i].index, i);
    EXPECT_EQ(morsels[i].base, i * 33);
    total += morsels[i].rows;
  }
  EXPECT_EQ(morsels.back().rows, 1u);
  EXPECT_EQ(total, 100u);
}

TEST(SplitMorselsTest, ZeroMorselRowsTreatedAsOne) {
  const auto morsels = SplitMorsels(3, 0);
  ASSERT_EQ(morsels.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(morsels[i].base, i);
    EXPECT_EQ(morsels[i].rows, 1u);
  }
}

TEST(MorselSourceTest, HandsOutEachMorselOnceInOrder) {
  MorselSource source(10, 3);
  EXPECT_EQ(source.NumMorsels(), 4u);
  MorselRange m;
  for (std::size_t i = 0; i < 4; ++i) {
    ASSERT_TRUE(source.Next(&m));
    EXPECT_EQ(m.index, i);
  }
  EXPECT_FALSE(source.Next(&m));
  EXPECT_FALSE(source.Next(&m));  // Stays exhausted.
}

TEST(ExecPoolTest, SequentialLeasesReuseOneResource) {
  ExecPool<int> pool([] { return std::make_unique<int>(0); });
  for (int i = 0; i < 5; ++i) {
    auto lease = pool.Acquire();
    *lease.get() += 1;
  }
  EXPECT_EQ(pool.created(), 1u);
}

// -------------------------------------------------------------- scheduler

TEST(TaskSchedulerTest, RunsEveryTaskExactlyOnce) {
  TaskScheduler scheduler(4);
  EXPECT_EQ(scheduler.num_threads(), 4u);
  std::vector<std::atomic<int>> counts(64);
  std::vector<TaskScheduler::Task> tasks;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    tasks.push_back([&counts, i]() {
      counts[i].fetch_add(1);
      return Status::OK();
    });
  }
  ASSERT_TRUE(scheduler.Run(std::move(tasks)).ok());
  for (const auto& c : counts) EXPECT_EQ(c.load(), 1);
}

TEST(TaskSchedulerTest, RunIsABarrier) {
  // Run must not return before slow tasks finish, regardless of which
  // worker executes them.
  TaskScheduler scheduler(3);
  std::atomic<int> done{0};
  std::vector<TaskScheduler::Task> tasks;
  for (int i = 0; i < 12; ++i) {
    tasks.push_back([&done, i]() {
      std::this_thread::sleep_for(std::chrono::milliseconds(i % 4));
      done.fetch_add(1);
      return Status::OK();
    });
  }
  ASSERT_TRUE(scheduler.Run(std::move(tasks)).ok());
  EXPECT_EQ(done.load(), 12);
}

TEST(TaskSchedulerTest, EmptyGroupReturnsOk) {
  TaskScheduler scheduler(2);
  EXPECT_TRUE(scheduler.Run({}).ok());
}

TEST(TaskSchedulerTest, LowestIndexedFailureWins) {
  TaskScheduler scheduler(4);
  for (int round = 0; round < 8; ++round) {
    std::vector<TaskScheduler::Task> tasks;
    for (int i = 0; i < 16; ++i) {
      tasks.push_back([i]() -> Status {
        if (i == 3) return Status::InvalidArgument("failure at 3");
        if (i == 11) return Status::Internal("failure at 11");
        return Status::OK();
      });
    }
    const Status status = scheduler.Run(std::move(tasks));
    ASSERT_FALSE(status.ok());
    // Whichever task happens to finish first, the reported failure is the
    // lowest-indexed one — parallel error reporting is deterministic.
    EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
    EXPECT_NE(status.message().find("failure at 3"), std::string::npos);
  }
}

TEST(TaskSchedulerTest, ExceptionsBecomeInternalErrors) {
  TaskScheduler scheduler(2);
  std::vector<TaskScheduler::Task> tasks;
  tasks.push_back([]() { return Status::OK(); });
  tasks.push_back([]() -> Status { throw std::runtime_error("boom"); });
  const Status status = scheduler.Run(std::move(tasks));
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInternal);
  EXPECT_NE(status.message().find("boom"), std::string::npos);
}

TEST(TaskSchedulerTest, IdleWorkersStealQueuedTasks) {
  // Deterministic steal setup on a fresh 2-worker pool: round-robin deals
  // t0 -> queue 0, t1 -> queue 1, t2 -> queue 0. Worker 0 blocks inside t0
  // until t2 has run; worker 0 cannot reach t2 (it is behind the blocked
  // t0), so the only way the group finishes is worker 1 stealing t2.
  TaskScheduler scheduler(2);
  std::promise<void> t2_done;
  std::shared_future<void> t2_done_future = t2_done.get_future().share();
  std::vector<TaskScheduler::Task> tasks;
  tasks.push_back([t2_done_future]() {
    t2_done_future.wait();
    return Status::OK();
  });
  tasks.push_back([]() { return Status::OK(); });
  tasks.push_back([&t2_done]() {
    t2_done.set_value();
    return Status::OK();
  });
  ASSERT_TRUE(scheduler.Run(std::move(tasks)).ok());
  EXPECT_GE(scheduler.steals(), 1u);
}

TEST(TaskSchedulerTest, ConcurrentRunCallsShareThePool) {
  TaskScheduler scheduler(4);
  std::atomic<int> total{0};
  auto submit = [&]() {
    std::vector<TaskScheduler::Task> tasks;
    for (int i = 0; i < 32; ++i) {
      tasks.push_back([&total]() {
        total.fetch_add(1);
        return Status::OK();
      });
    }
    return scheduler.Run(std::move(tasks));
  };
  std::vector<std::thread> callers;
  std::atomic<int> failures{0};
  for (int i = 0; i < 4; ++i) {
    callers.emplace_back([&]() {
      if (!submit().ok()) failures.fetch_add(1);
    });
  }
  for (auto& t : callers) t.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(total.load(), 4 * 32);
}

// --------------------------------------------------- end-to-end parallel

class ParallelExecTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(
        db_.Execute("CREATE TABLE t (a BIGINT NOT NULL, b BIGINT, e VARCHAR)")
            .ok());
    for (int i = 0; i < 1000; ++i) {
      ASSERT_TRUE(db_.InsertRow("t", {Value::Int64(i % 97),
                                      i % 13 == 0 ? Value::Null()
                                                  : Value::Int64(i),
                                      Value::String(i % 2 ? "odd" : "even")})
                      .ok());
    }
    ASSERT_TRUE(
        db_.Execute("CREATE TABLE s (k BIGINT NOT NULL, w BIGINT)").ok());
    for (int i = 0; i < 300; ++i) {
      ASSERT_TRUE(db_.InsertRow("s", {Value::Int64(i % 97),
                                      Value::Int64(i * 10)})
                      .ok());
    }
    ASSERT_TRUE(db_.Execute("ANALYZE t").ok());
    ASSERT_TRUE(db_.Execute("ANALYZE s").ok());
    db_.options().use_vectorized = true;
    db_.options().verify_plans = true;
  }

  QueryResult Run(const std::string& sql, std::size_t threads,
                  std::size_t morsel_rows = 64) {
    db_.options().num_threads = threads;
    db_.options().parallel_morsel_rows = morsel_rows;
    db_.plan_cache().Clear();
    auto result = db_.Execute(sql);
    EXPECT_TRUE(result.ok()) << sql << ": " << result.status().ToString();
    return std::move(*result);
  }

  static void ExpectIdentical(const QueryResult& serial,
                              const QueryResult& parallel,
                              const std::string& sql) {
    ASSERT_EQ(serial.rows.NumRows(), parallel.rows.NumRows()) << sql;
    for (std::size_t i = 0; i < serial.rows.NumRows(); ++i) {
      const auto& sr = serial.rows.rows[i];
      const auto& pr = parallel.rows.rows[i];
      ASSERT_EQ(sr.size(), pr.size()) << sql << " row " << i;
      for (std::size_t c = 0; c < sr.size(); ++c) {
        ASSERT_EQ(sr[c].ToString(), pr[c].ToString())
            << sql << " row " << i << " col " << c;
        ASSERT_EQ(sr[c].type(), pr[c].type())
            << sql << " row " << i << " col " << c;
      }
    }
    EXPECT_EQ(serial.exec_stats.rows_scanned, parallel.exec_stats.rows_scanned)
        << sql;
    EXPECT_EQ(serial.exec_stats.rows_emitted, parallel.exec_stats.rows_emitted)
        << sql;
    EXPECT_EQ(serial.exec_stats.pages_read, parallel.exec_stats.pages_read)
        << sql;
    EXPECT_EQ(serial.exec_stats.rows_joined, parallel.exec_stats.rows_joined)
        << sql;
  }

  SoftDb db_;
};

TEST_F(ParallelExecTest, ScanActuallySplitsIntoMorsels) {
  const QueryResult parallel = Run("SELECT a, b FROM t WHERE a < 50", 4);
  // 1000 slots at 64 rows per morsel: the plan really went parallel.
  EXPECT_GE(parallel.exec_stats.morsels, 15u);
  const QueryResult serial = Run("SELECT a, b FROM t WHERE a < 50", 1);
  EXPECT_EQ(serial.exec_stats.morsels, 0u);
}

TEST_F(ParallelExecTest, MergeOrderIsDeterministicAndSerialIdentical) {
  const std::string queries[] = {
      "SELECT * FROM t",
      "SELECT a, b FROM t WHERE a < 50 AND b IS NOT NULL",
      "SELECT a + 1, b - a FROM t WHERE e = 'odd'",
      "SELECT a, w FROM t JOIN s ON a = k WHERE w > 100",
      "SELECT a, b FROM t WHERE a BETWEEN 10 AND 60 ORDER BY a",
  };
  for (const std::string& sql : queries) {
    const QueryResult serial = Run(sql, 1);
    for (const std::size_t threads : {std::size_t{2}, std::size_t{8}}) {
      // Repeat runs guard against schedule-dependent merge order: every
      // execution must produce the same byte-identical output.
      for (int repeat = 0; repeat < 3; ++repeat) {
        const QueryResult parallel = Run(sql, threads);
        ExpectIdentical(serial, parallel, sql);
      }
    }
  }
}

TEST_F(ParallelExecTest, LimitSubtreeStaysSerial) {
  const QueryResult limited = Run("SELECT a FROM t WHERE a < 50 LIMIT 5", 8);
  // The planner must route LIMIT subtrees to the serial row engine; the
  // kParallelSafety invariant (verify_plans is on) double-checks it.
  EXPECT_EQ(limited.exec_stats.morsels, 0u);
  EXPECT_EQ(limited.rows.NumRows(), 5u);
}

TEST_F(ParallelExecTest, JoinBuildSidesAgreeAcrossThreadCounts) {
  // Duplicate build keys: per-key row order in the parallel join must fold
  // morsels in table order, reproducing serial build insertion order.
  const std::string sql = "SELECT a, b, w FROM t JOIN s ON a = k";
  const QueryResult serial = Run(sql, 1);
  const QueryResult parallel = Run(sql, 8, 32);
  ExpectIdentical(serial, parallel, sql);
  EXPECT_GT(parallel.exec_stats.morsels, 0u);
}

TEST_F(ParallelExecTest, SchedulerIsReusedAcrossQueries) {
  db_.options().num_threads = 4;
  TaskScheduler* first = db_.scheduler();
  ASSERT_NE(first, nullptr);
  EXPECT_EQ(first->num_threads(), 4u);
  EXPECT_EQ(db_.scheduler(), first);  // Same pool while the size holds.
  db_.options().num_threads = 1;
  EXPECT_EQ(db_.scheduler(), nullptr);  // Serial mode has no pool.
}

}  // namespace
}  // namespace softdb
