#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <string>

#include "common/rng.h"
#include "constraints/column_offset_sc.h"
#include "mining/correlation_miner.h"
#include "mining/fd_miner.h"
#include "mining/hole_miner.h"
#include "mining/offset_miner.h"
#include "mining/selection.h"
#include "storage/catalog.h"

namespace softdb {
namespace {

// ------------------------------------------------------- Correlation miner

class CorrelationFixture : public ::testing::Test {
 protected:
  CorrelationFixture() : table_("t", MakeSchema()), rng_(7) {
    for (int i = 0; i < 1000; ++i) {
      const double b = rng_.NextDouble() * 100.0;
      const double a = 3.0 * b + 10.0 + (rng_.NextDouble() - 0.5);  // ±0.5.
      const double noise = rng_.NextDouble() * 1000.0;  // Uncorrelated.
      EXPECT_TRUE(table_
                      .Append({Value::Double(a), Value::Double(b),
                               Value::Double(noise)})
                      .ok());
    }
  }

  static Schema MakeSchema() {
    Schema s;
    s.AddColumn({"a", TypeId::kDouble, false, "t"});
    s.AddColumn({"b", TypeId::kDouble, false, "t"});
    s.AddColumn({"noise", TypeId::kDouble, false, "t"});
    return s;
  }

  Table table_;
  Rng rng_;
};

TEST_F(CorrelationFixture, FitRecoversPlantedLine) {
  auto cand = FitCorrelation(table_, 0, 1);
  ASSERT_TRUE(cand.ok());
  EXPECT_NEAR(cand->k, 3.0, 0.05);
  EXPECT_NEAR(cand->c, 10.0, 1.0);
  EXPECT_LE(cand->epsilon_full, 0.55);  // Planted ±0.5 plus fit slack.
  EXPECT_GT(cand->r2, 0.99);
  EXPECT_LT(cand->selectivity, 0.05);
}

TEST_F(CorrelationFixture, MinerFindsOnlyTheRealPair) {
  auto candidates = MineLinearCorrelations(table_);
  // a<->b both directions qualify; pairs with noise do not.
  ASSERT_GE(candidates.size(), 1u);
  for (const auto& c : candidates) {
    EXPECT_TRUE((c.col_a == 0 && c.col_b == 1) ||
                (c.col_a == 1 && c.col_b == 0));
  }
}

TEST_F(CorrelationFixture, PartialEnvelopeTighterThanFull) {
  auto cand = FitCorrelation(table_, 0, 1);
  ASSERT_TRUE(cand.ok());
  EXPECT_LE(cand->epsilon_partial, cand->epsilon_full);
}

TEST(CorrelationMinerTest, RejectsDegenerateInputs) {
  Schema s;
  s.AddColumn({"a", TypeId::kDouble, false, "t"});
  s.AddColumn({"b", TypeId::kDouble, false, "t"});
  Table t("t", s);
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(t.Append({Value::Double(5.0), Value::Double(i)}).ok());
  }
  EXPECT_FALSE(FitCorrelation(t, 0, 1).ok());  // Constant column a.
  Table tiny("tiny", s);
  ASSERT_TRUE(tiny.Append({Value::Double(1), Value::Double(1)}).ok());
  EXPECT_FALSE(FitCorrelation(tiny, 0, 1).ok());  // Too few rows.
}

// -------------------------------------------------------------- Hole miner

TEST(LargestEmptyRectangleTest, BasicShapes) {
  // 4x4 grid with occupied diagonal.
  std::vector<std::vector<std::uint8_t>> grid(4,
                                              std::vector<std::uint8_t>(4, 0));
  for (int i = 0; i < 4; ++i) grid[i][i] = 1;
  std::size_t r0, c0, r1, c1;
  ASSERT_TRUE(LargestEmptyRectangle(grid, &r0, &c0, &r1, &c1));
  const std::size_t area = (r1 - r0 + 1) * (c1 - c0 + 1);
  EXPECT_GE(area, 3u);  // Best empty rectangle off the diagonal.
  // Verify claimed rectangle is actually empty.
  for (std::size_t r = r0; r <= r1; ++r) {
    for (std::size_t c = c0; c <= c1; ++c) EXPECT_EQ(grid[r][c], 0);
  }
}

TEST(LargestEmptyRectangleTest, FullGridHasNone) {
  std::vector<std::vector<std::uint8_t>> grid(2,
                                              std::vector<std::uint8_t>(2, 1));
  std::size_t r0, c0, r1, c1;
  EXPECT_FALSE(LargestEmptyRectangle(grid, &r0, &c0, &r1, &c1));
}

TEST(LargestEmptyRectangleTest, EmptyGridIsOneBigHole) {
  std::vector<std::vector<std::uint8_t>> grid(3,
                                              std::vector<std::uint8_t>(5, 0));
  std::size_t r0, c0, r1, c1;
  ASSERT_TRUE(LargestEmptyRectangle(grid, &r0, &c0, &r1, &c1));
  EXPECT_EQ((r1 - r0 + 1) * (c1 - c0 + 1), 15u);
}

class HoleMinerFixture : public ::testing::Test {
 protected:
  HoleMinerFixture() {
    Schema ls;
    ls.AddColumn({"jk", TypeId::kInt64, false, "l"});
    ls.AddColumn({"a", TypeId::kDouble, false, "l"});
    left_ = *catalog_.CreateTable("l", ls);
    Schema rs;
    rs.AddColumn({"jk", TypeId::kInt64, false, "r"});
    rs.AddColumn({"b", TypeId::kDouble, false, "r"});
    right_ = *catalog_.CreateTable("r", rs);
    Rng rng(11);
    // Joined pairs (a, b) avoid the rectangle a in [40,60] x b in [40,60].
    for (int k = 0; k < 2000; ++k) {
      double a = rng.NextDouble() * 100.0;
      double b = rng.NextDouble() * 100.0;
      while (a >= 40 && a <= 60 && b >= 40 && b <= 60) {
        a = rng.NextDouble() * 100.0;
        b = rng.NextDouble() * 100.0;
      }
      EXPECT_TRUE(left_->Append({Value::Int64(k), Value::Double(a)}).ok());
      EXPECT_TRUE(right_->Append({Value::Int64(k), Value::Double(b)}).ok());
    }
  }
  Catalog catalog_;
  Table* left_;
  Table* right_;
};

TEST_F(HoleMinerFixture, RecoversPlantedHole) {
  auto result = MineJoinHoles(*left_, 0, 1, *right_, 0, 1);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->join_pairs, 2000u);
  ASSERT_FALSE(result->holes.empty());
  // Some mined hole must cover the center of the planted one.
  bool covers_center = false;
  for (const HoleRect& h : result->holes) {
    covers_center = covers_center || (h.ContainsA(50.0) && h.ContainsB(50.0));
  }
  EXPECT_TRUE(covers_center);
  // And every mined hole must be genuinely empty in the join result.
  JoinHoleSc check("chk", "l", 0, 1, "r", 0, 1, result->holes);
  auto outcome = check.Verify(catalog_);
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(outcome->violations, 0u);
}

TEST_F(HoleMinerFixture, RespectsMaxHolesBudget) {
  HoleMinerOptions options;
  options.max_holes = 2;
  auto result = MineJoinHoles(*left_, 0, 1, *right_, 0, 1, options);
  ASSERT_TRUE(result.ok());
  EXPECT_LE(result->holes.size(), 2u);
}

// ---------------------------------------------------------------- FD miner

TEST(FdMinerTest, FindsExactAndApproximateFds) {
  Schema s;
  s.AddColumn({"nation", TypeId::kInt64, false, "t"});
  s.AddColumn({"region", TypeId::kInt64, false, "t"});
  s.AddColumn({"rand", TypeId::kInt64, false, "t"});
  Table t("t", s);
  Rng rng(3);
  for (int i = 0; i < 500; ++i) {
    const std::int64_t nation = rng.Uniform(0, 24);
    // region exact FD of nation, except ~2% dirty rows.
    const std::int64_t region =
        rng.NextDouble() < 0.98 ? nation / 5 : rng.Uniform(0, 4);
    ASSERT_TRUE(t.Append({Value::Int64(nation), Value::Int64(region),
                          Value::Int64(rng.Uniform(0, 1000000))})
                    .ok());
  }
  FdMinerOptions options;
  options.min_confidence = 0.9;
  auto fds = MineFunctionalDependencies(t, options);
  bool found = false;
  for (const FdCandidate& fd : fds) {
    if (fd.determinants == std::vector<ColumnIdx>{0} && fd.dependent == 1) {
      found = true;
      EXPECT_GT(fd.confidence, 0.95);
      EXPECT_LT(fd.confidence, 1.0);
    }
    // `rand` is key-like: FDs from it are pruned as uninformative.
    EXPECT_NE(fd.determinants, std::vector<ColumnIdx>{2});
  }
  EXPECT_TRUE(found);
}

TEST(FdMinerTest, ExactFdHasConfidenceOne) {
  Schema s;
  s.AddColumn({"a", TypeId::kInt64, false, "t"});
  s.AddColumn({"b", TypeId::kInt64, false, "t"});
  Table t("t", s);
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(
        t.Append({Value::Int64(i % 10), Value::Int64((i % 10) * 7)}).ok());
  }
  auto fds = MineFunctionalDependencies(t);
  bool found = false;
  for (const FdCandidate& fd : fds) {
    if (fd.determinants == std::vector<ColumnIdx>{0} && fd.dependent == 1) {
      found = true;
      EXPECT_DOUBLE_EQ(fd.confidence, 1.0);
    }
  }
  EXPECT_TRUE(found);
}

TEST(FdMinerTest, PairDeterminantsAreMinimal) {
  Schema s;
  s.AddColumn({"a", TypeId::kInt64, false, "t"});
  s.AddColumn({"b", TypeId::kInt64, false, "t"});
  s.AddColumn({"c", TypeId::kInt64, false, "t"});
  Table t("t", s);
  for (int i = 0; i < 200; ++i) {
    // a -> c exactly; b is noise.
    ASSERT_TRUE(t.Append({Value::Int64(i % 8), Value::Int64(i % 13),
                          Value::Int64((i % 8) * 3)})
                    .ok());
  }
  auto fds = MineFunctionalDependencies(t);
  for (const FdCandidate& fd : fds) {
    if (fd.dependent == 2 && fd.confidence >= 1.0) {
      // {a,b} -> c must have been pruned since a -> c already holds.
      EXPECT_EQ(fd.determinants.size(), 1u);
    }
  }
}

// Reference confidence computed the way the miner originally did it — by
// grouping on rendered per-cell string images — so the value-hash fast
// path can be cross-checked against it bit for bit.
double ReferenceFdConfidence(const Table& t,
                             const std::vector<ColumnIdx>& determinant,
                             ColumnIdx dependent, std::uint64_t* groups_out) {
  auto cell_image = [&](RowId r, ColumnIdx c) {
    const Value v = t.Get(r, c);
    return v.is_null() ? std::string("\x01<null>") : v.ToString();
  };
  std::map<std::string, std::map<std::string, std::uint64_t>> counts;
  std::uint64_t rows = 0;
  for (RowId r = 0; r < t.NumSlots(); ++r) {
    if (!t.IsLive(r)) continue;
    ++rows;
    std::string key;
    for (ColumnIdx c : determinant) key += cell_image(r, c) + "\x1f";
    ++counts[key][cell_image(r, dependent)];
  }
  std::uint64_t kept = 0;
  for (const auto& [key, per_value] : counts) {
    std::uint64_t best = 0;
    for (const auto& [value, n] : per_value) best = std::max(best, n);
    kept += best;
  }
  *groups_out = counts.size();
  return static_cast<double>(kept) / static_cast<double>(rows);
}

TEST(FdMinerTest, HashKeyedCountsMatchStringKeyedReference) {
  Schema s;
  s.AddColumn({"a", TypeId::kInt64, false, "t"});
  s.AddColumn({"b", TypeId::kInt64, true, "t"});
  s.AddColumn({"c", TypeId::kString, true, "t"});
  s.AddColumn({"d", TypeId::kDouble, true, "t"});
  Table t("t", s);
  Rng rng(11);
  for (int i = 0; i < 400; ++i) {
    const std::int64_t a = rng.Uniform(0, 20);
    ASSERT_TRUE(
        t.Append({Value::Int64(a),
                  rng.NextBool(0.1) ? Value::Null() : Value::Int64(a / 3),
                  rng.NextBool(0.1)
                      ? Value::Null()
                      : Value::String(a % 2 ? "odd" : "even"),
                  Value::Double(static_cast<double>(a % 5))})
            .ok());
  }
  FdMinerOptions options;
  options.min_confidence = 0.0;  // Report everything; compare all counts.
  options.max_group_fraction = 1.1;
  auto fds = MineFunctionalDependencies(t, options);
  ASSERT_FALSE(fds.empty());
  for (const FdCandidate& fd : fds) {
    std::uint64_t ref_groups = 0;
    const double ref_conf =
        ReferenceFdConfidence(t, fd.determinants, fd.dependent, &ref_groups);
    EXPECT_DOUBLE_EQ(fd.confidence, ref_conf)
        << "determinant[0]=" << fd.determinants[0]
        << " dependent=" << fd.dependent;
    EXPECT_EQ(fd.determinant_groups, ref_groups);
  }
}

// ------------------------------------------------------------ Offset miner

TEST(OffsetMinerTest, RecoversPlantedWindow) {
  Schema s;
  s.AddColumn({"order_d", TypeId::kDate, false, "t"});
  s.AddColumn({"ship_d", TypeId::kDate, false, "t"});
  Table t("t", s);
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    const std::int64_t order = 10000 + rng.Uniform(0, 700);
    const std::int64_t lag =
        rng.NextDouble() < 0.99 ? rng.Uniform(0, 21) : rng.Uniform(22, 60);
    ASSERT_TRUE(
        t.Append({Value::Date(order), Value::Date(order + lag)}).ok());
  }
  auto candidates = MineColumnOffsets(t);
  bool found = false;
  for (const OffsetCandidate& c : candidates) {
    if (c.col_x == 0 && c.col_y == 1) {
      found = true;
      EXPECT_EQ(c.min_full, 0);
      EXPECT_GE(c.max_full, 22);
      EXPECT_LE(c.max_partial, 25);  // 99% quantile near the window edge.
      EXPECT_GE(c.min_partial, 0);
    }
  }
  EXPECT_TRUE(found);
}

// --------------------------------------------------------------- Selection

TEST(SelectionTest, CorrelationScoringRequiresIndexAndWorkload) {
  Catalog catalog;
  Schema s;
  s.AddColumn({"a", TypeId::kDouble, false, "t"});
  s.AddColumn({"b", TypeId::kDouble, false, "t"});
  Table* t = *catalog.CreateTable("t", s);
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(
        t->Append({Value::Double(i * 2.0), Value::Double(i)}).ok());
  }
  CorrelationCandidate cand;
  cand.col_a = 0;
  cand.col_b = 1;
  cand.selectivity = 0.1;
  cand.r2 = 0.99;

  WorkloadProfile profile;
  // No index, no workload: utility zero.
  auto scored = ScoreCorrelationCandidates({cand}, "t", profile, catalog);
  EXPECT_EQ(scored[0].utility, 0.0);

  ASSERT_TRUE(catalog.CreateIndex("ia", "t", "a").ok());
  scored = ScoreCorrelationCandidates({cand}, "t", profile, catalog);
  EXPECT_EQ(scored[0].utility, 0.0);  // Still no workload hits on b.

  profile.RecordPredicate("t", 1, 50);
  scored = ScoreCorrelationCandidates({cand}, "t", profile, catalog);
  EXPECT_GT(scored[0].utility, 0.0);
}

TEST(SelectionTest, SelectTopFiltersAndSorts) {
  std::vector<ScoredCandidate> scored;
  for (int i = 0; i < 10; ++i) {
    scored.push_back({static_cast<double>(i % 4), "", static_cast<size_t>(i)});
  }
  auto top = SelectTop(std::move(scored), 3);
  ASSERT_EQ(top.size(), 3u);
  EXPECT_EQ(top[0].utility, 3.0);
  EXPECT_GE(top[0].utility, top[1].utility);
  EXPECT_GE(top[1].utility, top[2].utility);
}

TEST(SelectionTest, ProbationSweepFlagsUnusedScs) {
  Catalog catalog;
  Schema s;
  s.AddColumn({"x", TypeId::kInt64, false, "t"});
  s.AddColumn({"y", TypeId::kInt64, false, "t"});
  Table* t = *catalog.CreateTable("t", s);
  ASSERT_TRUE(t->Append({Value::Int64(1), Value::Int64(2)}).ok());
  ScRegistry scs;
  auto used = std::make_unique<ColumnOffsetSc>("used", "t", 0, 1, 0, 100);
  auto unused = std::make_unique<ColumnOffsetSc>("unused", "t", 0, 1, 0, 100);
  ASSERT_TRUE(scs.Add(std::move(used), catalog).ok());
  ASSERT_TRUE(scs.Add(std::move(unused), catalog).ok());
  for (int i = 0; i < 10; ++i) scs.RecordUse("used", 5.0);
  auto to_drop = ProbationSweep(scs, 5, 1.0);
  ASSERT_EQ(to_drop.size(), 1u);
  EXPECT_EQ(to_drop[0], "unused");
}

}  // namespace
}  // namespace softdb
