#include <gtest/gtest.h>

#include "common/date.h"
#include "common/result.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/str_util.h"
#include "common/value.h"

namespace softdb {
namespace {

// ----------------------------------------------------------------- Status

TEST(StatusTest, DefaultIsOk) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status st = Status::NotFound("missing thing");
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kNotFound);
  EXPECT_EQ(st.message(), "missing thing");
  EXPECT_EQ(st.ToString(), "not found: missing thing");
}

TEST(StatusTest, AllFactoriesProduceDistinctCodes) {
  EXPECT_EQ(Status::InvalidArgument("x").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::AlreadyExists("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::ConstraintViolation("x").code(),
            StatusCode::kConstraintViolation);
  EXPECT_EQ(Status::ParseError("x").code(), StatusCode::kParseError);
  EXPECT_EQ(Status::BindError("x").code(), StatusCode::kBindError);
  EXPECT_EQ(Status::TypeMismatch("x").code(), StatusCode::kTypeMismatch);
  EXPECT_EQ(Status::NotImplemented("x").code(), StatusCode::kNotImplemented);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::DeadlineExceeded("x").code(),
            StatusCode::kDeadlineExceeded);
  EXPECT_EQ(Status::Cancelled("x").code(), StatusCode::kCancelled);
  EXPECT_EQ(Status::ResourceExhausted("x").code(),
            StatusCode::kResourceExhausted);
}

TEST(StatusTest, InterruptCodesRenderDistinctly) {
  EXPECT_EQ(Status::DeadlineExceeded("out of time").ToString(),
            "deadline exceeded: out of time");
  EXPECT_EQ(Status::Cancelled("user abort").ToString(),
            "cancelled: user abort");
  EXPECT_EQ(Status::ResourceExhausted("no memory").ToString(),
            "resource exhausted: no memory");
}

// --- Structured status details (the serving layer's machine-readable
// convention: a trailing " {k=v k2=v2}" block; see status.h).

TEST(StatusDetailTest, AppendAndParseRoundTrip) {
  std::string msg = AppendStatusDetail("queue full", "queue_depth", 17);
  EXPECT_EQ(msg, "queue full {queue_depth=17}");
  msg = AppendStatusDetail(std::move(msg), "retry_after_ms", 25);
  EXPECT_EQ(msg, "queue full {queue_depth=17 retry_after_ms=25}");
  EXPECT_EQ(ParseStatusDetail(msg, "queue_depth"), 17);
  EXPECT_EQ(ParseStatusDetail(msg, "retry_after_ms"), 25);
  EXPECT_FALSE(ParseStatusDetail(msg, "shed").has_value());
  // Keys must match whole tokens, not substrings of other keys.
  EXPECT_FALSE(ParseStatusDetail(msg, "depth").has_value());
}

TEST(StatusDetailTest, StatusCarriesDetailsThroughWithStatusDetail) {
  Status s = WithStatusDetail(Status::ResourceExhausted("queue full"),
                              "queue_depth", 8);
  s = WithStatusDetail(std::move(s), "retry_after_ms", 40);
  EXPECT_EQ(s.code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(StatusDetail(s, "queue_depth"), 8);
  EXPECT_EQ(StatusDetail(s, "retry_after_ms"), 40);
  EXPECT_FALSE(StatusDetail(s, "draining").has_value());
  EXPECT_FALSE(StatusDetail(Status::OK(), "queue_depth").has_value());
}

TEST(StatusDetailTest, NegativeValuesAndPlainMessagesParse) {
  Status s = WithStatusDetail(Status::Internal("clock skew"),
                              "deadline_lag_ms", -3);
  EXPECT_EQ(StatusDetail(s, "deadline_lag_ms"), -3);
  // Messages with incidental braces are not misparsed as detail blocks.
  EXPECT_FALSE(
      ParseStatusDetail("literal {not a detail} trailing", "not").has_value());
}

TEST(StatusDetailTest, RetryClassification) {
  // Resource exhaustion is the canonical transient: always retryable.
  EXPECT_TRUE(IsRetryableStatus(Status::ResourceExhausted("queue full")));
  // Interrupt codes are never retryable: retrying cannot help.
  EXPECT_FALSE(IsRetryableStatus(Status::DeadlineExceeded("late")));
  EXPECT_FALSE(IsRetryableStatus(Status::Cancelled("abort")));
  // Other codes are retryable only if the producer attached a hint.
  EXPECT_FALSE(IsRetryableStatus(Status::Internal("wal torn")));
  EXPECT_TRUE(IsRetryableStatus(
      WithStatusDetail(Status::Internal("wal busy"), "retry_after_ms", 10)));
  EXPECT_FALSE(IsRetryableStatus(Status::InvalidArgument("bad sql")));
  EXPECT_FALSE(IsRetryableStatus(Status::OK()));
}

Result<int> Half(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Result<int> QuarterViaMacro(int x) {
  SOFTDB_ASSIGN_OR_RETURN(int half, Half(x));
  SOFTDB_ASSIGN_OR_RETURN(int quarter, Half(half));
  return quarter;
}

TEST(ResultTest, ValueAndError) {
  Result<int> ok = Half(10);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 5);
  Result<int> err = Half(3);
  ASSERT_FALSE(err.ok());
  EXPECT_EQ(err.status().code(), StatusCode::kInvalidArgument);
}

TEST(ResultTest, AssignOrReturnPropagates) {
  EXPECT_EQ(*QuarterViaMacro(8), 2);
  EXPECT_FALSE(QuarterViaMacro(6).ok());  // 6/2=3 is odd.
  EXPECT_FALSE(QuarterViaMacro(7).ok());
}

TEST(ResultTest, MoveOnlyValue) {
  Result<std::unique_ptr<int>> r(std::make_unique<int>(42));
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).value();
  EXPECT_EQ(*v, 42);
}

// ------------------------------------------------------------------- Date

TEST(DateTest, EpochIsZero) { EXPECT_EQ(Date::FromYmd(1970, 1, 1), 0); }

TEST(DateTest, KnownDates) {
  EXPECT_EQ(Date::FromYmd(1970, 1, 2), 1);
  EXPECT_EQ(Date::FromYmd(1969, 12, 31), -1);
  EXPECT_EQ(Date::FromYmd(2000, 1, 1), 10957);
}

TEST(DateTest, ParseAndFormatRoundTrip) {
  auto d = Date::Parse("1999-12-15");
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(Date::ToString(*d), "1999-12-15");
}

TEST(DateTest, ParseRejectsGarbage) {
  EXPECT_FALSE(Date::Parse("not-a-date").ok());
  EXPECT_FALSE(Date::Parse("1999-13-01").ok());
  EXPECT_FALSE(Date::Parse("1999-02-30").ok());
  EXPECT_FALSE(Date::Parse("1999-12-15x").ok());
  EXPECT_FALSE(Date::Parse("99-12-15").ok());
}

TEST(DateTest, LeapYears) {
  EXPECT_TRUE(Date::IsLeapYear(2000));
  EXPECT_TRUE(Date::IsLeapYear(1996));
  EXPECT_FALSE(Date::IsLeapYear(1900));
  EXPECT_FALSE(Date::IsLeapYear(1999));
  EXPECT_EQ(Date::DaysInMonth(2000, 2), 29);
  EXPECT_EQ(Date::DaysInMonth(1999, 2), 28);
  EXPECT_EQ(Date::DaysInMonth(1999, 4), 30);
  EXPECT_EQ(Date::DaysInMonth(1999, 12), 31);
}

TEST(DateTest, DateArithmeticMatchesCalendar) {
  const std::int64_t dec15 = *Date::Parse("1999-12-15");
  EXPECT_EQ(Date::ToString(dec15 - 21), "1999-11-24");  // The §4.4 example.
  EXPECT_EQ(Date::ToString(dec15 + 17), "2000-01-01");
}

// Property sweep: every day of several years round-trips.
class DateRoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(DateRoundTrip, AllDaysOfYear) {
  const int year = GetParam();
  for (int month = 1; month <= 12; ++month) {
    for (int day = 1; day <= Date::DaysInMonth(year, month); ++day) {
      const std::int64_t days = Date::FromYmd(year, month, day);
      int y, m, d;
      Date::ToYmd(days, &y, &m, &d);
      EXPECT_EQ(y, year);
      EXPECT_EQ(m, month);
      EXPECT_EQ(d, day);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Years, DateRoundTrip,
                         ::testing::Values(1970, 1999, 2000, 2024, 2100));

// ------------------------------------------------------------------ Value

TEST(ValueTest, NullBehavior) {
  Value null = Value::Null();
  EXPECT_TRUE(null.is_null());
  EXPECT_EQ(null.ToString(), "NULL");
  EXPECT_FALSE(null == Value::Int64(0));
  EXPECT_TRUE(null.GroupEquals(Value::Null()));
}

TEST(ValueTest, CompareSameTypes) {
  EXPECT_LT(*Value::Int64(1).Compare(Value::Int64(2)), 0);
  EXPECT_EQ(*Value::Int64(5).Compare(Value::Int64(5)), 0);
  EXPECT_GT(*Value::Double(2.5).Compare(Value::Double(1.5)), 0);
  EXPECT_LT(*Value::String("abc").Compare(Value::String("abd")), 0);
  EXPECT_LT(*Value::Date(10).Compare(Value::Date(11)), 0);
}

TEST(ValueTest, CompareAcrossNumericFamilies) {
  EXPECT_EQ(*Value::Int64(2).Compare(Value::Double(2.0)), 0);
  EXPECT_LT(*Value::Int64(2).Compare(Value::Double(2.5)), 0);
}

TEST(ValueTest, CompareStringWithNumberErrors) {
  EXPECT_FALSE(Value::String("x").Compare(Value::Int64(1)).ok());
}

TEST(ValueTest, HashConsistentWithGroupEquals) {
  EXPECT_EQ(Value::Int64(7).Hash(), Value::Double(7.0).Hash());
  EXPECT_TRUE(Value::Int64(7).GroupEquals(Value::Double(7.0)));
  EXPECT_EQ(Value::Null().Hash(), Value::Null(TypeId::kString).Hash());
}

TEST(ValueTest, Casts) {
  EXPECT_EQ(Value::Int64(3).CastTo(TypeId::kDouble)->AsDouble(), 3.0);
  EXPECT_EQ(Value::Double(3.7).CastTo(TypeId::kInt64)->AsInt64(), 4);
  EXPECT_EQ(Value::Int64(10).CastTo(TypeId::kDate)->type(), TypeId::kDate);
  EXPECT_FALSE(Value::String("3").CastTo(TypeId::kInt64).ok());
  EXPECT_TRUE(Value::Null().CastTo(TypeId::kDouble)->is_null());
}

TEST(ValueTest, ToStringRendering) {
  EXPECT_EQ(Value::Int64(42).ToString(), "42");
  EXPECT_EQ(Value::Bool(true).ToString(), "TRUE");
  EXPECT_EQ(Value::String("hi").ToString(), "'hi'");
  EXPECT_EQ(Value::Date(*Date::Parse("1999-12-15")).ToString(),
            "DATE '1999-12-15'");
}

// -------------------------------------------------------------------- Rng

TEST(RngTest, DeterministicFromSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  bool differ = false;
  for (int i = 0; i < 10; ++i) differ = differ || (a.Next() != b.Next());
  EXPECT_TRUE(differ);
}

TEST(RngTest, UniformStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const std::int64_t v = rng.Uniform(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, GaussianRoughlyCentered) {
  Rng rng(11);
  double sum = 0;
  const int n = 10000;
  for (int i = 0; i < n; ++i) sum += rng.NextGaussian(10.0, 2.0);
  EXPECT_NEAR(sum / n, 10.0, 0.1);
}

// ---------------------------------------------------------------- StrUtil

TEST(StrUtilTest, CaseConversion) {
  EXPECT_EQ(ToLower("AbC"), "abc");
  EXPECT_EQ(ToUpper("aBc"), "ABC");
}

TEST(StrUtilTest, JoinAndSplit) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ","), "");
  auto parts = Split("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[2], "");
}

TEST(StrUtilTest, Trim) {
  EXPECT_EQ(Trim("  x y  "), "x y");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Trim("   "), "");
}

TEST(StrUtilTest, StrFormat) {
  EXPECT_EQ(StrFormat("%d-%s", 7, "x"), "7-x");
  EXPECT_EQ(StrFormat("%.2f", 1.5), "1.50");
}

}  // namespace
}  // namespace softdb
