// Whole-workload static analyzer tests: every finding class must fire on a
// seeded catalog + workload pair, the analysis must work on a zero-row
// catalog (proving it never reads table data), the three renderings must
// agree with each other and with the CLI's exit-code contract, and — the
// harvesting property — every candidate mined from a generator workload
// must validate cleanly against the generated data (no false candidates
// survive the validate-then-arm step).

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "analysis/rule_registry.h"
#include "analysis/sc_lint.h"
#include "analysis/workload_analyzer.h"
#include "engine/softdb.h"
#include "workload/generator.h"

namespace softdb {
namespace {

bool HasFinding(const AnalyzerReport& report, const std::string& check,
                const std::string& subject_fragment = "") {
  return std::any_of(report.lint.findings.begin(), report.lint.findings.end(),
                     [&](const LintFinding& f) {
                       return f.check == check &&
                              f.subject.find(subject_fragment) !=
                                  std::string::npos;
                     });
}

const HarvestedCandidate* FindCandidate(const AnalyzerReport& report,
                                        HarvestedCandidate::Kind kind,
                                        const std::string& table) {
  for (const HarvestedCandidate& c : report.candidates) {
    if (c.kind == kind && c.table == table) return &c;
  }
  return nullptr;
}

/// The seeded catalog: zero rows on purpose — every diagnostic below must
/// be reachable from schema + constraints + workload text alone.
const char kCatalog[] =
    "CREATE TABLE customers (id BIGINT PRIMARY KEY, region VARCHAR(32), "
    "  signup_day BIGINT, referrer VARCHAR(32));"
    "CREATE TABLE orders (id BIGINT PRIMARY KEY, customer_id BIGINT, "
    "  order_day BIGINT, ship_day BIGINT, total DOUBLE, priority BIGINT, "
    "  CHECK (total >= 0), "
    "  CONSTRAINT chk_priority CHECK (priority >= 1 AND priority <= 5) "
    "  NOT ENFORCED);"
    "SOFT CONSTRAINT order_total_range DOMAIN ON orders(total) "
    "  MIN 0 MAX 100000 CONFIDENCE 0.98;"
    "SOFT CONSTRAINT ship_lag OFFSET ON orders(order_day, ship_day) "
    "  MIN 0 MAX 30 CONFIDENCE 0.95;"
    "SOFT CONSTRAINT signup_window DOMAIN ON customers(signup_day) "
    "  MIN 0 MAX 3650 CONFIDENCE 0.9;";

std::vector<std::string> SmellyWorkload() {
  return {
      "SELECT id FROM orders WHERE total > 200000",
      "SELECT id FROM orders WHERE total >= 0 AND order_day > 100",
      "SELECT id FROM orders WHERE total BETWEEN 50 AND 500000",
      "SELECT id FROM customers WHERE referrer IS NOT NULL",
      "SELECT id, region FROM customers WHERE referrer IS NOT NULL",
      "SELECT id FROM orders WHERE order_day BETWEEN 0 AND 180",
      "SELECT id FROM orders WHERE order_day BETWEEN 100 AND 365",
      "SELECT o.id, c.region FROM orders o JOIN customers c "
      "ON o.customer_id = c.id WHERE o.ship_day < 10",
      "SELECT o.id, c.id FROM orders o JOIN customers c "
      "ON o.customer_id = c.id WHERE o.ship_day > 2",
      "SELECT region, signup_day, COUNT(*) FROM customers "
      "GROUP BY region, signup_day",
      "SELECT region, signup_day, SUM(id) FROM customers "
      "GROUP BY region, signup_day",
      "UPDATE orders SET order_day = order_day + 1, "
      "ship_day = ship_day + 2, total = total * 2",
      "DELETE FROM orders WHERE id > 1000000 AND id < 5",
      "SELEC id FROM orders",
  };
}

TEST(WorkloadAnalyzerTest, EveryFindingClassFiresOnSeededWorkload) {
  auto report = AnalyzeWorkloadStatic(kCatalog, SmellyWorkload());
  ASSERT_TRUE(report.ok()) << report.status().ToString();

  // Pass 1: implication-driven per-query diagnostics.
  EXPECT_TRUE(HasFinding(*report, "query-contradiction", "stmt#1"));
  EXPECT_TRUE(HasFinding(*report, "query-redundant-predicate", "stmt#2"));
  EXPECT_TRUE(HasFinding(*report, "query-dead-range", "stmt#3"));

  // Pass 2: exploitation coverage.
  EXPECT_TRUE(HasFinding(*report, "never-exploitable-sc", "signup_window"));
  EXPECT_TRUE(HasFinding(*report, "uncovered-statement", "stmt#4"));
  EXPECT_TRUE(HasFinding(*report, "uncovered-statement", "stmt#5"));

  // Pass 3: harvesting (details exercised below).
  EXPECT_TRUE(HasFinding(*report, "harvest-candidate"));

  // Pass 4: DML impact.
  EXPECT_TRUE(HasFinding(*report, "dml-wholesale-revalidation", "stmt#12"));
  EXPECT_TRUE(HasFinding(*report, "query-contradiction", "stmt#13"));

  // The typo'd statement degrades to a warning, not a hard failure.
  EXPECT_TRUE(
      HasFinding(*report, "workload-unparseable-statement", "stmt#14"));

  EXPECT_GE(report->errors(), 2u);  // Two contradictions at least.
  EXPECT_EQ(report->statements, SmellyWorkload().size());
  EXPECT_GE(report->queries_bound, 10u);
}

TEST(WorkloadAnalyzerTest, CoverageAndImpactMatricesArePopulated) {
  auto report = AnalyzeWorkloadStatic(kCatalog, SmellyWorkload());
  ASSERT_TRUE(report.ok()) << report.status().ToString();

  ASSERT_EQ(report->coverage.size(), 3u);  // One row per catalog SC.
  bool saw_ship_lag = false;
  bool saw_signup = false;
  for (const ScCoverageRow& row : report->coverage) {
    if (row.sc == "ship_lag") {
      saw_ship_lag = true;
      EXPECT_EQ(row.channel, "predicate-introduction");
      EXPECT_FALSE(row.statements.empty());
    }
    if (row.sc == "signup_window") {
      saw_signup = true;
      EXPECT_TRUE(row.statements.empty());
    }
  }
  EXPECT_TRUE(saw_ship_lag);
  EXPECT_TRUE(saw_signup);

  ASSERT_EQ(report->impact.size(), 2u);  // The UPDATE and the DELETE.
  const DmlImpactRow& update = report->impact[0];
  EXPECT_EQ(update.kind, "update");
  EXPECT_EQ(update.table, "orders");
  EXPECT_GE(update.impacted.size(), 2u);  // Both SCs on orders.
  const DmlImpactRow& del = report->impact[1];
  EXPECT_EQ(del.kind, "delete");
  EXPECT_TRUE(del.where_unsatisfiable);
}

TEST(WorkloadAnalyzerTest, HarvestsAtLeastThreeCandidateClasses) {
  auto report = AnalyzeWorkloadStatic(kCatalog, SmellyWorkload());
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_GE(report->candidates.size(), 3u);

  // Recurring two-sided order_day ranges -> domain candidate with the
  // loosest bounds seen each way.
  const HarvestedCandidate* domain =
      FindCandidate(*report, HarvestedCandidate::Kind::kDomain, "orders");
  ASSERT_NE(domain, nullptr);
  EXPECT_EQ(domain->min_value.ToString(), "0");
  EXPECT_EQ(domain->max_value.ToString(), "365");
  EXPECT_GE(domain->support, 2u);

  // Recurring equi-join against a unique key, no FK and no armed SC.
  const HarvestedCandidate* inclusion =
      FindCandidate(*report, HarvestedCandidate::Kind::kInclusion, "orders");
  ASSERT_NE(inclusion, nullptr);
  EXPECT_EQ(inclusion->parent_table, "customers");

  // Recurring multi-column GROUP BY -> FD candidate.
  const HarvestedCandidate* fd =
      FindCandidate(*report, HarvestedCandidate::Kind::kFd, "customers");
  ASSERT_NE(fd, nullptr);

  // Informational CHECK + recurring IS NOT NULL -> predicate candidates.
  const HarvestedCandidate* pred = FindCandidate(
      *report, HarvestedCandidate::Kind::kPredicate, "orders");
  ASSERT_NE(pred, nullptr);

  // Every emitted candidate carries a re-runnable directive and appears as
  // a note-severity finding.
  for (const HarvestedCandidate& c : report->candidates) {
    EXPECT_EQ(c.directive.rfind("SOFT CONSTRAINT ", 0), 0u) << c.name;
    EXPECT_TRUE(HasFinding(*report, "harvest-candidate", c.name));
  }
  EXPECT_EQ(report->lint.notes(), report->candidates.size());
}

TEST(WorkloadAnalyzerTest, HarvestedDirectivesRoundTripThroughTheLinter) {
  auto report = AnalyzeWorkloadStatic(kCatalog, SmellyWorkload());
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  ASSERT_GE(report->candidates.size(), 3u);
  // Appending every suggested directive to the catalog must still load —
  // the suggestions are syntactically valid and name-collision free.
  std::string script = kCatalog;
  for (const HarvestedCandidate& c : report->candidates) {
    script += c.directive + ";";
  }
  SoftDb db;
  EXPECT_TRUE(LoadCatalogScript(&db, script).ok());
}

TEST(WorkloadAnalyzerTest, ArmedConstraintsSuppressDuplicateHarvest) {
  // Same workload, but the catalog already arms the domain, the inclusion
  // and the FD the workload would suggest: none may be re-harvested.
  const std::string script = std::string(kCatalog) +
      "SOFT CONSTRAINT order_day_range DOMAIN ON orders(order_day) "
      "  MIN 0 MAX 400;"
      "SOFT CONSTRAINT ship_day_range DOMAIN ON orders(ship_day) "
      "  MIN 0 MAX 430;"
      "SOFT CONSTRAINT orders_have_customers INCLUSION ON "
      "  orders(customer_id) REFERENCES customers(id);"
      "SOFT CONSTRAINT region_determines_signup FD ON customers(region) "
      "  DETERMINES (signup_day);";
  auto report = AnalyzeWorkloadStatic(script, SmellyWorkload());
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(FindCandidate(*report, HarvestedCandidate::Kind::kDomain,
                          "orders"),
            nullptr);
  EXPECT_EQ(FindCandidate(*report, HarvestedCandidate::Kind::kInclusion,
                          "orders"),
            nullptr);
  EXPECT_EQ(FindCandidate(*report, HarvestedCandidate::Kind::kFd,
                          "customers"),
            nullptr);
}

TEST(WorkloadAnalyzerTest, AnalysisIsPurelyStatic) {
  // The seeded catalog holds zero rows, yet every pass produced results —
  // and an INSERT-bearing catalog yields the identical finding set, since
  // nothing reads table data.
  auto empty = AnalyzeWorkloadStatic(kCatalog, SmellyWorkload());
  ASSERT_TRUE(empty.ok()) << empty.status().ToString();
  const std::string with_rows = std::string(kCatalog) +
      "INSERT INTO customers VALUES (1, 'emea', 10, NULL);"
      "INSERT INTO orders VALUES (1, 1, 5, 9, 120.0, 3);";
  auto loaded = AnalyzeWorkloadStatic(with_rows, SmellyWorkload());
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_EQ(empty->lint.findings.size(), loaded->lint.findings.size());
  for (std::size_t i = 0; i < empty->lint.findings.size(); ++i) {
    EXPECT_EQ(empty->lint.findings[i].check, loaded->lint.findings[i].check);
    EXPECT_EQ(empty->lint.findings[i].subject,
              loaded->lint.findings[i].subject);
  }
}

TEST(WorkloadAnalyzerTest, IsNotNullOnlyRedundantForNonNullableColumns) {
  // Lint mode runs the implication engine with assume_non_null, which
  // trivially "implies" every IS NOT NULL — but on a nullable column the
  // filter is real and must not be called redundant.
  const char ddl[] =
      "CREATE TABLE t (id BIGINT PRIMARY KEY, a BIGINT NOT NULL, "
      "b BIGINT);";
  auto nullable = AnalyzeWorkloadStatic(
      ddl, {"SELECT id FROM t WHERE b IS NOT NULL"});
  ASSERT_TRUE(nullable.ok()) << nullable.status().ToString();
  EXPECT_FALSE(HasFinding(*nullable, "query-redundant-predicate"));

  auto non_nullable = AnalyzeWorkloadStatic(
      ddl, {"SELECT id FROM t WHERE a IS NOT NULL"});
  ASSERT_TRUE(non_nullable.ok()) << non_nullable.status().ToString();
  EXPECT_TRUE(HasFinding(*non_nullable, "query-redundant-predicate"));
}

TEST(WorkloadAnalyzerTest, CleanWorkloadProducesNoFindings) {
  const char kCleanCatalog[] =
      "CREATE TABLE customers (id BIGINT PRIMARY KEY, region VARCHAR(32), "
      "  signup_day BIGINT);"
      "CREATE TABLE orders (id BIGINT PRIMARY KEY, customer_id BIGINT, "
      "  order_day BIGINT, ship_day BIGINT, total DOUBLE, "
      "  CHECK (total >= 0));"
      "SOFT CONSTRAINT order_total_range DOMAIN ON orders(total) "
      "  MIN 0 MAX 100000 CONFIDENCE 0.98;"
      "SOFT CONSTRAINT ship_lag OFFSET ON orders(order_day, ship_day) "
      "  MIN 0 MAX 30 CONFIDENCE 0.95;"
      "SOFT CONSTRAINT orders_have_customers INCLUSION ON "
      "  orders(customer_id) REFERENCES customers(id) CONFIDENCE 0.99;";
  const std::vector<std::string> workload = {
      "SELECT id, total FROM orders WHERE total > 500",
      "SELECT id FROM orders WHERE ship_day < 20",
      "SELECT o.id, c.region FROM orders o JOIN customers c "
      "ON o.customer_id = c.id WHERE o.order_day > 10",
      "SELECT COUNT(*) FROM orders WHERE total BETWEEN 100 AND 900",
      "SELECT c.region, COUNT(*) FROM orders o JOIN customers c "
      "ON o.customer_id = c.id GROUP BY c.region",
  };
  auto report = AnalyzeWorkloadStatic(kCleanCatalog, workload);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  for (const LintFinding& f : report->lint.findings) {
    ADD_FAILURE() << f.ToString();
  }
  EXPECT_TRUE(report->lint.findings.empty());
  EXPECT_TRUE(report->candidates.empty());
  EXPECT_EQ(report->queries_bound, workload.size());
}

TEST(WorkloadAnalyzerTest, RenderingsAgreeAcrossFormats) {
  auto report = AnalyzeWorkloadStatic(kCatalog, SmellyWorkload());
  ASSERT_TRUE(report.ok()) << report.status().ToString();

  const std::string text = report->ToText();
  const std::string json = report->ToJson();
  const std::string sarif = report->ToSarif("catalog.sdl");

  // Every finding id that fired appears in all three renderings.
  for (const LintFinding& f : report->lint.findings) {
    EXPECT_NE(text.find("[" + f.check + "]"), std::string::npos) << f.check;
    EXPECT_NE(json.find("\"check\": \"" + f.check + "\""), std::string::npos)
        << f.check;
    EXPECT_NE(sarif.find("\"ruleId\": \"" + f.check + "\""),
              std::string::npos)
        << f.check;
  }
  // The JSON is self-describing about the tool and the tallies.
  EXPECT_NE(json.find("\"tool\": \"softdb_analyze\""), std::string::npos);
  EXPECT_NE(json.find("\"coverage\": ["), std::string::npos);
  EXPECT_NE(json.find("\"impact\": ["), std::string::npos);
  EXPECT_NE(json.find("\"candidates\": ["), std::string::npos);
  // The text report renders the matrices.
  EXPECT_NE(text.find("SC exploitation coverage"), std::string::npos);
  EXPECT_NE(text.find("DML impact matrix"), std::string::npos);
  EXPECT_NE(text.find("Harvested SC candidates"), std::string::npos);
  // SARIF carries note-severity results and the analyzer driver name.
  EXPECT_NE(sarif.find("\"name\": \"softdb_analyze\""), std::string::npos);
  EXPECT_NE(sarif.find("\"level\": \"note\""), std::string::npos);
}

// ---------------------------------------------------------------- certify

TEST(WorkloadAnalyzerTest, CertifyAuditValidatesReplannedWorkload) {
  // Absolute SCs (default CONFIDENCE 1.0) so the rewriter actually prunes,
  // contradicts and introduces — each transformation must emit a
  // certificate the independent checker validates.
  const char kAbsCatalog[] =
      "CREATE TABLE orders (id BIGINT PRIMARY KEY, total DOUBLE, "
      "  order_day BIGINT, ship_day BIGINT);"
      "SOFT CONSTRAINT order_total_range DOMAIN ON orders(total) "
      "  MIN 0 MAX 100000;"
      "SOFT CONSTRAINT ship_lag OFFSET ON orders(order_day, ship_day) "
      "  MIN 0 MAX 30;";
  const std::vector<std::string> workload = {
      "SELECT id FROM orders WHERE total >= 0",      // Implied: prune.
      "SELECT id FROM orders WHERE total > 200000",  // Contradiction.
      "SELECT id FROM orders WHERE ship_day < 50",   // Introduction channel.
  };
  AnalyzerOptions options;
  options.certify = true;
  auto report = AnalyzeWorkloadStatic(kAbsCatalog, workload, options);
  ASSERT_TRUE(report.ok()) << report.status().ToString();

  EXPECT_GT(report->certificates_checked, 0u);
  EXPECT_EQ(report->certificates_failed, 0u);
  EXPECT_EQ(report->certificates.size(), report->certificates_checked);
  for (const CertificateAuditRow& row : report->certificates) {
    EXPECT_NE(row.verdict, "invalid")
        << row.kind << " [" << row.rule << "]: " << row.message;
  }
  EXPECT_FALSE(HasFinding(*report, "certificate-failed"));

  // Every rendering carries the audit.
  const std::string text = report->ToText();
  EXPECT_NE(text.find("Certificate audit"), std::string::npos);
  const std::string json = report->ToJson();
  EXPECT_NE(json.find("\"certificates_checked\": "), std::string::npos);
  EXPECT_NE(json.find("\"certificates_failed\": 0"), std::string::npos);
  EXPECT_NE(json.find("\"certificates\": ["), std::string::npos);
}

TEST(WorkloadAnalyzerTest, CertifyOffEmitsNoAudit) {
  auto report = AnalyzeWorkloadStatic(kCatalog, SmellyWorkload());
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->certificates_checked, 0u);
  EXPECT_EQ(report->certificates_failed, 0u);
  EXPECT_TRUE(report->certificates.empty());
  EXPECT_FALSE(HasFinding(*report, "certificate-failed"));
}

// ---------------------------------------------------------------- property

/// The harvesting property: every candidate mined from a workload over the
/// generator's planted data must (a) materialize into a concrete SC and
/// (b) verify with confidence 1.0 against the actual rows — i.e. the
/// harvester proposes nothing the data falsifies.
TEST(WorkloadAnalyzerTest, HarvestedCandidatesValidateAgainstGeneratedData) {
  SoftDb db;
  WorkloadOptions options;
  options.customers = 60;
  options.orders = 300;
  options.purchases = 300;
  options.parts = 50;
  options.projects = 20;
  options.sales_per_month = 20;
  ASSERT_TRUE(GenerateWorkload(&db, options).ok());

  const std::vector<std::string> workload = {
      // Recurring two-sided ranges on o_totalprice (data lies in
      // [100, 20000], so the harvested envelope is data-consistent).
      "SELECT o_orderkey FROM orders WHERE o_totalprice "
      "BETWEEN 0 AND 1000000",
      "SELECT o_orderkey FROM orders WHERE o_totalprice "
      "BETWEEN 50 AND 500000",
      // Recurring purchase-part equi-join: pu_partkey is a subset of
      // p_partkey by construction, but no FK declares it.
      "SELECT u.pu_key, t.p_weight FROM purchase u JOIN part t "
      "ON u.pu_partkey = t.p_partkey",
      "SELECT u.pu_key FROM purchase u JOIN part t "
      "ON u.pu_partkey = t.p_partkey WHERE t.p_retailprice > 500",
      // Recurring multi-column GROUP BY over the planted exact FD
      // c_nationkey -> c_regionkey.
      "SELECT c_nationkey, c_regionkey, COUNT(*) FROM customer "
      "GROUP BY c_nationkey, c_regionkey",
      "SELECT c_nationkey, c_regionkey, SUM(c_acctbal) FROM customer "
      "GROUP BY c_nationkey, c_regionkey",
  };
  AnalyzerOptions analyzer_options;
  analyzer_options.harvest_budget = 64;  // Keep all candidates in play.
  auto report = AnalyzeWorkloadAgainstDb(&db, workload, analyzer_options);
  ASSERT_TRUE(report.ok()) << report.status().ToString();

  // All three workload-driven channels produced something (the generator's
  // informational sales CHECKs feed the fourth).
  EXPECT_NE(FindCandidate(*report, HarvestedCandidate::Kind::kDomain,
                          "orders"),
            nullptr);
  EXPECT_NE(FindCandidate(*report, HarvestedCandidate::Kind::kInclusion,
                          "purchase"),
            nullptr);
  EXPECT_NE(FindCandidate(*report, HarvestedCandidate::Kind::kFd,
                          "customer"),
            nullptr);
  ASSERT_GE(report->candidates.size(), 3u);

  for (const HarvestedCandidate& c : report->candidates) {
    auto sc = MaterializeCandidate(c, db.catalog());
    ASSERT_TRUE(sc.ok()) << c.name << ": " << sc.status().ToString();
    ASSERT_TRUE(
        db.scs().Add(std::move(*sc), db.catalog(), /*verify_now=*/true).ok())
        << c.name;
    const SoftConstraint* armed = db.scs().Find(c.name);
    ASSERT_NE(armed, nullptr) << c.name;
    EXPECT_DOUBLE_EQ(armed->confidence(), 1.0)
        << c.name << " (" << c.rationale << ")";
  }
}

/// The negative side of the property: a workload whose recurring range
/// does NOT hold over the data still produces the candidate, but the
/// validate-then-arm step assigns it confidence < 1 — it never arms as an
/// absolute characterization. This is exactly where false candidates die.
TEST(WorkloadAnalyzerTest, DataFalsifiedCandidateFailsValidation) {
  SoftDb db;
  WorkloadOptions options;
  options.customers = 60;
  options.orders = 300;
  options.purchases = 0;
  options.parts = 0;
  options.projects = 0;
  options.sales_per_month = 0;
  ASSERT_TRUE(GenerateWorkload(&db, options).ok());

  const std::vector<std::string> workload = {
      // The workload only ever asks for the high band, but o_totalprice
      // actually spans [100, 20000]: the inferred domain is false.
      "SELECT o_orderkey FROM orders WHERE o_totalprice "
      "BETWEEN 15000 AND 20000",
      "SELECT o_orderkey FROM orders WHERE o_totalprice "
      "BETWEEN 16000 AND 19000",
  };
  auto report = AnalyzeWorkloadAgainstDb(&db, workload);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  const HarvestedCandidate* domain =
      FindCandidate(*report, HarvestedCandidate::Kind::kDomain, "orders");
  ASSERT_NE(domain, nullptr);

  auto sc = MaterializeCandidate(*domain, db.catalog());
  ASSERT_TRUE(sc.ok()) << sc.status().ToString();
  ASSERT_TRUE(
      db.scs().Add(std::move(*sc), db.catalog(), /*verify_now=*/true).ok());
  const SoftConstraint* armed = db.scs().Find(domain->name);
  ASSERT_NE(armed, nullptr);
  EXPECT_LT(armed->confidence(), 1.0);
  EXPECT_FALSE(armed->IsAbsolute());
}

TEST(WorkloadAnalyzerTest, RuleRegistryIsConsistent) {
  // Stable-ID contract: ids unique, severities from the fixed vocabulary,
  // every id findable, and both tools see the shared rule.
  std::vector<std::string> ids;
  for (const RuleSpec& rule : AllRules()) {
    ids.push_back(rule.id);
    const std::string severity = rule.severity;
    EXPECT_TRUE(severity == "error" || severity == "warning" ||
                severity == "note")
        << rule.id;
    const std::string tool = rule.tool;
    EXPECT_TRUE(tool == "softdb_lint" || tool == "softdb_analyze" ||
                tool == "both")
        << rule.id;
    EXPECT_EQ(FindRule(rule.id), &rule);
  }
  std::sort(ids.begin(), ids.end());
  EXPECT_TRUE(std::adjacent_find(ids.begin(), ids.end()) == ids.end());

  const auto in = [](const std::vector<const RuleSpec*>& rules,
                     const std::string& id) {
    return std::any_of(rules.begin(), rules.end(),
                       [&](const RuleSpec* r) { return r->id == id; });
  };
  const std::vector<const RuleSpec*> lint = RulesForTool("softdb_lint");
  const std::vector<const RuleSpec*> analyze = RulesForTool("softdb_analyze");
  EXPECT_TRUE(in(lint, "dead-sc"));
  EXPECT_FALSE(in(lint, "query-contradiction"));
  EXPECT_TRUE(in(analyze, "query-contradiction"));
  EXPECT_FALSE(in(analyze, "dead-sc"));
  EXPECT_TRUE(in(lint, "workload-unparseable-statement"));
  EXPECT_TRUE(in(analyze, "workload-unparseable-statement"));
}

}  // namespace
}  // namespace softdb
