// Sort-merge join: correctness against hash join (differential) and the
// interesting-order sort elision.

#include <gtest/gtest.h>

#include "common/rng.h"
#include "engine/softdb.h"

namespace softdb {
namespace {

class SmjFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    Run("CREATE TABLE l (k BIGINT, lv BIGINT)");
    Run("CREATE TABLE r (k BIGINT, rv BIGINT)");
    Rng rng(17);
    // Skewed keys with duplicates on both sides, plus NULL keys.
    for (int i = 0; i < 300; ++i) {
      const std::int64_t k = rng.Uniform(0, 40);
      ASSERT_TRUE(db_.InsertRow("l", {i % 23 == 0 ? Value::Null()
                                                  : Value::Int64(k),
                                      Value::Int64(i)})
                      .ok());
    }
    for (int i = 0; i < 200; ++i) {
      const std::int64_t k = rng.Uniform(0, 40);
      ASSERT_TRUE(db_.InsertRow("r", {i % 31 == 0 ? Value::Null()
                                                  : Value::Int64(k),
                                      Value::Int64(i)})
                      .ok());
    }
  }

  QueryResult Run(const std::string& sql) {
    auto result = db_.Execute(sql);
    EXPECT_TRUE(result.ok()) << sql << " -> " << result.status().ToString();
    return result.ok() ? *std::move(result) : QueryResult{};
  }

  static std::multiset<std::string> RowBag(const RowSet& rows) {
    std::multiset<std::string> bag;
    for (const auto& row : rows.rows) {
      std::string image;
      for (const Value& v : row) image += v.ToString() + "|";
      bag.insert(std::move(image));
    }
    return bag;
  }

  SoftDb db_;
};

TEST_F(SmjFixture, MatchesHashJoinOnDuplicatesAndNulls) {
  const std::string query =
      "SELECT l.k, lv, rv FROM l JOIN r ON l.k = r.k";
  db_.options().prefer_sort_merge_join = false;
  auto hash = Run(query);
  db_.options().prefer_sort_merge_join = true;
  db_.plan_cache().Clear();
  auto smj = Run(query);
  EXPECT_GT(hash.rows.NumRows(), 0u);
  EXPECT_EQ(RowBag(hash.rows), RowBag(smj.rows));
}

TEST_F(SmjFixture, ResidualConditionsApplied) {
  const std::string query =
      "SELECT lv, rv FROM l JOIN r ON l.k = r.k WHERE lv < rv";
  db_.options().prefer_sort_merge_join = false;
  auto hash = Run(query);
  db_.options().prefer_sort_merge_join = true;
  db_.plan_cache().Clear();
  auto smj = Run(query);
  EXPECT_EQ(RowBag(hash.rows), RowBag(smj.rows));
}

TEST_F(SmjFixture, InterestingOrderElidesSort) {
  // ORDER BY the join key: the planner swaps in a sort-merge join and
  // skips the sort (rows_sorted counts only the merge inputs, and the
  // output must still be correctly ordered).
  const std::string query =
      "SELECT l.k, lv, rv FROM l JOIN r ON l.k = r.k ORDER BY l.k";
  auto r = Run(query);
  ASSERT_GT(r.rows.NumRows(), 0u);
  for (std::size_t i = 1; i < r.rows.NumRows(); ++i) {
    auto cmp = r.rows.rows[i - 1][0].Compare(r.rows.rows[i][0]);
    ASSERT_TRUE(cmp.ok());
    EXPECT_LE(*cmp, 0);
  }
  // Same bag as the hash-join + explicit-sort plan.
  db_.options().prefer_sort_merge_join = false;
  db_.plan_cache().Clear();
  auto baseline = Run(query);
  EXPECT_EQ(RowBag(baseline.rows), RowBag(r.rows));
}

TEST_F(SmjFixture, DescendingOrderDoesNotElide) {
  // DESC does not match the merge output order; results must still be
  // correct (sorted descending).
  const std::string query =
      "SELECT l.k, lv FROM l JOIN r ON l.k = r.k ORDER BY l.k DESC";
  auto r = Run(query);
  for (std::size_t i = 1; i < r.rows.NumRows(); ++i) {
    auto cmp = r.rows.rows[i - 1][0].Compare(r.rows.rows[i][0]);
    ASSERT_TRUE(cmp.ok());
    EXPECT_GE(*cmp, 0);
  }
}

}  // namespace
}  // namespace softdb
