// PlanVerifier tests: deliberately broken plan trees must be rejected with
// a diagnostic naming the violated invariant, the phase and the node path;
// sound plans (hand-built and engine-produced, including exception-AST
// rewrites) must verify clean.

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "analysis/plan_verifier.h"
#include "constraints/column_offset_sc.h"
#include "engine/softdb.h"
#include "exec/batch_operators.h"
#include "exec/operators.h"
#include "plan/expr.h"
#include "plan/logical_plan.h"

namespace softdb {
namespace {

Schema IntStringSchema() {
  Schema s;
  s.AddColumn({"a", TypeId::kInt64, true, "t"});
  s.AddColumn({"b", TypeId::kString, true, "t"});
  return s;
}

ExprPtr IntCol(ColumnIdx i, const std::string& name = "a") {
  return std::make_unique<ColumnRefExpr>(name, i, TypeId::kInt64);
}

ExprPtr Cmp(CompareOp op, ExprPtr l, ExprPtr r) {
  return std::make_unique<ComparisonExpr>(op, std::move(l), std::move(r));
}

bool HasViolation(const std::vector<PlanViolation>& vs, Invariant inv) {
  for (const PlanViolation& v : vs) {
    if (v.invariant == inv) return true;
  }
  return false;
}

const PlanViolation* FindViolation(const std::vector<PlanViolation>& vs,
                                   Invariant inv) {
  for (const PlanViolation& v : vs) {
    if (v.invariant == inv) return &v;
  }
  return nullptr;
}

TEST(PlanVerifierLogicalTest, SoundFilterPlanVerifiesClean) {
  auto scan = std::make_unique<ScanNode>("t", IntStringSchema());
  std::vector<Predicate> preds;
  preds.emplace_back(
      Cmp(CompareOp::kGt, IntCol(0),
          std::make_unique<LiteralExpr>(Value::Int64(5))));
  auto filter =
      std::make_unique<FilterNode>(std::move(scan), std::move(preds));

  PlanVerifier verifier;
  EXPECT_TRUE(verifier.CheckLogical(*filter, "rewrite").empty());
  EXPECT_TRUE(verifier.VerifyLogical(*filter, "rewrite").ok());
}

TEST(PlanVerifierLogicalTest, TypeMismatchedComparisonRejected) {
  // a (BIGINT) > 'oops' (VARCHAR): incomparable operand types.
  auto scan = std::make_unique<ScanNode>("t", IntStringSchema());
  std::vector<Predicate> preds;
  preds.emplace_back(
      Cmp(CompareOp::kGt, IntCol(0),
          std::make_unique<LiteralExpr>(Value::String("oops"))));
  auto filter =
      std::make_unique<FilterNode>(std::move(scan), std::move(preds));

  PlanVerifier verifier;
  auto violations = verifier.CheckLogical(*filter, "rewrite");
  const PlanViolation* v = FindViolation(violations, Invariant::kExprTypes);
  ASSERT_NE(v, nullptr);
  EXPECT_EQ(v->phase, "rewrite");
  EXPECT_NE(v->message.find("incomparable"), std::string::npos);
  EXPECT_NE(v->ToString().find("[rewrite] expr-types"), std::string::npos);
}

TEST(PlanVerifierLogicalTest, MistypedColumnRefRejected) {
  // Column 0 is BIGINT in the input schema but the ref claims VARCHAR.
  auto scan = std::make_unique<ScanNode>("t", IntStringSchema());
  std::vector<Predicate> preds;
  preds.emplace_back(Cmp(
      CompareOp::kEq,
      std::make_unique<ColumnRefExpr>("a", 0, TypeId::kString),
      std::make_unique<LiteralExpr>(Value::String("x"))));
  auto filter =
      std::make_unique<FilterNode>(std::move(scan), std::move(preds));

  PlanVerifier verifier;
  auto violations = verifier.CheckLogical(*filter, "bind");
  EXPECT_TRUE(HasViolation(violations, Invariant::kExprTypes));
}

TEST(PlanVerifierLogicalTest, TwinAllowedOnScanRejectedOnFilter) {
  // The same estimation-only twin is legal inside a scan's costing
  // annotations and illegal anywhere executable (§5.1 confinement).
  auto make_twin = [] {
    Predicate p(Cmp(CompareOp::kLt, IntCol(0),
                    std::make_unique<LiteralExpr>(Value::Int64(42))));
    p.estimation_only = true;
    p.confidence = 0.9;
    p.origin = "sc:corr";
    return p;
  };

  PlanVerifier verifier;
  {
    auto scan = std::make_unique<ScanNode>("t", IntStringSchema());
    scan->predicates().push_back(make_twin());
    EXPECT_TRUE(verifier.CheckLogical(*scan, "rewrite").empty());
  }
  {
    auto scan = std::make_unique<ScanNode>("t", IntStringSchema());
    std::vector<Predicate> preds;
    preds.push_back(make_twin());
    auto filter =
        std::make_unique<FilterNode>(std::move(scan), std::move(preds));
    auto violations = verifier.CheckLogical(*filter, "rewrite");
    const PlanViolation* v =
        FindViolation(violations, Invariant::kTwinConfinement);
    ASSERT_NE(v, nullptr);
    EXPECT_NE(v->ToString().find("twin-confinement"), std::string::npos);
    EXPECT_NE(v->node_path.find("Filter"), std::string::npos);
  }
}

TEST(PlanVerifierLogicalTest, UserOriginTwinRejectedEvenOnScan) {
  auto scan = std::make_unique<ScanNode>("t", IntStringSchema());
  Predicate p(Cmp(CompareOp::kLt, IntCol(0),
                  std::make_unique<LiteralExpr>(Value::Int64(42))));
  p.estimation_only = true;
  p.confidence = 0.9;  // origin stays "user": twins must be SC-derived.
  scan->predicates().push_back(std::move(p));

  PlanVerifier verifier;
  EXPECT_TRUE(HasViolation(verifier.CheckLogical(*scan, "rewrite"),
                           Invariant::kTwinConfinement));
}

TEST(PlanVerifierLogicalTest, OrphanExceptionAstOriginRejected) {
  // A scan predicate claiming provenance "ast:missing" while no such
  // exception AST is registered is a dangling rewrite.
  auto scan = std::make_unique<ScanNode>("t", IntStringSchema());
  Predicate p(Cmp(CompareOp::kGe, IntCol(0),
                  std::make_unique<LiteralExpr>(Value::Int64(1))));
  p.origin = "ast:missing";
  scan->predicates().push_back(std::move(p));

  const std::map<std::string, std::string> no_asts;
  PlanVerifierContext ctx;
  ctx.exception_asts = &no_asts;
  PlanVerifier verifier(ctx);
  auto violations = verifier.CheckLogical(*scan, "rewrite");
  const PlanViolation* v =
      FindViolation(violations, Invariant::kExceptionAstRegistry);
  ASSERT_NE(v, nullptr);
  EXPECT_NE(v->message.find("ast:missing"), std::string::npos);
  EXPECT_NE(v->ToString().find("exception-ast-registry"), std::string::npos);
}

TEST(PlanVerifierLogicalTest, NodePathNamesTheOffendingNode) {
  // Violation two levels deep: Filter -> Scan(with a bad nested twin).
  auto scan = std::make_unique<ScanNode>("t", IntStringSchema());
  std::vector<Predicate> inner;
  inner.emplace_back(
      Cmp(CompareOp::kGt, IntCol(0),
          std::make_unique<LiteralExpr>(Value::String("bad"))));
  auto filter =
      std::make_unique<FilterNode>(std::move(scan), std::move(inner));
  std::vector<Predicate> outer;
  outer.emplace_back(
      Cmp(CompareOp::kLe, IntCol(0),
          std::make_unique<LiteralExpr>(Value::Int64(9))));
  auto top =
      std::make_unique<FilterNode>(std::move(filter), std::move(outer));

  PlanVerifier verifier;
  auto violations = verifier.CheckLogical(*top, "join-elimination");
  const PlanViolation* v = FindViolation(violations, Invariant::kExprTypes);
  ASSERT_NE(v, nullptr);
  // The offender is the *inner* filter, reached through the outer one.
  EXPECT_NE(v->node_path.find("Filter/0:Filter"), std::string::npos);
  EXPECT_EQ(v->phase, "join-elimination");
}

TEST(PlanVerifierBatchTest, SelectionVectorViolationsFlagged) {
  Schema schema = IntStringSchema();
  ColumnBatch batch;
  batch.Reset(schema);
  PlanVerifier verifier;

  // Identity selection: fine.
  batch.SelectAll(4);
  EXPECT_TRUE(verifier.CheckBatch(batch, "batch-exec").empty());

  // Unsorted (and therefore potentially duplicate-admitting) selection.
  batch.mutable_sel()[0] = 2;
  batch.mutable_sel()[1] = 1;
  batch.set_sel_size(2);
  auto violations = verifier.CheckBatch(batch, "batch-exec");
  const PlanViolation* v =
      FindViolation(violations, Invariant::kSelectionVector);
  ASSERT_NE(v, nullptr);
  EXPECT_NE(v->message.find("ascending"), std::string::npos);
  EXPECT_NE(v->ToString().find("selection-vector"), std::string::npos);

  // Duplicate entries are "not strictly ascending" too.
  batch.mutable_sel()[0] = 1;
  batch.mutable_sel()[1] = 1;
  EXPECT_TRUE(HasViolation(verifier.CheckBatch(batch, "batch-exec"),
                           Invariant::kSelectionVector));

  // Out-of-bounds entry.
  batch.SelectAll(4);
  batch.mutable_sel()[3] = 99;
  EXPECT_TRUE(HasViolation(verifier.CheckBatch(batch, "batch-exec"),
                           Invariant::kSelectionVector));

  // Selection longer than the batch.
  batch.SelectAll(4);
  batch.set_sel_size(6);
  EXPECT_TRUE(HasViolation(verifier.CheckBatch(batch, "batch-exec"),
                           Invariant::kSelectionVector));
}

class PlanVerifierPhysicalTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(
        db_.Execute("CREATE TABLE t (a BIGINT NOT NULL, b VARCHAR)").ok());
    auto table = db_.catalog().GetTable("t");
    ASSERT_TRUE(table.ok());
    table_ = *table;
  }

  Predicate SimpleIntPred(std::int64_t bound) {
    return Predicate(Cmp(CompareOp::kGt, IntCol(0),
                         std::make_unique<LiteralExpr>(Value::Int64(bound))));
  }

  SoftDb db_;
  const Table* table_ = nullptr;
};

TEST_F(PlanVerifierPhysicalTest, SoundScanVerifiesClean) {
  std::vector<Predicate> preds;
  preds.push_back(SimpleIntPred(3));
  SeqScanOp scan(table_, table_->schema(), std::move(preds));
  PlanVerifier verifier;
  EXPECT_TRUE(verifier.CheckPhysical(scan, "physical-planning").empty());
  EXPECT_TRUE(verifier.VerifyPhysical(scan, "physical-planning").ok());
}

TEST_F(PlanVerifierPhysicalTest, ExecutableTwinPredicateRejected) {
  // Estimation-only predicates must be stripped before lowering; one
  // surviving in an executor op's predicate list is a confinement bug.
  Predicate twin = SimpleIntPred(3);
  twin.estimation_only = true;
  twin.confidence = 0.8;
  twin.origin = "sc:corr";
  std::vector<Predicate> preds;
  preds.push_back(std::move(twin));
  SeqScanOp scan(table_, table_->schema(), std::move(preds));

  PlanVerifier verifier;
  auto violations = verifier.CheckPhysical(scan, "physical-planning");
  const PlanViolation* v =
      FindViolation(violations, Invariant::kTwinConfinement);
  ASSERT_NE(v, nullptr);
  EXPECT_EQ(v->phase, "physical-planning");
  EXPECT_NE(v->message.find("executable predicate list"), std::string::npos);
  EXPECT_NE(v->node_path.find("SeqScan"), std::string::npos);
}

TEST_F(PlanVerifierPhysicalTest, OutOfBoundsRuntimeParamRejected) {
  std::vector<Predicate> preds;
  preds.push_back(SimpleIntPred(3));
  SeqScanOp scan(table_, table_->schema(), std::move(preds));
  // Predicate index 5 does not exist: dangling §4.2 runtime parameter.
  scan.AddRuntimeParameter(5, nullptr, SimplePredicate{});

  PlanVerifier verifier;
  auto violations = verifier.CheckPhysical(scan, "physical-planning");
  const PlanViolation* v =
      FindViolation(violations, Invariant::kRuntimeParams);
  ASSERT_NE(v, nullptr);
  EXPECT_NE(v->message.find("out of bounds"), std::string::npos);
  EXPECT_NE(v->ToString().find("runtime-params"), std::string::npos);
}

TEST_F(PlanVerifierPhysicalTest, RuntimeParamColumnMismatchRejected) {
  std::vector<Predicate> preds;
  preds.push_back(SimpleIntPred(3));  // Predicate is on column 0.
  SeqScanOp scan(table_, table_->schema(), std::move(preds));
  SimplePredicate simple;
  simple.column = 1;  // Param claims column 1: disagreement.
  simple.op = CompareOp::kGt;
  simple.constant = Value::Int64(3);
  scan.AddRuntimeParameter(0, nullptr, simple);

  PlanVerifier verifier;
  EXPECT_TRUE(
      HasViolation(verifier.CheckPhysical(scan, "physical-planning"),
                   Invariant::kRuntimeParams));
}

TEST_F(PlanVerifierPhysicalTest, BatchSubtreeUnderLimitRejected) {
  // The PR 1 fallback rule: LIMIT subtrees stay on the row engine.
  auto batch_scan = std::make_unique<BatchSeqScanOp>(
      table_, table_->schema(), std::vector<Predicate>{});
  auto adapter = std::make_unique<BatchAdapterOp>(std::move(batch_scan));
  LimitOp limit(std::move(adapter), 5);

  PlanVerifier verifier;
  auto violations = verifier.CheckPhysical(limit, "physical-planning");
  const PlanViolation* v =
      FindViolation(violations, Invariant::kLimitRowEngineOnly);
  ASSERT_NE(v, nullptr);
  EXPECT_NE(v->ToString().find("limit-row-engine-only"), std::string::npos);
  EXPECT_NE(v->node_path.find("Limit"), std::string::npos);
}

TEST_F(PlanVerifierPhysicalTest, BatchSubtreeWithoutLimitAccepted) {
  auto batch_scan = std::make_unique<BatchSeqScanOp>(
      table_, table_->schema(), std::vector<Predicate>{});
  BatchAdapterOp adapter(std::move(batch_scan));
  PlanVerifier verifier;
  EXPECT_TRUE(verifier.CheckPhysical(adapter, "physical-planning").empty());
}

// End-to-end: with verification on (the default), every query in a
// representative workload — including an exception-AST UNION ALL rewrite —
// passes all four verification points (bind, rewrite, join-elimination,
// physical-planning) and still returns correct answers.
TEST(PlanVerifierEngineTest, FullPipelineVerifiesRealPlans) {
  SoftDb db;
  db.options().verify_plans = true;
  ASSERT_TRUE(
      db.Execute("CREATE TABLE t (x BIGINT NOT NULL, y BIGINT NOT NULL)")
          .ok());
  for (int i = 0; i < 100; ++i) {
    const std::int64_t y = (i % 20 == 0) ? i + 50 : i + 3;
    ASSERT_TRUE(db.InsertRow("t", {Value::Int64(i), Value::Int64(y)}).ok());
  }
  ASSERT_TRUE(db.Execute("CREATE INDEX ix ON t (x)").ok());
  ASSERT_TRUE(db.Analyze("t").ok());
  auto sc = std::make_unique<ColumnOffsetSc>("win", "t", 0, 1, 0, 5);
  ASSERT_TRUE(db.scs().Add(std::move(sc), db.catalog()).ok());
  ASSERT_TRUE(db.CreateExceptionAst("win").ok());

  // Exception-AST rewrite: UNION ALL over the narrowed scan and the AST
  // branch, all of which must verify.
  auto r = db.Execute("SELECT * FROM t WHERE y BETWEEN 50 AND 60");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_GT(r->rows.NumRows(), 0u);

  // Joins, aggregates, sorts and limits all pass the verifier too.
  auto joined = db.Execute(
      "SELECT a.x, b.y FROM t a JOIN t b ON a.x = b.x WHERE a.y > 10 "
      "ORDER BY a.x LIMIT 7");
  ASSERT_TRUE(joined.ok()) << joined.status().ToString();
  EXPECT_EQ(joined->rows.NumRows(), 7u);

  auto agg = db.Execute("SELECT COUNT(*) FROM t WHERE x < 50");
  ASSERT_TRUE(agg.ok()) << agg.status().ToString();
  ASSERT_EQ(agg->rows.NumRows(), 1u);
  EXPECT_EQ(agg->rows.rows[0][0].AsInt64(), 50);
}

}  // namespace
}  // namespace softdb
