// Plan rendering and EXPLAIN surface: downstream users read these strings,
// so their shape is part of the public contract.

#include <gtest/gtest.h>

#include "engine/softdb.h"
#include "workload/generator.h"
#include "workload/sc_kit.h"

namespace softdb {
namespace {

class ExplainFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    WorkloadOptions options;
    options.customers = 100;
    options.orders = 500;
    options.purchases = 500;
    options.parts = 100;
    options.projects = 100;
    options.sales_per_month = 10;
    ASSERT_TRUE(GenerateWorkload(&db_, options).ok());
  }
  SoftDb db_;
};

TEST_F(ExplainFixture, ScanWithPredicates) {
  auto text = db_.Explain(
      "SELECT * FROM orders WHERE o_totalprice > 5000");
  ASSERT_TRUE(text.ok());
  EXPECT_NE(text->find("Scan orders"), std::string::npos);
  EXPECT_NE(text->find("o_totalprice > 5000"), std::string::npos);
  EXPECT_NE(text->find("estimated rows"), std::string::npos);
  EXPECT_NE(text->find("estimated cost"), std::string::npos);
}

TEST_F(ExplainFixture, JoinTreeStructure) {
  db_.options().enable_join_elimination = false;
  auto text = db_.Explain(
      "SELECT o_orderkey, c_acctbal FROM orders "
      "JOIN customer ON o_custkey = c_custkey");
  ASSERT_TRUE(text.ok());
  EXPECT_NE(text->find("Join"), std::string::npos);
  EXPECT_NE(text->find("equi keys"), std::string::npos);
  EXPECT_NE(text->find("Scan orders"), std::string::npos);
  EXPECT_NE(text->find("Scan customer"), std::string::npos);
  // Indentation: scans are children of the join.
  EXPECT_LT(text->find("Join"), text->find("Scan orders"));
}

TEST_F(ExplainFixture, AggregateAndSortNodes) {
  auto text = db_.Explain(
      "SELECT o_status, COUNT(*) AS n FROM orders GROUP BY o_status "
      "ORDER BY o_status LIMIT 3");
  ASSERT_TRUE(text.ok());
  EXPECT_NE(text->find("Aggregate"), std::string::npos);
  EXPECT_NE(text->find("COUNT(*)"), std::string::npos);
  EXPECT_NE(text->find("Sort"), std::string::npos);
  EXPECT_NE(text->find("Limit 3"), std::string::npos);
  EXPECT_NE(text->find("Project"), std::string::npos);
}

TEST_F(ExplainFixture, TwinnedPredicateAnnotated) {
  ASSERT_TRUE(RegisterShipWindowSc(&db_).ok());
  auto text = db_.Explain(
      "SELECT * FROM purchase WHERE ship_date = DATE '1999-06-01'");
  ASSERT_TRUE(text.ok());
  EXPECT_NE(text->find("estimate-only"), std::string::npos);
  EXPECT_NE(text->find("conf="), std::string::npos);
  EXPECT_NE(text->find("sc:sc_ship_window"), std::string::npos);
}

TEST_F(ExplainFixture, UnionAllBranches) {
  auto text = db_.Explain(
      "SELECT sale_id FROM sales_m1 UNION ALL SELECT sale_id FROM sales_m2");
  ASSERT_TRUE(text.ok());
  EXPECT_NE(text->find("UnionAll (2 branches)"), std::string::npos);
}

TEST_F(ExplainFixture, RowSetRendering) {
  auto r = db_.Execute("SELECT o_orderkey, o_status FROM orders LIMIT 3");
  ASSERT_TRUE(r.ok());
  const std::string table = r->rows.ToString();
  EXPECT_NE(table.find("o_orderkey"), std::string::npos);
  EXPECT_NE(table.find("o_status"), std::string::npos);
  // Truncation marker appears when max_rows is exceeded.
  auto big = db_.Execute("SELECT o_orderkey FROM orders");
  ASSERT_TRUE(big.ok());
  EXPECT_NE(big->rows.ToString(5).find("rows total"), std::string::npos);
}

TEST_F(ExplainFixture, DescribeStringsForAllScKinds) {
  ASSERT_TRUE(RegisterShipWindowSc(&db_).ok());
  ASSERT_TRUE(RegisterPartCorrelationSc(&db_).ok());
  ASSERT_TRUE(RegisterCustomerRegionFd(&db_).ok());
  ASSERT_TRUE(RegisterOrdersHoleSc(&db_).ok());
  ASSERT_TRUE(RegisterOrdersInclusionSc(&db_).ok());
  ASSERT_TRUE(RegisterOrderPriceDomainSc(&db_).ok());
  for (const SoftConstraint* sc : db_.scs().All()) {
    const std::string desc = sc->Describe();
    EXPECT_NE(desc.find("SC "), std::string::npos) << desc;
    EXPECT_NE(desc.find("conf"), std::string::npos) << desc;
    EXPECT_NE(desc.find("active"), std::string::npos) << desc;
    EXPECT_NE(std::string(ScKindName(sc->kind())), "?");
  }
}

TEST_F(ExplainFixture, UnionArityMismatchRejected) {
  auto r = db_.Execute(
      "SELECT sale_id FROM sales_m1 UNION ALL "
      "SELECT sale_id, amount FROM sales_m2");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kBindError);
}

}  // namespace
}  // namespace softdb
