#include <gtest/gtest.h>

#include "constraints/column_offset_sc.h"
#include "constraints/domain_sc.h"
#include "constraints/fd_sc.h"
#include "constraints/ic_registry.h"
#include "constraints/inclusion_sc.h"
#include "constraints/join_hole_sc.h"
#include "constraints/linear_correlation_sc.h"
#include "constraints/predicate_sc.h"
#include "constraints/sc_registry.h"
#include "sql/parser.h"
#include "storage/catalog.h"

namespace softdb {
namespace {

Schema PairSchema() {
  Schema s;
  s.AddColumn({"x", TypeId::kInt64, false, "t"});
  s.AddColumn({"y", TypeId::kInt64, false, "t"});
  return s;
}

class IcTest : public ::testing::Test {
 protected:
  IcTest() {
    table_ = *catalog_.CreateTable("t", PairSchema());
    for (int i = 0; i < 10; ++i) {
      EXPECT_TRUE(table_->Append({Value::Int64(i), Value::Int64(i * 2)}).ok());
    }
  }
  Catalog catalog_;
  Table* table_;
};

// --------------------------------------------------------------- Unique IC

TEST_F(IcTest, UniqueRejectsDuplicates) {
  IcRegistry ics;
  ASSERT_TRUE(ics.Add(std::make_unique<UniqueConstraint>(
                          "pk", "t", std::vector<ColumnIdx>{0}, true,
                          ConstraintMode::kEnforced),
                      catalog_)
                  .ok());
  EXPECT_FALSE(
      ics.CheckInsert(catalog_, "t", {Value::Int64(5), Value::Int64(0)})
          .ok());
  EXPECT_TRUE(
      ics.CheckInsert(catalog_, "t", {Value::Int64(100), Value::Int64(0)})
          .ok());
}

TEST_F(IcTest, AddingViolatedEnforcedConstraintFails) {
  ASSERT_TRUE(table_->Append({Value::Int64(0), Value::Int64(0)}).ok());
  IcRegistry ics;
  EXPECT_FALSE(ics.Add(std::make_unique<UniqueConstraint>(
                           "pk", "t", std::vector<ColumnIdx>{0}, true,
                           ConstraintMode::kEnforced),
                       catalog_)
                   .ok());
}

TEST_F(IcTest, InformationalSkipsValidationAndChecking) {
  ASSERT_TRUE(table_->Append({Value::Int64(0), Value::Int64(0)}).ok());
  IcRegistry ics;
  // Violated, but informational: trusted anyway (the paper's contract —
  // the loader made the promise).
  ASSERT_TRUE(ics.Add(std::make_unique<UniqueConstraint>(
                          "pk", "t", std::vector<ColumnIdx>{0}, true,
                          ConstraintMode::kInformational),
                      catalog_)
                  .ok());
  const std::uint64_t before = ics.checks_performed();
  EXPECT_TRUE(
      ics.CheckInsert(catalog_, "t", {Value::Int64(0), Value::Int64(0)})
          .ok());
  EXPECT_EQ(ics.checks_performed(), before);  // Never checked.
}

TEST_F(IcTest, KeySetMaintainedAcrossMutations) {
  IcRegistry ics;
  ASSERT_TRUE(ics.Add(std::make_unique<UniqueConstraint>(
                          "pk", "t", std::vector<ColumnIdx>{0}, true,
                          ConstraintMode::kEnforced),
                      catalog_)
                  .ok());
  std::vector<Value> row{Value::Int64(5), Value::Int64(10)};
  ics.AfterDelete("t", row);
  EXPECT_TRUE(ics.CheckInsert(catalog_, "t", row).ok());
  ics.AfterInsert("t", row);
  EXPECT_FALSE(ics.CheckInsert(catalog_, "t", row).ok());
}

// ------------------------------------------------------------------ FK IC

TEST_F(IcTest, ForeignKeyChecksParent) {
  Table* child = *catalog_.CreateTable("child", PairSchema());
  (void)child;
  IcRegistry ics;
  ASSERT_TRUE(ics.Add(std::make_unique<UniqueConstraint>(
                          "pk", "t", std::vector<ColumnIdx>{0}, true,
                          ConstraintMode::kEnforced),
                      catalog_)
                  .ok());
  ASSERT_TRUE(ics.Add(std::make_unique<ForeignKeyConstraint>(
                          "fk", "child", std::vector<ColumnIdx>{0}, "t",
                          std::vector<ColumnIdx>{0},
                          ConstraintMode::kEnforced),
                      catalog_)
                  .ok());
  EXPECT_TRUE(
      ics.CheckInsert(catalog_, "child", {Value::Int64(3), Value::Int64(0)})
          .ok());
  EXPECT_FALSE(
      ics.CheckInsert(catalog_, "child", {Value::Int64(77), Value::Int64(0)})
          .ok());
  // NULL FK matches per SQL.
  EXPECT_TRUE(
      ics.CheckInsert(catalog_, "child", {Value::Null(), Value::Int64(0)})
          .ok());
}

TEST_F(IcTest, RegistryLookups) {
  IcRegistry ics;
  ASSERT_TRUE(ics.Add(std::make_unique<UniqueConstraint>(
                          "pk", "t", std::vector<ColumnIdx>{0}, true,
                          ConstraintMode::kEnforced),
                      catalog_)
                  .ok());
  auto check = ParseExpression("x >= 0");
  ASSERT_TRUE(check.ok());
  ASSERT_TRUE((*check)->Bind(table_->schema()).ok());
  ASSERT_TRUE(ics.Add(std::make_unique<CheckConstraint>(
                          "chk", "t", std::move(*check),
                          ConstraintMode::kEnforced),
                      catalog_)
                  .ok());
  EXPECT_EQ(ics.On("t").size(), 2u);
  EXPECT_NE(ics.KeyOf("t"), nullptr);
  EXPECT_TRUE(ics.IsUniqueOver("t", {0}));
  EXPECT_TRUE(ics.IsUniqueOver("t", {0, 1}));
  EXPECT_FALSE(ics.IsUniqueOver("t", {1}));
  EXPECT_EQ(ics.ChecksOn("t").size(), 1u);
  EXPECT_NE(ics.Find("chk"), nullptr);
  ASSERT_TRUE(ics.Drop("chk").ok());
  EXPECT_EQ(ics.Find("chk"), nullptr);
  EXPECT_FALSE(ics.Drop("chk").ok());
}

// ------------------------------------------------------ SoftConstraint base

class ScFixture : public ::testing::Test {
 protected:
  ScFixture() {
    table_ = *catalog_.CreateTable("t", PairSchema());
    // y = x + 5 exactly for 95 rows; 5 rows violate with y = x + 50.
    for (int i = 0; i < 100; ++i) {
      const std::int64_t offset = i < 95 ? 5 : 50;
      EXPECT_TRUE(
          table_->Append({Value::Int64(i), Value::Int64(i + offset)}).ok());
    }
  }
  Catalog catalog_;
  Table* table_;
};

TEST_F(ScFixture, VerifyComputesConfidence) {
  ColumnOffsetSc sc("sc", "t", 0, 1, 0, 10);
  auto outcome = sc.Verify(catalog_);
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(outcome->rows, 100u);
  EXPECT_EQ(outcome->violations, 5u);
  EXPECT_NEAR(sc.confidence(), 0.95, 1e-9);
  EXPECT_FALSE(sc.IsAbsolute());
}

TEST_F(ScFixture, AbsoluteWhenNoViolations) {
  ColumnOffsetSc sc("sc", "t", 0, 1, 0, 50);
  ASSERT_TRUE(sc.Verify(catalog_).ok());
  EXPECT_TRUE(sc.IsAbsolute());
}

TEST_F(ScFixture, CurrencyMarginGrowsWithMutations) {
  ColumnOffsetSc sc("sc", "t", 0, 1, 0, 50);
  ASSERT_TRUE(sc.Verify(catalog_).ok());
  EXPECT_EQ(sc.CurrencyMargin(*table_), 0.0);
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(
        table_->Append({Value::Int64(1000 + i), Value::Int64(1000 + i)}).ok());
  }
  // 10 mutations on ~110 rows: margin ~9%.
  EXPECT_NEAR(sc.CurrencyMargin(*table_), 10.0 / 110.0, 1e-9);
  EXPECT_LT(sc.CurrencyAdjustedConfidence(*table_), 1.0);
}

// ---------------------------------------------------------- ColumnOffsetSc

TEST_F(ScFixture, OffsetDerivePredicates) {
  ColumnOffsetSc sc("sc", "t", 0, 1, 0, 21);
  // y >= c  =>  x >= c - 21.
  auto derived = sc.DerivePredicates({1, CompareOp::kGe, Value::Int64(100)});
  ASSERT_EQ(derived.size(), 1u);
  EXPECT_EQ(derived[0].column, 0u);
  EXPECT_EQ(derived[0].op, CompareOp::kGe);
  EXPECT_EQ(derived[0].constant.AsInt64(), 79);
  // y = c  =>  c - 21 <= x <= c.
  derived = sc.DerivePredicates({1, CompareOp::kEq, Value::Int64(100)});
  ASSERT_EQ(derived.size(), 2u);
  EXPECT_EQ(derived[0].constant.AsInt64(), 79);
  EXPECT_EQ(derived[1].constant.AsInt64(), 100);
  // x <= c  =>  y <= c + 21.
  derived = sc.DerivePredicates({0, CompareOp::kLe, Value::Int64(10)});
  ASSERT_EQ(derived.size(), 1u);
  EXPECT_EQ(derived[0].column, 1u);
  EXPECT_EQ(derived[0].constant.AsInt64(), 31);
  // <> gives nothing; other columns give nothing.
  EXPECT_TRUE(sc.DerivePredicates({1, CompareOp::kNe, Value::Int64(1)})
                  .empty());
  EXPECT_TRUE(sc.DerivePredicates({5, CompareOp::kEq, Value::Int64(1)})
                  .empty());
}

TEST_F(ScFixture, OffsetSyncRepairWidens) {
  ColumnOffsetSc sc("sc", "t", 0, 1, 0, 10);
  ASSERT_TRUE(
      sc.RepairForRow({Value::Int64(0), Value::Int64(40)}).ok());
  EXPECT_EQ(sc.max_offset(), 40);
  EXPECT_EQ(sc.min_offset(), 0);
}

TEST_F(ScFixture, OffsetFullRepairRefitsExactly) {
  ColumnOffsetSc sc("sc", "t", 0, 1, 0, 3);  // Wrong bounds.
  ASSERT_TRUE(sc.RepairFull(catalog_).ok());
  EXPECT_EQ(sc.min_offset(), 5);
  EXPECT_EQ(sc.max_offset(), 50);
  EXPECT_TRUE(sc.IsAbsolute());
}

// ----------------------------------------------------- LinearCorrelationSc

TEST(LinearScTest, CheckAndRange) {
  Catalog catalog;
  Schema s;
  s.AddColumn({"a", TypeId::kDouble, false, "t"});
  s.AddColumn({"b", TypeId::kDouble, false, "t"});
  Table* t = *catalog.CreateTable("t", s);
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(t->Append({Value::Double(2.0 * i + 1.0 + (i % 3 == 0 ? 0.5 : -0.5)),
                           Value::Double(i)})
                    .ok());
  }
  LinearCorrelationSc sc("sc", "t", 0, 1, 2.0, 1.0, 0.5);
  auto outcome = sc.Verify(catalog);
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(outcome->violations, 0u);
  EXPECT_TRUE(sc.IsAbsolute());

  auto [lo, hi] = sc.ARangeForB(10.0, 20.0);
  EXPECT_DOUBLE_EQ(lo, 2.0 * 10 + 1 - 0.5);
  EXPECT_DOUBLE_EQ(hi, 2.0 * 20 + 1 + 0.5);

  // Negative slope flips the range.
  LinearCorrelationSc neg("n", "t", 0, 1, -2.0, 0.0, 1.0);
  auto [nlo, nhi] = neg.ARangeForB(10.0, 20.0);
  EXPECT_DOUBLE_EQ(nlo, -41.0);
  EXPECT_DOUBLE_EQ(nhi, -19.0);
}

TEST(LinearScTest, FullRepairRefits) {
  Catalog catalog;
  Schema s;
  s.AddColumn({"a", TypeId::kDouble, false, "t"});
  s.AddColumn({"b", TypeId::kDouble, false, "t"});
  Table* t = *catalog.CreateTable("t", s);
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(
        t->Append({Value::Double(3.0 * i + 7.0), Value::Double(i)}).ok());
  }
  LinearCorrelationSc sc("sc", "t", 0, 1, 1.0, 0.0, 0.1);  // Wrong fit.
  ASSERT_TRUE(sc.RepairFull(catalog).ok());
  EXPECT_NEAR(sc.k(), 3.0, 1e-6);
  EXPECT_NEAR(sc.c(), 7.0, 1e-6);
  EXPECT_NEAR(sc.epsilon(), 0.0, 1e-6);
  EXPECT_TRUE(sc.IsAbsolute());
}

// -------------------------------------------------------------- JoinHoleSc

class HoleFixture : public ::testing::Test {
 protected:
  HoleFixture() {
    Schema ls;
    ls.AddColumn({"jk", TypeId::kInt64, false, "l"});
    ls.AddColumn({"a", TypeId::kDouble, false, "l"});
    left_ = *catalog_.CreateTable("l", ls);
    Schema rs;
    rs.AddColumn({"jk", TypeId::kInt64, false, "r"});
    rs.AddColumn({"b", TypeId::kDouble, false, "r"});
    right_ = *catalog_.CreateTable("r", rs);
    // Join key k pairs a=k with b=k: the diagonal. Hole: a in [10,20] x
    // b in [30,40] is empty (diagonal never hits it).
    for (int k = 0; k < 50; ++k) {
      EXPECT_TRUE(left_->Append({Value::Int64(k), Value::Double(k)}).ok());
      EXPECT_TRUE(right_->Append({Value::Int64(k), Value::Double(k)}).ok());
    }
  }
  Catalog catalog_;
  Table* left_;
  Table* right_;
};

TEST_F(HoleFixture, VerifyCountsInHoleJoinPairs) {
  JoinHoleSc sc("h", "l", 0, 1, "r", 0, 1,
                {HoleRect{10, 20, 30, 40}});
  auto outcome = sc.Verify(catalog_);
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(outcome->rows, 50u);        // 50 joined pairs.
  EXPECT_EQ(outcome->violations, 0u);   // Hole is genuinely empty.
  EXPECT_TRUE(sc.IsAbsolute());

  // A hole crossing the diagonal is not empty.
  JoinHoleSc bad("b", "l", 0, 1, "r", 0, 1,
                 {HoleRect{10, 20, 10, 20}});
  auto bad_outcome = bad.Verify(catalog_);
  ASSERT_TRUE(bad_outcome.ok());
  EXPECT_GT(bad_outcome->violations, 0u);
}

TEST_F(HoleFixture, CoversAndTrims) {
  JoinHoleSc sc("h", "l", 0, 1, "r", 0, 1,
                {HoleRect{10, 20, 30, 40}});
  EXPECT_TRUE(sc.CoversQuery(12, 18, 32, 38));
  EXPECT_FALSE(sc.CoversQuery(5, 18, 32, 38));

  // A-range [5,15] with B fully inside [30,40]: hole spans B, trims A's
  // upper part [10,15] -> a_hi becomes 10.
  double a_lo = 5, a_hi = 15;
  EXPECT_TRUE(sc.TrimARange(&a_lo, &a_hi, 31, 39));
  EXPECT_DOUBLE_EQ(a_hi, 10.0);
  EXPECT_DOUBLE_EQ(a_lo, 5.0);

  // B not inside the hole's B-range: no trim.
  a_lo = 5;
  a_hi = 15;
  EXPECT_FALSE(sc.TrimARange(&a_lo, &a_hi, 0, 50));
}

TEST_F(HoleFixture, ConservativeInvalidation) {
  JoinHoleSc sc("h", "l", 0, 1, "r", 0, 1,
                {HoleRect{10, 20, 30, 40}, HoleRect{100, 110, 0, 5}});
  // Insert a left row with a=15: projects into hole 1 only.
  EXPECT_EQ(sc.InvalidateHolesForLeftInsert(
                {Value::Int64(1), Value::Double(15)}),
            1u);
  EXPECT_EQ(sc.holes().size(), 1u);
  // Right insert with b=3 hits the remaining hole's B projection.
  EXPECT_EQ(sc.InvalidateHolesForRightInsert(
                {Value::Int64(1), Value::Double(3)}),
            1u);
  EXPECT_TRUE(sc.holes().empty());
}

TEST_F(HoleFixture, ExactRowCheckJoins) {
  JoinHoleSc sc("h", "l", 0, 1, "r", 0, 1,
                {HoleRect{10, 20, 30, 40}});
  // New left row (jk=35, a=15): joins to right b=35 which is inside the
  // hole's B-range, and a=15 is inside A-range: violation.
  auto violates =
      sc.CheckRow(catalog_, {Value::Int64(35), Value::Double(15)});
  ASSERT_TRUE(violates.ok());
  EXPECT_FALSE(*violates);
  // New left row with a outside any hole: fine.
  auto ok = sc.CheckRow(catalog_, {Value::Int64(35), Value::Double(55)});
  ASSERT_TRUE(ok.ok());
  EXPECT_TRUE(*ok);
}

// -------------------------------------------------------------------- FD SC

TEST(FdScTest, VerifyAndDetermines) {
  Catalog catalog;
  Schema s;
  s.AddColumn({"nation", TypeId::kInt64, false, "t"});
  s.AddColumn({"region", TypeId::kInt64, false, "t"});
  s.AddColumn({"other", TypeId::kInt64, false, "t"});
  Table* t = *catalog.CreateTable("t", s);
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(t->Append({Value::Int64(i % 10), Value::Int64((i % 10) / 2),
                           Value::Int64(i)})
                    .ok());
  }
  FunctionalDependencySc fd("fd", "t", {0}, {1});
  auto outcome = fd.Verify(catalog);
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(outcome->violations, 0u);
  EXPECT_TRUE(fd.IsAbsolute());
  EXPECT_TRUE(fd.Determines({0, 2}, 1));
  EXPECT_FALSE(fd.Determines({2}, 1));
  EXPECT_FALSE(fd.Determines({0}, 2));

  // Row check against existing mapping.
  auto complies = fd.CheckRow(catalog, {Value::Int64(4), Value::Int64(2),
                                        Value::Int64(0)});
  EXPECT_TRUE(*complies);
  auto violates = fd.CheckRow(catalog, {Value::Int64(4), Value::Int64(9),
                                        Value::Int64(0)});
  EXPECT_FALSE(*violates);
  // Unseen determinant value: vacuously fine.
  auto fresh = fd.CheckRow(catalog, {Value::Int64(77), Value::Int64(9),
                                     Value::Int64(0)});
  EXPECT_TRUE(*fresh);
}

// --------------------------------------------------------------- Inclusion

TEST(InclusionScTest, CountsOrphans) {
  Catalog catalog;
  Schema s;
  s.AddColumn({"k", TypeId::kInt64, false, "x"});
  s.AddColumn({"v", TypeId::kInt64, true, "x"});
  Table* parent = *catalog.CreateTable("parent", s);
  Table* child = *catalog.CreateTable("child", s);
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(parent->Append({Value::Int64(i), Value::Int64(0)}).ok());
  }
  for (int i = 0; i < 20; ++i) {
    // Two orphans: 100 and 101.
    const std::int64_t k = i < 18 ? i % 10 : 100 + (i - 18);
    ASSERT_TRUE(child->Append({Value::Int64(k), Value::Int64(0)}).ok());
  }
  InclusionSc sc("inc", "child", {0}, "parent", {0});
  auto outcome = sc.Verify(catalog);
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(outcome->violations, 2u);
  EXPECT_NEAR(sc.confidence(), 0.9, 1e-9);

  auto ok = sc.CheckRow(catalog, {Value::Int64(5), Value::Int64(0)});
  EXPECT_TRUE(*ok);
  auto orphan = sc.CheckRow(catalog, {Value::Int64(500), Value::Int64(0)});
  EXPECT_FALSE(*orphan);
}

// ------------------------------------------------------------------ Domain

TEST(DomainScTest, ClassifyAndRepair) {
  Catalog catalog;
  Table* t = *catalog.CreateTable("t", PairSchema());
  for (int i = 10; i <= 20; ++i) {
    ASSERT_TRUE(t->Append({Value::Int64(i), Value::Int64(0)}).ok());
  }
  DomainSc sc("dom", "t", 0, Value::Int64(10), Value::Int64(20));
  ASSERT_TRUE(sc.Verify(catalog).ok());
  EXPECT_TRUE(sc.IsAbsolute());

  using I = DomainSc::Implication;
  EXPECT_EQ(sc.Classify({0, CompareOp::kLe, Value::Int64(25)}), I::kTautology);
  EXPECT_EQ(sc.Classify({0, CompareOp::kLe, Value::Int64(5)}),
            I::kContradiction);
  EXPECT_EQ(sc.Classify({0, CompareOp::kLe, Value::Int64(15)}), I::kNone);
  EXPECT_EQ(sc.Classify({0, CompareOp::kGt, Value::Int64(20)}),
            I::kContradiction);
  EXPECT_EQ(sc.Classify({0, CompareOp::kGe, Value::Int64(10)}),
            I::kTautology);
  EXPECT_EQ(sc.Classify({0, CompareOp::kEq, Value::Int64(30)}),
            I::kContradiction);
  EXPECT_EQ(sc.Classify({0, CompareOp::kEq, Value::Int64(15)}), I::kNone);
  EXPECT_EQ(sc.Classify({1, CompareOp::kEq, Value::Int64(15)}), I::kNone);

  ASSERT_TRUE(sc.RepairForRow({Value::Int64(30), Value::Int64(0)}).ok());
  EXPECT_EQ(sc.max_value().AsInt64(), 30);
}

// --------------------------------------------------------------- Predicate

TEST(PredicateScTest, ChecksRows) {
  Catalog catalog;
  Table* t = *catalog.CreateTable("t", PairSchema());
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(t->Append({Value::Int64(i), Value::Int64(i)}).ok());
  }
  auto expr = ParseExpression("y <= x + 5");
  ASSERT_TRUE(expr.ok());
  ASSERT_TRUE((*expr)->Bind(t->schema()).ok());
  PredicateSc sc("p", "t", std::move(*expr));
  ASSERT_TRUE(sc.Verify(catalog).ok());
  EXPECT_TRUE(sc.IsAbsolute());
  auto bad = sc.CheckRow(catalog, {Value::Int64(0), Value::Int64(100)});
  EXPECT_FALSE(*bad);
}

// ------------------------------------------------------------- ScRegistry

class RegistryFixture : public ::testing::Test {
 protected:
  RegistryFixture() {
    table_ = *catalog_.CreateTable("t", PairSchema());
    for (int i = 0; i < 100; ++i) {
      EXPECT_TRUE(
          table_->Append({Value::Int64(i), Value::Int64(i + 5)}).ok());
    }
  }

  ScPtr MakeOffsetSc(ScMaintenancePolicy policy) {
    auto sc = std::make_unique<ColumnOffsetSc>("sc", "t", 0, 1, 0, 10);
    sc->set_policy(policy);
    return sc;
  }

  Catalog catalog_;
  Table* table_;
};

TEST_F(RegistryFixture, AddVerifiesAndDuplicatesRejected) {
  ScRegistry scs;
  ASSERT_TRUE(
      scs.Add(MakeOffsetSc(ScMaintenancePolicy::kDropOnViolation), catalog_)
          .ok());
  EXPECT_FALSE(
      scs.Add(MakeOffsetSc(ScMaintenancePolicy::kDropOnViolation), catalog_)
          .ok());
  EXPECT_TRUE(scs.Find("sc")->IsAbsolute());
  EXPECT_EQ(scs.On("t").size(), 1u);
  EXPECT_EQ(scs.ByKind(ScKind::kColumnOffset).size(), 1u);
}

TEST_F(RegistryFixture, DropPolicyOverturnsAndNotifies) {
  ScRegistry scs;
  ASSERT_TRUE(
      scs.Add(MakeOffsetSc(ScMaintenancePolicy::kDropOnViolation), catalog_)
          .ok());
  std::vector<std::string> violated;
  scs.SetViolationListener([&](const SoftConstraint& sc) {
    violated.push_back(sc.name());
  });
  // Violating insert: y - x = 100 > 10.
  ASSERT_TRUE(scs.OnInsert(catalog_, "t",
                           {Value::Int64(0), Value::Int64(100)})
                  .ok());
  EXPECT_EQ(scs.Find("sc")->state(), ScState::kViolated);
  ASSERT_EQ(violated.size(), 1u);
  EXPECT_EQ(violated[0], "sc");
  EXPECT_EQ(scs.stats().violations, 1u);
  EXPECT_EQ(scs.stats().drops, 1u);
}

TEST_F(RegistryFixture, SyncRepairAbsorbsRow) {
  ScRegistry scs;
  ASSERT_TRUE(scs.Add(MakeOffsetSc(ScMaintenancePolicy::kSyncRepair),
                      catalog_)
                  .ok());
  ASSERT_TRUE(scs.OnInsert(catalog_, "t",
                           {Value::Int64(0), Value::Int64(100)})
                  .ok());
  auto* sc = static_cast<ColumnOffsetSc*>(scs.Find("sc"));
  EXPECT_TRUE(sc->IsAbsolute());  // Still absolute, just wider.
  EXPECT_EQ(sc->max_offset(), 100);
  EXPECT_EQ(scs.stats().sync_repairs, 1u);
}

TEST_F(RegistryFixture, AsyncRepairQueuesAndDrains) {
  ScRegistry scs;
  ASSERT_TRUE(scs.Add(MakeOffsetSc(ScMaintenancePolicy::kAsyncRepair),
                      catalog_)
                  .ok());
  // Commit the violating row to the table, then notify.
  ASSERT_TRUE(table_->Append({Value::Int64(0), Value::Int64(100)}).ok());
  ASSERT_TRUE(scs.OnInsert(catalog_, "t",
                           {Value::Int64(0), Value::Int64(100)})
                  .ok());
  EXPECT_EQ(scs.Find("sc")->state(), ScState::kRepairQueued);
  EXPECT_EQ(scs.repair_queue_size(), 1u);
  ASSERT_TRUE(scs.RunRepairQueue(catalog_).ok());
  EXPECT_EQ(scs.Find("sc")->state(), ScState::kActive);
  auto* sc = static_cast<ColumnOffsetSc*>(scs.Find("sc"));
  EXPECT_EQ(sc->max_offset(), 100);  // Exact refit.
  EXPECT_EQ(scs.stats().async_repairs, 1u);
}

TEST_F(RegistryFixture, ToleratePolicyDemotesToStatistical) {
  ScRegistry scs;
  ASSERT_TRUE(scs.Add(MakeOffsetSc(ScMaintenancePolicy::kTolerate),
                      catalog_)
                  .ok());
  ASSERT_TRUE(scs.OnInsert(catalog_, "t",
                           {Value::Int64(0), Value::Int64(100)})
                  .ok());
  SoftConstraint* sc = scs.Find("sc");
  EXPECT_EQ(sc->state(), ScState::kActive);
  EXPECT_LT(sc->confidence(), 1.0);
  EXPECT_FALSE(sc->IsAbsolute());
}

TEST_F(RegistryFixture, StatisticalScsSkipSynchronousChecks) {
  auto sc = std::make_unique<ColumnOffsetSc>("ssc", "t", 0, 1, 0, 4);
  ScRegistry scs;
  ASSERT_TRUE(scs.Add(std::move(sc), catalog_).ok());  // Verifies < 1.0.
  ASSERT_LT(scs.Find("ssc")->confidence(), 1.0);
  const std::uint64_t checks = scs.stats().row_checks;
  ASSERT_TRUE(scs.OnInsert(catalog_, "t",
                           {Value::Int64(0), Value::Int64(100)})
                  .ok());
  EXPECT_EQ(scs.stats().row_checks, checks);  // SSC: no sync work (§3).
}

TEST_F(RegistryFixture, UseAccounting) {
  ScRegistry scs;
  ASSERT_TRUE(
      scs.Add(MakeOffsetSc(ScMaintenancePolicy::kDropOnViolation), catalog_)
          .ok());
  scs.RecordUse("sc", 2.5);
  scs.RecordUse("sc", 1.5);
  EXPECT_EQ(scs.UseCount("sc"), 2u);
  EXPECT_DOUBLE_EQ(scs.TotalBenefit("sc"), 4.0);
  EXPECT_EQ(scs.UseCount("nope"), 0u);
}

TEST_F(RegistryFixture, VerifyAllRefreshesConfidence) {
  ScRegistry scs;
  ASSERT_TRUE(
      scs.Add(MakeOffsetSc(ScMaintenancePolicy::kDropOnViolation), catalog_)
          .ok());
  ASSERT_TRUE(table_->Append({Value::Int64(0), Value::Int64(100)}).ok());
  ASSERT_TRUE(scs.VerifyAll(catalog_).ok());
  EXPECT_LT(scs.Find("sc")->confidence(), 1.0);
}

}  // namespace
}  // namespace softdb
