#include <gtest/gtest.h>

#include "storage/catalog.h"
#include "storage/index.h"
#include "storage/table.h"

namespace softdb {
namespace {

Schema TwoColSchema() {
  Schema s;
  s.AddColumn({"id", TypeId::kInt64, false, "t"});
  s.AddColumn({"name", TypeId::kString, true, "t"});
  return s;
}

// ----------------------------------------------------------------- Schema

TEST(SchemaTest, ResolveUnqualified) {
  Schema s = TwoColSchema();
  EXPECT_EQ(*s.Resolve("id"), 0u);
  EXPECT_EQ(*s.Resolve("name"), 1u);
}

TEST(SchemaTest, ResolveQualified) {
  Schema s = TwoColSchema();
  EXPECT_EQ(*s.Resolve("t.id"), 0u);
  EXPECT_FALSE(s.Resolve("other.id").ok());
}

TEST(SchemaTest, ResolveIsCaseInsensitive) {
  Schema s = TwoColSchema();
  EXPECT_EQ(*s.Resolve("ID"), 0u);
  EXPECT_EQ(*s.Resolve("T.Name"), 1u);
}

TEST(SchemaTest, AmbiguityDetected) {
  Schema s;
  s.AddColumn({"id", TypeId::kInt64, false, "a"});
  s.AddColumn({"id", TypeId::kInt64, false, "b"});
  EXPECT_FALSE(s.Resolve("id").ok());
  EXPECT_EQ(*s.Resolve("a.id"), 0u);
  EXPECT_EQ(*s.Resolve("b.id"), 1u);
}

TEST(SchemaTest, ConcatKeepsQualifiers) {
  Schema joined = Schema::Concat(TwoColSchema(), TwoColSchema());
  EXPECT_EQ(joined.NumColumns(), 4u);
  EXPECT_FALSE(joined.Resolve("id").ok());  // Now ambiguous.
}

// ----------------------------------------------------------- ColumnVector

TEST(ColumnVectorTest, IntTypesShareBuffer) {
  ColumnVector col(TypeId::kDate);
  ASSERT_TRUE(col.Append(Value::Date(100)).ok());
  ASSERT_TRUE(col.Append(Value::Int64(200)).ok());  // Int widens into date.
  EXPECT_EQ(col.Get(0).type(), TypeId::kDate);
  EXPECT_EQ(col.Get(1).AsInt64(), 200);
}

TEST(ColumnVectorTest, RejectsWrongFamily) {
  ColumnVector col(TypeId::kInt64);
  EXPECT_FALSE(col.Append(Value::String("oops")).ok());
  EXPECT_EQ(col.size(), 0u);  // Failed append leaves no residue.
}

TEST(ColumnVectorTest, NullsTracked) {
  ColumnVector col(TypeId::kDouble);
  ASSERT_TRUE(col.Append(Value::Null()).ok());
  ASSERT_TRUE(col.Append(Value::Double(1.5)).ok());
  EXPECT_TRUE(col.IsNull(0));
  EXPECT_FALSE(col.IsNull(1));
  EXPECT_TRUE(col.Get(0).is_null());
}

TEST(ColumnVectorTest, SetOverwrites) {
  ColumnVector col(TypeId::kInt64);
  ASSERT_TRUE(col.Append(Value::Int64(1)).ok());
  ASSERT_TRUE(col.Set(0, Value::Int64(9)).ok());
  EXPECT_EQ(col.Get(0).AsInt64(), 9);
  ASSERT_TRUE(col.Set(0, Value::Null()).ok());
  EXPECT_TRUE(col.IsNull(0));
  EXPECT_FALSE(col.Set(5, Value::Int64(0)).ok());
}

// ------------------------------------------------------------------ Table

TEST(TableTest, AppendAndRead) {
  Table t("t", TwoColSchema());
  auto rid = t.Append({Value::Int64(1), Value::String("a")});
  ASSERT_TRUE(rid.ok());
  EXPECT_EQ(*rid, 0u);
  EXPECT_EQ(t.NumRows(), 1u);
  EXPECT_EQ(t.Get(0, 1).AsString(), "a");
}

TEST(TableTest, ArityMismatchRejected) {
  Table t("t", TwoColSchema());
  EXPECT_FALSE(t.Append({Value::Int64(1)}).ok());
}

TEST(TableTest, NotNullEnforcedBySchema) {
  Table t("t", TwoColSchema());
  EXPECT_FALSE(t.Append({Value::Null(), Value::String("x")}).ok());
  EXPECT_TRUE(t.Append({Value::Int64(1), Value::Null()}).ok());
}

TEST(TableTest, TypeErrorLeavesColumnsConsistent) {
  Table t("t", TwoColSchema());
  EXPECT_FALSE(t.Append({Value::String("bad"), Value::String("x")}).ok());
  EXPECT_EQ(t.NumRows(), 0u);
  ASSERT_TRUE(t.Append({Value::Int64(1), Value::String("x")}).ok());
  EXPECT_EQ(t.NumRows(), 1u);
}

TEST(TableTest, DeleteIsTombstone) {
  Table t("t", TwoColSchema());
  ASSERT_TRUE(t.Append({Value::Int64(1), Value::String("a")}).ok());
  ASSERT_TRUE(t.Append({Value::Int64(2), Value::String("b")}).ok());
  ASSERT_TRUE(t.Delete(0).ok());
  EXPECT_EQ(t.NumRows(), 1u);
  EXPECT_EQ(t.NumSlots(), 2u);
  EXPECT_FALSE(t.IsLive(0));
  EXPECT_TRUE(t.IsLive(1));
  // Row ids are never reused.
  auto rid = t.Append({Value::Int64(3), Value::String("c")});
  EXPECT_EQ(*rid, 2u);
}

TEST(TableTest, VersionTracksMutations) {
  Table t("t", TwoColSchema());
  const std::uint64_t v0 = t.version();
  ASSERT_TRUE(t.Append({Value::Int64(1), Value::String("a")}).ok());
  ASSERT_TRUE(t.Set(0, 1, Value::String("z")).ok());
  ASSERT_TRUE(t.Delete(0).ok());
  EXPECT_EQ(t.MutationsSince(v0), 3u);
}

TEST(TableTest, PageAccounting) {
  Table t("t", TwoColSchema());
  for (int i = 0; i < static_cast<int>(kRowsPerPage) + 1; ++i) {
    ASSERT_TRUE(t.Append({Value::Int64(i), Value::Null()}).ok());
  }
  EXPECT_EQ(t.NumPages(), 2u);
}

// ------------------------------------------------------------------ Index

class IndexTest : public ::testing::Test {
 protected:
  IndexTest() : table_("t", TwoColSchema()) {
    for (int i = 0; i < 100; ++i) {
      // Keys inserted in reverse so the index must sort.
      EXPECT_TRUE(
          table_.Append({Value::Int64(99 - i), Value::Null()}).ok());
    }
  }
  Table table_;
};

TEST_F(IndexTest, RangeScanInclusive) {
  Index idx("i", &table_, 0);
  auto rows = idx.RangeScan(Value::Int64(10), true, Value::Int64(20), true);
  EXPECT_EQ(rows.size(), 11u);
  // Results come back in key order.
  EXPECT_EQ(table_.Get(rows.front(), 0).AsInt64(), 10);
  EXPECT_EQ(table_.Get(rows.back(), 0).AsInt64(), 20);
}

TEST_F(IndexTest, RangeScanExclusiveBounds) {
  Index idx("i", &table_, 0);
  auto rows = idx.RangeScan(Value::Int64(10), false, Value::Int64(20), false);
  EXPECT_EQ(rows.size(), 9u);
}

TEST_F(IndexTest, UnboundedScans) {
  Index idx("i", &table_, 0);
  EXPECT_EQ(idx.RangeScan(std::nullopt, true, std::nullopt, true).size(),
            100u);
  EXPECT_EQ(idx.RangeScan(Value::Int64(95), true, std::nullopt, true).size(),
            5u);
  EXPECT_EQ(idx.RangeScan(std::nullopt, true, Value::Int64(4), true).size(),
            5u);
}

TEST_F(IndexTest, MinMaxKeys) {
  Index idx("i", &table_, 0);
  EXPECT_EQ(idx.MinKey()->AsInt64(), 0);
  EXPECT_EQ(idx.MaxKey()->AsInt64(), 99);
}

TEST_F(IndexTest, InsertAndRemoveMaintainOrder) {
  Index idx("i", &table_, 0);
  auto rid = table_.Append({Value::Int64(1000), Value::Null()});
  ASSERT_TRUE(idx.Insert(Value::Int64(1000), *rid).ok());
  EXPECT_EQ(idx.MaxKey()->AsInt64(), 1000);
  ASSERT_TRUE(idx.Remove(Value::Int64(1000), *rid).ok());
  EXPECT_EQ(idx.MaxKey()->AsInt64(), 99);
  EXPECT_FALSE(idx.Remove(Value::Int64(1000), *rid).ok());
}

TEST_F(IndexTest, DeletedRowsSkipped) {
  Index idx("i", &table_, 0);
  // Key 15 was inserted as row 99-15=84.
  ASSERT_TRUE(table_.Delete(84).ok());
  auto rows = idx.RangeScan(Value::Int64(15), true, Value::Int64(15), true);
  EXPECT_TRUE(rows.empty());
}

TEST_F(IndexTest, NullKeysSkipped) {
  Table t("t2", TwoColSchema());
  ASSERT_TRUE(t.Append({Value::Int64(1), Value::String("x")}).ok());
  Index idx("i2", &t, 1);
  ASSERT_TRUE(t.Append({Value::Int64(2), Value::Null()}).ok());
  ASSERT_TRUE(idx.Insert(Value::Null(), 1).ok());  // Silently skipped.
  EXPECT_EQ(idx.NumEntries(), 1u);
}

TEST(IndexDensityTest, ClusteredVsRandom) {
  Schema s;
  s.AddColumn({"v", TypeId::kInt64, false, "t"});
  Table clustered("c", s);
  Table random("r", s);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_TRUE(clustered.Append({Value::Int64(i)}).ok());
    ASSERT_TRUE(random.Append({Value::Int64((i * 7919) % 1000)}).ok());
  }
  Index ci("ci", &clustered, 0);
  Index ri("ri", &random, 0);
  EXPECT_LT(ci.PageSwitchDensity(), 0.05);   // ~1/64.
  EXPECT_GT(ri.PageSwitchDensity(), 0.5);    // Nearly one page per row.
}

// ---------------------------------------------------------------- Catalog

TEST(CatalogTest, CreateGetDrop) {
  Catalog cat;
  ASSERT_TRUE(cat.CreateTable("Foo", TwoColSchema()).ok());
  EXPECT_TRUE(cat.HasTable("foo"));
  EXPECT_TRUE(cat.HasTable("FOO"));  // Case-insensitive.
  EXPECT_FALSE(cat.CreateTable("foo", TwoColSchema()).ok());
  ASSERT_TRUE(cat.GetTable("foo").ok());
  ASSERT_TRUE(cat.DropTable("foo").ok());
  EXPECT_FALSE(cat.HasTable("foo"));
  EXPECT_FALSE(cat.DropTable("foo").ok());
}

TEST(CatalogTest, QualifiersStampedOnCreate) {
  Catalog cat;
  Table* t = *cat.CreateTable("orders", TwoColSchema());
  EXPECT_EQ(t->schema().Column(0).table, "orders");
}

TEST(CatalogTest, IndexLifecycle) {
  Catalog cat;
  Table* t = *cat.CreateTable("t", TwoColSchema());
  ASSERT_TRUE(t->Append({Value::Int64(5), Value::Null()}).ok());
  ASSERT_TRUE(cat.CreateIndex("idx", "t", "id").ok());
  EXPECT_FALSE(cat.CreateIndex("idx", "t", "id").ok());  // Duplicate name.
  EXPECT_NE(cat.FindIndex("t", "id"), nullptr);
  EXPECT_EQ(cat.FindIndex("t", "name"), nullptr);
  EXPECT_EQ(cat.IndexesOn("t").size(), 1u);
}

TEST(CatalogTest, NotifyKeepsIndexesInSync) {
  Catalog cat;
  Table* t = *cat.CreateTable("t", TwoColSchema());
  ASSERT_TRUE(cat.CreateIndex("idx", "t", "id").ok());
  auto rid = t->Append({Value::Int64(7), Value::Null()});
  cat.NotifyInsert(t, *rid);
  Index* idx = cat.FindIndex("t", "id");
  EXPECT_EQ(idx->NumEntries(), 1u);

  cat.NotifyUpdate(t, *rid, 0, Value::Int64(7), Value::Int64(8));
  ASSERT_TRUE(t->Set(*rid, 0, Value::Int64(8)).ok());
  EXPECT_EQ(idx->MinKey()->AsInt64(), 8);

  std::vector<Value> old_row = t->GetRow(*rid);
  ASSERT_TRUE(t->Delete(*rid).ok());
  cat.NotifyDelete(t, *rid, old_row);
  EXPECT_EQ(idx->NumEntries(), 0u);
}

}  // namespace
}  // namespace softdb
